//! The network tier end to end: start a `sitm::serve` server, drive it
//! with a client — batched ingest, a mid-stream checkpoint into the
//! warehouse, a continuous-query subscription that gets closed-visit
//! episodes *pushed* at the ingest barrier, federated queries over
//! live ∪ warehouse, an EXPLAIN with zone-map/Bloom pruning counts —
//! then shut it down gracefully.
//!
//! This doubles as the CI smoke test for the server (`cargo run
//! --example query_server`): everything runs in-process on an
//! ephemeral loopback port and asserts its own results.

use sitm::core::{
    Annotation, AnnotationSet, Duration, IntervalPredicate, PresenceInterval, Timestamp,
    TransitionTaken,
};
use sitm::graph::{LayerIdx, NodeId};
use sitm::query::wire::WireQuery;
use sitm::query::{Predicate, SortKey};
use sitm::serve::{Client, Server, ServerConfig, Subscriber};
use sitm::space::CellRef;
use sitm::stream::{EngineConfig, StreamEvent, VisitKey};

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

/// A tiny museum day: `closed` finished visits plus `open` still in
/// the building.
fn feed(closed: u64, open: u64) -> Vec<StreamEvent> {
    let mut events = Vec::new();
    for v in 0..closed + open {
        let t0 = v as i64 * 60;
        events.push(StreamEvent::VisitOpened {
            visit: VisitKey(v),
            moving_object: format!("visitor-{v}"),
            annotations: label("visit"),
            at: Timestamp(t0),
        });
        for (i, c) in [0usize, 1, (v % 3) as usize + 2].iter().enumerate() {
            events.push(StreamEvent::Presence {
                visit: VisitKey(v),
                interval: PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(*c),
                    Timestamp(t0 + i as i64 * 120),
                    Timestamp(t0 + i as i64 * 120 + 90),
                ),
            });
        }
        if v < closed {
            events.push(StreamEvent::VisitClosed {
                visit: VisitKey(v),
                at: Timestamp(t0 + 500),
            });
        }
    }
    events
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let warehouse_dir =
        std::env::temp_dir().join(format!("sitm-example-query-server-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&warehouse_dir);

    // One episode detector ("gallery 1 stays") plus the whole-visit run.
    let engine = EngineConfig::new(vec![
        (IntervalPredicate::in_cells([cell(1)]), label("gallery-1")),
        (IntervalPredicate::any(), label("whole")),
    ])
    .with_shards(2);

    let server = Server::start(
        ServerConfig::new(engine, &warehouse_dir)
            .with_sessions(2)
            // Everything qualifies as "slow" so the smoke test also
            // exercises the slow-query ring buffer.
            .with_slow_query_threshold(std::time::Duration::ZERO),
    )?;
    println!("serving on {}", server.addr());

    let mut client = Client::connect(server.addr())?;

    // Ingest a day in two batches with a checkpoint in between, so
    // history lands in the warehouse tier while three visitors are
    // still walking around (live tier).
    let events = feed(12, 3);
    let mid = events.len() / 2;
    client.ingest_batch(events[..mid].to_vec())?;
    let (spilled_early, _, _) = client.checkpoint()?;

    // A continuous query on its own connection, registered before the
    // second half of the day: the episodes its visits close are
    // *pushed* at the ingest barrier instead of polled for.
    let mut sub = Subscriber::subscribe(
        server.addr(),
        &WireQuery {
            predicate: Predicate::HasTrajAnnotation(Annotation::goal("gallery-1")),
            order: None,
            offset: 0,
            limit: None,
        },
    )?;

    client.ingest_batch(events[mid..].to_vec())?;
    let (spilled_late, warehouse_total, manifest) = client.checkpoint()?;

    let mut pushed = 0usize;
    let mut last_epoch = sub.epoch();
    for _ in 0..40 {
        if let Some((epoch, episodes)) = sub.poll(std::time::Duration::from_millis(250))? {
            assert!(epoch > last_epoch, "notification epochs strictly increase");
            last_epoch = epoch;
            pushed += episodes.len();
            if pushed > 0 {
                break;
            }
        }
    }
    println!("subscription pushed {pushed} gallery-1 episodes (epoch {last_epoch})");
    assert!(pushed >= 1, "the barrier must push at least one match");
    let drained = sub.unsubscribe()?;
    println!(
        "unsubscribed ({} notifications still queued)",
        drained.len()
    );
    println!(
        "checkpoints spilled {spilled_early} + {spilled_late} visits \
         → warehouse holds {warehouse_total} (manifest #{manifest})"
    );
    assert_eq!(spilled_early + spilled_late, 12);

    // Who is (or was) in gallery 1, longest dwellers first?
    let q = WireQuery {
        predicate: Predicate::VisitedCell(cell(1)),
        order: Some((SortKey::TotalDwell, false)),
        offset: 0,
        limit: Some(5),
    };
    let live_and_history = client.query_federated(&q)?;
    println!(
        "federated (live ∪ warehouse) gallery-1 page: {:?}",
        live_and_history
            .iter()
            .map(|t| t.moving_object.as_str())
            .collect::<Vec<_>>()
    );
    assert_eq!(live_and_history.len(), 5);

    // The same page over history only.
    let history_only = client.query(&q)?;
    assert!(history_only.len() <= live_and_history.len() + 12);

    // EXPLAIN a selective point query: the warehouse answers from its
    // indexes, and zone maps + Bloom filters prune disjoint segments.
    let report = client.explain(&Predicate::MovingObject("visitor-3".into()))?;
    println!(
        "explain visitor-3: {} segments, {} zone-pruned ({} by Bloom alone), plans {:?}",
        report.segments, report.zone_pruned, report.bloom_pruned, report.plans
    );
    assert_eq!(report.plans.len(), 2, "live + warehouse participants");

    // A dwell query the engine predicates annotated on the way in.
    let long_stays = client.query_federated(&WireQuery {
        predicate: Predicate::MinTotalDwell(Duration::seconds(200)),
        order: Some((SortKey::MovingObject, true)),
        offset: 0,
        limit: None,
    })?;
    println!("{} visits dwelt ≥ 200s", long_stays.len());

    let stats = client.server_stats()?;
    println!(
        "stats: {} events, {} opened / {} closed, {} open now, \
         {} warehouse trajectories in {} segments, {} sessions served ({} active)",
        stats.events,
        stats.visits_opened,
        stats.visits_closed,
        stats.open_visits,
        stats.warehouse_trajectories,
        stats.warehouse_segments,
        stats.sessions_accepted,
        stats.sessions_active
    );
    assert_eq!(stats.open_visits, 3);
    assert_eq!(stats.warehouse_trajectories, 12);

    // The observability plane: one snapshot carries every tier's
    // instruments — ingest counts from the engine, flush/segment counts
    // from the warehouse, pruning counts from the query layer, and the
    // serve tier's per-op latency histograms.
    let metrics = client.metrics()?;
    let ingested = metrics.counter("engine.events_ingested").unwrap_or(0);
    let ingest_requests = metrics.counter("serve.requests.ingest").unwrap_or(0);
    let federated = metrics
        .histogram("serve.handle_ns.query_federated")
        .map(|h| h.count)
        .unwrap_or(0);
    println!(
        "metrics: {ingested} events ingested over {ingest_requests} ingest requests, \
         {federated} federated queries (p95 {}ns), {} spills, {} segments built, \
         {} slow-log entries",
        metrics
            .histogram("serve.handle_ns.query_federated")
            .map(|h| h.quantile(0.95))
            .unwrap_or(0),
        metrics.counter("flush.spills").unwrap_or(0),
        metrics.counter("store.segments_built").unwrap_or(0),
        metrics.slow_queries.len(),
    );
    assert!(ingested > 0, "ingest counters must be live");
    assert_eq!(ingest_requests, 2, "two ingest batches");
    assert_eq!(federated, 2, "two federated queries");
    assert!(
        metrics.counter("store.segments_built").unwrap_or(0) > 0,
        "checkpoints must have built segments"
    );
    assert!(
        metrics
            .histogram("serve.snapshot_build_ns")
            .map(|h| h.count)
            .unwrap_or(0)
            > 0,
        "federated queries must record the snapshot-build/evaluate split"
    );
    assert!(
        !metrics.slow_queries.is_empty(),
        "a zero threshold must populate the slow-query log"
    );
    assert!(
        metrics.counter("serve.notifications_pushed").unwrap_or(0) >= 1,
        "the subscription must have been pushed to"
    );
    assert!(
        metrics.counter("serve.snapshot_cache_hits").unwrap_or(0) > 0,
        "read-only requests between barriers must reuse the cached snapshot"
    );

    // The liveness surface: one cheap report a monitor polls every
    // second, rendered as the one-glance `sitm-top` screen.
    let health = client.health()?;
    println!("--- sitm-top ---\n{}", health.render());
    assert!(health.epoch > 0, "ingest advanced the epoch");
    assert_eq!(health.warehouse_trajectories, 12);
    assert_eq!(
        health.flush_backlog_trajectories, 0,
        "checkpoints drained the spill tier"
    );
    assert!(
        health.last_checkpoint_age_ms.is_some(),
        "two checkpoints completed"
    );
    assert!(health.traces_recorded > 0, "requests record trace trees");

    // And the trace surface: every request above left a span tree in
    // the bounded ring. Render the newest federated query's timeline —
    // the request's latency attributed tier by tier.
    let traces = client.traces(64)?;
    let federated_trace = traces
        .iter()
        .rev()
        .find(|t| t.root.name == "query_federated")
        .expect("a federated query was traced");
    println!("--- trace {:#x} ---", federated_trace.trace_id);
    print!("{}", federated_trace.render_timeline());
    let handle = federated_trace
        .root
        .find("handle")
        .expect("the handle span");
    assert!(
        handle.find("evaluate").is_some(),
        "the trace attributes evaluation"
    );

    // Graceful shutdown: flushes the warehouse, drains sessions.
    client.shutdown()?;
    server.join()?;
    println!("server drained and stopped");

    let _ = std::fs::remove_dir_all(&warehouse_dir);
    Ok(())
}
