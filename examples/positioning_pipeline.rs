//! The BLE positioning substrate end-to-end: beacons → RSSI → trilateration
//! → EKF → zone detections → symbolic SITM trace (the §4.1 data path).
//!
//! Run with: `cargo run --release --example positioning_pipeline`

use sitm::core::Timestamp;
use sitm::geometry::{BBox, Point, Polygon};
use sitm::positioning::{BeaconDeployment, GroundTruthFix, Pipeline, RssiModel, ZoneMap};
use sitm::sim::SimRng;
use sitm::space::{Cell, CellClass, IndoorSpace, LayerKind};

fn main() {
    // ---- Three exhibition zones in a row, 25 m each. ----------------------
    let mut space = IndoorSpace::new();
    let zones = space.add_layer("zones", LayerKind::Thematic);
    for (i, name) in ["Antiquities", "Paintings", "Sculptures"]
        .iter()
        .enumerate()
    {
        let x0 = i as f64 * 25.0;
        space
            .add_cell(
                zones,
                Cell::new(format!("zone-{i}"), *name, CellClass::Zone)
                    .on_floor(0)
                    .with_geometry(
                        Polygon::rectangle(Point::new(x0, 0.0), Point::new(x0 + 25.0, 15.0))
                            .expect("rect"),
                    ),
            )
            .expect("unique");
    }
    let zone_map = ZoneMap::build(&space, zones, 10.0);

    // ---- Beacon grid at 8 m pitch (the Louvre used ~1800 for 5 floors). ---
    let mut deployment = BeaconDeployment::new();
    let n = deployment.grid(
        BBox::from_corners(Point::new(0.0, 0.0), Point::new(75.0, 15.0)),
        0,
        8.0,
        -59.0,
    );
    println!("deployed {n} beacons");

    // ---- A visitor strolls through all three zones. ------------------------
    let path: Vec<GroundTruthFix> = (0..150)
        .map(|i| GroundTruthFix {
            at: Timestamp(i as i64),
            position: Point::new(2.0 + i as f64 * 0.48, 7.5),
            floor: 0,
        })
        .collect();

    let pipeline = Pipeline::new(deployment, RssiModel::indoor_default());
    let mut rng = SimRng::seeded(2026);
    let report = pipeline.run(&space, &zone_map, &path, &mut rng);

    println!(
        "fixes: {} | solved: {} | raw error {:.2} m | EKF error {:.2} m",
        report.fixes, report.solved_fixes, report.raw_error_mean, report.filtered_error_mean
    );
    println!("zone detections:");
    for d in &report.detections {
        let cell = space.cell(d.cell).expect("cell");
        println!("  {:<12} {} .. {}", cell.name, d.start, d.end);
    }

    let trace = report.to_trace();
    println!(
        "\nsymbolic trace: {} tuples, {} zone transitions, span {}",
        trace.len(),
        trace.transition_count(),
        trace.span().expect("non-empty").duration()
    );
    println!(
        "cell sequence: {:?}",
        trace
            .cell_sequence()
            .iter()
            .map(|&c| space.cell(c).expect("cell").name.as_str())
            .collect::<Vec<_>>()
    );
}
