//! Semantic enrichment from a CIDOC-CRM-flavoured knowledge base.
//!
//! The paper's §5 future work made runnable: build the Louvre exhibit KB,
//! saturate it with the reasoner, enrich a visitor's trace with
//! exhibit/theme/artist annotations, compare two visitors' theme dwell
//! profiles, and derive the conceptual (focus-of-attention) trajectory.
//!
//! Run with: `cargo run --example semantic_enrichment`

use sitm::core::{PresenceInterval, Timestamp, Trace, TransitionTaken};
use sitm::louvre::{build_louvre, zone_key, AttentionConfig, AttentionModel, LouvreModel};
use sitm::ontology::{
    build_louvre_kb, enrich_trace, exhibits_in_zone, profile_similarity, saturate,
    theme_dwell_profile, zone_semantics,
};
use sitm::space::CellRef;

/// Maps a model cell back to its thematic zone id (cells carry their key
/// `zone<id>`).
fn zone_of(model: &LouvreModel) -> impl Fn(CellRef) -> Option<u32> + '_ {
    move |cell| {
        let key = &model.space.cell(cell)?.key;
        key.strip_prefix("zone")?.parse().ok()
    }
}

fn zone_trace(model: &LouvreModel, stops: &[(u32, i64, i64)]) -> Trace {
    Trace::new(
        stops
            .iter()
            .map(|&(zone, start, end)| {
                PresenceInterval::new(
                    TransitionTaken::Unknown,
                    model.space.resolve(&zone_key(zone)).expect("zone modelled"),
                    Timestamp(start),
                    Timestamp(end),
                )
            })
            .collect(),
    )
    .expect("ordered stays")
}

fn main() {
    // ---- 1. Build and saturate the knowledge base. ------------------------
    let mut kb = build_louvre_kb();
    let base_facts = kb.len();
    let inferred = saturate(&mut kb);
    println!("knowledge base: {base_facts} asserted triples, {inferred} inferred");

    // What does the KB know about the Salle des États zone?
    let salle = zone_semantics(&kb, 60862);
    println!(
        "zone 60862 hosts {:?} by {:?} (themes: {})",
        salle.exhibits,
        salle.artists,
        salle.themes.join(", ")
    );
    println!(
        "exhibits located in zone 60852 (after location lifting): {:?}",
        exhibits_in_zone(&kb, 60852)
    );

    // ---- 2. Enrich two visitors' traces. ----------------------------------
    let model = build_louvre();
    // A paintings-focused visitor: Salle des États, French large formats.
    let painter_fan = zone_trace(&model, &[(60862, 0, 1800), (60863, 1900, 3600)]);
    // An antiquities-focused visitor: Egyptian, Near Eastern, Greek rooms.
    let antiquarian = zone_trace(
        &model,
        &[(60853, 0, 1500), (60854, 1600, 2800), (60852, 2900, 3600)],
    );

    let (enriched, touched) = enrich_trace(&kb, painter_fan.clone(), zone_of(&model));
    println!("\npainting-fan trace: {touched} stays enriched; first stay annotations:");
    println!("  {}", enriched.get(0).expect("non-empty").annotations);

    // ---- 3. Theme dwell profiles and visitor similarity. ------------------
    let profile_a = theme_dwell_profile(&kb, &painter_fan, zone_of(&model));
    let profile_b = theme_dwell_profile(&kb, &antiquarian, zone_of(&model));
    println!("\npainting fan profile:");
    for (theme, dwell) in &profile_a {
        println!("  {theme:<42} {dwell}");
    }
    println!("antiquarian profile:");
    for (theme, dwell) in &profile_b {
        println!("  {theme:<42} {dwell}");
    }
    println!(
        "cosine similarity(painting fan, antiquarian) = {:.3}",
        profile_similarity(&profile_a, &profile_b)
    );
    println!(
        "cosine similarity(painting fan, itself)      = {:.3}",
        profile_similarity(&profile_a, &profile_a)
    );

    // ---- 4. Conceptual trajectory: what was the visit *about*? ------------
    let attention = AttentionModel::new(&model, AttentionConfig::default());
    let roi_visit = Trace::new(vec![
        PresenceInterval::new(
            TransitionTaken::Unknown,
            model.space.resolve("roi-mona-lisa").expect("flagship RoI"),
            Timestamp(0),
            Timestamp(540),
        ),
        PresenceInterval::new(
            TransitionTaken::Unknown,
            model
                .space
                .resolve("roi-winged-victory")
                .expect("flagship RoI"),
            Timestamp(700),
            Timestamp(760),
        ),
    ])
    .expect("ordered stays");
    let conceptual = attention.conceptual_trace(&roi_visit);
    println!("\nconceptual trajectory (focus of attention):");
    print!("{conceptual}");
    println!(
        "\ndominant concept: {}",
        conceptual.dominant_concept().unwrap_or_default()
    );
}
