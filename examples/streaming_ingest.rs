//! Streaming ingestion walkthrough: replay a calibrated Louvre day as a
//! live event feed, push it through the sharded online engine, and watch
//! per-wing occupancy plus batch-identical episodes fall out the other
//! side — with a crash and checkpoint-recovery in the middle.
//!
//! Run with: `cargo run --example streaming_ingest`

use std::collections::BTreeMap;

use sitm::analytics::bar_chart;
use sitm::core::{Annotation, AnnotationSet, Duration, IntervalPredicate};
use sitm::louvre::{
    build_louvre, generate_dataset, zone_catalog, zone_key, GeneratorConfig, LouvreModel,
    PaperCalibration, Wing,
};
use sitm::space::CellRef;
use sitm::store::{CheckpointFrame, LogStore};
use sitm::stream::{
    dataset_events, resume_from_log, EngineConfig, OccupancyTracker, ShardedEngine,
};

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

/// The episode detectors a museum operator might deploy.
fn predicates(model: &LouvreModel) -> Vec<(IntervalPredicate, AnnotationSet)> {
    let exit_chain = [60887u32, 60888, 60890]
        .map(|id| model.space.resolve(&zone_key(id)).expect("zone resolves"));
    vec![
        (
            IntervalPredicate::in_cells(exit_chain),
            label("exit museum"),
        ),
        (
            IntervalPredicate::min_duration(Duration::minutes(10)),
            label("lingering"),
        ),
    ]
}

fn main() {
    // ---- 1. A scaled Louvre day, replayed as one time-ordered feed. ------
    let model = build_louvre();
    let defaults = PaperCalibration::default();
    let calibration = PaperCalibration {
        visits: 300,
        visitors: 240,
        returning_visitors: 60,
        revisits: 60,
        detections: 1_500,
        transitions: 1_200,
        // One single museum day, so hundreds of visits genuinely overlap
        // and the live occupancy dashboard has something to show.
        collection_end: defaults.collection_start,
        ..defaults
    };
    let dataset = generate_dataset(&GeneratorConfig {
        seed: 20_170_119,
        calibration,
        ..GeneratorConfig::default()
    });
    let events = dataset_events(&model, &dataset);
    println!(
        "replaying {} events across {} visits\n",
        events.len(),
        dataset.visits.len()
    );

    // ---- 2. Sharded online engine + live occupancy. ----------------------
    let config = || EngineConfig::new(predicates(&model)).with_shards(8);
    let mut engine = ShardedEngine::new(config()).expect("engine");
    let mut occupancy = OccupancyTracker::new();

    // Map each zone cell to its wing for the live dashboard.
    let wing_of: BTreeMap<CellRef, Wing> = zone_catalog()
        .iter()
        .filter_map(|z| Some((model.space.resolve(&zone_key(z.id))?, z.wing)))
        .collect();

    // Ingest the first half of the day, checkpoint, then "crash".
    let ckpt_path =
        std::env::temp_dir().join(format!("sitm-streaming-ingest-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&ckpt_path);
    let half = events.len() / 2;
    for event in &events[..half] {
        occupancy.observe(event);
        engine.ingest(event.clone());
    }
    let mut delivered = engine.drain();
    let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&ckpt_path).expect("open log");
    engine.checkpoint(&mut log).expect("checkpoint");
    drop(log);
    drop(engine); // the crash: everything after the checkpoint is lost

    println!(
        "midday snapshot ({} events in, {} episodes already delivered):",
        half,
        delivered.len()
    );
    let mut per_wing: BTreeMap<&'static str, f64> = BTreeMap::new();
    for (cell, count) in occupancy.current() {
        if let Some(wing) = wing_of.get(cell) {
            *per_wing.entry(wing.name()).or_insert(0.0) += *count as f64;
        }
    }
    let entries: Vec<(String, f64)> = per_wing
        .into_iter()
        .map(|(w, n)| (w.to_string(), n))
        .collect();
    println!("{}", bar_chart(&entries, 40));

    // ---- 3. Recover from the checkpoint and finish the day. --------------
    let (mut engine, _log, report) = resume_from_log(config(), &ckpt_path).expect("recover engine");
    println!(
        "recovered from checkpoint (clean: {}, open visits: {})\n",
        report.is_clean(),
        engine.stats().open_visits
    );
    for event in &events[half..] {
        occupancy.observe(event);
        engine.ingest(event.clone());
    }
    delivered.extend(engine.finish());

    // ---- 4. The streamed episodes ARE the batch episodes. ----------------
    let stats = engine.stats();
    println!(
        "day complete: {} visits closed, {} episodes emitted, {} anomalies",
        stats.visits_closed,
        delivered.len(),
        stats.anomalies.total()
    );
    let exits = delivered
        .iter()
        .filter(|e| {
            e.episode
                .annotations
                .has(&sitm::core::AnnotationKind::Goal, "exit museum")
        })
        .count();
    let lingering = delivered.len() - exits;
    println!("  'exit museum' episodes: {exits}");
    println!("  'lingering' episodes:   {lingering}");
    println!(
        "  peak single-cell occupancy: {} visitors",
        occupancy.peak().values().max().copied().unwrap_or(0)
    );
    let _ = std::fs::remove_file(&ckpt_path);
}
