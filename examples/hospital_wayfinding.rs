//! A non-museum instantiation: a two-building hospital campus, showing the
//! model supports "all types of indoor settings" (§3) — building complex
//! root layer, restricted wards, one-way sterile corridors, and inference
//! of an unobserved passage from the ward topology.
//!
//! Run with: `cargo run --example hospital_wayfinding`

use sitm::core::{
    infer_missing_cells, AnnotationSet, PresenceInterval, Timestamp, Trace, TransitionTaken,
};
use sitm::space::{
    core_hierarchy, validate_hierarchy, Cell, CellClass, CellRef, IndoorSpace, IssueSeverity,
    JointRelation, LayerKind, SpaceQuery, Transition, TransitionKind,
};

struct Hospital {
    space: IndoorSpace,
    reception: CellRef,
    triage: CellRef,
    sterile_corridor: CellRef,
    operating_room: CellRef,
    recovery: CellRef,
    ward: CellRef,
}

fn build_hospital() -> Hospital {
    let mut space = IndoorSpace::new();
    let complex = space.add_layer("campus", LayerKind::BuildingComplex);
    let buildings = space.add_layer("buildings", LayerKind::Building);
    let floors = space.add_layer("floors", LayerKind::Floor);
    let rooms = space.add_layer("rooms", LayerKind::Room);

    let campus = space
        .add_cell(
            complex,
            Cell::new("campus", "County Hospital", CellClass::BuildingComplex),
        )
        .expect("unique");
    let main = space
        .add_cell(
            buildings,
            Cell::new("main", "Main building", CellClass::Building),
        )
        .expect("unique");
    let surgery = space
        .add_cell(
            buildings,
            Cell::new("surgery", "Surgery wing", CellClass::Building),
        )
        .expect("unique");
    space
        .add_joint(campus, main, JointRelation::Covers)
        .expect("layers");
    space
        .add_joint(campus, surgery, JointRelation::Covers)
        .expect("layers");

    let main_f0 = space
        .add_cell(
            floors,
            Cell::new("main-f0", "Main ground", CellClass::Floor).on_floor(0),
        )
        .expect("unique");
    let surgery_f0 = space
        .add_cell(
            floors,
            Cell::new("surgery-f0", "Surgery ground", CellClass::Floor).on_floor(0),
        )
        .expect("unique");
    space
        .add_joint(main, main_f0, JointRelation::Covers)
        .expect("layers");
    space
        .add_joint(surgery, surgery_f0, JointRelation::Covers)
        .expect("layers");

    let mut room = |key: &str, name: &str, class: CellClass, floor: CellRef| {
        let r = space
            .add_cell(rooms, Cell::new(key, name, class).on_floor(0))
            .expect("unique");
        space
            .add_joint(floor, r, JointRelation::Contains)
            .expect("layers");
        r
    };
    let reception = room("reception", "Reception", CellClass::Lobby, main_f0);
    let triage = room("triage", "Triage", CellClass::Room, main_f0);
    let sterile_corridor = room(
        "sterile",
        "Sterile corridor",
        CellClass::Corridor,
        surgery_f0,
    );
    let operating_room = room("or-1", "Operating room 1", CellClass::Room, surgery_f0);
    let recovery = room("recovery", "Recovery", CellClass::Room, surgery_f0);
    let ward = room("ward", "Ward A", CellClass::Room, main_f0);

    // Patient flow is one-way through surgery: triage -> sterile corridor ->
    // OR -> recovery -> ward. Reception <-> triage and ward -> reception.
    space
        .add_transition_pair(reception, triage, Transition::new(TransitionKind::Door))
        .expect("layer");
    space
        .add_transition(
            triage,
            sterile_corridor,
            Transition::named(TransitionKind::Checkpoint, "airlock-in"),
        )
        .expect("layer");
    space
        .add_transition(
            sterile_corridor,
            operating_room,
            Transition::new(TransitionKind::Door),
        )
        .expect("layer");
    space
        .add_transition(
            operating_room,
            recovery,
            Transition::new(TransitionKind::Door),
        )
        .expect("layer");
    space
        .add_transition(
            recovery,
            ward,
            Transition::named(TransitionKind::Checkpoint, "airlock-out"),
        )
        .expect("layer");
    space
        .add_transition(ward, reception, Transition::new(TransitionKind::Door))
        .expect("layer");

    Hospital {
        space,
        reception,
        triage,
        sterile_corridor,
        operating_room,
        recovery,
        ward,
    }
}

fn main() {
    let h = build_hospital();
    let hierarchy = core_hierarchy(&h.space).expect("core layers present");
    let errors = validate_hierarchy(&h.space, &hierarchy)
        .into_iter()
        .filter(|i| i.severity() == IssueSeverity::Error)
        .count();
    println!(
        "hospital model: {} cells, {} transitions, hierarchy errors: {errors}",
        h.space.stats().cells,
        h.space.stats().transitions
    );

    // Wayfinding: patient route from reception to the ward goes through the
    // whole surgical chain — and cannot go backwards.
    let route = h.space.route(h.reception, h.ward).expect("reachable");
    let names: Vec<&str> = route
        .iter()
        .map(|&r| h.space.cell(r).expect("cell").name.as_str())
        .collect();
    println!("patient route: {}", names.join(" -> "));
    let or_nrg = h.space.nrg(h.operating_room.layer).expect("layer");
    println!(
        "direct re-entry recovery -> OR possible: {} (only via the full loop: {} doors)",
        or_nrg.has_edge(h.recovery.node, h.operating_room.node),
        h.space
            .route(h.recovery, h.operating_room)
            .map(|r| r.len() - 1)
            .unwrap_or(0)
    );

    // The sterile corridor is unavoidable between triage and the OR — so a
    // patient tag detected in triage and then in recovery *must* have passed
    // through it (and the OR).
    let unavoidable = h
        .space
        .unavoidable_between(h.triage, h.recovery)
        .expect("reachable");
    println!(
        "unavoidable between triage and recovery: {:?}",
        unavoidable
            .iter()
            .map(|&r| h.space.cell(r).expect("cell").key.as_str())
            .collect::<Vec<_>>()
    );

    // Sparse RTLS trace: the tag slept between triage and recovery.
    let t = |m: u32| Timestamp::from_ymd_hms(2026, 6, 11, 8 + m / 60, m % 60, 0);
    let sparse = Trace::new(vec![
        PresenceInterval::new(TransitionTaken::Unknown, h.triage, t(0), t(20)),
        PresenceInterval::new(TransitionTaken::Unknown, h.recovery, t(55), t(90)),
    ])
    .expect("chronological");
    let outcome = infer_missing_cells(&h.space, &sparse, |_| AnnotationSet::new());
    println!(
        "\nsparse tag trace densified: {} inferred stay(s):",
        outcome.inferred.len()
    );
    for p in outcome.trace.intervals() {
        println!("  {} [{}]", p, h.space.cell(p.cell).expect("cell").key);
    }
    let _ = h.sterile_corridor;
}
