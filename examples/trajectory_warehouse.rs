//! Trajectory warehouse: persist a season of museum visits to the
//! append-only log, survive a simulated crash, and run indexed queries
//! over the recovered collection.
//!
//! Pipeline: synthetic Louvre dataset → SITM trajectories → `sitm-store`
//! log (with a torn-write crash in the middle) → recovery →
//! `sitm-query` indexed retrieval and aggregation.
//!
//! Run with: `cargo run --example trajectory_warehouse`

use sitm::core::{Duration, SemanticTrajectory, TimeInterval, Timestamp};
use sitm::louvre::{build_louvre, generate_dataset, zone_key, GeneratorConfig};
use sitm::query::{dwell_by_cell, flow_matrix, top_k, Query, SortKey, TrajectoryDb};
use sitm::store::{LogStore, RecoveryReport, StoreError};

fn main() -> Result<(), StoreError> {
    // ---- 1. Generate the calibrated dataset and lift it into the model. --
    let model = build_louvre();
    let dataset = generate_dataset(&GeneratorConfig::default());
    let trajectories: Vec<SemanticTrajectory> = dataset
        .visits
        .iter()
        .filter(|v| v.detections.len() >= 2)
        .filter_map(|v| dataset.to_trajectory(&model, v))
        .collect();
    println!(
        "dataset: {} visits → {} multi-zone semantic trajectories",
        dataset.visits.len(),
        trajectories.len()
    );

    // ---- 2. Persist to the append-only log, fsyncing as we go. -----------
    let path = std::env::temp_dir().join(format!("sitm-warehouse-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let (mut log, _, _) = LogStore::<SemanticTrajectory>::open(&path)?;
        log.append_batch(trajectories.iter())?;
        log.sync()?;
        println!(
            "persisted {} records, {:.1} KiB ({:.1} bytes/record)",
            log.len(),
            log.size_bytes() as f64 / 1024.0,
            log.size_bytes() as f64 / log.len().max(1) as f64
        );
    }

    // ---- 3. Simulate a crash mid-append: tear the last frame. ------------
    let bytes = std::fs::read(&path)?;
    std::fs::write(&path, &bytes[..bytes.len() - 7])?;
    let (mut log, recovered, report): (_, Vec<SemanticTrajectory>, RecoveryReport) =
        LogStore::open(&path)?;
    println!(
        "crash recovery: {} records intact, {} bytes truncated ({})",
        report.recovered,
        report.truncated_bytes,
        report
            .corruption
            .map(|c| c.to_string())
            .unwrap_or_else(|| "clean".to_string()),
    );
    assert_eq!(
        recovered.len(),
        trajectories.len() - 1,
        "lost exactly the torn record"
    );
    // The repaired log accepts the lost record again.
    log.append(trajectories.last().expect("non-empty"))?;
    log.sync()?;
    drop(log);

    // ---- 4. Index the recovered collection and query it. -----------------
    let (_, records, _) = LogStore::<SemanticTrajectory>::open(&path)?;
    let db = TrajectoryDb::build(records);
    println!(
        "\nindexed {} trajectories over {} cells",
        db.len(),
        db.cells().count()
    );

    // Who passed through the Fig. 6 corridor zone P (60888)?
    let p_zone = model.zone(60888).expect("zone 60888 modelled");
    let through_p = Query::new().visited(p_zone);
    println!(
        "query visited(P=60888): plan = {} → {} trajectories",
        through_p.explain(&db),
        through_p.count(&db)
    );

    // Long visits in the first collection week, most-dwelling first.
    let week1 = TimeInterval::new(
        Timestamp::from_ymd_hms(2017, 1, 19, 0, 0, 0),
        Timestamp::from_ymd_hms(2017, 1, 26, 0, 0, 0),
    );
    let long_week1 = Query::new()
        .during(week1)
        .order_by(SortKey::TotalDwell, false)
        .limit(5);
    println!("\ntop-5 longest-dwelling visits of week 1:");
    for hit in long_week1.execute(&db) {
        println!(
            "  {}  span {}  dwell {}",
            hit.trajectory.moving_object,
            hit.trajectory.span().duration(),
            hit.trajectory.trace().dwell_total()
        );
    }

    // ---- 5. Aggregations: per-zone dwell and the dominant flows. ---------
    let dwell = dwell_by_cell(db.iter());
    println!("\ntop-5 zones by total dwell:");
    for (cell, total) in top_k(&dwell, 5) {
        let key = model
            .space
            .cell(cell)
            .map(|c| c.key.as_str())
            .unwrap_or("?");
        println!("  {key:<12} {total}");
    }
    let flows = flow_matrix(db.iter());
    let mut flow_rows: Vec<_> = flows.iter().collect();
    flow_rows.sort_by(|a, b| b.1.cmp(a.1));
    println!("\ntop-5 zone-to-zone flows:");
    for (&(from, to), &count) in flow_rows.into_iter().take(5) {
        let name = |c| {
            model
                .space
                .cell(c)
                .map(|x| x.key.clone())
                .unwrap_or_default()
        };
        println!("  {:<12} → {:<12} ×{count}", name(from), name(to));
    }

    // Sanity: the E→P chain inference zones exist in the flows.
    let e = model.space.resolve(&zone_key(60887)).expect("zone E");
    println!(
        "\nE(60887)→P(60888) flow: {} transitions",
        flows.get(&(e, p_zone)).copied().unwrap_or(0)
    );

    // Keep visits at least 30 minutes long, compact the log to them.
    let (mut log, records, _): (_, Vec<SemanticTrajectory>, _) = LogStore::open(&path)?;
    let keep: Vec<SemanticTrajectory> = records
        .into_iter()
        .filter(|t| t.span().duration() >= Duration::minutes(30))
        .collect();
    let before = log.size_bytes();
    log.compact(&keep)?;
    println!(
        "\ncompaction: kept {} visits ≥ 30 min, {} → {} bytes",
        keep.len(),
        before,
        log.size_bytes()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
