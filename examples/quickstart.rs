//! Quickstart: build an indoor space, record a semantic trajectory, segment
//! it into episodes, and lift it through the layer hierarchy.
//!
//! Run with: `cargo run --example quickstart`

use sitm::core::{
    lift_trace, Annotation, AnnotationSet, EpisodicSegmentation, IntervalPredicate,
    PresenceInterval, SemanticTrajectory, Timestamp, Trace, TransitionTaken,
};
use sitm::space::{
    core_hierarchy, validate_hierarchy, Cell, CellClass, IndoorSpace, JointRelation, LayerKind,
    SpaceQuery, Transition, TransitionKind,
};

fn main() {
    // ---- 1. Model a small gallery: one building, one floor, three rooms. --
    let mut space = IndoorSpace::new();
    let buildings = space.add_layer("buildings", LayerKind::Building);
    let floors = space.add_layer("floors", LayerKind::Floor);
    let rooms = space.add_layer("rooms", LayerKind::Room);

    let gallery = space
        .add_cell(
            buildings,
            Cell::new("gallery", "City Gallery", CellClass::Building),
        )
        .expect("unique key");
    let ground = space
        .add_cell(
            floors,
            Cell::new("ground", "Ground floor", CellClass::Floor).on_floor(0),
        )
        .expect("unique key");
    let lobby = space
        .add_cell(
            rooms,
            Cell::new("lobby", "Lobby", CellClass::Lobby).on_floor(0),
        )
        .expect("unique key");
    let hall = space
        .add_cell(
            rooms,
            Cell::new("hall", "Main hall", CellClass::Hall).on_floor(0),
        )
        .expect("unique key");
    let shop = space
        .add_cell(
            rooms,
            Cell::new("shop", "Museum shop", CellClass::Shop).on_floor(0),
        )
        .expect("unique key");

    // Accessibility: lobby <-> hall <-> shop, shop -> lobby one-way exit.
    space
        .add_transition_pair(
            lobby,
            hall,
            Transition::named(TransitionKind::Door, "main-door"),
        )
        .expect("same layer");
    space
        .add_transition_pair(hall, shop, Transition::new(TransitionKind::Opening))
        .expect("same layer");
    space
        .add_transition(
            shop,
            lobby,
            Transition::named(TransitionKind::Checkpoint, "exit-gate"),
        )
        .expect("same layer");

    // Hierarchy joints: building covers floor; floor contains the rooms.
    space
        .add_joint(gallery, ground, JointRelation::Covers)
        .expect("layers differ");
    for room in [lobby, hall, shop] {
        space
            .add_joint(ground, room, JointRelation::Contains)
            .expect("layers differ");
    }

    let hierarchy = core_hierarchy(&space).expect("building/floor/room present");
    let issues = validate_hierarchy(&space, &hierarchy);
    println!(
        "hierarchy layers: {}, validation issues: {}",
        hierarchy.len(),
        issues.len()
    );

    // ---- 2. Navigation queries over the accessibility NRG. ---------------
    println!(
        "lobby -> shop route: {:?}",
        space
            .route(lobby, shop)
            .map(|cells| cells.len())
            .expect("reachable")
    );
    println!("shop -> hall accessible: {}", space.accessible(shop, hall));

    // ---- 3. Record a semantic trajectory (Def. 3.1/3.2). -----------------
    let t = |m: u32| Timestamp::from_ymd_hms(2026, 6, 11, 10, m, 0);
    let trace = Trace::new(vec![
        PresenceInterval::new(TransitionTaken::Unknown, lobby, t(0), t(5)),
        PresenceInterval::new(
            TransitionTaken::Named("main-door".into()),
            hall,
            t(5),
            t(40),
        ),
        PresenceInterval::new(TransitionTaken::Unknown, shop, t(40), t(50)),
        PresenceInterval::new(
            TransitionTaken::Named("exit-gate".into()),
            lobby,
            t(50),
            t(52),
        ),
    ])
    .expect("chronological");
    let trajectory = SemanticTrajectory::new(
        "visitor-42",
        trace,
        AnnotationSet::from_iter([Annotation::goal("visit")]),
    )
    .expect("annotated");
    println!("\ntrajectory:\n{trajectory}");

    // ---- 4. Episodes: overlapping segmentation (§3.3). -------------------
    let seg = EpisodicSegmentation::from_predicates(
        &trajectory,
        &[
            (
                IntervalPredicate::in_cells([hall, shop, lobby]),
                AnnotationSet::from_iter([Annotation::goal("exit museum")]),
            ),
            (
                IntervalPredicate::in_cells([shop]),
                AnnotationSet::from_iter([Annotation::goal("buy souvenir")]),
            ),
        ],
    )
    .expect("annotations differ from the trajectory's");
    println!(
        "episodes: {} (overlapping pairs: {:?})",
        seg.len(),
        seg.overlapping_pairs()
    );

    // ---- 5. Granularity lifting (§3.2). -----------------------------------
    let lifted = lift_trace(&space, &hierarchy, trajectory.trace(), floors).expect("lifts");
    println!(
        "lifted to the floor layer: {} tuple(s) spanning {}",
        lifted.len(),
        lifted.span().expect("non-empty").duration()
    );
    let building_level =
        lift_trace(&space, &hierarchy, trajectory.trace(), buildings).expect("lifts");
    println!(
        "lifted to the building layer: {} tuple(s) in cell '{}'",
        building_level.len(),
        space
            .cell(building_level.get(0).expect("one tuple").cell)
            .expect("cell exists")
            .name
    );
}
