//! The Louvre case study end-to-end: generate the calibrated synthetic
//! dataset, compute the paper's statistics, and run the mining stack on it
//! (sequential patterns, next-zone prediction, visitor profiling).
//!
//! Run with: `cargo run --release --example louvre_visitor_analysis`
//! (add `-- --full` for the full 4,945-visit calibration).

use sitm::analytics::{bar_chart, quality_of_trace};
use sitm::core::Duration;
use sitm::louvre::{
    build_louvre, generate_dataset, zone_catalog, GeneratorConfig, PaperCalibration,
};
use sitm::mining::{
    edit_distance, k_medoids, mine_rules, mine_sequential_patterns, DistanceMatrix, MarkovModel,
};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        GeneratorConfig::default()
    } else {
        GeneratorConfig {
            seed: 7,
            calibration: PaperCalibration {
                visits: 620,
                visitors: 400,
                returning_visitors: 160,
                revisits: 220,
                detections: 2_600,
                transitions: 2_600 - 620,
                ..PaperCalibration::default()
            },
            ..GeneratorConfig::default()
        }
    };

    // ---- Generate and summarize. ------------------------------------------
    let dataset = generate_dataset(&config);
    let stats = dataset.stats();
    println!(
        "generated {} visits by {} visitors",
        stats.visits, stats.visitors
    );
    println!(
        "  detections {} | transitions {} | zero-duration {:.1}% | zones {}",
        stats.detections,
        stats.transitions,
        stats.zero_duration_rate * 100.0,
        stats.distinct_zones
    );
    println!(
        "  visit durations: {} .. {}",
        stats.min_visit_duration, stats.max_visit_duration
    );

    // ---- Busiest zones (the Fig. 3 idea, all floors). ---------------------
    let catalog = zone_catalog();
    let counts = dataset.detections_per_zone();
    let mut series: Vec<(String, f64)> = counts
        .iter()
        .map(|(&id, &c)| {
            let theme = catalog
                .iter()
                .find(|z| z.id == id)
                .map(|z| z.theme)
                .unwrap_or("?");
            (format!("{id} {theme}"), c as f64)
        })
        .collect();
    series.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    series.truncate(8);
    println!("\nbusiest zones:\n{}", bar_chart(&series, 36));

    // ---- SITM conversion + data quality. -----------------------------------
    let model = build_louvre();
    let trajectories: Vec<_> = dataset
        .visits
        .iter()
        .filter_map(|v| dataset.to_trajectory(&model, v))
        .collect();
    println!(
        "converted {} visits into semantic trajectories",
        trajectories.len()
    );
    let sample = &trajectories[trajectories.len() / 2];
    let quality = quality_of_trace(sample.trace(), Duration::seconds(30));
    println!(
        "sample visit quality: {} detections, {} gap(s), continuity {:.0}%",
        quality.detections,
        quality.gaps,
        quality.continuity * 100.0
    );

    // ---- Sequential patterns and rules. ------------------------------------
    let sequences: Vec<Vec<u32>> = dataset
        .visits
        .iter()
        .map(|v| v.detections.iter().map(|d| d.zone_id).collect())
        .collect();
    let min_support = (sequences.len() / 20).max(2);
    let patterns = mine_sequential_patterns(&sequences, min_support, 3);
    println!("\nfrequent zone patterns (min support {min_support}):");
    for p in patterns.iter().filter(|p| p.items.len() >= 2).take(5) {
        println!("  {:?}  support {}", p.items, p.support);
    }
    let rules = mine_rules(&patterns, sequences.len(), 0.3);
    println!("association rules (confidence >= 0.3):");
    for r in rules.iter().take(5) {
        println!(
            "  {:?} => {}  conf {:.2} lift {:.2}",
            r.antecedent, r.consequent, r.confidence, r.lift
        );
    }

    // ---- Next-zone prediction. ---------------------------------------------
    let split = sequences.len() * 4 / 5;
    let model_markov = MarkovModel::fit(&sequences[..split]);
    let accuracy = model_markov.accuracy(&sequences[split..]);
    println!(
        "\nnext-zone Markov model: {:.1}% held-out accuracy ({} transitions trained)",
        accuracy * 100.0,
        model_markov.transition_count()
    );

    // ---- Visitor profiling by trajectory similarity. ------------------------
    let sample_size = sequences.len().min(80);
    let matrix = DistanceMatrix::build(sample_size, |i, j| {
        edit_distance(&sequences[i], &sequences[j]) as f64
    });
    let clusters = k_medoids(&matrix, 4, 40);
    let mut sizes = vec![0usize; 4];
    for &c in &clusters.assignment {
        sizes[c] += 1;
    }
    println!(
        "visitor profiling: k-medoids over {sample_size} visits -> cluster sizes {sizes:?} (cost {:.0})",
        clusters.cost
    );
}
