//! Parallel ingestion walkthrough: the thread-per-shard runtime serving
//! a Louvre day, with live queries answered *while* the stream is in
//! flight, a crash recovered through a compacting checkpoint log, and a
//! final proof that the parallel episodes equal the sequential ones.
//!
//! Run with: `cargo run --example parallel_ingest`

use sitm::core::{Annotation, AnnotationSet, Duration, IntervalPredicate};
use sitm::louvre::{
    build_louvre, generate_dataset, zone_key, GeneratorConfig, LouvreModel, PaperCalibration,
};
use sitm::query::{federated_count, Predicate, TrajectorySource};
use sitm::store::CompactionPolicy;
use sitm::stream::{dataset_events, resume_parallel_compacting, EngineConfig, ShardedEngine};

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

fn predicates(model: &LouvreModel) -> Vec<(IntervalPredicate, AnnotationSet)> {
    let exit_chain = [60887u32, 60888, 60890]
        .map(|id| model.space.resolve(&zone_key(id)).expect("zone resolves"));
    vec![
        (
            IntervalPredicate::in_cells(exit_chain),
            label("exit museum"),
        ),
        (
            IntervalPredicate::min_duration(Duration::minutes(10)),
            label("lingering"),
        ),
    ]
}

fn main() {
    // ---- 1. One dense museum day. ----------------------------------------
    let model = build_louvre();
    let defaults = PaperCalibration::default();
    let calibration = PaperCalibration {
        visits: 300,
        visitors: 240,
        returning_visitors: 60,
        revisits: 60,
        detections: 1_500,
        transitions: 1_200,
        collection_end: defaults.collection_start,
        ..defaults
    };
    let dataset = generate_dataset(&GeneratorConfig {
        seed: 20_170_119,
        calibration,
        ..GeneratorConfig::default()
    });
    let events = dataset_events(&model, &dataset);
    println!(
        "replaying {} events across {} visits on 4 worker threads\n",
        events.len(),
        dataset.visits.len()
    );

    // ---- 2. Thread-per-shard engine with live queries + bounded log. -----
    let config = || {
        EngineConfig::new(predicates(&model))
            .with_shards(4)
            .with_live_queries()
    };
    let ckpt_path =
        std::env::temp_dir().join(format!("sitm-parallel-ingest-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&ckpt_path);
    // keep: 2, every: 1 — the log never exceeds two snapshots.
    let policy = CompactionPolicy::default();
    let (mut engine, mut checkpointer, _) =
        resume_parallel_compacting(config(), &ckpt_path, policy).expect("fresh engine");

    // Ingest in quarters; after each, answer live questions mid-stream
    // and commit a compacting checkpoint.
    let hall = model.space.resolve(&zone_key(60886)).expect("hall");
    let in_hall = Predicate::VisitedCell(hall);
    let long_dwell = Predicate::MinTotalDwell(Duration::minutes(30));
    let mut delivered = Vec::new();
    let quarter = events.len() / 4;
    for q in 0..3 {
        engine.ingest_all(events[q * quarter..(q + 1) * quarter].iter().cloned());
        let snapshot = engine.live_snapshot();
        println!(
            "after {:>4} events: {:>3} visits live | {:>3} touched the hall | {:>2} dwelling 30m+ | log {:>5}B",
            (q + 1) * quarter,
            snapshot.visits.len(),
            snapshot.count_matching(&in_hall),
            federated_count(&long_dwell, &[&*snapshot as &dyn TrajectorySource]),
            checkpointer.log().size_bytes(),
        );
        delivered.extend(engine.drain());
        engine.checkpoint_into(&mut checkpointer).expect("commit");
    }

    // ---- 3. Crash after the third quarter; recover; finish the day. ------
    drop(engine);
    drop(checkpointer);
    let (mut engine, mut checkpointer, report) =
        resume_parallel_compacting(config(), &ckpt_path, policy).expect("recover");
    println!(
        "\ncrash + recovery: clean={}, {} visits back in flight, log bounded at {}B",
        report.is_clean(),
        engine.stats().open_visits,
        checkpointer.log().size_bytes(),
    );
    engine.ingest_all(events[3 * quarter..].iter().cloned());
    delivered.extend(engine.finish());
    delivered.sort_by_key(|e| e.sort_key());
    engine
        .checkpoint_into(&mut checkpointer)
        .expect("final commit");

    // ---- 4. Differential proof: parallel == sequential. ------------------
    let mut reference = ShardedEngine::new(config()).expect("sequential engine");
    reference.ingest_all(events.iter().cloned());
    let expected = reference.finish();
    assert_eq!(delivered, expected, "parallel output must equal sequential");
    println!(
        "\nday complete: {} episodes, byte-identical to the sequential engine",
        delivered.len()
    );
    let _ = std::fs::remove_file(&ckpt_path);
    let _ = std::fs::remove_file(ckpt_path.with_extension("tmp"));
}
