//! Retail-store analytics: the SITM outside the museum.
//!
//! §1 motivates the model for "retail stores, arenas, hospitals,
//! airports, universities". This example builds a two-floor department
//! store, simulates shopper journeys over its accessibility NRG, and runs
//! the mining stack: frequent paths at department vs floor granularity,
//! an order-2 next-department model vs the order-1 baseline, and the
//! origin–destination matrix that exposes the checkout funnel.
//!
//! Run with: `cargo run --example retail_store`

use sitm::core::{lift_trace, PresenceInterval, Timestamp, Trace, TransitionTaken};
use sitm::mining::{mine_at_layers, MarkovModel, NGramModel, OdMatrix};
use sitm::sim::SimRng;
use sitm::space::{
    Cell, CellClass, CellRef, IndoorSpace, JointRelation, LayerHierarchy, LayerKind, Transition,
    TransitionKind,
};

struct Store {
    space: IndoorSpace,
    hierarchy: LayerHierarchy,
    dept_layer: sitm::graph::LayerIdx,
    floor_layer: sitm::graph::LayerIdx,
    depts: Vec<(&'static str, CellRef)>,
}

/// Two floors, eight departments; escalator links the atria, checkout has
/// a one-way exit gate (the same asymmetric-accessibility modelling as
/// the Salle des États rule).
fn build_store() -> Store {
    let mut space = IndoorSpace::new();
    let buildings = space.add_layer("building", LayerKind::Building);
    let floors = space.add_layer("floors", LayerKind::Floor);
    let depts = space.add_layer("departments", LayerKind::Room);

    let store = space
        .add_cell(
            buildings,
            Cell::new("store", "Departments & Co", CellClass::Building),
        )
        .expect("unique");
    let ground = space
        .add_cell(
            floors,
            Cell::new("floor-0", "Ground floor", CellClass::Floor).on_floor(0),
        )
        .expect("unique");
    let upper = space
        .add_cell(
            floors,
            Cell::new("floor-1", "First floor", CellClass::Floor).on_floor(1),
        )
        .expect("unique");
    space
        .add_joint(store, ground, JointRelation::Covers)
        .expect("cross-layer");
    space
        .add_joint(store, upper, JointRelation::Covers)
        .expect("cross-layer");

    let plan: &[(&str, &str, i8, CellClass)] = &[
        ("entrance", "Entrance atrium", 0, CellClass::Lobby),
        ("grocery", "Grocery", 0, CellClass::Room),
        ("electronics", "Electronics", 0, CellClass::Room),
        ("checkout", "Checkout lanes", 0, CellClass::Shop),
        ("atrium-1", "Upper atrium", 1, CellClass::Lobby),
        ("fashion", "Fashion", 1, CellClass::Room),
        ("home", "Home & Garden", 1, CellClass::Room),
        ("toys", "Toys", 1, CellClass::Room),
    ];
    let mut cells = Vec::new();
    for (key, name, floor, class) in plan {
        let r = space
            .add_cell(
                depts,
                Cell::new(*key, *name, class.clone()).on_floor(*floor),
            )
            .expect("unique");
        let parent = if *floor == 0 { ground } else { upper };
        space
            .add_joint(parent, r, JointRelation::Contains)
            .expect("cross-layer");
        cells.push((*key, r));
    }
    let at = |key: &str| cells.iter().find(|(k, _)| *k == key).expect("present").1;

    // Ground-floor openings.
    for (a, b) in [
        ("entrance", "grocery"),
        ("entrance", "electronics"),
        ("grocery", "electronics"),
        ("grocery", "checkout"),
        ("electronics", "checkout"),
    ] {
        space
            .add_transition_pair(at(a), at(b), Transition::new(TransitionKind::Opening))
            .expect("same layer");
    }
    // Upper-floor openings.
    for (a, b) in [
        ("atrium-1", "fashion"),
        ("atrium-1", "home"),
        ("atrium-1", "toys"),
        ("fashion", "home"),
    ] {
        space
            .add_transition_pair(at(a), at(b), Transition::new(TransitionKind::Opening))
            .expect("same layer");
    }
    // Escalators between atria.
    space
        .add_transition_pair(
            at("entrance"),
            at("atrium-1"),
            Transition::named(TransitionKind::Stair, "escalator"),
        )
        .expect("same layer");
    // One-way exit: checkout → entrance only.
    space
        .add_transition(
            at("checkout"),
            at("entrance"),
            Transition::named(TransitionKind::Checkpoint, "exit-gate"),
        )
        .expect("same layer");

    let hierarchy = LayerHierarchy::new(vec![buildings, floors, depts]);
    Store {
        space,
        hierarchy,
        dept_layer: depts,
        floor_layer: floors,
        depts: cells,
    }
}

/// Simulates one shopper: enter, browse a few departments along the
/// accessibility NRG, pay, leave. Grocery shoppers mostly stay downstairs;
/// fashion shoppers head upstairs first.
fn shopper_trace(store: &Store, rng: &mut SimRng, start: i64) -> Trace {
    let at = |key: &str| {
        store
            .depts
            .iter()
            .find(|(k, _)| *k == key)
            .expect("present")
            .1
    };
    let mut path: Vec<&str> = vec!["entrance"];
    if rng.unit() < 0.45 {
        // Upstairs mission first.
        path.push("atrium-1");
        path.push(if rng.unit() < 0.5 { "fashion" } else { "toys" });
        if rng.unit() < 0.5 {
            path.push("home");
        }
        path.push("atrium-1");
        path.push("entrance");
    }
    path.push("grocery");
    if rng.unit() < 0.55 {
        path.push("electronics");
    }
    path.push("checkout");
    path.push("entrance");

    let mut t = start;
    let stays = path
        .iter()
        .map(|key| {
            let dwell = 60 + (rng.unit() * 540.0) as i64;
            let stay = PresenceInterval::new(
                TransitionTaken::Unknown,
                at(key),
                Timestamp(t),
                Timestamp(t + dwell),
            );
            t += dwell;
            stay
        })
        .collect();
    Trace::new(stays).expect("ordered stays")
}

fn main() {
    let store = build_store();
    println!(
        "store model: {} departments on 2 floors; checkout exit is one-way: {}",
        store.depts.len(),
        store
            .space
            .nrg(store.dept_layer)
            .expect("layer exists")
            .edges_between(
                store
                    .depts
                    .iter()
                    .find(|(k, _)| *k == "entrance")
                    .expect("present")
                    .1
                    .node,
                store
                    .depts
                    .iter()
                    .find(|(k, _)| *k == "checkout")
                    .expect("present")
                    .1
                    .node,
            )
            .next()
            .is_none()
    );

    // ---- 1. Simulate a day of shoppers. -----------------------------------
    let mut rng = SimRng::seeded(42);
    let traces: Vec<Trace> = (0..400)
        .map(|i| shopper_trace(&store, &mut rng, i * 120))
        .collect();
    println!("simulated {} shopper journeys", traces.len());

    // ---- 2. Multi-granularity patterns: departments vs floors. -----------
    let mined = mine_at_layers(
        &store.space,
        &store.hierarchy,
        &traces,
        &[store.dept_layer, store.floor_layer],
        0.30,
        4,
    )
    .expect("store hierarchy lifts");
    for level in &mined {
        let name = if level.layer == store.dept_layer {
            "department"
        } else {
            "floor"
        };
        println!(
            "\ntop {name}-level patterns ({} sequences):",
            level.sequences
        );
        for p in level.patterns.iter().filter(|p| p.items.len() >= 2).take(5) {
            let labels: Vec<&str> = p
                .items
                .iter()
                .map(|&c| store.space.cell(c).map(|x| x.key.as_str()).unwrap_or("?"))
                .collect();
            println!("  {:<44} support {}", labels.join(" → "), p.support);
        }
    }

    // ---- 3. Next-department prediction: order 1 vs order 2. --------------
    let sequences: Vec<Vec<CellRef>> = traces.iter().map(|t| t.cell_sequence()).collect();
    let (train, test) = sequences.split_at(sequences.len() * 4 / 5);
    let markov = MarkovModel::fit(train);
    let bigram = NGramModel::fit(train, 2);
    println!(
        "\nnext-department accuracy: order-1 {:.3}, order-2 {:.3} (perplexity {:.2})",
        markov.accuracy(test),
        bigram.accuracy(test),
        bigram.perplexity(test),
    );

    // ---- 4. Origin–destination: everyone funnels through checkout. -------
    let od = OdMatrix::from_sequences(&sequences);
    println!("\norigin–destination rows:");
    for (o, d, count) in od.rows().into_iter().take(3) {
        let name = |c: &CellRef| {
            store
                .space
                .cell(*c)
                .map(|x| x.key.clone())
                .unwrap_or_default()
        };
        println!("  {:<10} → {:<10} ×{count}", name(o), name(d));
    }
    println!(
        "round-trip rate (exit where you entered): {:.2}",
        od.round_trip_rate()
    );

    // ---- 5. Floor lifting of one journey (the §3.2 inference). -----------
    let lifted = lift_trace(
        &store.space,
        &store.hierarchy,
        &traces[0],
        store.floor_layer,
    )
    .expect("lifts to floors");
    println!(
        "\nfirst journey: {} department stays → {} floor stays after lifting",
        traces[0].len(),
        lifted.len()
    );
}
