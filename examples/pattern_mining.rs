//! Mining walk-through on the Fig. 6 floor −2 micro-world: sequential
//! patterns, rules, a Markov predictor, floor-switch n-grams, and
//! hierarchy-aware semantic similarity.
//!
//! Run with: `cargo run --example pattern_mining`

use sitm::louvre::{
    build_louvre, generate_dataset, zone_catalog, GeneratorConfig, PaperCalibration,
};
use sitm::mining::{
    floor_switch_ngrams, mine_rules, mine_sequential_patterns, normalized_edit_similarity,
    HierarchyDistance, MarkovModel,
};

fn main() {
    // A modest synthetic dataset (identities preserved).
    let config = GeneratorConfig {
        seed: 13,
        calibration: PaperCalibration {
            visits: 310,
            visitors: 200,
            returning_visitors: 80,
            revisits: 110,
            detections: 1_300,
            transitions: 1_300 - 310,
            ..PaperCalibration::default()
        },
        ..GeneratorConfig::default()
    };
    let dataset = generate_dataset(&config);
    let sequences: Vec<Vec<u32>> = dataset
        .visits
        .iter()
        .map(|v| v.detections.iter().map(|d| d.zone_id).collect())
        .collect();
    println!("mining {} visit sequences", sequences.len());

    // ---- Sequential patterns. ----------------------------------------------
    let patterns = mine_sequential_patterns(&sequences, 20, 3);
    println!("\ntop patterns (support >= 20):");
    for p in patterns.iter().filter(|p| p.items.len() >= 2).take(6) {
        println!("  {:?}  support {}", p.items, p.support);
    }

    // ---- Rules: where do visitors go next? ---------------------------------
    let rules = mine_rules(&patterns, sequences.len(), 0.4);
    println!("\nrules (confidence >= 0.4):");
    for r in rules.iter().take(6) {
        println!(
            "  {:?} => {}  conf {:.2}  lift {:.2}",
            r.antecedent, r.consequent, r.confidence, r.lift
        );
    }

    // ---- Markov next-zone prediction. --------------------------------------
    let markov = MarkovModel::fit(&sequences);
    let entrance = 60886u32;
    println!("\nfrom the Napoleon Hall ({entrance}), visitors go to:");
    for (zone, p) in markov.top_k(&entrance, 3) {
        let theme = zone_catalog()
            .iter()
            .find(|z| z.id == *zone)
            .map(|z| z.theme)
            .unwrap_or("?");
        println!("  {zone} {theme}: {:.0}%", p * 100.0);
    }

    // ---- Floor switching (§5). ---------------------------------------------
    let floor_of: std::collections::BTreeMap<u32, i8> =
        zone_catalog().iter().map(|z| (z.id, z.floor)).collect();
    let floor_visits: Vec<Vec<i8>> = dataset
        .visits
        .iter()
        .map(|v| v.detections.iter().map(|d| floor_of[&d.zone_id]).collect())
        .collect();
    println!("\nfloor-switch bigrams:");
    for (gram, count) in floor_switch_ngrams(&floor_visits, 2).iter().take(5) {
        println!("  {gram:?}: {count}");
    }

    // ---- Semantic similarity over the room hierarchy. -----------------------
    let model = build_louvre();
    let dist = HierarchyDistance::new(&model.space, &model.hierarchy);
    let room = |zone: u32, idx: usize| {
        model
            .space
            .resolve(&sitm::louvre::building::room_key(zone, idx))
            .expect("room")
    };
    let a = room(60861, 0); // Grande Galerie, room 1 (floor +1, Denon)
    let b = room(60861, 1); // same zone, next room
    let c = room(60840, 0); // Medieval Louvre (floor -1, Sully)
    println!("\nWu-Palmer similarity over the layer hierarchy:");
    println!("  same-zone rooms:        {:.2}", dist.wu_palmer(a, b));
    println!("  cross-wing rooms:       {:.2}", dist.wu_palmer(a, c));

    // Plain symbolic similarity between the two most active visits.
    let mut by_len: Vec<&Vec<u32>> = sequences.iter().collect();
    by_len.sort_by_key(|s| std::cmp::Reverse(s.len()));
    println!(
        "  two longest visits (edit similarity): {:.2}",
        normalized_edit_similarity(by_len[0], by_len[1])
    );
}
