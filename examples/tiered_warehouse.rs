//! Tiered warehouse: stream a Louvre day through the live engine,
//! spill finished visits into immutable on-disk segments, and query
//! the live + warehouse union through one federated surface.
//!
//! Data path demonstrated: ingest → live state (queryable snapshots) →
//! close fence → `take_finished` → `Flusher` → segment tier (zone maps,
//! manifest commits, size-tiered compaction) → federated queries →
//! process "restart" → recovery from the manifest.
//!
//! Run with: `cargo run --example tiered_warehouse`

use sitm::core::{Duration, IntervalPredicate, SemanticTrajectory};
use sitm::louvre::{build_louvre, generate_dataset, zone_key, GeneratorConfig};
use sitm::query::{Predicate, Query, SegmentedDb, SortKey};
use sitm::store::warehouse::WarehouseConfig;
use sitm::stream::{dataset_events, EngineConfig, Flusher, ParallelEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. A calibrated Louvre day as one event stream. -----------------
    let model = build_louvre();
    let dataset = generate_dataset(&GeneratorConfig::default());
    let events = dataset_events(&model, &dataset);
    println!(
        "feed: {} events across {} visits",
        events.len(),
        dataset.visits.len()
    );

    // ---- 2. Live engine with the warehouse drain enabled. ----------------
    let exit_chain = [60887u32, 60888, 60890]
        .map(|id| model.space.resolve(&zone_key(id)).expect("zone resolves"));
    let config = EngineConfig::new(vec![
        (
            IntervalPredicate::in_cells(exit_chain),
            sitm::core::AnnotationSet::from_iter([sitm::core::Annotation::goal("exit museum")]),
        ),
        (
            IntervalPredicate::min_duration(Duration::minutes(5)),
            sitm::core::AnnotationSet::from_iter([sitm::core::Annotation::goal("long stay")]),
        ),
    ])
    .with_shards(4)
    .with_warehouse();
    let mut engine = ParallelEngine::new(config)?;

    // ---- 3. Stream in chunks, spilling finished visits as we go. ---------
    let dir = std::env::temp_dir().join(format!("sitm-tiered-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (db, _) = SegmentedDb::open(&dir, WarehouseConfig::default())?;
    let mut flusher = Flusher::new(db).with_min_batch(64);
    let mut episodes = 0usize;
    for chunk in events.chunks(events.len() / 10) {
        engine.ingest_all(chunk.iter().cloned());
        episodes += engine.drain().len();
        let spilled = flusher.poll(&mut engine)?;
        if spilled > 0 {
            let snapshot = engine.live_snapshot();
            println!(
                "spilled {spilled:4} visits → warehouse now {} trajectories in {} segments; {} visits still live",
                flusher.db().len(),
                flusher.db().segments().len(),
                snapshot.visits.len(),
            );
        }
    }
    episodes += engine.finish().len();
    flusher.force(&mut engine)?;
    println!(
        "stream done: {episodes} episodes emitted, {} trajectories durable",
        flusher.db().len()
    );

    // ---- 4. Query the warehouse: zone-map pruning in action. -------------
    let db = flusher.into_db()?;
    let some_visitor = db
        .iter()
        .nth(db.len() / 2)
        .expect("non-empty")
        .moving_object
        .clone();
    let point = Predicate::MovingObject(some_visitor.clone());
    let plan = db.explain(&point);
    println!(
        "\npoint query mo={some_visitor}: {} of {} segments pruned by zone maps, {} candidates of {} rows → {} matches",
        plan.pruned,
        plan.segments,
        plan.candidates.unwrap_or(plan.total),
        plan.total,
        db.count_matching(&point),
    );

    // ---- 5. Federated: live + warehouse behind one query. ----------------
    let e_zone = model.zone(60887).expect("zone E modelled");
    let q = Query::new()
        .visited(e_zone)
        .order_by(SortKey::TotalDwell, false)
        .limit(3);
    let snapshot = engine.live_snapshot(); // empty now — everything closed
    let hits: Vec<SemanticTrajectory> = q.execute_federated(&[&*snapshot, &db]);
    println!("\ntop-3 dwellers through zone E (live ∪ warehouse):");
    for t in &hits {
        println!("  {}  dwell {}", t.moving_object, t.trace().dwell_total());
    }

    // ---- 6. "Restart": recover the warehouse from its manifest. ----------
    drop(db);
    let (recovered, report) = SegmentedDb::open(&dir, WarehouseConfig::default())?;
    println!(
        "\nafter restart: {} trajectories in {} segments recovered ({})",
        recovered.len(),
        recovered.segments().len(),
        if report.is_clean() {
            "clean"
        } else {
            "repaired"
        },
    );
    assert_eq!(
        recovered.count_matching(&point),
        recovered.count_matching_scan(&point),
        "recovered index path equals the scan"
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
