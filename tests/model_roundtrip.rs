//! Serialization round-trips of the full Louvre model and hierarchy checks
//! after decoding.

use sitm::louvre::build_louvre;
use sitm::space::io::{from_json_str, to_json_string};
use sitm::space::{core_hierarchy, validate_hierarchy, IssueSeverity, SpaceQuery};

#[test]
fn louvre_model_survives_json_round_trip() {
    let model = build_louvre();
    let text = to_json_string(&model.space);
    assert!(text.len() > 10_000, "a real document");
    let decoded = from_json_str(&text).expect("valid document");
    assert_eq!(decoded.stats(), model.space.stats());

    // Semantic spot checks after decoding.
    let e = decoded.resolve("zone60887").expect("E survives");
    let s = decoded.resolve("zone60890").expect("S survives");
    let p = decoded.resolve("zone60888").expect("P survives");
    assert_eq!(decoded.unavoidable_between(e, s), Some(vec![p]));
    let cell = decoded.cell(e).unwrap();
    assert_eq!(cell.attribute("theme"), Some("Temporary Exhibition (E)"));
    assert!(cell.geometry.is_some(), "zone geometry survives");
}

#[test]
fn decoded_hierarchy_still_validates() {
    let model = build_louvre();
    let text = to_json_string(&model.space);
    let decoded = from_json_str(&text).expect("valid document");
    let hierarchy = core_hierarchy(&decoded).expect("layers survive");
    assert_eq!(hierarchy.len(), 5);
    let errors = validate_hierarchy(&decoded, &hierarchy)
        .into_iter()
        .filter(|i| i.severity() == IssueSeverity::Error)
        .count();
    assert_eq!(errors, 0);
}

#[test]
fn serialization_is_deterministic() {
    let a = to_json_string(&build_louvre().space);
    let b = to_json_string(&build_louvre().space);
    assert_eq!(a, b);
}
