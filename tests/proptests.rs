//! Workspace-level property-based tests on core invariants, spanning the
//! geometry, QSR, graph and trajectory crates.

use proptest::prelude::*;

use sitm::core::{
    apply_annotation_events, lift_trace, Annotation, AnnotationEvent, AnnotationSet,
    PresenceInterval, Timestamp, Trace, TransitionTaken,
};
use sitm::geometry::{relate_polygons, Point, Polygon, SpatialRelation};
use sitm::graph::{unavoidable_nodes, DiMultigraph};
use sitm::qsr::{compose, ConstraintNetwork, NetworkStatus, Rcc8};
use sitm::space::{core_hierarchy, Cell, CellClass, IndoorSpace, JointRelation, LayerKind};

// ---------------------------------------------------------------- geometry

fn arb_rect() -> impl Strategy<Value = Polygon> {
    (-50.0f64..50.0, -50.0f64..50.0, 0.5f64..40.0, 0.5f64..40.0).prop_map(|(x, y, w, h)| {
        Polygon::rectangle(Point::new(x, y), Point::new(x + w, y + h)).expect("positive area")
    })
}

proptest! {
    #[test]
    fn relate_is_converse_symmetric(a in arb_rect(), b in arb_rect()) {
        let ab = relate_polygons(&a, &b);
        let ba = relate_polygons(&b, &a);
        prop_assert_eq!(ab.converse(), ba);
    }

    #[test]
    fn every_rect_equals_itself(a in arb_rect()) {
        prop_assert_eq!(relate_polygons(&a, &a), SpatialRelation::Equal);
    }

    #[test]
    fn centroid_inside_convex_polygon(a in arb_rect()) {
        prop_assert!(a.contains_point(a.centroid()));
        prop_assert!(a.is_convex());
    }

    #[test]
    fn rect_area_is_width_times_height(
        x in -10.0f64..10.0, y in -10.0f64..10.0,
        w in 0.5f64..20.0, h in 0.5f64..20.0,
    ) {
        let poly = Polygon::rectangle(Point::new(x, y), Point::new(x + w, y + h)).unwrap();
        prop_assert!((poly.area() - w * h).abs() < 1e-6);
        prop_assert!((poly.perimeter() - 2.0 * (w + h)).abs() < 1e-6);
    }
}

// --------------------------------------------------------------------- QSR

fn arb_rcc8() -> impl Strategy<Value = Rcc8> {
    (0usize..8).prop_map(|i| Rcc8::from_index(i).expect("in range"))
}

proptest! {
    #[test]
    fn composition_converse_law(r1 in arb_rcc8(), r2 in arb_rcc8()) {
        prop_assert_eq!(
            compose(r1, r2).converse(),
            compose(r2.converse(), r1.converse())
        );
    }

    #[test]
    fn geometric_triples_are_network_consistent(
        a in arb_rect(), b in arb_rect(), c in arb_rect(),
    ) {
        // Relations derived from actual geometry always form a consistent
        // RCC8 network: the composition table can never contradict reality.
        let mut net = ConstraintNetwork::new(3);
        net.constrain_single(0, 1, Rcc8::from_spatial(relate_polygons(&a, &b)));
        net.constrain_single(1, 2, Rcc8::from_spatial(relate_polygons(&b, &c)));
        net.constrain_single(0, 2, Rcc8::from_spatial(relate_polygons(&a, &c)));
        prop_assert_eq!(net.propagate(), NetworkStatus::PathConsistent);
    }
}

// ------------------------------------------------------------------- graph

proptest! {
    #[test]
    fn unavoidable_nodes_lie_on_every_chain(chain_len in 3usize..30) {
        // In a pure chain, every interior node is unavoidable.
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let nodes: Vec<_> = (0..chain_len).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        let unavoidable = unavoidable_nodes(&g, nodes[0], nodes[chain_len - 1]).unwrap();
        prop_assert_eq!(unavoidable, nodes[1..chain_len - 1].to_vec());
    }

    #[test]
    fn adding_a_bypass_removes_unavoidability(
        chain_len in 4usize..20, bypass_from in 0usize..10,
    ) {
        let mut g: DiMultigraph<(), ()> = DiMultigraph::new();
        let nodes: Vec<_> = (0..chain_len).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        let from = bypass_from % (chain_len - 2);
        // Bypass skips node from+1.
        g.add_edge(nodes[from], nodes[from + 2], ());
        let unavoidable = unavoidable_nodes(&g, nodes[0], nodes[chain_len - 1]).unwrap();
        prop_assert!(!unavoidable.contains(&nodes[from + 1]));
        // All other interior nodes stay unavoidable.
        for (i, n) in nodes.iter().enumerate().take(chain_len - 1).skip(1) {
            if i != from + 1 {
                prop_assert!(unavoidable.contains(n), "node {i} should stay unavoidable");
            }
        }
    }
}

// -------------------------------------------------------------- trajectory

/// A three-floor test space with `rooms_per_floor` rooms on each floor.
fn lift_fixture(rooms_per_floor: usize) -> (IndoorSpace, Vec<sitm::space::CellRef>) {
    let mut s = IndoorSpace::new();
    let lb = s.add_layer("b", LayerKind::Building);
    let lf = s.add_layer("f", LayerKind::Floor);
    let lr = s.add_layer("r", LayerKind::Room);
    let b = s
        .add_cell(lb, Cell::new("b", "B", CellClass::Building))
        .unwrap();
    let mut rooms = Vec::new();
    for floor in 0..3i8 {
        let f = s
            .add_cell(
                lf,
                Cell::new(format!("f{floor}"), format!("F{floor}"), CellClass::Floor),
            )
            .unwrap();
        s.add_joint(b, f, JointRelation::Covers).unwrap();
        for i in 0..rooms_per_floor {
            let r = s
                .add_cell(
                    lr,
                    Cell::new(
                        format!("r{floor}-{i}"),
                        format!("R{floor}-{i}"),
                        CellClass::Room,
                    ),
                )
                .unwrap();
            s.add_joint(f, r, JointRelation::Contains).unwrap();
            rooms.push(r);
        }
    }
    (s, rooms)
}

proptest! {
    #[test]
    fn lifting_preserves_span_and_shrinks_length(
        visits in proptest::collection::vec(0usize..9, 1..40),
    ) {
        let (space, rooms) = lift_fixture(3);
        let hierarchy = core_hierarchy(&space).unwrap();
        let intervals: Vec<PresenceInterval> = visits
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                PresenceInterval::new(
                    TransitionTaken::Unknown,
                    rooms[r],
                    Timestamp(i as i64 * 10),
                    Timestamp(i as i64 * 10 + 10),
                )
            })
            .collect();
        let trace = Trace::new(intervals).unwrap();
        let floors = space.find_layer(&LayerKind::Floor).unwrap();
        let lifted = lift_trace(&space, &hierarchy, &trace, floors).unwrap();
        prop_assert!(lifted.len() <= trace.len(), "merging never grows traces");
        prop_assert_eq!(lifted.span(), trace.span(), "span preserved");
        // Lifting to the building always collapses to one tuple.
        let buildings = space.find_layer(&LayerKind::Building).unwrap();
        let top = lift_trace(&space, &hierarchy, &trace, buildings).unwrap();
        prop_assert_eq!(top.len(), 1);
    }

    #[test]
    fn annotation_events_preserve_total_time_and_cells(
        split_offsets in proptest::collection::vec(1i64..99, 0..6),
    ) {
        let (space, rooms) = lift_fixture(1);
        let _ = space;
        let trace = Trace::new(vec![PresenceInterval::new(
            TransitionTaken::Unknown,
            rooms[0],
            Timestamp(0),
            Timestamp(100),
        )])
        .unwrap();
        let events: Vec<AnnotationEvent> = split_offsets
            .iter()
            .map(|&at| {
                AnnotationEvent::new(
                    Timestamp(at),
                    AnnotationSet::from_iter([Annotation::goal(format!("g{at}"))]),
                )
            })
            .collect();
        let enriched = apply_annotation_events(&trace, &events);
        // The span never changes; every tuple stays in the same cell; the
        // tuples remain chronologically ordered and non-overlapping.
        prop_assert_eq!(enriched.span(), trace.span());
        for p in enriched.intervals() {
            prop_assert_eq!(p.cell, rooms[0]);
        }
        for w in enriched.intervals().windows(2) {
            prop_assert!(w[0].end() < w[1].start());
        }
    }
}
