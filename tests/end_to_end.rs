//! Cross-crate integration: the full chain from synthetic dataset through
//! the SITM to mining, mirroring how a downstream user composes the crates.

use sitm::analytics::{quality_of_trace, TransitionMatrix};
use sitm::core::{infer_missing_cells, AnnotationSet, Duration};
use sitm::louvre::{
    build_louvre, generate_dataset, zone_catalog, GeneratorConfig, PaperCalibration,
};
use sitm::mining::{cell_sequences, mine_sequential_patterns, to_alphabet, MarkovModel};
use sitm::space::SpaceQuery;

fn scaled_config() -> GeneratorConfig {
    GeneratorConfig {
        seed: 41,
        calibration: PaperCalibration {
            visits: 310,
            visitors: 200,
            returning_visitors: 80,
            revisits: 110,
            detections: 1_300,
            transitions: 1_300 - 310,
            ..PaperCalibration::default()
        },
        ..GeneratorConfig::default()
    }
}

#[test]
fn dataset_to_trajectories_to_mining() {
    let model = build_louvre();
    let dataset = generate_dataset(&scaled_config());

    // Every generated visit converts into a valid semantic trajectory.
    let trajectories: Vec<_> = dataset
        .visits
        .iter()
        .map(|v| {
            dataset
                .to_trajectory(&model, v)
                .expect("active zones resolve")
        })
        .collect();
    assert_eq!(trajectories.len(), 310);

    // Traces feed the mining stack.
    let traces: Vec<_> = trajectories.iter().map(|t| t.trace().clone()).collect();
    let sequences = cell_sequences(&traces);
    let (db, alphabet) = to_alphabet(&sequences);
    assert!(alphabet.len() <= 30, "only active zones appear");
    let patterns = mine_sequential_patterns(&db, 15, 3);
    assert!(!patterns.is_empty(), "frequent patterns exist");

    // The entrance zone is the universal first element.
    let entrance = model.zone(60886).unwrap();
    for seq in &sequences {
        assert_eq!(seq[0], entrance, "visits start at the Napoleon Hall");
    }

    // A Markov model fitted on the symbolic sequences predicts something.
    let markov = MarkovModel::fit(&db);
    assert!(markov.transition_count() > 500);
    assert!(
        markov.accuracy(&db) > 0.2,
        "in-sample accuracy is non-trivial"
    );
}

#[test]
fn generated_traces_are_inference_clean() {
    // Generated visits follow real accessibility edges, so missing-cell
    // inference finds nothing to insert (no false positives).
    let model = build_louvre();
    let dataset = generate_dataset(&scaled_config());
    let mut inserted = 0usize;
    for v in dataset.visits.iter().take(50) {
        let traj = dataset.to_trajectory(&model, v).expect("resolves");
        let outcome = infer_missing_cells(&model.space, traj.trace(), |_| AnnotationSet::new());
        inserted += outcome.inferred.len();
        assert!(outcome.ambiguous.is_empty(), "no impossible transitions");
    }
    assert_eq!(inserted, 0, "contiguous walks need no inference");
}

#[test]
fn sparsified_traces_recover_unavoidable_zones() {
    // Drop middle detections from generated visits; inference must re-insert
    // a zone whenever the remaining endpoints have a unique connecting cell.
    let model = build_louvre();
    let dataset = generate_dataset(&scaled_config());
    let mut recovered = 0usize;
    let mut examined = 0usize;
    for v in dataset.visits.iter().filter(|v| v.detections.len() >= 3) {
        let traj = dataset.to_trajectory(&model, v).expect("resolves");
        let full = traj.trace();
        // Remove every second tuple.
        let sparse_intervals: Vec<_> = full
            .intervals()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, p)| p.clone())
            .collect();
        let sparse = sitm::core::Trace::new(sparse_intervals).expect("still ordered");
        let outcome = infer_missing_cells(&model.space, &sparse, |_| AnnotationSet::new());
        examined += 1;
        recovered += outcome.inferred.len();
        if examined >= 40 {
            break;
        }
    }
    assert!(examined > 10);
    assert!(
        recovered > 0,
        "some dropped zones are topologically unavoidable"
    );
}

#[test]
fn zone_transition_matrix_respects_topology() {
    let model = build_louvre();
    let dataset = generate_dataset(&scaled_config());
    let sequences: Vec<Vec<String>> = dataset
        .visits
        .iter()
        .map(|v| v.detections.iter().map(|d| d.zone_id.to_string()).collect())
        .collect();
    let matrix = TransitionMatrix::fit(&sequences);
    assert_eq!(
        matrix.total(),
        dataset.stats().transitions,
        "matrix covers every intra-visit transition"
    );
    // Every observed transition must be an accessibility edge.
    for (from, to, _) in matrix.top_transitions(usize::MAX) {
        let a = model.zone(from.parse().unwrap()).unwrap();
        let b = model.zone(to.parse().unwrap()).unwrap();
        let nrg = model.space.nrg(a.layer).unwrap();
        assert!(
            nrg.has_edge(a.node, b.node),
            "observed transition {from}->{to} has no edge"
        );
    }
}

#[test]
fn quality_reports_match_dataset_stats() {
    let model = build_louvre();
    let dataset = generate_dataset(&scaled_config());
    let stats = dataset.stats();
    let mut zero = 0usize;
    let mut detections = 0usize;
    for v in &dataset.visits {
        let traj = dataset.to_trajectory(&model, v).expect("resolves");
        let q = quality_of_trace(traj.trace(), Duration::seconds(30));
        zero += q.zero_duration;
        detections += q.detections;
    }
    assert_eq!(detections, stats.detections);
    assert_eq!(zero, stats.zero_duration_detections);
}

#[test]
fn fig6_zones_are_consistent_across_crates() {
    // The catalog, the topology, and the model agree about E/P/S/C.
    let model = build_louvre();
    let catalog = zone_catalog();
    let e = model.zone(60887).unwrap();
    let s = model.zone(60890).unwrap();
    let p = model.zone(60888).unwrap();
    assert_eq!(model.space.unavoidable_between(e, s), Some(vec![p]));
    let spec = catalog.iter().find(|z| z.id == 60887).unwrap();
    assert_eq!(spec.floor, -2);
    let cell = model.space.cell(e).unwrap();
    assert_eq!(cell.floor, Some(-2));
    assert_eq!(cell.attribute("wing"), Some("Napoleon"));
}
