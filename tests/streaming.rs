//! Facade-level streaming smoke test: the `sitm::stream` re-export wires
//! replay → sharded engine → batch-identical episodes end to end.

use sitm::core::{maximal_episodes, Annotation, AnnotationSet, IntervalPredicate};
use sitm::louvre::{build_louvre, generate_dataset, zone_key, GeneratorConfig, PaperCalibration};
use sitm::stream::{dataset_events, visit_trajectories, EngineConfig, ShardedEngine};

#[test]
fn facade_streaming_pipeline_matches_batch() {
    let model = build_louvre();
    let calibration = PaperCalibration {
        visits: 60,
        visitors: 50,
        returning_visitors: 10,
        revisits: 10,
        detections: 300,
        transitions: 240,
        ..PaperCalibration::default()
    };
    let dataset = generate_dataset(&GeneratorConfig {
        seed: 3,
        calibration,
        ..GeneratorConfig::default()
    });

    let exit_chain = [60887u32, 60888, 60890]
        .map(|id| model.space.resolve(&zone_key(id)).expect("zone resolves"));
    let label = AnnotationSet::from_iter([Annotation::goal("exit museum")]);
    let make_config = || {
        EngineConfig::new(vec![(
            IntervalPredicate::in_cells(exit_chain),
            label.clone(),
        )])
        .with_shards(4)
    };

    let mut engine = ShardedEngine::new(make_config()).expect("engine");
    engine.ingest_all(dataset_events(&model, &dataset));
    let emitted = engine.finish();
    assert!(!emitted.is_empty(), "the exit chain is well travelled");
    assert_eq!(engine.stats().anomalies.total(), 0);

    // Every streamed episode equals its batch twin.
    let trajectories = visit_trajectories(&model, &dataset);
    let mut streamed_total = 0;
    for (key, trajectory) in &trajectories {
        let batch = maximal_episodes(
            trajectory,
            &IntervalPredicate::in_cells(exit_chain),
            label.clone(),
        )
        .expect("label differs from A_traj");
        let mut streamed: Vec<_> = emitted
            .iter()
            .filter(|e| e.visit == *key)
            .map(|e| e.episode.clone())
            .collect();
        streamed.sort_by_key(|e| e.range.start);
        assert_eq!(streamed, batch, "visit {key}");
        streamed_total += streamed.len();
    }
    assert_eq!(streamed_total, emitted.len(), "no orphan emissions");
}
