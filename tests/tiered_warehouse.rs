//! The tiered-warehouse differential guarantee, end to end:
//!
//! live engine → close fence → `take_finished` → `Flusher` → immutable
//! segments (+ size-tiered compaction) must be **query-invisible**: at
//! every flush/compaction point, the on-disk [`SegmentedDb`] answers
//! every `Predicate` and every `Query` — including sorted/limited
//! `execute_federated` over the union of live state and warehouse —
//! identically to an in-memory [`TrajectoryDb`] holding the same
//! trajectories, and identically across both runtimes and a
//! crash/reopen.

use sitm::core::{
    Annotation, AnnotationSet, Duration, IntervalPredicate, PresenceInterval, SemanticTrajectory,
    TimeInterval, Timestamp, TransitionTaken,
};
use sitm::graph::{LayerIdx, NodeId};
use sitm::query::{
    federated_count, federated_matching, Predicate, Query, SegmentedDb, SortKey, TrajectoryDb,
    TrajectorySource,
};
use sitm::space::CellRef;
use sitm::store::warehouse::WarehouseConfig;
use sitm::store::CompactionPolicy;
use sitm::stream::{EngineConfig, Flusher, ParallelEngine, ShardedEngine, StreamEvent, VisitKey};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sitm-tiered-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

fn config() -> EngineConfig {
    EngineConfig::new(vec![
        (IntervalPredicate::in_cells([cell(1)]), label("one")),
        (IntervalPredicate::any(), label("whole")),
    ])
    .with_shards(4)
    .with_batch_capacity(4)
    .with_warehouse()
}

/// A feed of `visits` visits with varied traces; every third visit
/// stays open (no close event) so the live tier is always populated.
fn feed(visits: u64) -> Vec<StreamEvent> {
    let goals = ["visit", "buy", "exit"];
    let mut events = Vec::new();
    for v in 0..visits {
        let base = v as i64 * 20;
        events.push(StreamEvent::VisitOpened {
            visit: VisitKey(v),
            moving_object: format!("mo-{}", v % 7),
            annotations: label(goals[(v % 3) as usize]),
            at: Timestamp(base),
        });
        let stays = 1 + (v % 4) as usize;
        for i in 0..stays {
            let c = ((v as usize) + i) % 5;
            events.push(StreamEvent::Presence {
                visit: VisitKey(v),
                interval: PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(c),
                    Timestamp(base + i as i64 * 30),
                    Timestamp(base + i as i64 * 30 + 25),
                ),
            });
        }
        if v % 3 != 2 {
            events.push(StreamEvent::VisitClosed {
                visit: VisitKey(v),
                at: Timestamp(base + stays as i64 * 30 + 10),
            });
        }
    }
    sitm::stream::event::sort_feed(&mut events);
    events
}

/// The predicate suite every comparison runs over (all three axes plus
/// boolean structure).
fn predicates() -> Vec<Predicate> {
    vec![
        Predicate::True,
        Predicate::VisitedCell(cell(1)),
        Predicate::VisitedCell(cell(9)),
        Predicate::MovingObject("mo-3".into()),
        Predicate::SpanOverlaps(TimeInterval::new(Timestamp(0), Timestamp(100))),
        Predicate::StayOverlaps(cell(2), TimeInterval::new(Timestamp(50), Timestamp(400))),
        Predicate::HasTrajAnnotation(Annotation::goal("buy")),
        Predicate::HasStayAnnotation(Annotation::goal("buy")),
        Predicate::SequenceContains(vec![cell(1), cell(2)]),
        Predicate::MinTotalDwell(Duration::seconds(60)),
        Predicate::MinStayIn(cell(0), Duration::seconds(20)),
        Predicate::VisitedCell(cell(1))
            .and(Predicate::HasTrajAnnotation(Annotation::goal("visit"))),
        Predicate::VisitedCell(cell(3)).or(Predicate::MovingObject("mo-0".into())),
        Predicate::VisitedCell(cell(2)).not(),
    ]
}

/// Asserts the warehouse is indistinguishable from an in-memory
/// `TrajectoryDb` over the same trajectories, standalone and federated
/// with the given live source.
fn assert_differential(seg: &SegmentedDb, live: &dyn TrajectorySource, context: &str) {
    let reference = TrajectoryDb::build(seg.iter().cloned().collect());
    for p in predicates() {
        // Standalone: federated evaluation over just the warehouse.
        let from_seg: Vec<SemanticTrajectory> = federated_matching(&p, &[seg]);
        let from_ref: Vec<SemanticTrajectory> = federated_matching(&p, &[&reference]);
        assert_eq!(from_seg, from_ref, "{context}: warehouse diverged for {p}");
        assert_eq!(
            federated_count(&p, &[seg]),
            federated_count(&p, &[&reference]),
            "{context}: counts diverged for {p}"
        );

        // Federated: live + warehouse union, sorted and limited — the
        // same query with the warehouse implementation swapped must be
        // byte-identical (the sort is stable, ties keep source order,
        // and both warehouses iterate identically).
        let query = Query::new()
            .filter(p.clone())
            .order_by(SortKey::Start, true)
            .limit(8);
        let federated_seg = query.execute_federated(&[live, seg]);
        let federated_ref = query.execute_federated(&[live, &reference]);
        assert_eq!(
            federated_seg, federated_ref,
            "{context}: sorted/limited federation diverged for {p}"
        );
        let paged = Query::new()
            .filter(p.clone())
            .order_by(SortKey::MovingObject, false)
            .offset(2)
            .limit(5);
        assert_eq!(
            paged.execute_federated(&[live, seg]),
            paged.execute_federated(&[live, &reference]),
            "{context}: paged federation diverged for {p}"
        );

        // Pushdown: `execute_segmented` (directory-ordered, paged,
        // lazily decoded) must return exactly what `execute` returns
        // over the eager reference, for every sort key and page shape.
        for (order, offset, limit) in [
            (None, 0, None),
            (None, 1, Some(4)),
            (Some((SortKey::Start, true)), 0, Some(6)),
            (Some((SortKey::End, false)), 2, Some(3)),
            (Some((SortKey::SpanDuration, true)), 1, None),
            (Some((SortKey::TotalDwell, false)), 0, Some(5)),
            (Some((SortKey::MovingObject, true)), 3, Some(4)),
            (Some((SortKey::TraceLength, false)), 0, None),
        ] {
            let mut q = Query::new().filter(p.clone()).offset(offset);
            if let Some((key, asc)) = order {
                q = q.order_by(key, asc);
            }
            if let Some(n) = limit {
                q = q.limit(n);
            }
            let pushed = q.execute_segmented(seg);
            let eager: Vec<SemanticTrajectory> = q
                .execute(&reference)
                .into_iter()
                .map(|m| m.trajectory.clone())
                .collect();
            assert_eq!(
                pushed, eager,
                "{context}: pushdown diverged for {p} order {order:?} offset {offset} limit {limit:?}"
            );
        }
    }
}

#[test]
fn warehouse_is_differentially_invisible_at_every_flush_point() {
    let tmp = TempDir::new("differential");
    let mut engine = ShardedEngine::new(config()).unwrap();
    let (db, _) = SegmentedDb::open(
        &tmp.0,
        WarehouseConfig {
            fanout: 3, // small fanout: compactions actually happen mid-test
            manifest: CompactionPolicy::default(),
            ..WarehouseConfig::default()
        },
    )
    .unwrap();
    let mut flusher = Flusher::new(db);

    let events = feed(30);
    let chunks: Vec<&[StreamEvent]> = events.chunks(events.len() / 6).collect();
    for (i, chunk) in chunks.iter().enumerate() {
        engine.ingest_all(chunk.to_vec());
        flusher.poll(&mut engine).unwrap();
        let snapshot = engine.live_snapshot();
        assert_differential(flusher.db(), &*snapshot, &format!("chunk {i}"));
    }
    // End of stream: close everything, spill the rest, check again.
    engine.finish();
    flusher.force(&mut engine).unwrap();
    let snapshot = engine.live_snapshot();
    assert!(snapshot.visits.is_empty(), "finish closed every open visit");
    assert_differential(flusher.db(), &*snapshot, "after finish");
    // The stream really exercised the tiers.
    let db = flusher.into_db().unwrap();
    assert_eq!(db.len(), 30, "every visit reached the warehouse");
    assert!(
        db.segments().len() < 7,
        "size-tiered compaction merged small flush segments (got {})",
        db.segments().len()
    );

    // Crash/reopen: the recovered warehouse answers identically.
    drop(db);
    let (reopened, report) = SegmentedDb::open(
        &tmp.0,
        WarehouseConfig {
            fanout: 3,
            manifest: CompactionPolicy::default(),
            ..WarehouseConfig::default()
        },
    )
    .unwrap();
    assert!(report.is_clean());
    assert_eq!(reopened.len(), 30);
    let empty: Vec<SemanticTrajectory> = Vec::new();
    assert_differential(&reopened, &empty, "after reopen");
}

#[test]
fn both_runtimes_build_identical_warehouses_live_included() {
    let events = feed(24);
    let tmp_seq = TempDir::new("seq");
    let tmp_par = TempDir::new("par");

    let mut seq = ShardedEngine::new(config()).unwrap();
    seq.ingest_all(events.iter().cloned());
    let mut seq_flusher = Flusher::new(
        SegmentedDb::open(&tmp_seq.0, WarehouseConfig::default())
            .unwrap()
            .0,
    );
    seq_flusher.poll(&mut seq).unwrap();
    let seq_snapshot = seq.live_snapshot();

    let mut par = ParallelEngine::new(config()).unwrap();
    par.ingest_all(events.iter().cloned());
    let mut par_flusher = Flusher::new(
        SegmentedDb::open(&tmp_par.0, WarehouseConfig::default())
            .unwrap()
            .0,
    );
    par_flusher.poll(&mut par).unwrap();
    let par_snapshot = par.live_snapshot();

    let seq_db = seq_flusher.into_db().unwrap();
    let par_db = par_flusher.into_db().unwrap();
    let seq_all: Vec<SemanticTrajectory> = seq_db.iter().cloned().collect();
    let par_all: Vec<SemanticTrajectory> = par_db.iter().cloned().collect();
    assert_eq!(seq_all, par_all, "identical spilled history");

    for p in predicates() {
        let q = Query::new()
            .filter(p.clone())
            .order_by(SortKey::Start, true);
        assert_eq!(
            q.execute_federated(&[&*seq_snapshot, &seq_db]),
            q.execute_federated(&[&*par_snapshot, &par_db]),
            "runtimes diverged under federation for {p}"
        );
    }
}

#[test]
fn cold_open_decodes_nothing_and_pruned_point_queries_read_zero_bytes() {
    // The format-v2 cold-scale contract: reopening a many-segment
    // warehouse reads headers only, fully-pruned point queries keep
    // `query.segment_bytes_read` at zero, and a sorted/limited pushdown
    // decodes exactly the returned page.
    let tmp = TempDir::new("cold-scale");
    let config = WarehouseConfig {
        fanout: 64, // keep the twelve flush segments distinct
        manifest: CompactionPolicy::default(),
        ..WarehouseConfig::default()
    };
    {
        let (mut db, _) = SegmentedDb::open(&tmp.0, config).unwrap();
        for batch in 0..12i64 {
            let base = batch * 10_000;
            let trajs: Vec<SemanticTrajectory> = (0..4)
                .map(|i| {
                    let start = base + i * 100;
                    let stay = PresenceInterval::new(
                        TransitionTaken::Unknown,
                        cell((i % 5) as usize),
                        Timestamp(start),
                        Timestamp(start + 50),
                    );
                    SemanticTrajectory::new(
                        format!("mo-{batch}-{i}"),
                        sitm::core::Trace::new(vec![stay]).unwrap(),
                        label("visit"),
                    )
                    .unwrap()
                })
                .collect();
            db.flush(trajs).unwrap();
        }
        assert_eq!(db.segments().len(), 12);
    }

    let registry = sitm::obs::MetricsRegistry::new();
    let (db, report) = SegmentedDb::open(&tmp.0, config).unwrap();
    let db = db.with_metrics(&registry);
    assert!(report.is_clean());
    assert_eq!(db.len(), 48, "counts come from the offset directories");
    assert!(
        db.segments().iter().all(|s| !s.is_loaded()),
        "cold open decoded nothing"
    );

    let bytes = registry.counter("query.segment_bytes_read");
    let decoded = registry.counter("query.trajectories_decoded");
    // Fully-pruned point queries: object index (absent object) and
    // zone/Bloom tier (absent cell) both answer without any read.
    let absent = Predicate::MovingObject("nobody".into());
    assert_eq!(db.count_matching(&absent), 0);
    assert!(Query::new()
        .filter(absent)
        .execute_segmented(&db)
        .is_empty());
    let absent_cell = Predicate::VisitedCell(cell(99));
    assert_eq!(db.count_matching(&absent_cell), 0);
    assert_eq!(
        bytes.get(),
        0,
        "pruned cold queries read zero segment bytes"
    );
    assert_eq!(decoded.get(), 0);
    assert!(db.segments().iter().all(|s| !s.is_loaded()));

    // A sorted/limited pushdown decodes exactly the returned page —
    // per frame, without hydrating any segment.
    let page = Query::new()
        .order_by(SortKey::Start, true)
        .limit(3)
        .execute_segmented(&db);
    assert_eq!(page.len(), 3);
    assert_eq!(decoded.get(), 3, "only the returned rows were decoded");
    assert!(
        bytes.get() > 0,
        "the page frames were really read from disk"
    );
    assert!(
        db.segments().iter().all(|s| !s.is_loaded()),
        "paging reads frames, not whole segments"
    );
}

#[test]
fn zone_map_pruning_skips_segments_without_losing_matches() {
    // Time-partitioned flushes give disjoint span zone maps: a narrow
    // window query must prune most segments yet count identically.
    let tmp = TempDir::new("pruning");
    let (mut db, _) = SegmentedDb::open(
        &tmp.0,
        WarehouseConfig {
            fanout: 64, // keep flush segments distinct
            manifest: CompactionPolicy::default(),
            ..WarehouseConfig::default()
        },
    )
    .unwrap();
    for batch in 0..6i64 {
        let base = batch * 10_000;
        let trajs: Vec<SemanticTrajectory> = (0..20)
            .map(|i| {
                let start = base + i * 100;
                let stay = PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell((i % 5) as usize),
                    Timestamp(start),
                    Timestamp(start + 50),
                );
                SemanticTrajectory::new(
                    format!("mo-{batch}-{i}"),
                    sitm::core::Trace::new(vec![stay]).unwrap(),
                    label("visit"),
                )
                .unwrap()
            })
            .collect();
        db.flush(trajs).unwrap();
    }
    assert_eq!(db.segments().len(), 6);
    let window = Predicate::SpanOverlaps(TimeInterval::new(Timestamp(20_000), Timestamp(21_000)));
    let plan = db.explain(&window);
    assert_eq!(plan.pruned, 5, "five of six segments are span-disjoint");
    assert_eq!(db.count_matching(&window), db.count_matching_scan(&window));
    assert!(db.count_matching(&window) > 0);
    // A moving-object point query prunes by the *global object index*
    // before any per-segment zone map or Bloom filter is consulted.
    let object = Predicate::MovingObject("mo-3-7".into());
    let plan = db.explain(&object);
    assert_eq!(plan.object_pruned, 5, "object index rejects five segments");
    assert_eq!(plan.pruned, 0, "their zone maps were never consulted");
    assert_eq!(plan.candidates, Some(1));
    assert_eq!(db.count_matching(&object), 1);
}

#[test]
fn row_cache_is_query_invisible_across_flushes_and_compaction() {
    // Differential guarantee for the warm read path: a warehouse with
    // the row-decode cache enabled (default budget) must answer every
    // query — paged, sorted by every key, re-run warm — identically to
    // one with the cache disabled (`row_cache_bytes: 0`), at every
    // flush point and across the compaction that invalidates cached
    // segment ids.
    let tmp_on = TempDir::new("cache-on");
    let tmp_off = TempDir::new("cache-off");
    let config_on = WarehouseConfig {
        fanout: 3, // small fanout: compaction happens mid-test
        ..WarehouseConfig::default()
    };
    let config_off = WarehouseConfig {
        fanout: 3,
        row_cache_bytes: 0,
        ..WarehouseConfig::default()
    };
    let registry = sitm::obs::MetricsRegistry::new();
    let mut db_on = SegmentedDb::open(&tmp_on.0, config_on)
        .unwrap()
        .0
        .with_metrics(&registry);
    let mut db_off = SegmentedDb::open(&tmp_off.0, config_off).unwrap().0;

    // A deterministic pseudo-random corpus: varied objects, cells,
    // stay counts, and dwell durations so every sort key has ties and
    // distinct values.
    let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 33) as i64
    };
    let queries = || {
        let mut out = Vec::new();
        for p in [
            Predicate::True,
            Predicate::VisitedCell(cell(2)),
            Predicate::MinTotalDwell(Duration::seconds(40)),
        ] {
            for (order, offset, limit) in [
                (None, 0, Some(7)),
                (Some((SortKey::Start, true)), 1, Some(5)),
                (Some((SortKey::TotalDwell, false)), 0, Some(4)),
                (Some((SortKey::MovingObject, true)), 2, Some(6)),
                (Some((SortKey::TraceLength, false)), 0, None),
            ] {
                let mut q = Query::new().filter(p.clone()).offset(offset);
                if let Some((key, asc)) = order {
                    q = q.order_by(key, asc);
                }
                if let Some(n) = limit {
                    q = q.limit(n);
                }
                out.push(q);
            }
        }
        out
    };

    for batch in 0..8 {
        let trajs: Vec<SemanticTrajectory> = (0..6)
            .map(|_| {
                let start = next().rem_euclid(5_000);
                let stays = 1 + (next().rem_euclid(3) as usize);
                let intervals: Vec<PresenceInterval> = (0..stays)
                    .map(|k| {
                        let s = start + k as i64 * 200;
                        PresenceInterval::new(
                            TransitionTaken::Unknown,
                            cell(next().rem_euclid(5) as usize),
                            Timestamp(s),
                            Timestamp(s + 10 + next().rem_euclid(90)),
                        )
                    })
                    .collect();
                SemanticTrajectory::new(
                    format!("mo-{}", next().rem_euclid(9)),
                    sitm::core::Trace::new(intervals).unwrap(),
                    label("visit"),
                )
                .unwrap()
            })
            .collect();
        // The flush (and any size-tiered compaction it triggers) runs
        // against the instance whose cache the previous iteration's
        // queries populated — retiring segment ids must invalidate
        // those rows. The reopen then drops the pre-cached runs so the
        // queries below really read per frame through the row cache.
        db_on.flush(trajs.clone()).unwrap();
        db_off.flush(trajs).unwrap();
        db_on = SegmentedDb::open(&tmp_on.0, config_on)
            .unwrap()
            .0
            .with_metrics(&registry);
        db_off = SegmentedDb::open(&tmp_off.0, config_off).unwrap().0;
        for q in queries() {
            let cold = q.execute_segmented(&db_on);
            assert_eq!(
                cold,
                q.execute_segmented(&db_off),
                "batch {batch}: cache-enabled diverged from cache-disabled"
            );
            // The warm re-run — now served (partly) from the cache —
            // answers identically.
            assert_eq!(
                cold,
                q.execute_segmented(&db_on),
                "batch {batch}: warm re-run diverged"
            );
        }
    }
    // The corpus really exercised both the cache and its invalidation.
    let snapshot = registry.snapshot();
    assert!(
        snapshot.counter("query.row_cache_hits").unwrap() > 0,
        "warm re-runs hit the cache"
    );
    assert!(
        db_on.segments().len() < 8,
        "compaction retired segment ids mid-test (got {})",
        db_on.segments().len()
    );
    let budget = WarehouseConfig::default().row_cache_bytes as i64;
    let resident = snapshot.gauge("query.row_cache_bytes").unwrap();
    assert!(
        (0..=budget).contains(&resident),
        "cache residency {resident} within budget {budget}"
    );
}
