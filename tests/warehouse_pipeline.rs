//! End-to-end pipeline across the storage, query, ontology, and mining
//! layers: generate the calibrated Louvre dataset, persist it, crash,
//! recover, index, query, enrich, and mine — the full life of a
//! trajectory record.

use sitm::core::{Duration, SemanticTrajectory, TimeInterval, Timestamp};
use sitm::louvre::{
    build_louvre, generate_dataset, AttentionConfig, AttentionModel, GeneratorConfig, LouvreModel,
};
use sitm::mining::{mine_at_layers, NGramModel};
use sitm::ontology::{build_louvre_kb, saturate, theme_dwell_profile};
use sitm::query::{detection_counts_by_cell, top_k, Predicate, Query, SortKey, TrajectoryDb};
use sitm::space::CellRef;
use sitm::store::{Corruption, LogStore};

fn zone_of(model: &LouvreModel) -> impl Fn(CellRef) -> Option<u32> + '_ {
    move |cell| {
        model
            .space
            .cell(cell)?
            .key
            .strip_prefix("zone")?
            .parse()
            .ok()
    }
}

#[test]
fn generate_store_crash_recover_query_mine() {
    let model = build_louvre();
    let config = GeneratorConfig {
        seed: 7,
        ..GeneratorConfig::default()
    };
    let dataset = generate_dataset(&config);
    let trajectories: Vec<SemanticTrajectory> = dataset
        .visits
        .iter()
        .take(600)
        .filter(|v| v.detections.len() >= 2)
        .filter_map(|v| dataset.to_trajectory(&model, v))
        .collect();
    assert!(
        trajectories.len() > 300,
        "enough multi-zone visits to exercise the pipeline"
    );

    // ---- Persist, tear the tail, recover. ---------------------------------
    let path = std::env::temp_dir().join(format!(
        "sitm-integration-{}-{}.log",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_file(&path);
    {
        let (mut log, _, _) = LogStore::<SemanticTrajectory>::open(&path).expect("create");
        log.append_batch(trajectories.iter()).expect("append");
        log.sync().expect("sync");
    }
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::write(&path, &bytes[..bytes.len() - 11]).expect("tear");
    let (_, recovered, report) = LogStore::<SemanticTrajectory>::open(&path).expect("recover");
    assert_eq!(recovered.len(), trajectories.len() - 1);
    assert!(matches!(report.corruption, Some(Corruption::Torn { .. })));
    assert_eq!(&recovered[..], &trajectories[..trajectories.len() - 1]);
    std::fs::remove_file(&path).ok();

    // ---- Index and query the recovered collection. ------------------------
    let db = TrajectoryDb::build(recovered);
    let full_span = TimeInterval::new(
        Timestamp::from_ymd_hms(2017, 1, 19, 0, 0, 0),
        Timestamp::from_ymd_hms(2017, 5, 30, 0, 0, 0),
    );
    assert_eq!(
        Query::new().during(full_span).count(&db),
        db.len(),
        "every visit lies in the collection window"
    );
    // Index path and scan path agree on a compound query.
    let e_zone = model.zone(60887).expect("zone E");
    let q = Query::new()
        .visited(e_zone)
        .filter(Predicate::MinTotalDwell(Duration::minutes(5)))
        .order_by(SortKey::Start, true);
    let ids: Vec<u32> = q.execute(&db).iter().map(|m| m.id).collect();
    let scanned: Vec<u32> = db
        .trajectories()
        .iter()
        .enumerate()
        .filter(|(_, t)| q.predicate().matches(t))
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(ids, scanned);

    // The busiest zone by detections matches the raw dataset's counts.
    let counts = detection_counts_by_cell(db.iter());
    let top = top_k(&counts, 1);
    assert!(!top.is_empty());

    // ---- Ontology enrichment over a real visit. ----------------------------
    let mut kb = build_louvre_kb();
    saturate(&mut kb);
    let themed = db
        .iter()
        .map(|t| theme_dwell_profile(&kb, t.trace(), zone_of(&model)))
        .filter(|p| !p.is_empty())
        .count();
    assert!(
        themed > 0,
        "some visits pass through zones the knowledge base knows"
    );

    // ---- Mining at two granularities from the same recovered data. --------
    let traces: Vec<_> = db.iter().map(|t| t.trace().clone()).collect();
    let mined = mine_at_layers(
        &model.space,
        &model.zone_hierarchy(),
        &traces,
        &[model.zone_layer, model.floor_layer],
        0.10,
        3,
    )
    .expect("zone traces lift to floors");
    assert_eq!(mined.len(), 2);
    assert!(
        mined[0].sequences >= mined[1].sequences,
        "floor lifting can only shrink the database"
    );
    assert!(!mined[0].patterns.is_empty());

    // ---- Conceptual reading of the busiest visit. --------------------------
    let attention = AttentionModel::new(&model, AttentionConfig::default());
    let longest = Query::new()
        .order_by(SortKey::TotalDwell, false)
        .limit(1)
        .execute(&db);
    let conceptual = attention.conceptual_trace(longest[0].trajectory.trace());
    // Zone-level stays attend only weakly; the trace may or may not produce
    // attention, but deriving it must be stable and profile-consistent.
    let profile = conceptual.attention_profile();
    assert_eq!(profile.is_empty(), conceptual.is_empty());
}

#[test]
fn ngram_order_ablation_on_louvre_sequences() {
    let model = build_louvre();
    let dataset = generate_dataset(&GeneratorConfig::default());
    let sequences: Vec<Vec<CellRef>> = dataset
        .visits
        .iter()
        .filter_map(|v| dataset.to_trajectory(&model, v))
        .map(|t| t.trace().cell_sequence())
        .filter(|s| s.len() >= 3)
        .collect();
    assert!(sequences.len() > 500);
    let (train, test) = sequences.split_at(sequences.len() * 4 / 5);
    let order1 = NGramModel::fit(train, 1);
    let order2 = NGramModel::fit(train, 2);
    let (a1, a2) = (order1.accuracy(test), order2.accuracy(test));
    assert!(
        a1 > 0.2,
        "order-1 must beat chance on a 30-zone alphabet (got {a1})"
    );
    // Order 2 must not collapse (it may tie or slightly lose on sparse data,
    // but must stay in the same band).
    assert!(
        a2 > a1 * 0.7,
        "order-2 accuracy {a2} collapsed vs order-1 {a1}"
    );
    assert!(order2.perplexity(test).is_finite());
}
