//! # sitm — Semantic Indoor Trajectory Model
//!
//! Facade crate re-exporting the full SITM toolkit, a Rust reproduction of
//! *Kontarinis et al., "Towards a Semantic Indoor Trajectory Model"*
//! (BMDA @ EDBT 2019).
//!
//! The toolkit decomposes into focused crates, all re-exported here:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `sitm-graph` | directed multigraphs, multilayer networks, path algorithms |
//! | [`geometry`] | `sitm-geometry` | 2D points, polygons, topological predicates |
//! | [`qsr`] | `sitm-qsr` | RCC8 calculus, 9-intersection, constraint networks |
//! | [`space`] | `sitm-space` | IndoorGML-style multi-layered indoor space model |
//! | [`core`] | `sitm-core` | semantic trajectories, episodes, segmentation, inference |
//! | [`positioning`] | `sitm-positioning` | BLE RSSI models, trilateration, EKF, particle filter |
//! | [`sim`] | `sitm-sim` | seeded samplers & stochastic processes |
//! | [`louvre`] | `sitm-louvre` | the Louvre case study & calibrated synthetic dataset |
//! | [`mining`] | `sitm-mining` | sequential patterns, Markov models, similarity, profiling |
//! | [`analytics`] | `sitm-analytics` | descriptive statistics, choropleths, reports |
//! | [`query`] | `sitm-query` | indexed trajectory retrieval: predicates, plans, aggregation, federation |
//! | [`store`] | `sitm-store` | binary codec, CRC-framed append-only log, crash recovery, compaction |
//! | [`stream`] | `sitm-stream` | sequential & thread-per-shard online ingestion, live queries, batch-equivalent episodes |
//! | [`ontology`] | `sitm-ontology` | triple store + CIDOC-CRM-flavoured museum knowledge base |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete walk-through: build an indoor
//! space, record a semantic trajectory, segment it into episodes, and lift
//! it through the layer hierarchy.

pub use sitm_analytics as analytics;
pub use sitm_core as core;
pub use sitm_geometry as geometry;
pub use sitm_graph as graph;
pub use sitm_louvre as louvre;
pub use sitm_mining as mining;
pub use sitm_ontology as ontology;
pub use sitm_positioning as positioning;
pub use sitm_qsr as qsr;
pub use sitm_query as query;
pub use sitm_sim as sim;
pub use sitm_space as space;
pub use sitm_store as store;
pub use sitm_stream as stream;
