//! # sitm — Semantic Indoor Trajectory Model
//!
//! Facade crate re-exporting the full SITM toolkit, a Rust reproduction of
//! *Kontarinis et al., "Towards a Semantic Indoor Trajectory Model"*
//! (BMDA @ EDBT 2019).
//!
//! The toolkit decomposes into focused crates, all re-exported here:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `sitm-graph` | directed multigraphs, multilayer networks, path algorithms |
//! | [`geometry`] | `sitm-geometry` | 2D points, polygons, topological predicates |
//! | [`qsr`] | `sitm-qsr` | RCC8 calculus, 9-intersection, constraint networks |
//! | [`space`] | `sitm-space` | IndoorGML-style multi-layered indoor space model |
//! | [`core`] | `sitm-core` | semantic trajectories, episodes, segmentation, inference |
//! | [`positioning`] | `sitm-positioning` | BLE RSSI models, trilateration, EKF, particle filter |
//! | [`sim`] | `sitm-sim` | seeded samplers & stochastic processes |
//! | [`louvre`] | `sitm-louvre` | the Louvre case study & calibrated synthetic dataset |
//! | [`mining`] | `sitm-mining` | sequential patterns, Markov models, similarity, profiling |
//! | [`obs`] | `sitm-obs` | lock-cheap observability: counters, gauges, log₂ histograms, spans, slow-query log, snapshot codec |
//! | [`analytics`] | `sitm-analytics` | descriptive statistics, choropleths, reports |
//! | [`query`] | `sitm-query` | indexed trajectory retrieval: predicates, plans, aggregation, federation, the segmented warehouse |
//! | [`store`] | `sitm-store` | binary codec, CRC-framed append-only log, crash recovery, compaction, the segment tier, Bloom filters |
//! | [`stream`] | `sitm-stream` | sequential & work-stealing online ingestion, live queries, batch-equivalent episodes, warehouse spill |
//! | [`serve`] | `sitm-serve` | the network tier: concurrent TCP server + client for remote ingest and federated semantic queries |
//! | [`ontology`] | `sitm-ontology` | triple store + CIDOC-CRM-flavoured museum knowledge base |
//!
//! ## Architecture: the live → warehouse → serve data path
//!
//! The system is tiered: a **live tier** (streaming engines) owns open
//! visits, a **warehouse tier** (immutable on-disk segments) owns
//! history, a **network tier** ([`serve`]) exposes both to remote
//! clients, and one query surface federates it all. A trajectory's life:
//!
//! ```text
//!   ingest ─▶ live state ─▶ close ─▶ finished backlog ─▶ Flusher ─▶ segment ─▶ compaction
//!            (open visits,  (late     (take_finished,     (spill)    (sorted    (size-tiered
//!             LiveSnapshot   events    exactly-once vs                run, zone   merge, manifest
//!             + LiveIndex)   fenced)   checkpoints)                   map+Bloom,  rewrite)
//!                                                                    fsync)
//!   ──────────────────────────────── serve ────────────────────────────────▶ clients
//!            (TCP sessions: IngestBatch in; Query / QueryFederated /
//!             Explain / Stats / Metrics / Checkpoint / Shutdown out —
//!             PROTOCOL.md)
//! ```
//!
//! * **Live** — [`stream`]'s `ShardedEngine` / `ParallelEngine` apply
//!   events per visit in arrival order; `live_snapshot()` cuts a
//!   snapshot-consistent view (open-visit prefixes + incremental
//!   postings) queryable with [`query`]'s predicates.
//! * **Fence** — a closed visit fences its stragglers for
//!   `allowed_lateness` (event-time deterministic, identical across
//!   runtimes); at close, with `EngineConfig::with_warehouse()`, the
//!   completed trajectory enters the finished backlog.
//! * **Flush** — `stream::Flusher` drains the backlog (`take_finished`,
//!   a barrier) and spills batches into `query::SegmentedDb`, bounding
//!   engine memory. The backlog rides checkpoint payloads until taken,
//!   so a crash replays exactly what was never made durable.
//! * **Segment** — each spill becomes one immutable CRC-framed file
//!   ([`store`]'s `warehouse` module): a canonical sorted run of
//!   encoded trajectories behind a zone map (span min/max, cell /
//!   object / annotation sets), made visible atomically by a manifest
//!   record; the newest intact record is the recovery point (torn
//!   writes torture-tested at every byte offset).
//! * **Compaction** — small segments merge size-tiered into larger
//!   sorted runs; the manifest log itself stays bounded by the same
//!   `CompactionPolicy` idiom the checkpoint log uses, and replaced
//!   files outlive every manifest record that still references them.
//! * **Serve** — [`serve`]'s `Server` wraps one engine + one warehouse
//!   behind a CRC-framed TCP protocol (a listener plus a bounded
//!   session-worker pool): clients ingest event batches, run
//!   sorted/paged federated queries over live ∪ warehouse, inspect
//!   plans (including zone-map/Bloom pruning counts), trigger
//!   checkpoints, and shut the pipeline down gracefully — served
//!   results are differentially pinned equal to the in-process
//!   `Query::execute_federated` on identical input. See `PROTOCOL.md`
//!   for the wire format.
//!
//! ## Observability: metrics across the whole path
//!
//! Every stage above is instrumented through [`obs`]'s
//! `MetricsRegistry` — a name → instrument map of atomic counters,
//! gauges, and log₂-bucketed histograms (p50/p95/p99/max derivable
//! from any snapshot) that components bind `Arc` handles to at
//! construction, so the hot paths pay relaxed atomics only. Components
//! default to the process-global registry; a [`serve`] `Server` gives
//! its whole pipeline a fresh one and exposes it over the wire via the
//! `Metrics` op (a versioned, torture-tested snapshot codec — see
//! `PROTOCOL.md`). The stable names, per tier:
//!
//! | Prefix | Tier | Instruments |
//! |---|---|---|
//! | `engine.*` | live | `events_ingested`, `events_fenced`, `visits_routed` vs `visits_stolen` (work-stealing attribution), `queue_depth.w{i}` per-worker gauges |
//! | `flush.*` | spill | `spills`, `trajectories`, `duration_ns` histogram |
//! | `store.*` | warehouse | `segments_built`, `segments_compacted`, `segment_bytes_written`, `manifest_records`, `gc_sweeps`, `lazy_opens` (segments opened headers-only) |
//! | `query.*` | retrieval | `segments_scanned` vs `object_pruned` vs `zone_pruned` vs `bloom_pruned`, `segment_bytes_read` / `trajectories_decoded` lazy-I/O attribution, `candidates` set-size histogram |
//! | `serve.*` | network | `requests.{op}` / `handle_ns.{op}` per op, `bytes_in`/`bytes_out`, `errors`/`frame_errors`/`bad_requests`, `sessions_active` + `subscriptions_active` gauges, `snapshot_build_ns`/`evaluate_ns`/`explain_snapshot_ns` read-path splits, `snapshot_cache_hits`/`snapshot_cache_misses`, `notifications_pushed`/`subscribers_dropped` |
//!
//! The serve tier also keeps a bounded **slow-query log** (threshold
//! set via `ServerConfig::with_slow_query_threshold`, carried in the
//! same snapshot) and reports per-request stage timing in `Explain`
//! responses; `bench_json` embeds a snapshot into `BENCH_8.json` so
//! pruning ratios, lazy-segment I/O attribution, and the RTT
//! decomposition ride the perf artifact.
//!
//! **Consistency guarantees.** Queries see per-source snapshots:
//! `SegmentedDb` answers from the newest committed manifest,
//! `LiveSnapshot` from a quiesce cut; both narrow predicates through
//! sound candidate supersets (zone maps + per-segment postings, live
//! postings) and re-check every candidate, so indexed, pruned, and
//! scanned paths are result-identical — differentially tested against
//! an in-memory `TrajectoryDb` at every flush/compaction point,
//! including sorted/limited `Query::execute_federated` over the
//! live ∪ warehouse union.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete walk-through: build an indoor
//! space, record a semantic trajectory, segment it into episodes, and lift
//! it through the layer hierarchy. `examples/tiered_warehouse.rs` walks
//! the full live → warehouse pipeline above.

pub use sitm_analytics as analytics;
pub use sitm_core as core;
pub use sitm_geometry as geometry;
pub use sitm_graph as graph;
pub use sitm_louvre as louvre;
pub use sitm_mining as mining;
pub use sitm_obs as obs;
pub use sitm_ontology as ontology;
pub use sitm_positioning as positioning;
pub use sitm_qsr as qsr;
pub use sitm_query as query;
pub use sitm_serve as serve;
pub use sitm_sim as sim;
pub use sitm_space as space;
pub use sitm_store as store;
pub use sitm_stream as stream;
