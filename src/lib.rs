//! # sitm — Semantic Indoor Trajectory Model
//!
//! Facade crate re-exporting the full SITM toolkit, a Rust reproduction of
//! *Kontarinis et al., "Towards a Semantic Indoor Trajectory Model"*
//! (BMDA @ EDBT 2019).
//!
//! The toolkit decomposes into focused crates, all re-exported here:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `sitm-graph` | directed multigraphs, multilayer networks, path algorithms |
//! | [`geometry`] | `sitm-geometry` | 2D points, polygons, topological predicates |
//! | [`qsr`] | `sitm-qsr` | RCC8 calculus, 9-intersection, constraint networks |
//! | [`space`] | `sitm-space` | IndoorGML-style multi-layered indoor space model |
//! | [`core`] | `sitm-core` | semantic trajectories, episodes, segmentation, inference |
//! | [`positioning`] | `sitm-positioning` | BLE RSSI models, trilateration, EKF, particle filter |
//! | [`sim`] | `sitm-sim` | seeded samplers & stochastic processes |
//! | [`louvre`] | `sitm-louvre` | the Louvre case study & calibrated synthetic dataset |
//! | [`mining`] | `sitm-mining` | sequential patterns, Markov models, similarity, profiling |
//! | [`obs`] | `sitm-obs` | lock-cheap observability: counters, gauges, log₂ histograms, spans, hierarchical request traces, a time-series sampler, health reports, slow-query log, snapshot codecs |
//! | [`analytics`] | `sitm-analytics` | descriptive statistics, choropleths, reports |
//! | [`query`] | `sitm-query` | indexed trajectory retrieval: predicates, plans, aggregation, federation, the segmented warehouse |
//! | [`store`] | `sitm-store` | binary codec, CRC-framed append-only log, crash recovery, compaction, the segment tier, Bloom filters |
//! | [`stream`] | `sitm-stream` | sequential & work-stealing online ingestion, live queries, batch-equivalent episodes, warehouse spill |
//! | [`serve`] | `sitm-serve` | the network tier: concurrent TCP server + client for remote ingest and federated semantic queries |
//! | [`ontology`] | `sitm-ontology` | triple store + CIDOC-CRM-flavoured museum knowledge base |
//!
//! ## Architecture: the live → warehouse → serve data path
//!
//! The system is tiered: a **live tier** (streaming engines) owns open
//! visits, a **warehouse tier** (immutable on-disk segments) owns
//! history, a **network tier** ([`serve`]) exposes both to remote
//! clients, and one query surface federates it all. A trajectory's life:
//!
//! ```text
//!   ingest ─▶ live state ─▶ close ─▶ finished backlog ─▶ Flusher ─▶ segment ─▶ compaction
//!            (open visits,  (late     (take_finished,     (spill)    (sorted    (size-tiered
//!             LiveSnapshot   events    exactly-once vs                run, zone   merge, manifest
//!             + LiveIndex)   fenced)   checkpoints)                   map+Bloom,  rewrite)
//!                                                                    fsync)
//!   ──────────────────────────────── serve ────────────────────────────────▶ clients
//!            (TCP sessions: IngestBatch in; Query / QueryFederated /
//!             Explain / Stats / Metrics / Checkpoint / Shutdown out —
//!             PROTOCOL.md)
//! ```
//!
//! * **Live** — [`stream`]'s `ShardedEngine` / `ParallelEngine` apply
//!   events per visit in arrival order; `live_snapshot()` cuts a
//!   snapshot-consistent view (open-visit prefixes + incremental
//!   postings) queryable with [`query`]'s predicates.
//! * **Fence** — a closed visit fences its stragglers for
//!   `allowed_lateness` (event-time deterministic, identical across
//!   runtimes); at close, with `EngineConfig::with_warehouse()`, the
//!   completed trajectory enters the finished backlog.
//! * **Flush** — `stream::Flusher` drains the backlog (`take_finished`,
//!   a barrier) and spills batches into `query::SegmentedDb`, bounding
//!   engine memory. The backlog rides checkpoint payloads until taken,
//!   so a crash replays exactly what was never made durable.
//! * **Segment** — each spill becomes one immutable CRC-framed file
//!   ([`store`]'s `warehouse` module): a canonical sorted run of
//!   encoded trajectories behind a zone map (span min/max, cell /
//!   object / annotation sets), made visible atomically by a manifest
//!   record; the newest intact record is the recovery point (torn
//!   writes torture-tested at every byte offset).
//! * **Compaction** — small segments merge size-tiered into larger
//!   sorted runs; the manifest log itself stays bounded by the same
//!   `CompactionPolicy` idiom the checkpoint log uses, and replaced
//!   files outlive every manifest record that still references them.
//! * **Serve** — [`serve`]'s `Server` wraps one engine + one warehouse
//!   behind a CRC-framed TCP protocol (a listener plus a bounded
//!   session-worker pool): clients ingest event batches, run
//!   sorted/paged federated queries over live ∪ warehouse, inspect
//!   plans (including zone-map/Bloom pruning counts), trigger
//!   checkpoints, and shut the pipeline down gracefully — served
//!   results are differentially pinned equal to the in-process
//!   `Query::execute_federated` on identical input. See `PROTOCOL.md`
//!   for the wire format.
//!
//! ## Observability: metrics across the whole path
//!
//! Every stage above is instrumented through [`obs`]'s
//! `MetricsRegistry` — a name → instrument map of atomic counters,
//! gauges, and log₂-bucketed histograms (p50/p95/p99/max derivable
//! from any snapshot) that components bind `Arc` handles to at
//! construction, so the hot paths pay relaxed atomics only. Components
//! default to the process-global registry; a [`serve`] `Server` gives
//! its whole pipeline a fresh one and exposes it over the wire via the
//! `Metrics` op (a versioned, torture-tested snapshot codec — see
//! `PROTOCOL.md`). The stable names, per tier:
//!
//! | Prefix | Tier | Instruments |
//! |---|---|---|
//! | `engine.*` | live | `events_ingested`, `events_fenced`, `visits_routed` vs `visits_stolen` (work-stealing attribution), `queue_depth.w{i}` per-worker gauges |
//! | `flush.*` | spill | `spills`, `trajectories`, `duration_ns` histogram |
//! | `store.*` | warehouse | `segments_built`, `segments_compacted`, `segment_bytes_written`, `manifest_records`, `gc_sweeps`, `lazy_opens` (segments opened headers-only) |
//! | `query.*` | retrieval | `segments_scanned` vs `object_pruned` vs `zone_pruned` vs `bloom_pruned`, `segment_bytes_read` / `trajectories_decoded` lazy-I/O attribution, `candidates` set-size histogram |
//! | `serve.*` | network | `requests.{op}` / `handle_ns.{op}` per op, `bytes_in`/`bytes_out`, `errors`/`frame_errors`/`bad_requests`, `sessions_active` + `subscriptions_active` + `subscribers_active` gauges, `snapshot_build_ns`/`evaluate_ns`/`explain_snapshot_ns` read-path splits, `snapshot_cache_hits`/`snapshot_cache_misses`, `notifications_pushed`/`subscribers_dropped` |
//!
//! (`flush.*` also carries the `backlog_trajectories` gauge — the
//! spill tier's lag, served by the `Health` op. The authoritative
//! catalog, pinned by `crates/serve/tests/metrics_catalog.rs`, lives
//! in `PROTOCOL.md`.)
//!
//! The serve tier also keeps a bounded **slow-query log** (threshold
//! set via `ServerConfig::with_slow_query_threshold`, carried in the
//! same snapshot) and reports per-request stage timing in `Explain`
//! responses; `bench_json` embeds a snapshot into `BENCH_10.json` so
//! pruning ratios, lazy-segment I/O attribution, and the RTT
//! decomposition ride the perf artifact.
//!
//! ## Tracing: one tree per served request
//!
//! On top of the aggregate metrics, every served request records a
//! **hierarchical trace**: a tree of spans rooted at the op, cut into
//! a bounded ring by [`obs`]'s `TraceRecorder` and fetched over the
//! wire with the `Trace` op. The spans name the tiers a request
//! actually crossed:
//!
//! | Span | Tier | Covers |
//! |---|---|---|
//! | *root* (op name) | serve | handle → notification flush → response write |
//! | `handle` | serve | the request handler exactly (the `handle_ns.{op}` sample) |
//! | `snapshot_cut` | serve/live | the atomic live-cut + warehouse-guard acquisition |
//! | `snapshot_rebuild` | live | the engine rebuilding a live snapshot on epoch-cache miss † |
//! | `evaluate` | query | federated / segmented evaluation outside the locks († on the warehouse-only `Query` op) |
//! | `prune` | query | object-index → Bloom → zone-map candidate pruning † |
//! | `order_page` | query | sort-column / directory ordering of the candidate page † |
//! | `fetch_rows` | query | decoding exactly the rows the page returns † |
//! | `row_read` | store | one directory-guided single-row segment read (cache miss) † |
//! | `segment_hydrate` | store | a segment's first full decode † |
//! | `wire_write` | serve | encoding + writing the response frame |
//!
//! († = **detail tier**: recorded on one request in
//! `sitm_obs::trace::DETAIL_SAMPLE_EVERY`, and on *every* request whose
//! context arrived over the wire — the caller asked about that request
//! specifically. The unmarked coarse tiers record on every trace, which
//! keeps the default-config tracing tax ≤ 5% of a served point-query
//! RTT, pinned by `BENCH_10.json`'s `trace_overhead` group.)
//!
//! A `TraceContext` (trace id + parent span id) rides an optional wire
//! envelope extension (`PROTOCOL.md`), so a federation fan-out keeps
//! one trace id across peers; with tracing off (capacity 0) every span
//! call is inert. A background **time-series sampler** snapshots the
//! registry each period into delta-compressed frames, from which the
//! `Health` op derives current rates (events/s), tier lag (flush
//! backlog, worker queue depths, checkpoint age), and session load —
//! the one-glance `sitm-top` screen rendered by
//! `examples/query_server.rs`.
//!
//! **Consistency guarantees.** Queries see per-source snapshots:
//! `SegmentedDb` answers from the newest committed manifest,
//! `LiveSnapshot` from a quiesce cut; both narrow predicates through
//! sound candidate supersets (zone maps + per-segment postings, live
//! postings) and re-check every candidate, so indexed, pruned, and
//! scanned paths are result-identical — differentially tested against
//! an in-memory `TrajectoryDb` at every flush/compaction point,
//! including sorted/limited `Query::execute_federated` over the
//! live ∪ warehouse union.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for a complete walk-through: build an indoor
//! space, record a semantic trajectory, segment it into episodes, and lift
//! it through the layer hierarchy. `examples/tiered_warehouse.rs` walks
//! the full live → warehouse pipeline above.

pub use sitm_analytics as analytics;
pub use sitm_core as core;
pub use sitm_geometry as geometry;
pub use sitm_graph as graph;
pub use sitm_louvre as louvre;
pub use sitm_mining as mining;
pub use sitm_obs as obs;
pub use sitm_ontology as ontology;
pub use sitm_positioning as positioning;
pub use sitm_qsr as qsr;
pub use sitm_query as query;
pub use sitm_serve as serve;
pub use sitm_sim as sim;
pub use sitm_space as space;
pub use sitm_store as store;
pub use sitm_stream as stream;
