//! Property tests: the triple store's permutation indexes must agree
//! with a naive scan, and the reasoner's transitive closure must agree
//! with graph reachability.

use std::collections::BTreeSet;

use proptest::prelude::*;
use sitm_ontology::{Pattern, TripleStore};

const TERMS: usize = 8;

fn term_name(i: usize) -> String {
    format!("term-{i}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every pattern query returns exactly the naive filter result.
    #[test]
    fn pattern_queries_equal_naive_scan(
        triples in prop::collection::vec((0usize..TERMS, 0usize..TERMS, 0usize..TERMS), 0..40),
        pat in (
            prop::option::of(0usize..TERMS),
            prop::option::of(0usize..TERMS),
            prop::option::of(0usize..TERMS),
        ),
    ) {
        let mut store = TripleStore::new();
        for &(s, p, o) in &triples {
            store.insert(&term_name(s), &term_name(p), &term_name(o));
        }
        let naive: BTreeSet<(usize, usize, usize)> = triples
            .iter()
            .copied()
            .filter(|&(s, p, o)| {
                pat.0.is_none_or(|w| w == s)
                    && pat.1.is_none_or(|w| w == p)
                    && pat.2.is_none_or(|w| w == o)
            })
            .collect();
        let pattern = Pattern {
            s: pat.0.and_then(|i| store.term(&term_name(i))),
            p: pat.1.and_then(|i| store.term(&term_name(i))),
            o: pat.2.and_then(|i| store.term(&term_name(i))),
        };
        // If a constrained term was never interned the pattern matches
        // nothing (the string does not occur in any triple).
        let unresolvable = (pat.0.is_some() && pattern.s.is_none())
            || (pat.1.is_some() && pattern.p.is_none())
            || (pat.2.is_some() && pattern.o.is_none());
        let got: BTreeSet<String> = if unresolvable {
            prop_assert!(naive.is_empty());
            return Ok(());
        } else {
            store
                .query(pattern)
                .into_iter()
                .map(|t| {
                    format!(
                        "{} {} {}",
                        store.resolve(t.s),
                        store.resolve(t.p),
                        store.resolve(t.o)
                    )
                })
                .collect()
        };
        let want: BTreeSet<String> = naive
            .into_iter()
            .map(|(s, p, o)| format!("{} {} {}", term_name(s), term_name(p), term_name(o)))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Saturating a transitive property materializes exactly graph
    /// reachability (in ≥1 hops) over the property's edges.
    #[test]
    fn transitive_closure_is_reachability(
        edges in prop::collection::vec((0usize..TERMS, 0usize..TERMS), 0..20),
    ) {
        let mut store = TripleStore::new();
        for &(a, b) in &edges {
            store.insert(&term_name(a), "skos:broader", &term_name(b));
        }
        sitm_ontology::saturate_transitive(&mut store, "skos:broader");

        // Floyd–Warshall over the original edges.
        let mut reach = [[false; TERMS]; TERMS];
        for &(a, b) in &edges {
            reach[a][b] = true;
        }
        for k in 0..TERMS {
            for i in 0..TERMS {
                for j in 0..TERMS {
                    if reach[i][k] && reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
        for (i, row) in reach.iter().enumerate() {
            for (j, &reachable) in row.iter().enumerate() {
                prop_assert_eq!(
                    store.contains(&term_name(i), "skos:broader", &term_name(j)),
                    reachable,
                    "reachability mismatch {} -> {}", i, j
                );
            }
        }
    }

    /// Insertion count equals distinct triples; insert is idempotent.
    #[test]
    fn len_counts_distinct_triples(
        triples in prop::collection::vec((0usize..TERMS, 0usize..TERMS, 0usize..TERMS), 0..40),
    ) {
        let mut store = TripleStore::new();
        for &(s, p, o) in &triples {
            store.insert(&term_name(s), &term_name(p), &term_name(o));
        }
        let distinct: BTreeSet<_> = triples.iter().copied().collect();
        prop_assert_eq!(store.len(), distinct.len());
        // Re-inserting everything changes nothing.
        for &(s, p, o) in &triples {
            prop_assert!(!store.insert(&term_name(s), &term_name(p), &term_name(o)));
        }
        prop_assert_eq!(store.len(), distinct.len());
    }
}
