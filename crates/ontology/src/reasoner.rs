//! Forward-chaining inference over the triple store.
//!
//! Three rules cover what the museum KB needs:
//!
//! 1. **Transitive properties** (`skos:broader`, `crm:P89_falls_within`,
//!    `rdfs:subClassOf`): `(a p b), (b p c) ⊢ (a p c)`.
//! 2. **Type lifting**: `(x rdf:type c), (c rdfs:subClassOf d) ⊢
//!    (x rdf:type d)`.
//! 3. **Location lifting**: `(x P55 place), (place P89_falls_within
//!    bigger) ⊢ (x P55 bigger)` — the KB mirror of the paper's §3.2
//!    hierarchy-lifting ("a relation between two nodes will also hold
//!    between their predecessors").
//!
//! All rules run to a fixpoint; materialization is monotone, so the
//! fixpoint exists and is reached in at most O(terms) rounds.

use crate::triple::{Pattern, Triple, TripleStore};
use crate::vocab::{crm, rdf};

/// Materializes the transitive closure of `property`. Returns the number
/// of triples added.
pub fn saturate_transitive(store: &mut TripleStore, property: &str) -> usize {
    let Some(p) = store.term(property) else {
        return 0;
    };
    let mut added = 0;
    loop {
        let edges: Vec<Triple> = store.query(Pattern {
            p: Some(p),
            ..Pattern::ANY
        });
        let mut new_triples = Vec::new();
        for &a in &edges {
            for &b in &edges {
                if a.o == b.s {
                    let t = Triple { s: a.s, p, o: b.o };
                    new_triples.push(t);
                }
            }
        }
        let before = added;
        for t in new_triples {
            if store.insert_triple(t) {
                added += 1;
            }
        }
        if added == before {
            return added;
        }
    }
}

/// Materializes rule 2 (type lifting through `rdfs:subClassOf`). The
/// subclass relation is saturated first. Returns triples added.
pub fn saturate_types(store: &mut TripleStore) -> usize {
    let mut added = saturate_transitive(store, rdf::SUB_CLASS_OF);
    let (Some(ty), Some(sub)) = (store.term(rdf::TYPE), store.term(rdf::SUB_CLASS_OF)) else {
        return added;
    };
    let subclass_edges: Vec<Triple> = store.query(Pattern {
        p: Some(sub),
        ..Pattern::ANY
    });
    let typings: Vec<Triple> = store.query(Pattern {
        p: Some(ty),
        ..Pattern::ANY
    });
    for t in typings {
        for e in &subclass_edges {
            if e.s == t.o
                && store.insert_triple(Triple {
                    s: t.s,
                    p: ty,
                    o: e.o,
                })
            {
                added += 1;
            }
        }
    }
    added
}

/// Materializes rule 3 (location lifting through `crm:P89_falls_within`).
/// Returns triples added.
pub fn saturate_locations(store: &mut TripleStore) -> usize {
    let mut added = saturate_transitive(store, crm::P89_FALLS_WITHIN);
    let (Some(loc), Some(within)) = (
        store.term(crm::P55_HAS_CURRENT_LOCATION),
        store.term(crm::P89_FALLS_WITHIN),
    ) else {
        return added;
    };
    let within_edges: Vec<Triple> = store.query(Pattern {
        p: Some(within),
        ..Pattern::ANY
    });
    let locations: Vec<Triple> = store.query(Pattern {
        p: Some(loc),
        ..Pattern::ANY
    });
    for l in locations {
        for e in &within_edges {
            if e.s == l.o
                && store.insert_triple(Triple {
                    s: l.s,
                    p: loc,
                    o: e.o,
                })
            {
                added += 1;
            }
        }
    }
    added
}

/// Runs every rule to fixpoint (plus `skos:broader` transitivity).
/// Returns total triples added.
pub fn saturate(store: &mut TripleStore) -> usize {
    let mut added = 0;
    loop {
        let round = saturate_transitive(store, rdf::BROADER)
            + saturate_types(store)
            + saturate_locations(store);
        added += round;
        if round == 0 {
            return added;
        }
    }
}

/// All instances of `class`, respecting subclassing if
/// [`saturate_types`] (or [`saturate`]) ran beforehand.
pub fn instances_of<'a>(store: &'a TripleStore, class: &str) -> Vec<&'a str> {
    store.subjects(rdf::TYPE, class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::install_schema;

    #[test]
    fn transitive_closure_of_broader() {
        let mut s = TripleStore::new();
        s.insert("theme:HighRenaissance", rdf::BROADER, "theme:Renaissance");
        s.insert("theme:Renaissance", rdf::BROADER, "theme:EuropeanArt");
        s.insert("theme:EuropeanArt", rdf::BROADER, "theme:Art");
        let added = saturate_transitive(&mut s, rdf::BROADER);
        assert_eq!(added, 3, "HR→EA, HR→Art, R→Art");
        assert!(s.contains("theme:HighRenaissance", rdf::BROADER, "theme:Art"));
    }

    #[test]
    fn closure_handles_cycles() {
        let mut s = TripleStore::new();
        s.insert("a", rdf::BROADER, "b");
        s.insert("b", rdf::BROADER, "a");
        saturate_transitive(&mut s, rdf::BROADER);
        // a→a, b→b added; fixpoint reached without divergence.
        assert!(s.contains("a", rdf::BROADER, "a"));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn missing_property_is_noop() {
        let mut s = TripleStore::new();
        s.insert("x", "p", "y");
        assert_eq!(saturate_transitive(&mut s, rdf::BROADER), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn type_lifting_through_subclasses() {
        let mut s = TripleStore::new();
        install_schema(&mut s);
        s.insert("louvre:MonaLisa", rdf::TYPE, crm::E22_MAN_MADE_OBJECT);
        s.insert("louvre:Leonardo", rdf::TYPE, crm::E21_PERSON);
        saturate_types(&mut s);
        assert!(s.contains("louvre:MonaLisa", rdf::TYPE, crm::E18_PHYSICAL_THING));
        assert!(s.contains("louvre:Leonardo", rdf::TYPE, crm::E39_ACTOR));
        let things = instances_of(&s, crm::E18_PHYSICAL_THING);
        assert_eq!(things, vec!["louvre:MonaLisa"]);
    }

    #[test]
    fn location_lifting_mirrors_hierarchy_lifting() {
        let mut s = TripleStore::new();
        s.insert(
            "louvre:MonaLisa",
            crm::P55_HAS_CURRENT_LOCATION,
            "place:SalleDesEtats",
        );
        s.insert(
            "place:SalleDesEtats",
            crm::P89_FALLS_WITHIN,
            "place:DenonWing",
        );
        s.insert("place:DenonWing", crm::P89_FALLS_WITHIN, "place:Louvre");
        saturate_locations(&mut s);
        assert!(s.contains(
            "louvre:MonaLisa",
            crm::P55_HAS_CURRENT_LOCATION,
            "place:DenonWing"
        ));
        assert!(s.contains(
            "louvre:MonaLisa",
            crm::P55_HAS_CURRENT_LOCATION,
            "place:Louvre"
        ));
    }

    #[test]
    fn saturate_reaches_global_fixpoint() {
        let mut s = TripleStore::new();
        install_schema(&mut s);
        s.insert("louvre:MonaLisa", rdf::TYPE, crm::E22_MAN_MADE_OBJECT);
        s.insert(
            "louvre:MonaLisa",
            crm::P55_HAS_CURRENT_LOCATION,
            "place:Room",
        );
        s.insert("place:Room", crm::P89_FALLS_WITHIN, "place:Museum");
        let first = saturate(&mut s);
        assert!(first > 0);
        assert_eq!(saturate(&mut s), 0, "second run must add nothing");
    }
}
