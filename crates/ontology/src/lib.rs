#![warn(missing_docs)]

//! # sitm-ontology
//!
//! An in-memory triple store with a CIDOC-CRM-flavoured museum
//! vocabulary — the paper's §5 future-work item ("it would be
//! interesting to integrate the indoor space representation with formal
//! ontologies of cultural heritage information (e.g. CIDOC Conceptual
//! Reference Model)") made concrete:
//!
//! * [`term`] — string interning ([`Interner`], [`TermId`]);
//! * [`triple`] — [`TripleStore`]: SPO/POS/OSP-indexed statements with
//!   full pattern queries;
//! * [`vocab`] — the RDF/RDFS/SKOS core and the CRM classes and
//!   properties the museum KB uses;
//! * [`reasoner`] — forward-chaining saturation: transitive properties,
//!   type lifting through `rdfs:subClassOf`, location lifting through
//!   `crm:P89_falls_within` (the KB mirror of the paper's §3.2 hierarchy
//!   lifting);
//! * [`museum`] — the curated Louvre exhibit catalogue, keyed to the
//!   `sitm-louvre` RoIs and thematic zones;
//! * [`enrich`] — trajectory enrichment: stays gain exhibit/theme/artist
//!   annotations, traces fold into per-theme dwell profiles for visitor
//!   profiling.

pub mod enrich;
pub mod museum;
pub mod reasoner;
pub mod term;
pub mod triple;
pub mod vocab;

pub use enrich::{
    enrich_trace, profile_similarity, theme_dwell_profile, theme_with_ancestors, zone_semantics,
    ZoneSemantics,
};
pub use museum::{build_louvre_kb, exhibit_catalogue, exhibits_in_zone, ExhibitFact};
pub use reasoner::{instances_of, saturate, saturate_transitive, saturate_types};
pub use term::{Interner, TermId};
pub use triple::{Pattern, Triple, TripleStore};
