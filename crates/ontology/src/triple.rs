//! The in-memory triple store.
//!
//! Triples `(subject, predicate, object)` over interned [`TermId`]s are
//! kept in three sorted permutation indexes — SPO, POS, OSP — the classic
//! layout that makes every query pattern (`s p ?`, `? p o`, `o s ?`, …)
//! answerable with one range scan. The store is the substrate for the
//! paper's §5 future-work item: "integrate the indoor space
//! representation with formal ontologies of cultural heritage
//! information (e.g. CIDOC Conceptual Reference Model)".

use std::collections::BTreeSet;
use std::fmt;

use crate::term::{Interner, TermId};

/// One statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject.
    pub s: TermId,
    /// Predicate.
    pub p: TermId,
    /// Object.
    pub o: TermId,
}

/// A query pattern: `None` is a wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pattern {
    /// Subject constraint.
    pub s: Option<TermId>,
    /// Predicate constraint.
    pub p: Option<TermId>,
    /// Object constraint.
    pub o: Option<TermId>,
}

impl Pattern {
    /// Matches every triple.
    pub const ANY: Pattern = Pattern {
        s: None,
        p: None,
        o: None,
    };

    /// True if `t` satisfies the pattern.
    pub fn matches(&self, t: Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }
}

const MIN: TermId = TermId(0);
const MAX: TermId = TermId(u32::MAX);

/// An interning triple store with SPO/POS/OSP indexes.
#[derive(Debug, Clone, Default)]
pub struct TripleStore {
    interner: Interner,
    spo: BTreeSet<(TermId, TermId, TermId)>,
    pos: BTreeSet<(TermId, TermId, TermId)>,
    osp: BTreeSet<(TermId, TermId, TermId)>,
}

impl TripleStore {
    /// An empty store.
    pub fn new() -> TripleStore {
        TripleStore::default()
    }

    /// Interns a term (see [`Interner::intern`]).
    pub fn intern(&mut self, term: &str) -> TermId {
        self.interner.intern(term)
    }

    /// Id of an already-interned term.
    pub fn term(&self, term: &str) -> Option<TermId> {
        self.interner.get(term)
    }

    /// String form of a term id.
    pub fn resolve(&self, id: TermId) -> &str {
        self.interner.resolve(id)
    }

    /// Inserts a triple of strings, interning as needed. Returns `false`
    /// when the triple was already present.
    pub fn insert(&mut self, s: &str, p: &str, o: &str) -> bool {
        let t = Triple {
            s: self.intern(s),
            p: self.intern(p),
            o: self.intern(o),
        };
        self.insert_triple(t)
    }

    /// Inserts a triple of ids (which must come from this store).
    pub fn insert_triple(&mut self, t: Triple) -> bool {
        let added = self.spo.insert((t.s, t.p, t.o));
        if added {
            self.pos.insert((t.p, t.o, t.s));
            self.osp.insert((t.o, t.s, t.p));
        }
        added
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when no triples are stored.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Membership test on strings.
    pub fn contains(&self, s: &str, p: &str, o: &str) -> bool {
        match (self.term(s), self.term(p), self.term(o)) {
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s, p, o)),
            _ => false,
        }
    }

    /// All triples matching `pattern`, via the most selective index.
    pub fn query(&self, pattern: Pattern) -> Vec<Triple> {
        match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    vec![Triple { s, p, o }]
                } else {
                    Vec::new()
                }
            }
            (Some(s), p, o) => self
                .spo
                .range((s, p.unwrap_or(MIN), MIN)..=(s, p.unwrap_or(MAX), MAX))
                .filter(|&&(_, _, to)| o.is_none_or(|want| want == to))
                .map(|&(s, p, o)| Triple { s, p, o })
                .collect(),
            (None, Some(p), o) => self
                .pos
                .range((p, o.unwrap_or(MIN), MIN)..=(p, o.unwrap_or(MAX), MAX))
                .map(|&(p, o, s)| Triple { s, p, o })
                .collect(),
            (None, None, Some(o)) => self
                .osp
                .range((o, MIN, MIN)..=(o, MAX, MAX))
                .map(|&(o, s, p)| Triple { s, p, o })
                .collect(),
            (None, None, None) => self
                .spo
                .iter()
                .map(|&(s, p, o)| Triple { s, p, o })
                .collect(),
        }
    }

    /// Objects of `(s, p, ?)` for string terms.
    pub fn objects(&self, s: &str, p: &str) -> Vec<&str> {
        match (self.term(s), self.term(p)) {
            (Some(s), Some(p)) => self
                .query(Pattern {
                    s: Some(s),
                    p: Some(p),
                    o: None,
                })
                .into_iter()
                .map(|t| self.resolve(t.o))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Subjects of `(?, p, o)` for string terms.
    pub fn subjects(&self, p: &str, o: &str) -> Vec<&str> {
        match (self.term(p), self.term(o)) {
            (Some(p), Some(o)) => self
                .query(Pattern {
                    s: None,
                    p: Some(p),
                    o: Some(o),
                })
                .into_iter()
                .map(|t| self.resolve(t.s))
                .collect(),
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for TripleStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &(s, p, o) in &self.spo {
            writeln!(
                f,
                "{} {} {} .",
                self.resolve(s),
                self.resolve(p),
                self.resolve(o)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert("monalisa", "type", "painting");
        s.insert("monalisa", "by", "leonardo");
        s.insert("venus", "type", "sculpture");
        s.insert("venus", "in", "room16");
        s.insert("leonardo", "type", "person");
        s
    }

    #[test]
    fn insert_is_idempotent() {
        let mut s = store();
        assert_eq!(s.len(), 5);
        assert!(!s.insert("monalisa", "type", "painting"));
        assert_eq!(s.len(), 5);
        assert!(s.insert("monalisa", "type", "icon"));
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn contains_on_strings() {
        let s = store();
        assert!(s.contains("monalisa", "by", "leonardo"));
        assert!(!s.contains("monalisa", "by", "raphael"));
        assert!(!s.contains("never", "interned", "terms"));
    }

    #[test]
    fn all_eight_patterns() {
        let s = store();
        let id = |t: &str| s.term(t).unwrap();
        // spo fully bound
        assert_eq!(
            s.query(Pattern {
                s: Some(id("venus")),
                p: Some(id("type")),
                o: Some(id("sculpture"))
            })
            .len(),
            1
        );
        // s??
        assert_eq!(
            s.query(Pattern {
                s: Some(id("monalisa")),
                ..Pattern::ANY
            })
            .len(),
            2
        );
        // sp?
        assert_eq!(
            s.query(Pattern {
                s: Some(id("monalisa")),
                p: Some(id("type")),
                o: None
            })
            .len(),
            1
        );
        // s?o
        assert_eq!(
            s.query(Pattern {
                s: Some(id("monalisa")),
                p: None,
                o: Some(id("leonardo"))
            })
            .len(),
            1
        );
        // ?p?
        assert_eq!(
            s.query(Pattern {
                p: Some(id("type")),
                ..Pattern::ANY
            })
            .len(),
            3
        );
        // ?po
        assert_eq!(
            s.query(Pattern {
                s: None,
                p: Some(id("type")),
                o: Some(id("person"))
            })
            .len(),
            1
        );
        // ??o
        assert_eq!(
            s.query(Pattern {
                o: Some(id("leonardo")),
                ..Pattern::ANY
            })
            .len(),
            1
        );
        // ???
        assert_eq!(s.query(Pattern::ANY).len(), 5);
    }

    #[test]
    fn query_results_satisfy_pattern() {
        let s = store();
        let id = |t: &str| s.term(t).unwrap();
        let patterns = [
            Pattern::ANY,
            Pattern {
                s: Some(id("venus")),
                ..Pattern::ANY
            },
            Pattern {
                p: Some(id("type")),
                ..Pattern::ANY
            },
            Pattern {
                o: Some(id("person")),
                ..Pattern::ANY
            },
        ];
        for pat in patterns {
            for t in s.query(pat) {
                assert!(pat.matches(t));
            }
        }
    }

    #[test]
    fn objects_and_subjects_helpers() {
        let s = store();
        assert_eq!(s.objects("monalisa", "by"), vec!["leonardo"]);
        let mut typed: Vec<&str> = s.subjects("type", "painting");
        typed.sort_unstable();
        assert_eq!(typed, vec!["monalisa"]);
        assert!(s.objects("nobody", "by").is_empty());
        assert!(s.subjects("by", "nobody").is_empty());
    }

    #[test]
    fn display_emits_ntriple_like_lines() {
        let s = store();
        let text = s.to_string();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains("monalisa by leonardo ."));
    }

    #[test]
    fn empty_store() {
        let s = TripleStore::new();
        assert!(s.is_empty());
        assert!(s.query(Pattern::ANY).is_empty());
    }
}
