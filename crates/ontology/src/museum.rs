//! The Louvre exhibit knowledge base.
//!
//! Instantiates the CRM-flavoured vocabulary for the flagship exhibits of
//! the Louvre case study (§4), linking each exhibit to:
//!
//! * its **RoI key** in `sitm-louvre` (`roi-mona-lisa`, …) and its
//!   **thematic zone id**, so KB facts join against the indoor space
//!   model's cells;
//! * its **creator** via an E12 Production event (`P108i` / `P14`),
//!   CIDOC-style;
//! * its **theme** (`P2_has_type`) inside a SKOS-ish `broader` hierarchy.
//!
//! The facts are encyclopedic (artists, periods) and serve as a realistic
//! external-source payload, exactly the "complementary case-specific
//! datasets" §2.2 says semantic TMs should integrate.

use crate::triple::TripleStore;
use crate::vocab::{crm, install_schema, rdf};

/// One exhibit row of the curated catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExhibitFact {
    /// KB IRI, e.g. `louvre:MonaLisa`.
    pub iri: &'static str,
    /// RoI key in the `sitm-louvre` space model (`roi-…`), when the
    /// exhibit is one of the modelled flagship RoIs.
    pub roi_key: Option<&'static str>,
    /// Thematic zone housing the exhibit.
    pub zone_id: u32,
    /// Display label.
    pub label: &'static str,
    /// Creator IRI (`None` for anonymous works).
    pub creator: Option<&'static str>,
    /// Creator label.
    pub creator_label: Option<&'static str>,
    /// Theme IRI (leaf of the theme hierarchy).
    pub theme: &'static str,
    /// Production time-span IRI.
    pub period: &'static str,
}

/// The curated exhibit catalogue.
pub fn exhibit_catalogue() -> Vec<ExhibitFact> {
    vec![
        ExhibitFact {
            iri: "louvre:MonaLisa",
            roi_key: Some("roi-mona-lisa"),
            zone_id: 60862,
            label: "Mona Lisa",
            creator: Some("louvre:LeonardoDaVinci"),
            creator_label: Some("Leonardo da Vinci"),
            theme: "theme:ItalianRenaissancePainting",
            period: "period:HighRenaissance",
        },
        ExhibitFact {
            iri: "louvre:VenusDeMilo",
            roi_key: Some("roi-venus-de-milo"),
            zone_id: 60852,
            label: "Vénus de Milo",
            creator: Some("louvre:AlexandrosOfAntioch"),
            creator_label: Some("Alexandros of Antioch"),
            theme: "theme:GreekSculpture",
            period: "period:HellenisticGreece",
        },
        ExhibitFact {
            iri: "louvre:WingedVictory",
            roi_key: Some("roi-winged-victory"),
            zone_id: 60864,
            label: "Winged Victory of Samothrace",
            creator: None,
            creator_label: None,
            theme: "theme:GreekSculpture",
            period: "period:HellenisticGreece",
        },
        ExhibitFact {
            iri: "louvre:RaftOfTheMedusa",
            roi_key: Some("roi-raft-of-the-medusa"),
            zone_id: 60863,
            label: "The Raft of the Medusa",
            creator: Some("louvre:TheodoreGericault"),
            creator_label: Some("Théodore Géricault"),
            theme: "theme:FrenchRomanticPainting",
            period: "period:Romanticism",
        },
        ExhibitFact {
            iri: "louvre:CodeOfHammurabi",
            roi_key: Some("roi-code-of-hammurabi"),
            zone_id: 60854,
            label: "Code of Hammurabi",
            creator: None,
            creator_label: None,
            theme: "theme:MesopotamianAntiquities",
            period: "period:OldBabylonian",
        },
        ExhibitFact {
            iri: "louvre:SeatedScribe",
            roi_key: Some("roi-seated-scribe"),
            zone_id: 60853,
            label: "The Seated Scribe",
            creator: None,
            creator_label: None,
            theme: "theme:EgyptianAntiquities",
            period: "period:OldKingdomEgypt",
        },
        ExhibitFact {
            iri: "louvre:LibertyLeadingThePeople",
            roi_key: None,
            zone_id: 60863,
            label: "Liberty Leading the People",
            creator: Some("louvre:EugeneDelacroix"),
            creator_label: Some("Eugène Delacroix"),
            theme: "theme:FrenchRomanticPainting",
            period: "period:Romanticism",
        },
        ExhibitFact {
            iri: "louvre:CoronationOfNapoleon",
            roi_key: None,
            zone_id: 60863,
            label: "The Coronation of Napoleon",
            creator: Some("louvre:JacquesLouisDavid"),
            creator_label: Some("Jacques-Louis David"),
            theme: "theme:FrenchNeoclassicalPainting",
            period: "period:Neoclassicism",
        },
        ExhibitFact {
            iri: "louvre:GrandeOdalisque",
            roi_key: None,
            zone_id: 60863,
            label: "La Grande Odalisque",
            creator: Some("louvre:JeanAugusteIngres"),
            creator_label: Some("Jean-Auguste-Dominique Ingres"),
            theme: "theme:FrenchNeoclassicalPainting",
            period: "period:Neoclassicism",
        },
        ExhibitFact {
            iri: "louvre:DyingSlave",
            roi_key: None,
            zone_id: 60852,
            label: "Dying Slave",
            creator: Some("louvre:Michelangelo"),
            creator_label: Some("Michelangelo Buonarroti"),
            theme: "theme:ItalianRenaissanceSculpture",
            period: "period:HighRenaissance",
        },
        ExhibitFact {
            iri: "louvre:PsycheRevived",
            roi_key: None,
            zone_id: 60852,
            label: "Psyche Revived by Cupid's Kiss",
            creator: Some("louvre:AntonioCanova"),
            creator_label: Some("Antonio Canova"),
            theme: "theme:ItalianNeoclassicalSculpture",
            period: "period:Neoclassicism",
        },
        ExhibitFact {
            iri: "louvre:SleepingHermaphroditus",
            roi_key: None,
            zone_id: 60852,
            label: "Sleeping Hermaphroditus",
            creator: None,
            creator_label: None,
            theme: "theme:GreekSculpture",
            period: "period:HellenisticGreece",
        },
    ]
}

/// The theme hierarchy: `(narrower, broader)` pairs.
fn theme_hierarchy() -> &'static [(&'static str, &'static str)] {
    &[
        ("theme:ItalianRenaissancePainting", "theme:Painting"),
        ("theme:FrenchRomanticPainting", "theme:Painting"),
        ("theme:FrenchNeoclassicalPainting", "theme:Painting"),
        ("theme:ItalianRenaissanceSculpture", "theme:Sculpture"),
        ("theme:ItalianNeoclassicalSculpture", "theme:Sculpture"),
        ("theme:GreekSculpture", "theme:Sculpture"),
        ("theme:MesopotamianAntiquities", "theme:Antiquities"),
        ("theme:EgyptianAntiquities", "theme:Antiquities"),
        ("theme:Painting", "theme:FineArt"),
        ("theme:Sculpture", "theme:FineArt"),
        ("theme:Antiquities", "theme:FineArt"),
    ]
}

/// IRI of the place resource for a thematic zone.
pub fn zone_place_iri(zone_id: u32) -> String {
    format!("place:zone-{zone_id}")
}

/// IRI of the place resource for an RoI key.
pub fn roi_place_iri(roi_key: &str) -> String {
    format!("place:{roi_key}")
}

/// Builds the Louvre knowledge base (schema + catalogue + theme
/// hierarchy + place containment), **without** running the reasoner —
/// call [`crate::reasoner::saturate`] to materialize inferences.
pub fn build_louvre_kb() -> TripleStore {
    let mut kb = TripleStore::new();
    install_schema(&mut kb);
    for (narrow, broad) in theme_hierarchy() {
        kb.insert(narrow, rdf::BROADER, broad);
        kb.insert(narrow, rdf::TYPE, crm::E55_TYPE);
        kb.insert(broad, rdf::TYPE, crm::E55_TYPE);
    }
    for fact in exhibit_catalogue() {
        kb.insert(fact.iri, rdf::TYPE, crm::E22_MAN_MADE_OBJECT);
        kb.insert(fact.iri, rdf::LABEL, fact.label);
        kb.insert(fact.iri, crm::P2_HAS_TYPE, fact.theme);

        let zone_place = zone_place_iri(fact.zone_id);
        kb.insert(&zone_place, rdf::TYPE, crm::E53_PLACE);
        match fact.roi_key {
            Some(roi) => {
                let roi_place = roi_place_iri(roi);
                kb.insert(&roi_place, rdf::TYPE, crm::E53_PLACE);
                kb.insert(&roi_place, crm::P89_FALLS_WITHIN, &zone_place);
                kb.insert(fact.iri, crm::P55_HAS_CURRENT_LOCATION, &roi_place);
            }
            None => {
                kb.insert(fact.iri, crm::P55_HAS_CURRENT_LOCATION, &zone_place);
            }
        }

        let production = format!("{}-production", fact.iri);
        kb.insert(fact.iri, crm::P108I_WAS_PRODUCED_BY, &production);
        kb.insert(&production, rdf::TYPE, crm::E12_PRODUCTION);
        kb.insert(&production, crm::P4_HAS_TIME_SPAN, fact.period);
        kb.insert(fact.period, rdf::TYPE, crm::E52_TIME_SPAN);
        if let (Some(creator), Some(label)) = (fact.creator, fact.creator_label) {
            kb.insert(&production, crm::P14_CARRIED_OUT_BY, creator);
            kb.insert(creator, rdf::TYPE, crm::E21_PERSON);
            kb.insert(creator, rdf::LABEL, label);
        }
    }
    kb
}

/// Exhibit IRIs located (directly) in a thematic zone, per the raw KB.
pub fn exhibits_in_zone(kb: &TripleStore, zone_id: u32) -> Vec<&str> {
    kb.subjects(crm::P55_HAS_CURRENT_LOCATION, &zone_place_iri(zone_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reasoner::{instances_of, saturate};

    #[test]
    fn catalogue_is_consistent() {
        let cat = exhibit_catalogue();
        assert!(cat.len() >= 12);
        let mut iris: Vec<&str> = cat.iter().map(|f| f.iri).collect();
        iris.sort_unstable();
        iris.dedup();
        assert_eq!(iris.len(), cat.len(), "IRIs must be unique");
        // Every themed exhibit's theme is in the hierarchy.
        let themes: Vec<&str> = theme_hierarchy().iter().map(|&(n, _)| n).collect();
        for f in &cat {
            assert!(
                themes.contains(&f.theme),
                "{} has unknown theme {}",
                f.iri,
                f.theme
            );
        }
    }

    #[test]
    fn roi_keys_match_louvre_model() {
        use sitm_louvre::rois::famous_exhibits;
        let famous = famous_exhibits();
        for f in exhibit_catalogue() {
            if let Some(roi) = f.roi_key {
                let matching = famous.iter().find(|e| e.key == roi);
                assert!(
                    matching.is_some(),
                    "{roi} not in sitm-louvre famous exhibits"
                );
                assert_eq!(
                    matching.unwrap().zone_id,
                    f.zone_id,
                    "zone mismatch for {roi}"
                );
            }
        }
    }

    #[test]
    fn kb_answers_creator_queries() {
        let kb = build_louvre_kb();
        let productions = kb.objects("louvre:MonaLisa", crm::P108I_WAS_PRODUCED_BY);
        assert_eq!(productions, vec!["louvre:MonaLisa-production"]);
        let artists = kb.objects("louvre:MonaLisa-production", crm::P14_CARRIED_OUT_BY);
        assert_eq!(artists, vec!["louvre:LeonardoDaVinci"]);
    }

    #[test]
    fn saturated_kb_lifts_exhibits_to_physical_things() {
        let mut kb = build_louvre_kb();
        saturate(&mut kb);
        let things = instances_of(&kb, crm::E18_PHYSICAL_THING);
        assert!(things.len() >= exhibit_catalogue().len());
        assert!(things.contains(&"louvre:MonaLisa"));
    }

    #[test]
    fn saturated_kb_lifts_roi_locations_to_zones() {
        let mut kb = build_louvre_kb();
        saturate(&mut kb);
        // Mona Lisa sits in an RoI; after saturation it is also located in
        // the RoI's zone (location lifting through P89).
        assert!(kb.contains(
            "louvre:MonaLisa",
            crm::P55_HAS_CURRENT_LOCATION,
            &zone_place_iri(60862)
        ));
        assert!(exhibits_in_zone(&kb, 60862).contains(&"louvre:MonaLisa"));
    }

    #[test]
    fn zone_queries_group_exhibits() {
        let kb = build_louvre_kb();
        let mut in_paintings_zone = exhibits_in_zone(&kb, 60863);
        in_paintings_zone.sort_unstable();
        assert!(in_paintings_zone.contains(&"louvre:LibertyLeadingThePeople"));
        assert!(in_paintings_zone.contains(&"louvre:CoronationOfNapoleon"));
        assert!(exhibits_in_zone(&kb, 59999).is_empty());
    }
}
