//! Term interning.
//!
//! A knowledge base mentions the same IRIs and literals thousands of
//! times; the triple store therefore works on dense [`TermId`]s and keeps
//! each distinct string once, following the string-interning pattern used
//! throughout RDF engines.

use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A bidirectional string ↔ [`TermId`] table.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    ids: HashMap<String, TermId>,
    strings: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Returns the id for `term`, interning it on first sight.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.strings.len()).expect("more than u32::MAX terms"));
        self.ids.insert(term.to_string(), id);
        self.strings.push(term.to_string());
        id
    }

    /// Looks a term up without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// The string for an id (panics on a foreign id).
    pub fn resolve(&self, id: TermId) -> &str {
        &self.strings[id.index()]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("crm:E22_Man-Made_Object");
        let b = i.intern("crm:E22_Man-Made_Object");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
        assert_eq!(i.resolve(a), "crm:E22_Man-Made_Object");
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut i = Interner::new();
        let a = i.intern("louvre:MonaLisa");
        let b = i.intern("louvre:VenusDeMilo");
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("louvre:MonaLisa"), Some(a));
        assert_eq!(i.get("louvre:Unknown"), None);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.get("x"), None);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(TermId(7).to_string(), "t7");
    }
}
