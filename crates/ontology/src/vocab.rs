//! Vocabulary constants.
//!
//! A compact, CIDOC-CRM-flavoured vocabulary (the paper's §5 names the
//! CIDOC Conceptual Reference Model \[12\] as the target ontology for the
//! museum domain), plus the few RDF/RDFS/SKOS terms the reasoner
//! understands. Only the classes and properties the museum knowledge
//! base exercises are declared — this is a vocabulary, not a full CRM
//! implementation.

/// RDF / RDFS / SKOS core terms.
pub mod rdf {
    /// `rdf:type` — instance-of.
    pub const TYPE: &str = "rdf:type";
    /// `rdfs:subClassOf` — class subsumption (transitive).
    pub const SUB_CLASS_OF: &str = "rdfs:subClassOf";
    /// `rdfs:label` — human-readable name.
    pub const LABEL: &str = "rdfs:label";
    /// `skos:broader` — concept generalization (transitive).
    pub const BROADER: &str = "skos:broader";
}

/// CIDOC-CRM-flavoured classes and properties.
pub mod crm {
    /// E18 Physical Thing.
    pub const E18_PHYSICAL_THING: &str = "crm:E18_Physical_Thing";
    /// E22 Man-Made Object (the exhibits).
    pub const E22_MAN_MADE_OBJECT: &str = "crm:E22_Man-Made_Object";
    /// E21 Person.
    pub const E21_PERSON: &str = "crm:E21_Person";
    /// E39 Actor (superclass of Person).
    pub const E39_ACTOR: &str = "crm:E39_Actor";
    /// E53 Place (rooms, zones, RoIs).
    pub const E53_PLACE: &str = "crm:E53_Place";
    /// E55 Type (themes, materials, genres).
    pub const E55_TYPE: &str = "crm:E55_Type";
    /// E12 Production (the event that created an object).
    pub const E12_PRODUCTION: &str = "crm:E12_Production";
    /// E52 Time-Span.
    pub const E52_TIME_SPAN: &str = "crm:E52_Time-Span";

    /// P2 has type: object → E55 Type.
    pub const P2_HAS_TYPE: &str = "crm:P2_has_type";
    /// P55 has current location: object → E53 Place.
    pub const P55_HAS_CURRENT_LOCATION: &str = "crm:P55_has_current_location";
    /// P108i was produced by: object → E12 Production.
    pub const P108I_WAS_PRODUCED_BY: &str = "crm:P108i_was_produced_by";
    /// P14 carried out by: event → E39 Actor.
    pub const P14_CARRIED_OUT_BY: &str = "crm:P14_carried_out_by";
    /// P4 has time-span: event → E52 Time-Span.
    pub const P4_HAS_TIME_SPAN: &str = "crm:P4_has_time-span";
    /// P89 falls within: place → place (transitive).
    pub const P89_FALLS_WITHIN: &str = "crm:P89_falls_within";
}

/// Installs the class hierarchy the museum KB relies on. Idempotent.
pub fn install_schema(store: &mut crate::TripleStore) {
    store.insert(
        crm::E22_MAN_MADE_OBJECT,
        rdf::SUB_CLASS_OF,
        crm::E18_PHYSICAL_THING,
    );
    store.insert(crm::E21_PERSON, rdf::SUB_CLASS_OF, crm::E39_ACTOR);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripleStore;

    #[test]
    fn schema_is_installed_once() {
        let mut store = TripleStore::new();
        install_schema(&mut store);
        let n = store.len();
        install_schema(&mut store);
        assert_eq!(store.len(), n, "schema install must be idempotent");
        assert!(store.contains(
            crm::E22_MAN_MADE_OBJECT,
            rdf::SUB_CLASS_OF,
            crm::E18_PHYSICAL_THING
        ));
    }
}
