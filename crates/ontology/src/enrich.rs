//! Semantic enrichment of trajectories from the knowledge base.
//!
//! This is the bridge the paper's §2.2 calls for — integrating "movement
//! ontologies, linked open data, … or complementary case-specific
//! datasets" with the trajectory model: stays in a thematic zone gain
//! annotations naming the exhibits, themes, and artists the zone hosts,
//! and a whole trace folds into a per-theme dwell profile usable for
//! visitor profiling (§5 future work).
//!
//! The enrichers are space-model-agnostic: the caller provides a
//! `zone_of` closure mapping a [`CellRef`] to a thematic zone id, so the
//! crate needs no dependency on any particular building model.

use std::collections::BTreeMap;

use sitm_core::{Annotation, Duration, Trace};
use sitm_space::CellRef;

use crate::museum::zone_place_iri;
use crate::triple::TripleStore;
use crate::vocab::{crm, rdf};

/// What the KB knows about one thematic zone.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ZoneSemantics {
    /// Labels of exhibits located in the zone.
    pub exhibits: Vec<String>,
    /// Theme IRIs of those exhibits, including `skos:broader` ancestors.
    pub themes: Vec<String>,
    /// Labels of the artists who produced those exhibits.
    pub artists: Vec<String>,
}

impl ZoneSemantics {
    /// True when the KB has nothing on the zone.
    pub fn is_empty(&self) -> bool {
        self.exhibits.is_empty() && self.themes.is_empty() && self.artists.is_empty()
    }
}

/// Walks `skos:broader` upward from `theme`, returning the theme and all
/// its ancestors (each once, nearest first). Works on the raw KB; on a
/// saturated KB the extra hops are already materialized and deduped here.
pub fn theme_with_ancestors(kb: &TripleStore, theme: &str) -> Vec<String> {
    let mut out: Vec<String> = vec![theme.to_string()];
    let mut cursor = 0;
    while cursor < out.len() {
        let current = out[cursor].clone();
        for broader in kb.objects(&current, rdf::BROADER) {
            if !out.iter().any(|t| t == broader) {
                out.push(broader.to_string());
            }
        }
        cursor += 1;
    }
    out
}

/// Looks up everything the KB knows about a thematic zone.
pub fn zone_semantics(kb: &TripleStore, zone_id: u32) -> ZoneSemantics {
    let place = zone_place_iri(zone_id);
    let mut semantics = ZoneSemantics::default();
    let mut exhibits = kb.subjects(crm::P55_HAS_CURRENT_LOCATION, &place);
    exhibits.sort_unstable();
    for exhibit in exhibits {
        let exhibit = exhibit.to_string();
        for label in kb.objects(&exhibit, rdf::LABEL) {
            if !semantics.exhibits.iter().any(|e| e == label) {
                semantics.exhibits.push(label.to_string());
            }
        }
        for theme in kb.objects(&exhibit, crm::P2_HAS_TYPE) {
            for t in theme_with_ancestors(kb, theme) {
                if !semantics.themes.contains(&t) {
                    semantics.themes.push(t);
                }
            }
        }
        for production in kb.objects(&exhibit, crm::P108I_WAS_PRODUCED_BY) {
            let production = production.to_string();
            for artist in kb.objects(&production, crm::P14_CARRIED_OUT_BY) {
                let artist = artist.to_string();
                for label in kb.objects(&artist, rdf::LABEL) {
                    if !semantics.artists.iter().any(|a| a == label) {
                        semantics.artists.push(label.to_string());
                    }
                }
            }
        }
    }
    semantics
}

/// Annotation kinds produced by the enricher.
pub mod kinds {
    use sitm_core::AnnotationKind;

    /// `exhibit:<label>` annotations.
    pub fn exhibit() -> AnnotationKind {
        AnnotationKind::Custom("exhibit".to_string())
    }

    /// `theme:<iri>` annotations.
    pub fn theme() -> AnnotationKind {
        AnnotationKind::Custom("theme".to_string())
    }

    /// `artist:<label>` annotations.
    pub fn artist() -> AnnotationKind {
        AnnotationKind::Custom("artist".to_string())
    }
}

/// Enriches a trace: every stay whose cell maps to a zone the KB knows
/// gains exhibit/theme/artist annotations. Returns the enriched trace and
/// the number of stays touched. The input trace is consumed (stays keep
/// their existing annotations).
pub fn enrich_trace(
    kb: &TripleStore,
    trace: Trace,
    mut zone_of: impl FnMut(CellRef) -> Option<u32>,
) -> (Trace, usize) {
    let mut touched = 0;
    let mut semantics_cache: BTreeMap<u32, ZoneSemantics> = BTreeMap::new();
    let mut intervals = trace.into_intervals();
    for stay in &mut intervals {
        let Some(zone_id) = zone_of(stay.cell) else {
            continue;
        };
        let semantics = semantics_cache
            .entry(zone_id)
            .or_insert_with(|| zone_semantics(kb, zone_id));
        if semantics.is_empty() {
            continue;
        }
        for label in &semantics.exhibits {
            stay.annotations
                .insert(Annotation::new(kinds::exhibit(), label.clone()));
        }
        for theme in &semantics.themes {
            stay.annotations
                .insert(Annotation::new(kinds::theme(), theme.clone()));
        }
        for artist in &semantics.artists {
            stay.annotations
                .insert(Annotation::new(kinds::artist(), artist.clone()));
        }
        touched += 1;
    }
    let trace = Trace::new(intervals).expect("enrichment does not reorder stays");
    (trace, touched)
}

/// Folds a trace into a per-theme dwell profile: for every stay whose
/// zone hosts themed exhibits, the stay's duration is credited to each
/// *leaf* theme in the zone (ancestors excluded so profiles stay
/// comparable). This is the feature vector for visitor profiling.
pub fn theme_dwell_profile(
    kb: &TripleStore,
    trace: &Trace,
    mut zone_of: impl FnMut(CellRef) -> Option<u32>,
) -> BTreeMap<String, Duration> {
    let mut profile: BTreeMap<String, Duration> = BTreeMap::new();
    let mut leaf_cache: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for stay in trace.intervals() {
        let Some(zone_id) = zone_of(stay.cell) else {
            continue;
        };
        let leaves = leaf_cache.entry(zone_id).or_insert_with(|| {
            let place = zone_place_iri(zone_id);
            let exhibits: Vec<String> = kb
                .subjects(crm::P55_HAS_CURRENT_LOCATION, &place)
                .into_iter()
                .map(str::to_string)
                .collect();
            let mut themes: Vec<String> = exhibits
                .iter()
                .flat_map(|e| kb.objects(e, crm::P2_HAS_TYPE))
                .map(str::to_string)
                .collect();
            themes.sort_unstable();
            themes.dedup();
            themes
        });
        for theme in leaves.iter() {
            let slot = profile.entry(theme.clone()).or_insert(Duration::ZERO);
            *slot = *slot + stay.duration();
        }
    }
    profile
}

/// Cosine similarity of two theme dwell profiles in `[0, 1]`
/// (0 for orthogonal interests, 1 for proportional ones). Returns 0 when
/// either profile is empty.
pub fn profile_similarity(a: &BTreeMap<String, Duration>, b: &BTreeMap<String, Duration>) -> f64 {
    let dot: f64 = a
        .iter()
        .filter_map(|(theme, &da)| b.get(theme).map(|&db| da.as_secs_f64() * db.as_secs_f64()))
        .sum();
    let norm = |m: &BTreeMap<String, Duration>| -> f64 {
        m.values()
            .map(|d| d.as_secs_f64().powi(2))
            .sum::<f64>()
            .sqrt()
    };
    let (na, nb) = (norm(a), norm(b));
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let sim = dot / (na * nb);
    // An empty dot product sums to -0.0, which clamp would keep; normalize
    // all non-positive results to +0.0.
    if sim <= 0.0 {
        0.0
    } else {
        sim.min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::museum::build_louvre_kb;
    use crate::reasoner::saturate;
    use sitm_core::{PresenceInterval, Timestamp, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    /// Cells 0..3 map to the zones of the KB's flagship exhibits.
    fn zone_of(c: CellRef) -> Option<u32> {
        match c.node.index() {
            0 => Some(60862), // Mona Lisa / Salle des États
            1 => Some(60852), // Greek & Italian sculpture
            2 => Some(60863), // French large formats
            _ => None,
        }
    }

    fn trace() -> Trace {
        Trace::new(vec![
            PresenceInterval::new(
                TransitionTaken::Unknown,
                cell(0),
                Timestamp(0),
                Timestamp(600),
            ),
            PresenceInterval::new(
                TransitionTaken::Unknown,
                cell(1),
                Timestamp(600),
                Timestamp(900),
            ),
            PresenceInterval::new(
                TransitionTaken::Unknown,
                cell(9),
                Timestamp(900),
                Timestamp(1000),
            ),
        ])
        .unwrap()
    }

    fn saturated_kb() -> TripleStore {
        let mut kb = build_louvre_kb();
        saturate(&mut kb);
        kb
    }

    #[test]
    fn zone_semantics_for_salle_des_etats() {
        let kb = saturated_kb();
        let s = zone_semantics(&kb, 60862);
        assert!(s.exhibits.contains(&"Mona Lisa".to_string()));
        assert!(s.artists.contains(&"Leonardo da Vinci".to_string()));
        assert!(s
            .themes
            .contains(&"theme:ItalianRenaissancePainting".to_string()));
        // Ancestors are pulled in.
        assert!(s.themes.contains(&"theme:Painting".to_string()));
        assert!(s.themes.contains(&"theme:FineArt".to_string()));
    }

    #[test]
    fn unknown_zone_is_empty() {
        let kb = saturated_kb();
        assert!(zone_semantics(&kb, 1).is_empty());
    }

    #[test]
    fn theme_ancestor_walk_dedups() {
        let kb = build_louvre_kb();
        let themes = theme_with_ancestors(&kb, "theme:GreekSculpture");
        assert_eq!(
            themes,
            vec!["theme:GreekSculpture", "theme:Sculpture", "theme:FineArt"]
        );
        // Unknown themes return just themselves.
        assert_eq!(theme_with_ancestors(&kb, "theme:Nope"), vec!["theme:Nope"]);
    }

    #[test]
    fn enrich_trace_annotates_known_zones_only() {
        let kb = saturated_kb();
        let (enriched, touched) = enrich_trace(&kb, trace(), zone_of);
        assert_eq!(touched, 2, "two stays map to KB zones");
        let first = enriched.get(0).unwrap();
        assert!(first.annotations.has(&kinds::exhibit(), "Mona Lisa"));
        assert!(first.annotations.has(&kinds::artist(), "Leonardo da Vinci"));
        let last = enriched.get(2).unwrap();
        assert!(last.annotations.is_empty(), "unknown zone untouched");
    }

    #[test]
    fn dwell_profile_credits_leaf_themes() {
        let kb = saturated_kb();
        let t = trace();
        let profile = theme_dwell_profile(&kb, &t, zone_of);
        // Salle des États stay: 600 s of Italian Renaissance painting.
        assert_eq!(
            profile["theme:ItalianRenaissancePainting"],
            Duration::seconds(600)
        );
        // Sculpture zone stay: 300 s credited to the sculpture themes
        // hosted there.
        assert_eq!(profile["theme:GreekSculpture"], Duration::seconds(300));
        // Ancestors are not credited directly.
        assert!(!profile.contains_key("theme:FineArt"));
    }

    #[test]
    fn profile_similarity_behaviour() {
        let mut a = BTreeMap::new();
        a.insert("theme:X".to_string(), Duration::seconds(100));
        let mut b = BTreeMap::new();
        b.insert("theme:X".to_string(), Duration::seconds(700));
        assert!(
            (profile_similarity(&a, &b) - 1.0).abs() < 1e-9,
            "proportional profiles"
        );
        let mut c = BTreeMap::new();
        c.insert("theme:Y".to_string(), Duration::seconds(50));
        assert_eq!(profile_similarity(&a, &c), 0.0, "disjoint profiles");
        assert_eq!(
            profile_similarity(&a, &BTreeMap::new()),
            0.0,
            "empty profile"
        );
        // Symmetry.
        let mut d = BTreeMap::new();
        d.insert("theme:X".to_string(), Duration::seconds(10));
        d.insert("theme:Y".to_string(), Duration::seconds(10));
        assert!((profile_similarity(&a, &d) - profile_similarity(&d, &a)).abs() < 1e-12);
    }
}
