//! Poincaré-duality derivation of NRGs from cell geometry.
//!
//! "The Poincaré duality provides the means of mapping the physical indoor
//! space (embedded in a 2D/3D Euclidean primal space) into an adjacency NRG
//! (in the corresponding dual space). Therefore, a cell (e.g. room) becomes
//! a node and a cell boundary (e.g. a thin wall) becomes an edge." (§2.1)
//!
//! Given a layer whose cells carry footprints, [`derive_adjacency`] computes
//! the adjacency (meet) pairs and the length of each shared wall. A
//! connectivity NRG can then be derived by keeping pairs whose shared
//! boundary is long enough to host an opening.

use sitm_geometry::{relate_polygons, Polygon, SegmentIntersection, SpatialRelation};
use sitm_graph::LayerIdx;

use crate::cell::CellRef;
use crate::model::IndoorSpace;

/// One derived adjacency: two same-layer cells whose footprints meet.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedAdjacency {
    /// First cell (lower node id).
    pub a: CellRef,
    /// Second cell.
    pub b: CellRef,
    /// Total length of the shared boundary (metres); 0 for corner-only
    /// contact.
    pub shared_boundary: f64,
}

/// Total length of boundary shared by two polygons (sum of collinear edge
/// overlaps).
pub fn shared_boundary_length(a: &Polygon, b: &Polygon) -> f64 {
    let mut total = 0.0;
    for ea in a.edges() {
        for eb in b.edges() {
            if let SegmentIntersection::Collinear(shared) = ea.intersect(eb) {
                total += shared.length();
            }
        }
    }
    total
}

/// Derives the adjacency pairs of one layer from cell footprints. Cells on
/// different floors never become adjacent (the 2.5D rule: floors only
/// connect through explicit vertical transitions). Pairs are reported once,
/// with `a.node < b.node`.
pub fn derive_adjacency(space: &IndoorSpace, layer: LayerIdx) -> Vec<DerivedAdjacency> {
    let cells: Vec<(CellRef, &crate::cell::Cell)> = space
        .cells_in(layer)
        .filter(|(_, c)| c.geometry.is_some())
        .collect();
    let mut out = Vec::new();
    for i in 0..cells.len() {
        for j in (i + 1)..cells.len() {
            let (ra, ca) = cells[i];
            let (rb, cb) = cells[j];
            if ca.floor.is_some() && cb.floor.is_some() && ca.floor != cb.floor {
                continue;
            }
            let pa = ca.geometry.as_ref().expect("filtered to Some");
            let pb = cb.geometry.as_ref().expect("filtered to Some");
            if relate_polygons(pa, pb) == SpatialRelation::Meet {
                out.push(DerivedAdjacency {
                    a: ra,
                    b: rb,
                    shared_boundary: shared_boundary_length(pa, pb),
                });
            }
        }
    }
    out
}

/// Derives the *connectivity* pairs of a layer: adjacency (meet) pairs
/// whose shared boundary is at least `min_opening` metres — long enough to
/// host a door. IndoorGML: "connectivity suggests that there exists an
/// opening in the common boundary of two cells" (§2.1); with geometry only,
/// a minimum opening width is the operational criterion.
pub fn derive_connectivity(
    space: &IndoorSpace,
    layer: LayerIdx,
    min_opening: f64,
) -> Vec<DerivedAdjacency> {
    derive_adjacency(space, layer)
        .into_iter()
        .filter(|a| a.shared_boundary >= min_opening)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellClass};
    use crate::layer::LayerKind;
    use sitm_geometry::Point;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::rectangle(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    #[test]
    fn shared_wall_length_of_rectangles() {
        let a = rect(0.0, 0.0, 4.0, 3.0);
        let b = rect(4.0, 1.0, 8.0, 5.0);
        // Shared wall x=4 from y=1 to y=3.
        assert!((shared_boundary_length(&a, &b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn corner_contact_has_zero_shared_length() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(1.0, 1.0, 2.0, 2.0);
        assert_eq!(shared_boundary_length(&a, &b), 0.0);
    }

    #[test]
    fn derive_adjacency_finds_wall_neighbours() {
        let mut s = IndoorSpace::new();
        let l = s.add_layer("rooms", LayerKind::Room);
        let a = s
            .add_cell(
                l,
                Cell::new("a", "A", CellClass::Room)
                    .on_floor(0)
                    .with_geometry(rect(0.0, 0.0, 4.0, 4.0)),
            )
            .unwrap();
        let b = s
            .add_cell(
                l,
                Cell::new("b", "B", CellClass::Room)
                    .on_floor(0)
                    .with_geometry(rect(4.0, 0.0, 8.0, 4.0)),
            )
            .unwrap();
        let c = s
            .add_cell(
                l,
                Cell::new("c", "C", CellClass::Room)
                    .on_floor(0)
                    .with_geometry(rect(20.0, 0.0, 24.0, 4.0)),
            )
            .unwrap();
        let adj = derive_adjacency(&s, l);
        assert_eq!(adj.len(), 1);
        assert_eq!((adj[0].a, adj[0].b), (a, b));
        assert!((adj[0].shared_boundary - 4.0).abs() < 1e-9);
        assert!(!adj.iter().any(|d| d.a == c || d.b == c));
    }

    #[test]
    fn different_floors_are_never_adjacent() {
        // Same footprint, stacked floors: primal-space polygons coincide but
        // the 2.5D rule keeps them apart.
        let mut s = IndoorSpace::new();
        let l = s.add_layer("rooms", LayerKind::Room);
        s.add_cell(
            l,
            Cell::new("low", "Low", CellClass::Room)
                .on_floor(0)
                .with_geometry(rect(0.0, 0.0, 4.0, 4.0)),
        )
        .unwrap();
        s.add_cell(
            l,
            Cell::new("high", "High", CellClass::Room)
                .on_floor(1)
                .with_geometry(rect(4.0, 0.0, 8.0, 4.0)),
        )
        .unwrap();
        assert!(derive_adjacency(&s, l).is_empty());
    }

    #[test]
    fn cells_without_geometry_are_skipped() {
        let mut s = IndoorSpace::new();
        let l = s.add_layer("rooms", LayerKind::Room);
        s.add_cell(l, Cell::new("bare", "Bare", CellClass::Room))
            .unwrap();
        s.add_cell(
            l,
            Cell::new("geo", "Geo", CellClass::Room)
                .on_floor(0)
                .with_geometry(rect(0.0, 0.0, 1.0, 1.0)),
        )
        .unwrap();
        assert!(derive_adjacency(&s, l).is_empty());
    }

    #[test]
    fn connectivity_requires_a_wide_enough_wall() {
        let mut s = IndoorSpace::new();
        let l = s.add_layer("rooms", LayerKind::Room);
        // a|b share a 4 m wall; b touches c only along 0.5 m.
        s.add_cell(
            l,
            Cell::new("a", "A", CellClass::Room)
                .on_floor(0)
                .with_geometry(rect(0.0, 0.0, 4.0, 4.0)),
        )
        .unwrap();
        s.add_cell(
            l,
            Cell::new("b", "B", CellClass::Room)
                .on_floor(0)
                .with_geometry(rect(4.0, 0.0, 8.0, 4.0)),
        )
        .unwrap();
        s.add_cell(
            l,
            Cell::new("c", "C", CellClass::Room)
                .on_floor(0)
                .with_geometry(rect(8.0, 3.5, 12.0, 7.5)),
        )
        .unwrap();
        let adjacency = derive_adjacency(&s, l);
        assert_eq!(adjacency.len(), 2, "both contacts are adjacency");
        let connectivity = derive_connectivity(&s, l, 0.8);
        assert_eq!(connectivity.len(), 1, "only the 4 m wall can host a door");
        assert!((connectivity[0].shared_boundary - 4.0).abs() < 1e-9);
    }

    #[test]
    fn row_of_rooms_yields_chain() {
        let mut s = IndoorSpace::new();
        let l = s.add_layer("rooms", LayerKind::Room);
        for i in 0..4 {
            let x0 = i as f64 * 5.0;
            s.add_cell(
                l,
                Cell::new(format!("r{i}"), format!("R{i}"), CellClass::Room)
                    .on_floor(0)
                    .with_geometry(rect(x0, 0.0, x0 + 5.0, 5.0)),
            )
            .unwrap();
        }
        let adj = derive_adjacency(&s, l);
        assert_eq!(adj.len(), 3, "a row of four rooms shares three walls");
        for d in &adj {
            assert!((d.shared_boundary - 5.0).abs() < 1e-9);
        }
    }
}
