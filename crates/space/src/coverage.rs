//! Full-coverage auditing.
//!
//! "An interesting space modeling decision concerns whether or not to assume
//! that the spatial region represented by a node in layer i+1 is fully
//! covered by the union of the spatial regions represented by its child
//! nodes in layer i. [...] it is often an unrealistic assumption. In Figure
//! 4 for instance, the RoIs of the displayed exhibits do not completely
//! cover their room's surface." (§4.2)
//!
//! This module measures the covered fraction so a model can *state* its
//! coverage instead of assuming it.

use sitm_geometry::relate::overlap_fraction;

use crate::cell::CellRef;
use crate::hierarchy::LayerHierarchy;
use crate::model::IndoorSpace;

/// Coverage of one parent cell by its hierarchy children.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// The parent cell.
    pub parent: CellRef,
    /// Number of children considered.
    pub children: usize,
    /// Children that carry geometry (only those contribute to the fraction).
    pub children_with_geometry: usize,
    /// Fraction of the parent's area covered by children, in `[0, 1]`.
    /// `None` when the parent has no geometry.
    pub covered_fraction: Option<f64>,
}

impl CoverageReport {
    /// True when the children tile the parent completely (within 0.1%).
    pub fn is_full_coverage(&self) -> bool {
        self.covered_fraction.is_some_and(|f| f >= 0.999)
    }
}

/// Measures how much of `parent`'s footprint its hierarchy children cover.
///
/// Assumes sibling cells do not overlap (the IndoorGML cell-space axiom
/// `c_i ∩ c_j = ∅`), so the covered fraction is the sum of per-child
/// overlap fractions. Children clipped against a *convex* parent are exact;
/// a concave parent falls back to full child areas (children are expected
/// to lie inside their parent — `audit_joints_against_geometry` verifies
/// that independently).
pub fn coverage_of(
    space: &IndoorSpace,
    hierarchy: &LayerHierarchy,
    parent: CellRef,
) -> CoverageReport {
    let children = hierarchy.children_of(space, parent);
    let parent_cell = space.cell(parent);
    let parent_poly = parent_cell.and_then(|c| c.geometry.as_ref());

    let mut with_geometry = 0;
    let covered_fraction = parent_poly.map(|pp| {
        let parent_area = pp.area();
        let mut covered = 0.0;
        for child in &children {
            let Some(cp) = space.cell(*child).and_then(|c| c.geometry.as_ref()) else {
                continue;
            };
            with_geometry += 1;
            let child_in_parent = if pp.is_convex() {
                overlap_fraction(cp, pp) * cp.area()
            } else {
                cp.area()
            };
            covered += child_in_parent;
        }
        (covered / parent_area).min(1.0)
    });

    CoverageReport {
        parent,
        children: children.len(),
        children_with_geometry: with_geometry,
        covered_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellClass};
    use crate::hierarchy::core_hierarchy;
    use crate::joint::JointRelation;
    use crate::layer::LayerKind;
    use sitm_geometry::{Point, Polygon};

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::rectangle(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    /// Builds building/floor/room model; the floor is a 10x10 square, rooms
    /// cover a configurable share of it.
    fn model_with_rooms(rooms: &[(f64, f64, f64, f64)]) -> (IndoorSpace, LayerHierarchy, CellRef) {
        let mut s = IndoorSpace::new();
        let lb = s.add_layer("buildings", LayerKind::Building);
        let lf = s.add_layer("floors", LayerKind::Floor);
        let lr = s.add_layer("rooms", LayerKind::Room);
        let b = s
            .add_cell(lb, Cell::new("b", "B", CellClass::Building))
            .unwrap();
        let f = s
            .add_cell(
                lf,
                Cell::new("f", "F", CellClass::Floor)
                    .on_floor(0)
                    .with_geometry(rect(0.0, 0.0, 10.0, 10.0)),
            )
            .unwrap();
        s.add_joint(b, f, JointRelation::Covers).unwrap();
        for (i, &(x0, y0, x1, y1)) in rooms.iter().enumerate() {
            let r = s
                .add_cell(
                    lr,
                    Cell::new(format!("r{i}"), format!("Room {i}"), CellClass::Room)
                        .on_floor(0)
                        .with_geometry(rect(x0, y0, x1, y1)),
                )
                .unwrap();
            s.add_joint(f, r, JointRelation::Covers).unwrap();
        }
        let h = core_hierarchy(&s).unwrap();
        (s, h, f)
    }

    #[test]
    fn full_tiling_reports_full_coverage() {
        let (s, h, f) = model_with_rooms(&[(0.0, 0.0, 5.0, 10.0), (5.0, 0.0, 10.0, 10.0)]);
        let report = coverage_of(&s, &h, f);
        assert_eq!(report.children, 2);
        assert_eq!(report.children_with_geometry, 2);
        assert!((report.covered_fraction.unwrap() - 1.0).abs() < 1e-9);
        assert!(report.is_full_coverage());
    }

    #[test]
    fn partial_tiling_reports_fraction() {
        // One 5x10 room out of a 10x10 floor: 50%.
        let (s, h, f) = model_with_rooms(&[(0.0, 0.0, 5.0, 10.0)]);
        let report = coverage_of(&s, &h, f);
        assert!((report.covered_fraction.unwrap() - 0.5).abs() < 1e-9);
        assert!(!report.is_full_coverage());
    }

    #[test]
    fn rois_not_covering_room_fig4() {
        // The Fig. 4 situation: RoIs inside a zone cover it only partially.
        let (s, h, f) = model_with_rooms(&[(1.0, 1.0, 3.0, 3.0), (6.0, 6.0, 8.0, 9.0)]);
        let report = coverage_of(&s, &h, f);
        let expected = (4.0 + 6.0) / 100.0;
        assert!((report.covered_fraction.unwrap() - expected).abs() < 1e-9);
        assert!(!report.is_full_coverage());
    }

    #[test]
    fn child_overflowing_parent_counts_only_overlap() {
        // A room half inside the floor contributes only its inner half.
        let (s, h, f) = model_with_rooms(&[(8.0, 0.0, 12.0, 10.0)]);
        let report = coverage_of(&s, &h, f);
        assert!((report.covered_fraction.unwrap() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn parent_without_geometry_reports_none() {
        let mut s = IndoorSpace::new();
        let lb = s.add_layer("buildings", LayerKind::Building);
        let lf = s.add_layer("floors", LayerKind::Floor);
        s.add_layer("rooms", LayerKind::Room);
        let b = s
            .add_cell(lb, Cell::new("b", "B", CellClass::Building))
            .unwrap();
        let f = s
            .add_cell(lf, Cell::new("f", "F", CellClass::Floor))
            .unwrap();
        s.add_joint(b, f, JointRelation::Covers).unwrap();
        let h = core_hierarchy(&s).unwrap();
        let report = coverage_of(&s, &h, b);
        assert_eq!(report.covered_fraction, None);
        assert!(!report.is_full_coverage());
    }

    #[test]
    fn children_without_geometry_are_counted_separately() {
        let (mut s, h, f) = model_with_rooms(&[(0.0, 0.0, 5.0, 10.0)]);
        let lr = s.find_layer(&LayerKind::Room).unwrap();
        let bare = s
            .add_cell(lr, Cell::new("bare", "No geometry", CellClass::Room))
            .unwrap();
        s.add_joint(f, bare, JointRelation::Covers).unwrap();
        let report = coverage_of(&s, &h, f);
        assert_eq!(report.children, 2);
        assert_eq!(report.children_with_geometry, 1);
        assert!((report.covered_fraction.unwrap() - 0.5).abs() < 1e-9);
    }
}
