//! Transitions: intra-layer accessibility edges.
//!
//! "Given that each layer's NRG is a multigraph, it is generally useful to
//! know the specific transition `e_i` (e.g. which door, staircase, or
//! elevator was used)" (§3.3). A [`Transition`] is the payload of a directed
//! accessibility edge: its kind, an optional name, and whether the physical
//! boundary crossing can also be traversed in the opposite direction (kept
//! as *metadata* — the graph stores one directed edge per allowed
//! direction).

use std::fmt;

/// Kind of boundary crossing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TransitionKind {
    /// A standard door.
    Door,
    /// A doorless opening in a shared wall.
    Opening,
    /// A staircase connecting floors.
    Stair,
    /// An elevator connecting floors.
    Elevator,
    /// A ramp.
    Ramp,
    /// An escalator (one-way by construction).
    Escalator,
    /// A controlled checkpoint (ticket gate, security).
    Checkpoint,
    /// A virtual boundary between conceptual subspaces with no physical
    /// separation (e.g. two functional halves of one great hall).
    Virtual,
    /// Anything else, named.
    Other(String),
}

impl TransitionKind {
    /// Canonical kind name.
    pub fn name(&self) -> &str {
        match self {
            TransitionKind::Door => "door",
            TransitionKind::Opening => "opening",
            TransitionKind::Stair => "stair",
            TransitionKind::Elevator => "elevator",
            TransitionKind::Ramp => "ramp",
            TransitionKind::Escalator => "escalator",
            TransitionKind::Checkpoint => "checkpoint",
            TransitionKind::Virtual => "virtual",
            TransitionKind::Other(s) => s,
        }
    }

    /// Parses a canonical kind name.
    pub fn parse(s: &str) -> TransitionKind {
        match s {
            "door" => TransitionKind::Door,
            "opening" => TransitionKind::Opening,
            "stair" => TransitionKind::Stair,
            "elevator" => TransitionKind::Elevator,
            "ramp" => TransitionKind::Ramp,
            "escalator" => TransitionKind::Escalator,
            "checkpoint" => TransitionKind::Checkpoint,
            "virtual" => TransitionKind::Virtual,
            other => TransitionKind::Other(other.to_string()),
        }
    }

    /// True for transitions that change floor.
    pub fn is_vertical(&self) -> bool {
        matches!(
            self,
            TransitionKind::Stair | TransitionKind::Elevator | TransitionKind::Escalator
        ) || matches!(self, TransitionKind::Ramp)
    }
}

impl fmt::Display for TransitionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Payload of a directed accessibility edge.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Kind of crossing.
    pub kind: TransitionKind,
    /// Optional stable identifier (e.g. `"door012"`, `"checkpoint002"` in
    /// the paper's trace examples).
    pub name: Option<String>,
    /// Traversal cost hint for routing (seconds); 0 means unknown.
    pub cost_hint: f64,
}

impl Transition {
    /// Creates an unnamed transition of the given kind.
    pub fn new(kind: TransitionKind) -> Self {
        Transition {
            kind,
            name: None,
            cost_hint: 0.0,
        }
    }

    /// Creates a named transition (the `e_i` identifiers of trace tuples).
    pub fn named(kind: TransitionKind, name: impl Into<String>) -> Self {
        Transition {
            kind,
            name: Some(name.into()),
            cost_hint: 0.0,
        }
    }

    /// Builder: attaches a traversal cost hint.
    #[must_use]
    pub fn with_cost(mut self, seconds: f64) -> Self {
        self.cost_hint = seconds;
        self
    }

    /// Display label: name if present, kind otherwise.
    pub fn label(&self) -> &str {
        self.name.as_deref().unwrap_or_else(|| self.kind.name())
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        let kinds = [
            TransitionKind::Door,
            TransitionKind::Opening,
            TransitionKind::Stair,
            TransitionKind::Elevator,
            TransitionKind::Ramp,
            TransitionKind::Escalator,
            TransitionKind::Checkpoint,
            TransitionKind::Virtual,
            TransitionKind::Other("catwalk".into()),
        ];
        for k in kinds {
            assert_eq!(TransitionKind::parse(k.name()), k);
        }
    }

    #[test]
    fn vertical_kinds() {
        assert!(TransitionKind::Stair.is_vertical());
        assert!(TransitionKind::Elevator.is_vertical());
        assert!(TransitionKind::Escalator.is_vertical());
        assert!(TransitionKind::Ramp.is_vertical());
        assert!(!TransitionKind::Door.is_vertical());
        assert!(!TransitionKind::Virtual.is_vertical());
    }

    #[test]
    fn labels_prefer_names() {
        let anon = Transition::new(TransitionKind::Door);
        assert_eq!(anon.label(), "door");
        let named = Transition::named(TransitionKind::Door, "door012");
        assert_eq!(named.label(), "door012");
        assert_eq!(named.to_string(), "door012");
    }

    #[test]
    fn cost_hint_builder() {
        let t = Transition::new(TransitionKind::Stair).with_cost(30.0);
        assert_eq!(t.cost_hint, 30.0);
    }
}
