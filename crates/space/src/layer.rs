//! Layers: named cell decompositions of the same physical space.
//!
//! "IndoorGML's Multi-Layered Space Model (MLSM) is the description of
//! multiple interpretations of the same physical indoor space, through the
//! instantiation of multiple cell decompositions and corresponding NRGs.
//! Each NRG is treated as a separate graph layer" (§2.1). The paper fixes a
//! *static* core hierarchy of layer kinds; thematic layers (like the Louvre
//! dataset's 52 zones) integrate alongside it.

use std::fmt;

/// Kind of a layer, determining its place (if any) in the core hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Optional root: a multi-building site.
    BuildingComplex,
    /// Required: buildings (or wings used as buildings).
    Building,
    /// Required: floor levels per building.
    Floor,
    /// Required: room-level navigable cells.
    Room,
    /// Optional leaf: sub-room regions of interest.
    RegionOfInterest,
    /// A semantic decomposition outside the core hierarchy (e.g. the
    /// Louvre's thematic zones, which "happen to fall right between Layer 2
    /// and Layer 1", §4.2).
    Thematic,
    /// Any other decomposition, named.
    Custom(String),
}

impl LayerKind {
    /// Rank in the core hierarchy, root = 0: BuildingComplex(0) →
    /// Building(1) → Floor(2) → Room(3) → RoI(4). `None` for layers outside
    /// the core hierarchy.
    pub fn hierarchy_rank(&self) -> Option<u8> {
        match self {
            LayerKind::BuildingComplex => Some(0),
            LayerKind::Building => Some(1),
            LayerKind::Floor => Some(2),
            LayerKind::Room => Some(3),
            LayerKind::RegionOfInterest => Some(4),
            LayerKind::Thematic | LayerKind::Custom(_) => None,
        }
    }

    /// True for the three layers the paper makes mandatory ("virtually any
    /// indoor environment is characterized by a basic three-layer hierarchy
    /// consisting of: a Building layer, a Floor layer, and a Room layer").
    pub fn is_core_required(&self) -> bool {
        matches!(
            self,
            LayerKind::Building | LayerKind::Floor | LayerKind::Room
        )
    }

    /// Canonical name.
    pub fn name(&self) -> &str {
        match self {
            LayerKind::BuildingComplex => "buildingComplex",
            LayerKind::Building => "building",
            LayerKind::Floor => "floor",
            LayerKind::Room => "room",
            LayerKind::RegionOfInterest => "roi",
            LayerKind::Thematic => "thematic",
            LayerKind::Custom(s) => s,
        }
    }

    /// Parses a canonical name.
    pub fn parse(s: &str) -> LayerKind {
        match s {
            "buildingComplex" => LayerKind::BuildingComplex,
            "building" => LayerKind::Building,
            "floor" => LayerKind::Floor,
            "room" => LayerKind::Room,
            "roi" => LayerKind::RegionOfInterest,
            "thematic" => LayerKind::Thematic,
            other => LayerKind::Custom(other.to_string()),
        }
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A layer: one decomposition of the indoor space into cells, with its own
/// accessibility NRG.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Layer name (e.g. `"rooms"`, `"thematic-zones"`).
    pub name: String,
    /// Kind, fixing the layer's role.
    pub kind: LayerKind,
}

impl Layer {
    /// Creates a layer.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Layer {
            name: name.into(),
            kind,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_ordered_root_to_leaf() {
        let ranks: Vec<Option<u8>> = [
            LayerKind::BuildingComplex,
            LayerKind::Building,
            LayerKind::Floor,
            LayerKind::Room,
            LayerKind::RegionOfInterest,
        ]
        .iter()
        .map(|k| k.hierarchy_rank())
        .collect();
        assert_eq!(ranks, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn non_core_layers_have_no_rank() {
        assert_eq!(LayerKind::Thematic.hierarchy_rank(), None);
        assert_eq!(LayerKind::Custom("sensors".into()).hierarchy_rank(), None);
    }

    #[test]
    fn required_core_layers() {
        assert!(LayerKind::Building.is_core_required());
        assert!(LayerKind::Floor.is_core_required());
        assert!(LayerKind::Room.is_core_required());
        assert!(!LayerKind::BuildingComplex.is_core_required());
        assert!(!LayerKind::RegionOfInterest.is_core_required());
        assert!(!LayerKind::Thematic.is_core_required());
    }

    #[test]
    fn names_round_trip() {
        for k in [
            LayerKind::BuildingComplex,
            LayerKind::Building,
            LayerKind::Floor,
            LayerKind::Room,
            LayerKind::RegionOfInterest,
            LayerKind::Thematic,
            LayerKind::Custom("nav".into()),
        ] {
            assert_eq!(LayerKind::parse(k.name()), k);
        }
    }

    #[test]
    fn layer_display() {
        let l = Layer::new("thematic-zones", LayerKind::Thematic);
        assert_eq!(l.to_string(), "thematic-zones (thematic)");
    }
}
