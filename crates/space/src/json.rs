//! A minimal self-contained JSON value model, emitter and parser.
//!
//! The exchange format of [`crate::io`] needs JSON, and the sanctioned
//! offline dependency set does not include a JSON codec — so this module
//! implements one: a [`JsonValue`] tree, a writer with correct string
//! escaping and stable key order, and a strict recursive-descent parser.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integers round-trip up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with sorted keys (deterministic output).
    Object(BTreeMap<String, JsonValue>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Builds an object from key/value pairs.
    pub fn object<I, K>(pairs: I) -> JsonValue
    where
        I: IntoIterator<Item = (K, JsonValue)>,
        K: Into<String>,
    {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn string(s: impl Into<String>) -> JsonValue {
        JsonValue::String(s.into())
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// As string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// As number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// As integer (fails on fractional values).
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && n.abs() < 9.0e15 {
            Some(n as i64)
        } else {
            None
        }
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes to a compact string.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                offset: pos,
                message: "trailing characters after document".to_string(),
            });
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(pos: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset: pos,
        message: message.into(),
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(err(*pos, format!("unexpected character {:?}", *c as char))),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected {keyword}")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| err(start, format!("invalid number {text:?}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex_str = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex_str, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs: accept and combine.
                        if (0xD800..0xDC00).contains(&code) {
                            let next = bytes
                                .get(*pos + 5..*pos + 11)
                                .ok_or_else(|| err(*pos, "truncated surrogate pair"))?;
                            if &next[0..2] != b"\\u" {
                                return Err(err(*pos, "lone high surrogate"));
                            }
                            let low_str = std::str::from_utf8(&next[2..6])
                                .map_err(|_| err(*pos, "non-ascii surrogate"))?;
                            let low = u32::from_str_radix(low_str, 16)
                                .map_err(|_| err(*pos, "invalid low surrogate"))?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(err(*pos, "invalid low surrogate value"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(
                                char::from_u32(combined)
                                    .ok_or_else(|| err(*pos, "invalid surrogate pair"))?,
                            );
                            *pos += 6; // the extra \uXXXX
                        } else {
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| err(*pos, "invalid code point"))?,
                            );
                        }
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key string"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", JsonValue::Null),
            ("true", JsonValue::Bool(true)),
            ("false", JsonValue::Bool(false)),
            ("42", JsonValue::Number(42.0)),
            ("-3.5", JsonValue::Number(-3.5)),
            ("\"hi\"", JsonValue::string("hi")),
        ] {
            assert_eq!(JsonValue::parse(text).unwrap(), value, "{text}");
            assert_eq!(JsonValue::parse(&value.to_compact()).unwrap(), value);
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let doc = JsonValue::object([
            ("name", JsonValue::string("Louvre")),
            (
                "zones",
                JsonValue::Array(vec![JsonValue::Number(60887.0), JsonValue::Number(60888.0)]),
            ),
            (
                "meta",
                JsonValue::object([
                    ("open", JsonValue::Bool(true)),
                    ("floor", JsonValue::Number(-2.0)),
                ]),
            ),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(JsonValue::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "quote\" backslash\\ newline\n tab\t unicode é 中 control\u{01}";
        let v = JsonValue::string(tricky);
        let text = v.to_compact();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(JsonValue::parse(r#""é""#).unwrap(), JsonValue::string("é"));
        // Surrogate pair for U+1F600.
        assert_eq!(
            JsonValue::parse(r#""😀""#).unwrap(),
            JsonValue::string("😀")
        );
    }

    #[test]
    fn object_keys_are_sorted_in_output() {
        let v = JsonValue::object([("z", JsonValue::Null), ("a", JsonValue::Null)]);
        assert_eq!(v.to_compact(), r#"{"a":null,"z":null}"#);
    }

    #[test]
    fn accessors() {
        let v = JsonValue::object([
            ("n", JsonValue::Number(3.0)),
            ("s", JsonValue::string("x")),
            ("b", JsonValue::Bool(true)),
            ("arr", JsonValue::Array(vec![JsonValue::Null])),
        ]);
        assert_eq!(v.get("n").and_then(JsonValue::as_i64), Some(3));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            v.get("arr").and_then(JsonValue::as_array).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Number(2.5).as_i64(), None, "fractional");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let e = JsonValue::parse("[1,").unwrap_err();
        assert!(e.offset >= 3);
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("[1] trailing").is_err());
        assert!(JsonValue::parse("nul").is_err());
        assert!(JsonValue::parse("\"open").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(
            JsonValue::parse("{}").unwrap(),
            JsonValue::Object(BTreeMap::new())
        );
        assert_eq!(JsonValue::Array(vec![]).to_pretty(), "[]");
    }

    #[test]
    fn whitespace_tolerance() {
        let v = JsonValue::parse(" \n\t{ \"a\" : [ 1 , 2 ] } \r\n").unwrap();
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn large_integers_survive() {
        let v = JsonValue::Number(20245.0);
        assert_eq!(v.to_compact(), "20245");
        assert_eq!(JsonValue::parse("20245").unwrap().as_i64(), Some(20245));
    }
}
