#![warn(missing_docs)]

//! # sitm-space
//!
//! The semantically enriched indoor space model of the paper (§3.2): a
//! 2D-multi-floor ("2.5D") indoor space represented as a layered directed
//! multigraph `G = (V, E)` with
//!
//! * `V = ⋃ V_i` — disjoint per-layer node sets, nodes being symbolic
//!   spatial *cells* ([`Cell`]) carrying semantic classes and attributes;
//! * `E = ⋃ E_acc_i ∪ E_top` — per-layer **directed accessibility NRG**
//!   edges ([`Transition`]; directed because "accessibility is not
//!   symmetric", e.g. the Salle des États one-way rule) plus **directed
//!   joint edges** ([`JointRelation`]) carrying one of the six non-trivial
//!   binary topological relations.
//!
//! The model is compatible with OGC IndoorGML's Multi-Layered Space Model
//! and extends it with the paper's *static layer hierarchy*
//! (BuildingComplex → Building → Floor → Room → RoI, [`hierarchy`]),
//! full-coverage auditing ([`coverage`]), Poincaré-duality NRG derivation
//! from cell geometry ([`duality`]), and a JSON exchange format ([`io`]).

pub mod cell;
pub mod coverage;
pub mod duality;
pub mod hierarchy;
pub mod io;
pub mod joint;
pub mod json;
pub mod layer;
pub mod model;
pub mod query;
pub mod transition;

pub use cell::{Cell, CellClass, CellRef};
pub use coverage::{coverage_of, CoverageReport};
pub use duality::{
    derive_adjacency, derive_connectivity, shared_boundary_length, DerivedAdjacency,
};
pub use hierarchy::{
    core_hierarchy, validate_hierarchy, HierarchyIssue, IssueSeverity, LayerHierarchy,
};
pub use joint::JointRelation;
pub use layer::{Layer, LayerKind};
pub use model::{IndoorSpace, ModelError};
pub use query::SpaceQuery;
pub use transition::{Transition, TransitionKind};
