//! Layer hierarchies and their validation.
//!
//! The paper (§3.2) defines a layer hierarchy as "k ≥ 2 ordered layers of G
//! that are only consecutively connected by joint edges", restricted to
//! `contains`/`covers` relations with top→bottom direction, excluding
//! `overlap` and `equal` "to prohibit node repetition and instead favor a
//! proper hierarchy". The *core* hierarchy is Building → Floor → Room
//! (3 ≤ k), optionally extended with a BuildingComplex root and a RoI leaf.
//! Joint edges "do not skip layers".

use sitm_graph::LayerIdx;

use crate::cell::CellRef;
use crate::joint::JointRelation;
use crate::layer::LayerKind;
use crate::model::IndoorSpace;

/// An ordered hierarchy of layers, root (coarsest) first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerHierarchy {
    layers: Vec<LayerIdx>,
}

/// Severity of a hierarchy issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueSeverity {
    /// Violates the paper's hierarchy definition.
    Error,
    /// Permitted but noteworthy (e.g. non-full coverage).
    Warning,
}

/// A finding of [`validate_hierarchy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyIssue {
    /// Hierarchies need at least two layers.
    TooFewLayers {
        /// The number of layers found.
        found: usize,
    },
    /// A joint edge connects hierarchy layers that are not consecutive.
    LayerSkip {
        /// Source cell.
        from: CellRef,
        /// Target cell.
        to: CellRef,
    },
    /// A joint edge inside the hierarchy carries a non-parthood relation.
    BadRelation {
        /// Source cell.
        from: CellRef,
        /// Target cell.
        to: CellRef,
        /// The offending relation.
        relation: JointRelation,
    },
    /// A hierarchical joint edge points bottom→top instead of top→bottom.
    BadDirection {
        /// Source cell.
        from: CellRef,
        /// Target cell.
        to: CellRef,
    },
    /// A cell has more than one parent in the layer above.
    MultipleParents {
        /// The cell with several parents.
        cell: CellRef,
        /// How many parents were found.
        count: usize,
    },
    /// A cell below the root layer has no parent (legal — the paper rejects
    /// the full-coverage hypothesis — but worth surfacing).
    OrphanCell {
        /// The parentless cell.
        cell: CellRef,
    },
    /// The core hierarchy requires Building, Floor and Room layers.
    MissingCoreLayer {
        /// Which kind is missing.
        kind: LayerKind,
    },
    /// Two hierarchy layers share the same core rank.
    DuplicateRank {
        /// The duplicated rank.
        rank: u8,
    },
}

impl HierarchyIssue {
    /// Severity of this issue.
    pub fn severity(&self) -> IssueSeverity {
        match self {
            HierarchyIssue::OrphanCell { .. } => IssueSeverity::Warning,
            _ => IssueSeverity::Error,
        }
    }
}

impl std::fmt::Display for HierarchyIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyIssue::TooFewLayers { found } => {
                write!(f, "hierarchy has {found} layer(s); at least 2 required")
            }
            HierarchyIssue::LayerSkip { from, to } => {
                write!(f, "joint edge {from} -> {to} skips hierarchy layers")
            }
            HierarchyIssue::BadRelation { from, to, relation } => {
                write!(f, "joint edge {from} -> {to} has relation {relation}; only contains/covers allowed")
            }
            HierarchyIssue::BadDirection { from, to } => {
                write!(f, "joint edge {from} -> {to} points bottom->top")
            }
            HierarchyIssue::MultipleParents { cell, count } => {
                write!(
                    f,
                    "cell {cell} has {count} parents; proper hierarchies allow one"
                )
            }
            HierarchyIssue::OrphanCell { cell } => {
                write!(f, "cell {cell} has no parent in the layer above")
            }
            HierarchyIssue::MissingCoreLayer { kind } => {
                write!(f, "core hierarchy layer {kind} is missing")
            }
            HierarchyIssue::DuplicateRank { rank } => {
                write!(f, "two layers share core hierarchy rank {rank}")
            }
        }
    }
}

impl LayerHierarchy {
    /// Builds a hierarchy from explicitly ordered layers (root first).
    pub fn new(layers: Vec<LayerIdx>) -> Self {
        LayerHierarchy { layers }
    }

    /// Ordered layers, root first.
    pub fn layers(&self) -> &[LayerIdx] {
        &self.layers
    }

    /// Number of layers (the paper's `k`).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the hierarchy has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Position of `layer` in the hierarchy, if present.
    pub fn position(&self, layer: LayerIdx) -> Option<usize> {
        self.layers.iter().position(|&l| l == layer)
    }

    /// The unique parent of `cell` in the layer directly above, if any.
    pub fn parent_of(&self, space: &IndoorSpace, cell: CellRef) -> Option<CellRef> {
        let pos = self.position(cell.layer)?;
        if pos == 0 {
            return None;
        }
        let parent_layer = self.layers[pos - 1];
        space
            .joints_to(cell)
            .filter(|j| j.from.0 == parent_layer && j.payload.is_hierarchical())
            .map(|j| CellRef::new(j.from.0, j.from.1))
            .next()
    }

    /// All children of `cell` in the layer directly below.
    pub fn children_of(&self, space: &IndoorSpace, cell: CellRef) -> Vec<CellRef> {
        let Some(pos) = self.position(cell.layer) else {
            return Vec::new();
        };
        if pos + 1 >= self.layers.len() {
            return Vec::new();
        }
        let child_layer = self.layers[pos + 1];
        space
            .joints_from(cell)
            .filter(|j| j.to.0 == child_layer && j.payload.is_hierarchical())
            .map(|j| CellRef::new(j.to.0, j.to.1))
            .collect()
    }

    /// Chain of ancestors of `cell`, nearest first, root last.
    pub fn ancestors_of(&self, space: &IndoorSpace, cell: CellRef) -> Vec<CellRef> {
        let mut out = Vec::new();
        let mut cur = cell;
        while let Some(p) = self.parent_of(space, cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// The ancestor of `cell` lying in `layer` (transitivity of parthood:
    /// "we allow inference of a MO's location at all levels of granularity
    /// above the detection data level", §3.2). Identity if `cell` is already
    /// in `layer`.
    pub fn ancestor_at(
        &self,
        space: &IndoorSpace,
        cell: CellRef,
        layer: LayerIdx,
    ) -> Option<CellRef> {
        if cell.layer == layer {
            return Some(cell);
        }
        let target = self.position(layer)?;
        let from = self.position(cell.layer)?;
        if target > from {
            return None; // descendant direction is one-to-many
        }
        let mut cur = cell;
        for _ in target..from {
            cur = self.parent_of(space, cur)?;
        }
        Some(cur)
    }

    /// All descendants of `cell` within `layer` (possibly several levels
    /// below).
    pub fn descendants_at(
        &self,
        space: &IndoorSpace,
        cell: CellRef,
        layer: LayerIdx,
    ) -> Vec<CellRef> {
        let Some(target) = self.position(layer) else {
            return Vec::new();
        };
        let Some(from) = self.position(cell.layer) else {
            return Vec::new();
        };
        if target <= from {
            return if target == from {
                vec![cell]
            } else {
                Vec::new()
            };
        }
        let mut frontier = vec![cell];
        for _ in from..target {
            let mut next = Vec::new();
            for c in frontier {
                next.extend(self.children_of(space, c));
            }
            frontier = next;
        }
        frontier
    }
}

/// Assembles the core hierarchy of a model from layer kinds (ranked
/// BuildingComplex → Building → Floor → Room → RoI), validating presence of
/// the three required layers and rank uniqueness.
pub fn core_hierarchy(space: &IndoorSpace) -> Result<LayerHierarchy, Vec<HierarchyIssue>> {
    let mut ranked: Vec<(u8, LayerIdx)> = space
        .layers()
        .filter_map(|(idx, l)| l.kind.hierarchy_rank().map(|r| (r, idx)))
        .collect();
    ranked.sort_by_key(|(r, _)| *r);

    let mut issues = Vec::new();
    for w in ranked.windows(2) {
        if w[0].0 == w[1].0 {
            issues.push(HierarchyIssue::DuplicateRank { rank: w[0].0 });
        }
    }
    for required in [LayerKind::Building, LayerKind::Floor, LayerKind::Room] {
        if space.find_layer(&required).is_none() {
            issues.push(HierarchyIssue::MissingCoreLayer { kind: required });
        }
    }
    if !issues.is_empty() {
        return Err(issues);
    }
    Ok(LayerHierarchy::new(
        ranked.into_iter().map(|(_, idx)| idx).collect(),
    ))
}

/// Validates a hierarchy against the paper's rules. Returns all issues
/// found (empty = fully valid; filter by [`HierarchyIssue::severity`] to
/// tolerate warnings).
pub fn validate_hierarchy(space: &IndoorSpace, hierarchy: &LayerHierarchy) -> Vec<HierarchyIssue> {
    let mut issues = Vec::new();
    if hierarchy.len() < 2 {
        issues.push(HierarchyIssue::TooFewLayers {
            found: hierarchy.len(),
        });
        return issues;
    }

    // Examine every joint edge touching two hierarchy layers.
    for j in space.joints() {
        let from = CellRef::new(j.from.0, j.from.1);
        let to = CellRef::new(j.to.0, j.to.1);
        let (Some(pf), Some(pt)) = (hierarchy.position(from.layer), hierarchy.position(to.layer))
        else {
            continue; // edge leaves the hierarchy (e.g. to a thematic layer)
        };
        // Normalize to top→bottom orientation for the checks.
        let (top_pos, bottom_pos, points_down) = if pf < pt {
            (pf, pt, true)
        } else {
            (pt, pf, false)
        };
        if bottom_pos - top_pos != 1 {
            issues.push(HierarchyIssue::LayerSkip { from, to });
            continue;
        }
        if !j.payload.is_hierarchical() {
            issues.push(HierarchyIssue::BadRelation {
                from,
                to,
                relation: *j.payload,
            });
            continue;
        }
        if !points_down {
            issues.push(HierarchyIssue::BadDirection { from, to });
        }
    }

    // Parent multiplicity and orphans, per non-root layer.
    for (level, &layer) in hierarchy.layers().iter().enumerate().skip(1) {
        let parent_layer = hierarchy.layers()[level - 1];
        for (cref, _) in space.cells_in(layer) {
            let parents = space
                .joints_to(cref)
                .filter(|j| j.from.0 == parent_layer && j.payload.is_hierarchical())
                .count();
            match parents {
                0 => issues.push(HierarchyIssue::OrphanCell { cell: cref }),
                1 => {}
                n => issues.push(HierarchyIssue::MultipleParents {
                    cell: cref,
                    count: n,
                }),
            }
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellClass};
    use crate::model::IndoorSpace;

    /// Building -> two floors -> rooms (2 on f0, 1 on f1).
    fn small_building() -> (IndoorSpace, LayerHierarchy) {
        let mut s = IndoorSpace::new();
        let lb = s.add_layer("buildings", LayerKind::Building);
        let lf = s.add_layer("floors", LayerKind::Floor);
        let lr = s.add_layer("rooms", LayerKind::Room);
        let b = s
            .add_cell(lb, Cell::new("b", "Building", CellClass::Building))
            .unwrap();
        let f0 = s
            .add_cell(lf, Cell::new("f0", "Floor 0", CellClass::Floor))
            .unwrap();
        let f1 = s
            .add_cell(lf, Cell::new("f1", "Floor 1", CellClass::Floor))
            .unwrap();
        let r0 = s
            .add_cell(lr, Cell::new("r0", "Room 0", CellClass::Room))
            .unwrap();
        let r1 = s
            .add_cell(lr, Cell::new("r1", "Room 1", CellClass::Room))
            .unwrap();
        let r2 = s
            .add_cell(lr, Cell::new("r2", "Room 2", CellClass::Room))
            .unwrap();
        s.add_joint(b, f0, JointRelation::Covers).unwrap();
        s.add_joint(b, f1, JointRelation::Covers).unwrap();
        s.add_joint(f0, r0, JointRelation::Contains).unwrap();
        s.add_joint(f0, r1, JointRelation::Covers).unwrap();
        s.add_joint(f1, r2, JointRelation::Contains).unwrap();
        let h = core_hierarchy(&s).unwrap();
        (s, h)
    }

    #[test]
    fn core_hierarchy_orders_by_rank() {
        let (s, h) = small_building();
        assert_eq!(h.len(), 3);
        let kinds: Vec<&LayerKind> = h
            .layers()
            .iter()
            .map(|&l| &s.layer(l).unwrap().kind)
            .collect();
        assert_eq!(
            kinds,
            vec![&LayerKind::Building, &LayerKind::Floor, &LayerKind::Room]
        );
    }

    #[test]
    fn valid_hierarchy_has_no_issues() {
        let (s, h) = small_building();
        assert!(validate_hierarchy(&s, &h).is_empty());
    }

    #[test]
    fn missing_core_layer_is_reported() {
        let mut s = IndoorSpace::new();
        s.add_layer("buildings", LayerKind::Building);
        s.add_layer("rooms", LayerKind::Room);
        let issues = core_hierarchy(&s).unwrap_err();
        assert!(issues.iter().any(
            |i| matches!(i, HierarchyIssue::MissingCoreLayer { kind } if *kind == LayerKind::Floor)
        ));
    }

    #[test]
    fn layer_skip_detected() {
        let (mut s, h) = small_building();
        let b = s.resolve("b").unwrap();
        let r0 = s.resolve("r0").unwrap();
        s.add_joint(b, r0, JointRelation::Contains).unwrap();
        let issues = validate_hierarchy(&s, &h);
        assert!(issues
            .iter()
            .any(|i| matches!(i, HierarchyIssue::LayerSkip { .. })));
    }

    #[test]
    fn bad_relation_detected() {
        let (mut s, h) = small_building();
        let f0 = s.resolve("f0").unwrap();
        // Add an extra room with an overlap joint from its floor.
        let lr = s.find_layer(&LayerKind::Room).unwrap();
        let rx = s
            .add_cell(lr, Cell::new("rx", "Odd", CellClass::Room))
            .unwrap();
        s.add_joint(f0, rx, JointRelation::Overlap).unwrap();
        let issues = validate_hierarchy(&s, &h);
        assert!(issues.iter().any(|i| matches!(
            i,
            HierarchyIssue::BadRelation {
                relation: JointRelation::Overlap,
                ..
            }
        )));
    }

    #[test]
    fn bad_direction_detected() {
        let (mut s, h) = small_building();
        let f0 = s.resolve("f0").unwrap();
        let lr = s.find_layer(&LayerKind::Room).unwrap();
        let rx = s
            .add_cell(lr, Cell::new("rx", "Odd", CellClass::Room))
            .unwrap();
        // Child -> parent "contains" is the wrong direction.
        s.add_joint(rx, f0, JointRelation::Contains).unwrap();
        let issues = validate_hierarchy(&s, &h);
        assert!(issues
            .iter()
            .any(|i| matches!(i, HierarchyIssue::BadDirection { .. })));
    }

    #[test]
    fn orphan_is_warning_not_error() {
        let (mut s, h) = small_building();
        let lr = s.find_layer(&LayerKind::Room).unwrap();
        s.add_cell(lr, Cell::new("lost", "Lost room", CellClass::Room))
            .unwrap();
        let issues = validate_hierarchy(&s, &h);
        assert_eq!(issues.len(), 1);
        assert!(matches!(issues[0], HierarchyIssue::OrphanCell { .. }));
        assert_eq!(issues[0].severity(), IssueSeverity::Warning);
    }

    #[test]
    fn multiple_parents_detected() {
        let (mut s, h) = small_building();
        let f1 = s.resolve("f1").unwrap();
        let r0 = s.resolve("r0").unwrap();
        s.add_joint(f1, r0, JointRelation::Contains).unwrap();
        let issues = validate_hierarchy(&s, &h);
        assert!(issues
            .iter()
            .any(|i| matches!(i, HierarchyIssue::MultipleParents { count: 2, .. })));
    }

    #[test]
    fn parent_and_ancestor_queries() {
        let (s, h) = small_building();
        let r0 = s.resolve("r0").unwrap();
        let f0 = s.resolve("f0").unwrap();
        let b = s.resolve("b").unwrap();
        assert_eq!(h.parent_of(&s, r0), Some(f0));
        assert_eq!(h.parent_of(&s, b), None, "root has no parent");
        assert_eq!(h.ancestors_of(&s, r0), vec![f0, b]);
        let lb = s.find_layer(&LayerKind::Building).unwrap();
        assert_eq!(h.ancestor_at(&s, r0, lb), Some(b));
        assert_eq!(h.ancestor_at(&s, r0, r0.layer), Some(r0), "identity");
    }

    #[test]
    fn children_and_descendants_queries() {
        let (s, h) = small_building();
        let b = s.resolve("b").unwrap();
        let f0 = s.resolve("f0").unwrap();
        let lr = s.find_layer(&LayerKind::Room).unwrap();
        let mut kids = h.children_of(&s, f0);
        kids.sort();
        let mut expected = vec![s.resolve("r0").unwrap(), s.resolve("r1").unwrap()];
        expected.sort();
        assert_eq!(kids, expected);
        let mut rooms = h.descendants_at(&s, b, lr);
        rooms.sort();
        assert_eq!(rooms.len(), 3);
    }

    #[test]
    fn descendants_downward_only() {
        let (s, h) = small_building();
        let r0 = s.resolve("r0").unwrap();
        let lb = s.find_layer(&LayerKind::Building).unwrap();
        assert!(h.descendants_at(&s, r0, lb).is_empty());
        let lf = s.find_layer(&LayerKind::Floor).unwrap();
        let f0 = s.resolve("f0").unwrap();
        assert!(h.ancestor_at(&s, f0, lf) == Some(f0));
    }

    #[test]
    fn too_few_layers() {
        let s = IndoorSpace::new();
        let h = LayerHierarchy::new(vec![]);
        let issues = validate_hierarchy(&s, &h);
        assert!(matches!(
            issues[0],
            HierarchyIssue::TooFewLayers { found: 0 }
        ));
    }

    #[test]
    fn five_layer_extended_hierarchy_is_valid() {
        // BuildingComplex root + RoI leaf, the paper's Fig. 2 shape.
        let mut s = IndoorSpace::new();
        let lc = s.add_layer("complex", LayerKind::BuildingComplex);
        let lb = s.add_layer("buildings", LayerKind::Building);
        let lf = s.add_layer("floors", LayerKind::Floor);
        let lr = s.add_layer("rooms", LayerKind::Room);
        let li = s.add_layer("rois", LayerKind::RegionOfInterest);
        let c = s
            .add_cell(lc, Cell::new("site", "Site", CellClass::BuildingComplex))
            .unwrap();
        let a = s
            .add_cell(lb, Cell::new("ba", "Building A", CellClass::Building))
            .unwrap();
        let fa1 = s
            .add_cell(lf, Cell::new("fa1", "FloorA1", CellClass::Floor))
            .unwrap();
        let r = s
            .add_cell(lr, Cell::new("r", "Room", CellClass::Room))
            .unwrap();
        let roi = s
            .add_cell(li, Cell::new("roi", "Exhibit", CellClass::RegionOfInterest))
            .unwrap();
        s.add_joint(c, a, JointRelation::Covers).unwrap();
        s.add_joint(a, fa1, JointRelation::Covers).unwrap();
        s.add_joint(fa1, r, JointRelation::Contains).unwrap();
        s.add_joint(r, roi, JointRelation::Contains).unwrap();
        let h = core_hierarchy(&s).unwrap();
        assert_eq!(h.len(), 5);
        assert!(validate_hierarchy(&s, &h).is_empty());
        assert_eq!(h.ancestor_at(&s, roi, lc), Some(c));
    }
}
