//! Cells: the symbolic spatial units of the indoor model.
//!
//! IndoorGML's core module "considers an indoor space as a set of
//! non-overlapping cells that represent its smallest organizational /
//! structural units" (§2.1). Our cells live in *layers*; every cell carries
//! a semantic class, optional 2D geometry with a floor index (the 2.5D
//! assumption), and free-form attributes — "static semantic information
//! about the regions is represented through node classes and attributes"
//! (§3.1).

use std::collections::BTreeMap;
use std::fmt;

use sitm_geometry::Polygon;
use sitm_graph::{LayerIdx, NodeId};

/// Semantic class of a cell. Classes drive episode predicates and analytics
/// ("the semantics of places also offer us valuable insight", §4.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CellClass {
    /// A whole site of several buildings (e.g. the Louvre).
    BuildingComplex,
    /// One building or wing treated as a building.
    Building,
    /// One floor level of a building.
    Floor,
    /// A generic room.
    Room,
    /// A large hall.
    Hall,
    /// A corridor / hallway.
    Corridor,
    /// A staircase (room-level navigable cell per the paper).
    Staircase,
    /// An elevator cabin/shaft.
    Elevator,
    /// A lobby.
    Lobby,
    /// A shop (e.g. the Louvre souvenir shops in zone S).
    Shop,
    /// A cloakroom.
    Cloakroom,
    /// An exhibition space requiring a (possibly separate) ticket.
    Exhibition,
    /// A building entrance cell.
    Entrance,
    /// A building exit cell (e.g. the Carrousel exit).
    Exit,
    /// A thematic zone (the Louvre dataset's aggregation unit).
    Zone,
    /// A sub-room region of interest (exhibit engagement area).
    RegionOfInterest,
    /// Anything else, named.
    Other(String),
}

impl CellClass {
    /// Canonical class name.
    pub fn name(&self) -> &str {
        match self {
            CellClass::BuildingComplex => "buildingComplex",
            CellClass::Building => "building",
            CellClass::Floor => "floor",
            CellClass::Room => "room",
            CellClass::Hall => "hall",
            CellClass::Corridor => "corridor",
            CellClass::Staircase => "staircase",
            CellClass::Elevator => "elevator",
            CellClass::Lobby => "lobby",
            CellClass::Shop => "shop",
            CellClass::Cloakroom => "cloakroom",
            CellClass::Exhibition => "exhibition",
            CellClass::Entrance => "entrance",
            CellClass::Exit => "exit",
            CellClass::Zone => "zone",
            CellClass::RegionOfInterest => "roi",
            CellClass::Other(s) => s,
        }
    }

    /// Parses a canonical class name (inverse of [`CellClass::name`]).
    pub fn parse(s: &str) -> CellClass {
        match s {
            "buildingComplex" => CellClass::BuildingComplex,
            "building" => CellClass::Building,
            "floor" => CellClass::Floor,
            "room" => CellClass::Room,
            "hall" => CellClass::Hall,
            "corridor" => CellClass::Corridor,
            "staircase" => CellClass::Staircase,
            "elevator" => CellClass::Elevator,
            "lobby" => CellClass::Lobby,
            "shop" => CellClass::Shop,
            "cloakroom" => CellClass::Cloakroom,
            "exhibition" => CellClass::Exhibition,
            "entrance" => CellClass::Entrance,
            "exit" => CellClass::Exit,
            "zone" => CellClass::Zone,
            "roi" => CellClass::RegionOfInterest,
            other => CellClass::Other(other.to_string()),
        }
    }

    /// True for classes that can appear in the "Room" layer of the core
    /// hierarchy — "it may actually contain any type of room-level navigable
    /// spatial cell, such as rooms, chambers, halls, lobbies, cellars,
    /// terraces, corridors, hallways, big staircases" (§3.2).
    pub fn is_room_level(&self) -> bool {
        matches!(
            self,
            CellClass::Room
                | CellClass::Hall
                | CellClass::Corridor
                | CellClass::Staircase
                | CellClass::Elevator
                | CellClass::Lobby
                | CellClass::Shop
                | CellClass::Cloakroom
                | CellClass::Exhibition
                | CellClass::Entrance
                | CellClass::Exit
        )
    }
}

impl fmt::Display for CellClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A symbolic spatial cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Globally unique key (e.g. `"zone60887"`, `"denon.f1.salle-des-etats"`).
    pub key: String,
    /// Human-readable name (e.g. `"Salle des États"`).
    pub name: String,
    /// Semantic class.
    pub class: CellClass,
    /// Floor index for room-level and finer cells (−2 … +2 at the Louvre).
    /// `None` for cells spanning floors (buildings, complexes).
    pub floor: Option<i8>,
    /// Optional 2D footprint in the building-local metric frame.
    pub geometry: Option<Polygon>,
    /// Free-form semantic attributes (sorted for deterministic iteration).
    pub attributes: BTreeMap<String, String>,
}

impl Cell {
    /// Creates a minimal cell with key, name and class.
    pub fn new(key: impl Into<String>, name: impl Into<String>, class: CellClass) -> Self {
        Cell {
            key: key.into(),
            name: name.into(),
            class,
            floor: None,
            geometry: None,
            attributes: BTreeMap::new(),
        }
    }

    /// Builder: sets the floor index.
    #[must_use]
    pub fn on_floor(mut self, floor: i8) -> Self {
        self.floor = Some(floor);
        self
    }

    /// Builder: sets the footprint polygon.
    #[must_use]
    pub fn with_geometry(mut self, poly: Polygon) -> Self {
        self.geometry = Some(poly);
        self
    }

    /// Builder: adds one attribute.
    #[must_use]
    pub fn with_attribute(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.insert(key.into(), value.into());
        self
    }

    /// Attribute lookup.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes.get(key).map(String::as_str)
    }
}

/// Address of a cell inside an [`crate::IndoorSpace`]: layer + node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellRef {
    /// Layer the cell belongs to.
    pub layer: LayerIdx,
    /// Node id within that layer's NRG.
    pub node: NodeId,
}

impl CellRef {
    /// Creates a cell reference.
    pub fn new(layer: LayerIdx, node: NodeId) -> Self {
        CellRef { layer, node }
    }
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.layer, self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_geometry::Point;

    #[test]
    fn class_names_round_trip() {
        let classes = [
            CellClass::BuildingComplex,
            CellClass::Building,
            CellClass::Floor,
            CellClass::Room,
            CellClass::Hall,
            CellClass::Corridor,
            CellClass::Staircase,
            CellClass::Elevator,
            CellClass::Lobby,
            CellClass::Shop,
            CellClass::Cloakroom,
            CellClass::Exhibition,
            CellClass::Entrance,
            CellClass::Exit,
            CellClass::Zone,
            CellClass::RegionOfInterest,
            CellClass::Other("atrium".to_string()),
        ];
        for c in classes {
            assert_eq!(CellClass::parse(c.name()), c);
        }
    }

    #[test]
    fn room_level_membership() {
        assert!(CellClass::Hall.is_room_level());
        assert!(CellClass::Staircase.is_room_level());
        assert!(CellClass::Shop.is_room_level());
        assert!(!CellClass::Floor.is_room_level());
        assert!(!CellClass::Zone.is_room_level());
        assert!(!CellClass::RegionOfInterest.is_room_level());
    }

    #[test]
    fn cell_builder_chains() {
        let poly = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(5.0, 5.0)).unwrap();
        let cell = Cell::new(
            "zone60887",
            "Temporary Exhibition (E)",
            CellClass::Exhibition,
        )
        .on_floor(-2)
        .with_geometry(poly.clone())
        .with_attribute("ticket", "separate")
        .with_attribute("theme", "temporary");
        assert_eq!(cell.key, "zone60887");
        assert_eq!(cell.floor, Some(-2));
        assert_eq!(cell.geometry, Some(poly));
        assert_eq!(cell.attribute("ticket"), Some("separate"));
        assert_eq!(cell.attribute("missing"), None);
    }

    #[test]
    fn cell_ref_display() {
        let r = CellRef::new(LayerIdx::from_index(2), NodeId::from_index(7));
        assert_eq!(r.to_string(), "L2:n7");
    }

    #[test]
    fn attributes_iterate_sorted() {
        let cell = Cell::new("k", "n", CellClass::Room)
            .with_attribute("z", "1")
            .with_attribute("a", "2");
        let keys: Vec<&String> = cell.attributes.keys().collect();
        assert_eq!(keys, vec!["a", "z"]);
    }
}
