//! The indoor space model: a layered multigraph of cells with accessibility
//! transitions and joint edges, plus a key registry.

use std::collections::BTreeMap;

use sitm_graph::{CouplingRef, DiMultigraph, EdgeId, EdgeRef, LayerIdx, LayeredGraph};

use crate::cell::{Cell, CellRef};
use crate::joint::JointRelation;
use crate::layer::{Layer, LayerKind};
use crate::transition::Transition;

/// Errors raised while building or querying an [`IndoorSpace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A cell key was registered twice.
    DuplicateKey(String),
    /// A cell key lookup failed.
    UnknownKey(String),
    /// A [`CellRef`] does not designate a live cell.
    UnknownCell(CellRef),
    /// Accessibility transitions must stay within one layer.
    CrossLayerTransition {
        /// Source of the offending transition.
        from: CellRef,
        /// Target of the offending transition.
        to: CellRef,
    },
    /// Joint edges must connect two different layers.
    SameLayerJoint {
        /// Source of the offending joint edge.
        from: CellRef,
        /// Target of the offending joint edge.
        to: CellRef,
    },
    /// A layer index does not designate a layer.
    UnknownLayer(LayerIdx),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::DuplicateKey(k) => write!(f, "duplicate cell key {k:?}"),
            ModelError::UnknownKey(k) => write!(f, "unknown cell key {k:?}"),
            ModelError::UnknownCell(r) => write!(f, "unknown cell {r}"),
            ModelError::CrossLayerTransition { from, to } => {
                write!(f, "transition {from} -> {to} crosses layers")
            }
            ModelError::SameLayerJoint { from, to } => {
                write!(f, "joint edge {from} -> {to} stays within one layer")
            }
            ModelError::UnknownLayer(l) => write!(f, "unknown layer {l}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Aggregate counts of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelStats {
    /// Number of layers.
    pub layers: usize,
    /// Total number of cells across layers.
    pub cells: usize,
    /// Total number of directed accessibility transitions.
    pub transitions: usize,
    /// Total number of joint edges.
    pub joints: usize,
}

/// A semantically enriched multi-layered indoor space.
///
/// Wraps a [`LayeredGraph`] with domain rules: unique cell keys, intra-layer
/// transitions only, inter-layer joint edges only.
#[derive(Debug, Clone, Default)]
pub struct IndoorSpace {
    graph: LayeredGraph<Layer, Cell, Transition, JointRelation>,
    keys: BTreeMap<String, CellRef>,
}

impl IndoorSpace {
    /// Creates an empty model.
    pub fn new() -> Self {
        IndoorSpace {
            graph: LayeredGraph::new(),
            keys: BTreeMap::new(),
        }
    }

    /// Adds a layer.
    pub fn add_layer(&mut self, name: impl Into<String>, kind: LayerKind) -> LayerIdx {
        self.graph.add_layer(Layer::new(name, kind))
    }

    /// Adds a cell to a layer. Fails on duplicate key.
    pub fn add_cell(&mut self, layer: LayerIdx, cell: Cell) -> Result<CellRef, ModelError> {
        if layer.index() >= self.graph.layer_count() {
            return Err(ModelError::UnknownLayer(layer));
        }
        if self.keys.contains_key(&cell.key) {
            return Err(ModelError::DuplicateKey(cell.key));
        }
        let key = cell.key.clone();
        let (l, n) = self.graph.add_node(layer, cell);
        let cref = CellRef::new(l, n);
        self.keys.insert(key, cref);
        Ok(cref)
    }

    /// Adds a directed accessibility transition between two cells of the
    /// *same* layer.
    pub fn add_transition(
        &mut self,
        from: CellRef,
        to: CellRef,
        transition: Transition,
    ) -> Result<EdgeId, ModelError> {
        self.check_cell(from)?;
        self.check_cell(to)?;
        if from.layer != to.layer {
            return Err(ModelError::CrossLayerTransition { from, to });
        }
        Ok(self
            .graph
            .add_intra_edge(from.layer, from.node, to.node, transition))
    }

    /// Adds a bidirectional transition (two directed edges with the same
    /// payload). Most doors; not the Salle des États.
    pub fn add_transition_pair(
        &mut self,
        a: CellRef,
        b: CellRef,
        transition: Transition,
    ) -> Result<(EdgeId, EdgeId), ModelError> {
        let forward = self.add_transition(a, b, transition.clone())?;
        let backward = self.add_transition(b, a, transition)?;
        Ok((forward, backward))
    }

    /// Adds a directed joint edge between cells of *different* layers.
    pub fn add_joint(
        &mut self,
        from: CellRef,
        to: CellRef,
        relation: JointRelation,
    ) -> Result<usize, ModelError> {
        self.check_cell(from)?;
        self.check_cell(to)?;
        if from.layer == to.layer {
            return Err(ModelError::SameLayerJoint { from, to });
        }
        Ok(self
            .graph
            .add_coupling((from.layer, from.node), (to.layer, to.node), relation))
    }

    fn check_cell(&self, r: CellRef) -> Result<(), ModelError> {
        let live = self
            .graph
            .graph(r.layer)
            .is_some_and(|g| g.contains_node(r.node));
        if live {
            Ok(())
        } else {
            Err(ModelError::UnknownCell(r))
        }
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.graph.layer_count()
    }

    /// Layer metadata.
    pub fn layer(&self, idx: LayerIdx) -> Option<&Layer> {
        self.graph.layer(idx)
    }

    /// Iterates `(LayerIdx, &Layer)` in order.
    pub fn layers(&self) -> impl Iterator<Item = (LayerIdx, &Layer)> + '_ {
        self.graph.layers()
    }

    /// First layer of the given kind.
    pub fn find_layer(&self, kind: &LayerKind) -> Option<LayerIdx> {
        self.layers()
            .find(|(_, l)| &l.kind == kind)
            .map(|(idx, _)| idx)
    }

    /// Cell payload by reference.
    pub fn cell(&self, r: CellRef) -> Option<&Cell> {
        self.graph.graph(r.layer)?.node(r.node)
    }

    /// Mutable cell payload.
    pub fn cell_mut(&mut self, r: CellRef) -> Option<&mut Cell> {
        self.graph.graph_mut(r.layer)?.node_mut(r.node)
    }

    /// Resolves a cell key to its reference.
    pub fn resolve(&self, key: &str) -> Option<CellRef> {
        self.keys.get(key).copied()
    }

    /// Resolves a key, returning an error with the key name on failure.
    pub fn require(&self, key: &str) -> Result<CellRef, ModelError> {
        self.resolve(key)
            .ok_or_else(|| ModelError::UnknownKey(key.to_string()))
    }

    /// Resolves a key to both the reference and the payload.
    pub fn cell_by_key(&self, key: &str) -> Option<(CellRef, &Cell)> {
        let r = self.resolve(key)?;
        Some((r, self.cell(r)?))
    }

    /// Iterates cells of one layer.
    pub fn cells_in(&self, layer: LayerIdx) -> impl Iterator<Item = (CellRef, &Cell)> + '_ {
        self.graph
            .graph(layer)
            .into_iter()
            .flat_map(move |g| g.nodes().map(move |(n, c)| (CellRef::new(layer, n), c)))
    }

    /// Iterates all cells of all layers.
    pub fn cells(&self) -> impl Iterator<Item = (CellRef, &Cell)> + '_ {
        self.layers().flat_map(move |(idx, _)| self.cells_in(idx))
    }

    /// The accessibility NRG of one layer.
    pub fn nrg(&self, layer: LayerIdx) -> Option<&DiMultigraph<Cell, Transition>> {
        self.graph.graph(layer)
    }

    /// Iterates the directed transitions of one layer.
    pub fn transitions_in(
        &self,
        layer: LayerIdx,
    ) -> impl Iterator<Item = EdgeRef<'_, Transition>> + '_ {
        self.graph.graph(layer).into_iter().flat_map(|g| g.edges())
    }

    /// Transition payload by layer and edge id.
    pub fn transition(&self, layer: LayerIdx, edge: EdgeId) -> Option<&Transition> {
        self.graph.graph(layer)?.edge(edge)
    }

    /// Iterates all joint edges.
    pub fn joints(&self) -> impl Iterator<Item = CouplingRef<'_, JointRelation>> + '_ {
        self.graph.couplings()
    }

    /// Joint edges whose source is `cell`.
    pub fn joints_from(
        &self,
        cell: CellRef,
    ) -> impl Iterator<Item = CouplingRef<'_, JointRelation>> + '_ {
        self.graph.couplings_from((cell.layer, cell.node))
    }

    /// Joint edges whose target is `cell`.
    pub fn joints_to(
        &self,
        cell: CellRef,
    ) -> impl Iterator<Item = CouplingRef<'_, JointRelation>> + '_ {
        self.graph.couplings_to((cell.layer, cell.node))
    }

    /// Aggregate counts.
    pub fn stats(&self) -> ModelStats {
        ModelStats {
            layers: self.graph.layer_count(),
            cells: self.graph.total_nodes(),
            transitions: self.graph.total_intra_edges(),
            joints: self.graph.coupling_count(),
        }
    }

    /// Audits joint edges against geometry: for every joint whose two cells
    /// both carry footprints on the same floor, derives the geometric
    /// relation and reports joints whose declared relation disagrees.
    /// Returns `(from, to, declared, derived)` tuples.
    pub fn audit_joints_against_geometry(
        &self,
    ) -> Vec<(CellRef, CellRef, JointRelation, Option<JointRelation>)> {
        let mut mismatches = Vec::new();
        for j in self.joints() {
            let from = CellRef::new(j.from.0, j.from.1);
            let to = CellRef::new(j.to.0, j.to.1);
            let (Some(a), Some(b)) = (self.cell(from), self.cell(to)) else {
                continue;
            };
            let (Some(pa), Some(pb)) = (a.geometry.as_ref(), b.geometry.as_ref()) else {
                continue;
            };
            if a.floor.is_some() && b.floor.is_some() && a.floor != b.floor {
                continue; // different floors: geometry comparison meaningless
            }
            let derived = JointRelation::from_spatial(sitm_geometry::relate_polygons(pa, pb));
            if derived != Some(*j.payload) {
                mismatches.push((from, to, *j.payload, derived));
            }
        }
        mismatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellClass;
    use crate::transition::TransitionKind;
    use sitm_geometry::{Point, Polygon};

    fn two_room_model() -> (IndoorSpace, CellRef, CellRef) {
        let mut space = IndoorSpace::new();
        let rooms = space.add_layer("rooms", LayerKind::Room);
        let a = space
            .add_cell(rooms, Cell::new("room-a", "Room A", CellClass::Room))
            .unwrap();
        let b = space
            .add_cell(rooms, Cell::new("room-b", "Room B", CellClass::Room))
            .unwrap();
        (space, a, b)
    }

    #[test]
    fn duplicate_keys_rejected() {
        let (mut space, ..) = two_room_model();
        let rooms = space.find_layer(&LayerKind::Room).unwrap();
        let err = space
            .add_cell(rooms, Cell::new("room-a", "Clone", CellClass::Room))
            .unwrap_err();
        assert_eq!(err, ModelError::DuplicateKey("room-a".to_string()));
    }

    #[test]
    fn resolve_and_lookup() {
        let (space, a, _) = two_room_model();
        assert_eq!(space.resolve("room-a"), Some(a));
        assert_eq!(space.resolve("nope"), None);
        let (r, cell) = space.cell_by_key("room-a").unwrap();
        assert_eq!(r, a);
        assert_eq!(cell.name, "Room A");
        assert!(space.require("missing").is_err());
    }

    #[test]
    fn one_way_transition_is_directed() {
        // The Salle des États rule: exit allowed, entry forbidden.
        let (mut space, salle, room2) = two_room_model();
        space
            .add_transition(
                salle,
                room2,
                Transition::named(TransitionKind::Door, "exit-door"),
            )
            .unwrap();
        let rooms = salle.layer;
        let nrg = space.nrg(rooms).unwrap();
        assert!(nrg.has_edge(salle.node, room2.node));
        assert!(!nrg.has_edge(room2.node, salle.node));
    }

    #[test]
    fn transition_pair_adds_both_directions() {
        let (mut space, a, b) = two_room_model();
        space
            .add_transition_pair(a, b, Transition::new(TransitionKind::Opening))
            .unwrap();
        let nrg = space.nrg(a.layer).unwrap();
        assert!(nrg.has_edge(a.node, b.node));
        assert!(nrg.has_edge(b.node, a.node));
        assert_eq!(space.stats().transitions, 2);
    }

    #[test]
    fn cross_layer_transition_rejected() {
        let (mut space, a, _) = two_room_model();
        let floors = space.add_layer("floors", LayerKind::Floor);
        let f = space
            .add_cell(floors, Cell::new("f1", "Floor 1", CellClass::Floor))
            .unwrap();
        let err = space
            .add_transition(a, f, Transition::new(TransitionKind::Door))
            .unwrap_err();
        assert!(matches!(err, ModelError::CrossLayerTransition { .. }));
    }

    #[test]
    fn same_layer_joint_rejected() {
        let (mut space, a, b) = two_room_model();
        let err = space.add_joint(a, b, JointRelation::Contains).unwrap_err();
        assert!(matches!(err, ModelError::SameLayerJoint { .. }));
    }

    #[test]
    fn joints_index_both_ways() {
        let (mut space, a, _) = two_room_model();
        let floors = space.add_layer("floors", LayerKind::Floor);
        let f = space
            .add_cell(floors, Cell::new("f1", "Floor 1", CellClass::Floor))
            .unwrap();
        space.add_joint(f, a, JointRelation::Contains).unwrap();
        let from_f: Vec<_> = space.joints_from(f).collect();
        assert_eq!(from_f.len(), 1);
        assert_eq!(*from_f[0].payload, JointRelation::Contains);
        let to_a: Vec<_> = space.joints_to(a).collect();
        assert_eq!(to_a.len(), 1);
        assert_eq!(space.stats().joints, 1);
    }

    #[test]
    fn parallel_doors_are_supported() {
        // "multiple ways of entering a room" (§1).
        let (mut space, a, b) = two_room_model();
        space
            .add_transition(a, b, Transition::named(TransitionKind::Door, "north-door"))
            .unwrap();
        space
            .add_transition(a, b, Transition::named(TransitionKind::Door, "south-door"))
            .unwrap();
        let nrg = space.nrg(a.layer).unwrap();
        assert_eq!(nrg.edges_between(a.node, b.node).count(), 2);
    }

    #[test]
    fn stats_count_everything() {
        let (mut space, a, b) = two_room_model();
        let floors = space.add_layer("floors", LayerKind::Floor);
        let f = space
            .add_cell(floors, Cell::new("f1", "Floor 1", CellClass::Floor))
            .unwrap();
        space
            .add_transition_pair(a, b, Transition::new(TransitionKind::Door))
            .unwrap();
        space.add_joint(f, a, JointRelation::Contains).unwrap();
        space.add_joint(f, b, JointRelation::Contains).unwrap();
        let stats = space.stats();
        assert_eq!(stats.layers, 2);
        assert_eq!(stats.cells, 3);
        assert_eq!(stats.transitions, 2);
        assert_eq!(stats.joints, 2);
    }

    #[test]
    fn geometry_audit_flags_wrong_relations() {
        let mut space = IndoorSpace::new();
        let rooms = space.add_layer("rooms", LayerKind::Room);
        let rois = space.add_layer("rois", LayerKind::RegionOfInterest);
        let room_poly = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let roi_poly = Polygon::rectangle(Point::new(2.0, 2.0), Point::new(4.0, 4.0)).unwrap();
        let room = space
            .add_cell(
                rooms,
                Cell::new("r", "Room", CellClass::Room)
                    .on_floor(0)
                    .with_geometry(room_poly),
            )
            .unwrap();
        let roi = space
            .add_cell(
                rois,
                Cell::new("roi", "Exhibit", CellClass::RegionOfInterest)
                    .on_floor(0)
                    .with_geometry(roi_poly),
            )
            .unwrap();
        // Declared "covers" but geometry says strict containment.
        space.add_joint(room, roi, JointRelation::Covers).unwrap();
        let audit = space.audit_joints_against_geometry();
        assert_eq!(audit.len(), 1);
        assert_eq!(audit[0].2, JointRelation::Covers);
        assert_eq!(audit[0].3, Some(JointRelation::Contains));
    }

    #[test]
    fn geometry_audit_accepts_correct_relations() {
        let mut space = IndoorSpace::new();
        let rooms = space.add_layer("rooms", LayerKind::Room);
        let rois = space.add_layer("rois", LayerKind::RegionOfInterest);
        let room_poly = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0)).unwrap();
        let roi_poly = Polygon::rectangle(Point::new(2.0, 2.0), Point::new(4.0, 4.0)).unwrap();
        let room = space
            .add_cell(
                rooms,
                Cell::new("r", "Room", CellClass::Room)
                    .on_floor(0)
                    .with_geometry(room_poly),
            )
            .unwrap();
        let roi = space
            .add_cell(
                rois,
                Cell::new("roi", "Exhibit", CellClass::RegionOfInterest)
                    .on_floor(0)
                    .with_geometry(roi_poly),
            )
            .unwrap();
        space.add_joint(room, roi, JointRelation::Contains).unwrap();
        assert!(space.audit_joints_against_geometry().is_empty());
    }

    #[test]
    fn cells_iterator_spans_layers() {
        let (mut space, ..) = two_room_model();
        let floors = space.add_layer("floors", LayerKind::Floor);
        space
            .add_cell(floors, Cell::new("f1", "Floor 1", CellClass::Floor))
            .unwrap();
        assert_eq!(space.cells().count(), 3);
        let keys: Vec<&str> = space.cells().map(|(_, c)| c.key.as_str()).collect();
        assert!(keys.contains(&"room-a"));
        assert!(keys.contains(&"f1"));
    }
}
