//! Joint edges: inter-layer topological relationships.
//!
//! "A joint edge represents any of the eight binary topological
//! relationships derived by the n-intersection model, except for `disjoint`
//! and `meet`" (§2.1) — two cells of different layers are joined exactly
//! when a moving object can be in both at once. Joint edges are *directed*
//! because "contains and covers can not" be thought of as symmetric (§3.2).

use std::fmt;

use sitm_geometry::SpatialRelation;
use sitm_qsr::Rcc8;

/// The six admissible joint-edge relations (relation of the edge's source
/// cell to its target cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JointRelation {
    /// Interiors intersect, neither contains the other.
    Overlap,
    /// Source strictly contains target.
    Contains,
    /// Source contains target with boundary contact.
    Covers,
    /// Source strictly inside target.
    InsideOf,
    /// Source inside target with boundary contact.
    CoveredBy,
    /// Source and target describe the same region.
    Equal,
}

impl JointRelation {
    /// All six joint relations.
    pub const ALL: [JointRelation; 6] = [
        JointRelation::Overlap,
        JointRelation::Contains,
        JointRelation::Covers,
        JointRelation::InsideOf,
        JointRelation::CoveredBy,
        JointRelation::Equal,
    ];

    /// Converse relation.
    pub fn converse(self) -> JointRelation {
        match self {
            JointRelation::Contains => JointRelation::InsideOf,
            JointRelation::InsideOf => JointRelation::Contains,
            JointRelation::Covers => JointRelation::CoveredBy,
            JointRelation::CoveredBy => JointRelation::Covers,
            sym => sym,
        }
    }

    /// True for the two relations admitted *inside a layer hierarchy*:
    /// the paper excludes `overlap` (like Kang & Li) and also `equal`
    /// "to prohibit node repetition and instead favor a proper hierarchy",
    /// keeping `contains` and `covers` with top→bottom direction (§3.2).
    pub fn is_hierarchical(self) -> bool {
        matches!(self, JointRelation::Contains | JointRelation::Covers)
    }

    /// Maps to the RCC8 base relation.
    pub fn to_rcc8(self) -> Rcc8 {
        match self {
            JointRelation::Overlap => Rcc8::Po,
            JointRelation::Contains => Rcc8::Ntppi,
            JointRelation::Covers => Rcc8::Tppi,
            JointRelation::InsideOf => Rcc8::Ntpp,
            JointRelation::CoveredBy => Rcc8::Tpp,
            JointRelation::Equal => Rcc8::Eq,
        }
    }

    /// Maps from a geometric classification; `None` for `Disjoint`/`Meet`
    /// (which are *not* valid joint edges — the cells then share no point
    /// where an object could reside).
    pub fn from_spatial(rel: SpatialRelation) -> Option<JointRelation> {
        match rel {
            SpatialRelation::Overlap => Some(JointRelation::Overlap),
            SpatialRelation::Contains => Some(JointRelation::Contains),
            SpatialRelation::Covers => Some(JointRelation::Covers),
            SpatialRelation::Inside => Some(JointRelation::InsideOf),
            SpatialRelation::CoveredBy => Some(JointRelation::CoveredBy),
            SpatialRelation::Equal => Some(JointRelation::Equal),
            SpatialRelation::Disjoint | SpatialRelation::Meet => None,
        }
    }

    /// Canonical name (paper vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            JointRelation::Overlap => "overlap",
            JointRelation::Contains => "contains",
            JointRelation::Covers => "covers",
            JointRelation::InsideOf => "insideOf",
            JointRelation::CoveredBy => "coveredBy",
            JointRelation::Equal => "equal",
        }
    }

    /// Parses a canonical name.
    pub fn parse(s: &str) -> Option<JointRelation> {
        JointRelation::ALL.into_iter().find(|r| r.name() == s)
    }
}

impl fmt::Display for JointRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converse_is_involution() {
        for r in JointRelation::ALL {
            assert_eq!(r.converse().converse(), r);
        }
        assert_eq!(JointRelation::Contains.converse(), JointRelation::InsideOf);
        assert_eq!(JointRelation::Covers.converse(), JointRelation::CoveredBy);
        assert_eq!(JointRelation::Overlap.converse(), JointRelation::Overlap);
        assert_eq!(JointRelation::Equal.converse(), JointRelation::Equal);
    }

    #[test]
    fn only_contains_and_covers_are_hierarchical() {
        let hier: Vec<JointRelation> = JointRelation::ALL
            .into_iter()
            .filter(|r| r.is_hierarchical())
            .collect();
        assert_eq!(hier, vec![JointRelation::Contains, JointRelation::Covers]);
    }

    #[test]
    fn rcc8_mapping_respects_converse() {
        for r in JointRelation::ALL {
            assert_eq!(r.converse().to_rcc8(), r.to_rcc8().converse());
        }
    }

    #[test]
    fn disjoint_and_meet_are_rejected() {
        assert_eq!(JointRelation::from_spatial(SpatialRelation::Disjoint), None);
        assert_eq!(JointRelation::from_spatial(SpatialRelation::Meet), None);
        assert_eq!(
            JointRelation::from_spatial(SpatialRelation::Covers),
            Some(JointRelation::Covers)
        );
    }

    #[test]
    fn names_round_trip() {
        for r in JointRelation::ALL {
            assert_eq!(JointRelation::parse(r.name()), Some(r));
        }
        assert_eq!(JointRelation::parse("disjoint"), None);
    }
}
