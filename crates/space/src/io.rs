//! JSON exchange format for indoor space models.
//!
//! The format carries the same information as IndoorGML's MLSM core —
//! layers, cells, intra-layer (accessibility NRG) edges, inter-layer joint
//! edges — in a JSON document rather than the standard's XML syntax. See
//! DESIGN.md for why the XML codec is a non-goal.

use sitm_geometry::{Point, Polygon};

use crate::cell::{Cell, CellClass, CellRef};
use crate::joint::JointRelation;
use crate::json::{JsonError, JsonValue};
use crate::layer::LayerKind;
use crate::model::IndoorSpace;
use crate::transition::{Transition, TransitionKind};

/// Format identifier written into every document.
pub const FORMAT: &str = "sitm-space/1";

/// Errors raised while decoding a model document.
#[derive(Debug, Clone, PartialEq)]
pub enum IoError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document structure is not a valid model (message explains).
    Schema(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Json(e) => write!(f, "{e}"),
            IoError::Schema(m) => write!(f, "schema error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<JsonError> for IoError {
    fn from(e: JsonError) -> Self {
        IoError::Json(e)
    }
}

fn schema(msg: impl Into<String>) -> IoError {
    IoError::Schema(msg.into())
}

/// Serializes a model to a JSON document value.
pub fn to_json(space: &IndoorSpace) -> JsonValue {
    let mut layers = Vec::new();
    for (idx, layer) in space.layers() {
        let cells: Vec<JsonValue> = space
            .cells_in(idx)
            .map(|(_, cell)| cell_to_json(cell))
            .collect();
        let transitions: Vec<JsonValue> = space
            .transitions_in(idx)
            .map(|e| {
                let from_key = space
                    .nrg(idx)
                    .and_then(|g| g.node(e.from))
                    .map(|c| c.key.clone())
                    .unwrap_or_default();
                let to_key = space
                    .nrg(idx)
                    .and_then(|g| g.node(e.to))
                    .map(|c| c.key.clone())
                    .unwrap_or_default();
                let mut fields = vec![
                    ("from".to_string(), JsonValue::string(from_key)),
                    ("to".to_string(), JsonValue::string(to_key)),
                    ("kind".to_string(), JsonValue::string(e.payload.kind.name())),
                ];
                if let Some(name) = &e.payload.name {
                    fields.push(("name".to_string(), JsonValue::string(name.clone())));
                }
                if e.payload.cost_hint > 0.0 {
                    fields.push(("cost".to_string(), JsonValue::Number(e.payload.cost_hint)));
                }
                JsonValue::object(fields)
            })
            .collect();
        layers.push(JsonValue::object([
            ("name", JsonValue::string(layer.name.clone())),
            ("kind", JsonValue::string(layer.kind.name())),
            ("cells", JsonValue::Array(cells)),
            ("transitions", JsonValue::Array(transitions)),
        ]));
    }

    let joints: Vec<JsonValue> = space
        .joints()
        .map(|j| {
            let from = CellRef::new(j.from.0, j.from.1);
            let to = CellRef::new(j.to.0, j.to.1);
            JsonValue::object([
                (
                    "from",
                    JsonValue::string(space.cell(from).map(|c| c.key.clone()).unwrap_or_default()),
                ),
                (
                    "to",
                    JsonValue::string(space.cell(to).map(|c| c.key.clone()).unwrap_or_default()),
                ),
                ("relation", JsonValue::string(j.payload.name())),
            ])
        })
        .collect();

    JsonValue::object([
        ("format", JsonValue::string(FORMAT)),
        ("layers", JsonValue::Array(layers)),
        ("joints", JsonValue::Array(joints)),
    ])
}

fn cell_to_json(cell: &Cell) -> JsonValue {
    let mut fields = vec![
        ("key".to_string(), JsonValue::string(cell.key.clone())),
        ("name".to_string(), JsonValue::string(cell.name.clone())),
        (
            "class".to_string(),
            JsonValue::string(cell.class.name().to_string()),
        ),
    ];
    if let Some(floor) = cell.floor {
        fields.push(("floor".to_string(), JsonValue::Number(floor as f64)));
    }
    if let Some(poly) = &cell.geometry {
        let ring: Vec<JsonValue> = poly
            .vertices()
            .iter()
            .map(|p| JsonValue::Array(vec![JsonValue::Number(p.x), JsonValue::Number(p.y)]))
            .collect();
        fields.push(("geometry".to_string(), JsonValue::Array(ring)));
    }
    if !cell.attributes.is_empty() {
        fields.push((
            "attributes".to_string(),
            JsonValue::object(
                cell.attributes
                    .iter()
                    .map(|(k, v)| (k.clone(), JsonValue::string(v.clone()))),
            ),
        ));
    }
    JsonValue::object(fields)
}

/// Serializes a model to pretty-printed JSON text.
pub fn to_json_string(space: &IndoorSpace) -> String {
    to_json(space).to_pretty()
}

/// Decodes a model from JSON text.
pub fn from_json_str(text: &str) -> Result<IndoorSpace, IoError> {
    from_json(&JsonValue::parse(text)?)
}

/// Decodes a model from a JSON document value.
pub fn from_json(doc: &JsonValue) -> Result<IndoorSpace, IoError> {
    let format = doc
        .get("format")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| schema("missing format"))?;
    if format != FORMAT {
        return Err(schema(format!("unsupported format {format:?}")));
    }
    let mut space = IndoorSpace::new();
    let layers = doc
        .get("layers")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| schema("missing layers array"))?;

    for layer_doc in layers {
        let name = layer_doc
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| schema("layer missing name"))?;
        let kind = layer_doc
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| schema("layer missing kind"))?;
        let idx = space.add_layer(name, LayerKind::parse(kind));

        for cell_doc in layer_doc
            .get("cells")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
        {
            let cell = cell_from_json(cell_doc)?;
            space
                .add_cell(idx, cell)
                .map_err(|e| schema(e.to_string()))?;
        }
        for t_doc in layer_doc
            .get("transitions")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
        {
            let from_key = t_doc
                .get("from")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| schema("transition missing from"))?;
            let to_key = t_doc
                .get("to")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| schema("transition missing to"))?;
            let kind = t_doc
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| schema("transition missing kind"))?;
            let mut transition = Transition::new(TransitionKind::parse(kind));
            if let Some(name) = t_doc.get("name").and_then(JsonValue::as_str) {
                transition.name = Some(name.to_string());
            }
            if let Some(cost) = t_doc.get("cost").and_then(JsonValue::as_f64) {
                transition.cost_hint = cost;
            }
            let from = space
                .resolve(from_key)
                .ok_or_else(|| schema(format!("transition from unknown cell {from_key:?}")))?;
            let to = space
                .resolve(to_key)
                .ok_or_else(|| schema(format!("transition to unknown cell {to_key:?}")))?;
            space
                .add_transition(from, to, transition)
                .map_err(|e| schema(e.to_string()))?;
        }
    }

    for joint_doc in doc
        .get("joints")
        .and_then(JsonValue::as_array)
        .unwrap_or(&[])
    {
        let from_key = joint_doc
            .get("from")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| schema("joint missing from"))?;
        let to_key = joint_doc
            .get("to")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| schema("joint missing to"))?;
        let rel_name = joint_doc
            .get("relation")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| schema("joint missing relation"))?;
        let relation = JointRelation::parse(rel_name)
            .ok_or_else(|| schema(format!("unknown joint relation {rel_name:?}")))?;
        let from = space
            .resolve(from_key)
            .ok_or_else(|| schema(format!("joint from unknown cell {from_key:?}")))?;
        let to = space
            .resolve(to_key)
            .ok_or_else(|| schema(format!("joint to unknown cell {to_key:?}")))?;
        space
            .add_joint(from, to, relation)
            .map_err(|e| schema(e.to_string()))?;
    }
    Ok(space)
}

fn cell_from_json(doc: &JsonValue) -> Result<Cell, IoError> {
    let key = doc
        .get("key")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| schema("cell missing key"))?;
    let name = doc
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| schema("cell missing name"))?;
    let class = doc
        .get("class")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| schema("cell missing class"))?;
    let mut cell = Cell::new(key, name, CellClass::parse(class));
    if let Some(floor) = doc.get("floor").and_then(JsonValue::as_i64) {
        cell.floor = Some(floor as i8);
    }
    if let Some(ring_doc) = doc.get("geometry").and_then(JsonValue::as_array) {
        let mut ring = Vec::with_capacity(ring_doc.len());
        for v in ring_doc {
            let coords = v
                .as_array()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| schema("geometry vertex must be [x, y]"))?;
            let x = coords[0]
                .as_f64()
                .ok_or_else(|| schema("geometry x must be a number"))?;
            let y = coords[1]
                .as_f64()
                .ok_or_else(|| schema("geometry y must be a number"))?;
            ring.push(Point::new(x, y));
        }
        let poly =
            Polygon::new(ring).map_err(|e| schema(format!("invalid geometry for {key:?}: {e}")))?;
        cell.geometry = Some(poly);
    }
    if let Some(JsonValue::Object(attrs)) = doc.get("attributes") {
        for (k, v) in attrs {
            let value = v
                .as_str()
                .ok_or_else(|| schema("attribute values must be strings"))?;
            cell.attributes.insert(k.clone(), value.to_string());
        }
    }
    Ok(cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellClass;
    use crate::layer::LayerKind;
    use sitm_geometry::Point;

    fn sample_space() -> IndoorSpace {
        let mut s = IndoorSpace::new();
        let lf = s.add_layer("floors", LayerKind::Floor);
        let lr = s.add_layer("rooms", LayerKind::Room);
        let f = s
            .add_cell(
                lf,
                Cell::new("f0", "Ground floor", CellClass::Floor).on_floor(0),
            )
            .unwrap();
        let a = s
            .add_cell(
                lr,
                Cell::new("room-a", "Room A", CellClass::Room)
                    .on_floor(0)
                    .with_geometry(
                        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0)).unwrap(),
                    )
                    .with_attribute("theme", "paintings"),
            )
            .unwrap();
        let b = s
            .add_cell(
                lr,
                Cell::new("room-b", "Room B", CellClass::Hall).on_floor(0),
            )
            .unwrap();
        s.add_transition(a, b, Transition::named(TransitionKind::Door, "door012"))
            .unwrap();
        s.add_transition(b, a, Transition::new(TransitionKind::Door).with_cost(5.0))
            .unwrap();
        s.add_joint(f, a, JointRelation::Covers).unwrap();
        s.add_joint(f, b, JointRelation::Contains).unwrap();
        s
    }

    #[test]
    fn round_trip_preserves_structure() {
        let original = sample_space();
        let text = to_json_string(&original);
        let decoded = from_json_str(&text).unwrap();
        assert_eq!(decoded.stats(), original.stats());
        // Keys, classes, attributes survive.
        let (_, a) = decoded.cell_by_key("room-a").unwrap();
        assert_eq!(a.class, CellClass::Room);
        assert_eq!(a.attribute("theme"), Some("paintings"));
        assert!(a.geometry.is_some());
        assert_eq!(a.floor, Some(0));
        // Transitions survive with payloads.
        let lr = decoded.find_layer(&LayerKind::Room).unwrap();
        let named: Vec<String> = decoded
            .transitions_in(lr)
            .filter_map(|e| e.payload.name.clone())
            .collect();
        assert_eq!(named, vec!["door012".to_string()]);
        let costs: Vec<f64> = decoded
            .transitions_in(lr)
            .map(|e| e.payload.cost_hint)
            .collect();
        assert!(costs.contains(&5.0));
        // Joints survive with relations.
        let rels: Vec<JointRelation> = decoded.joints().map(|j| *j.payload).collect();
        assert!(rels.contains(&JointRelation::Covers));
        assert!(rels.contains(&JointRelation::Contains));
    }

    #[test]
    fn double_round_trip_is_stable() {
        let original = sample_space();
        let text1 = to_json_string(&original);
        let text2 = to_json_string(&from_json_str(&text1).unwrap());
        assert_eq!(text1, text2, "serialization is a fixpoint");
    }

    #[test]
    fn format_marker_is_checked() {
        let err = from_json_str(r#"{"format":"other/9","layers":[]}"#).unwrap_err();
        assert!(matches!(err, IoError::Schema(_)));
    }

    #[test]
    fn missing_fields_are_schema_errors() {
        let err = from_json_str(r#"{"layers":[]}"#).unwrap_err();
        assert!(matches!(err, IoError::Schema(_)));
        let err =
            from_json_str(r#"{"format":"sitm-space/1","layers":[{"name":"x"}]}"#).unwrap_err();
        assert!(matches!(err, IoError::Schema(_)));
    }

    #[test]
    fn bad_json_is_json_error() {
        let err = from_json_str("{not json").unwrap_err();
        assert!(matches!(err, IoError::Json(_)));
    }

    #[test]
    fn unknown_cell_in_transition_is_schema_error() {
        let text = r#"{
            "format": "sitm-space/1",
            "layers": [{
                "name": "rooms", "kind": "room",
                "cells": [{"key":"a","name":"A","class":"room"}],
                "transitions": [{"from":"a","to":"ghost","kind":"door"}]
            }],
            "joints": []
        }"#;
        let err = from_json_str(text).unwrap_err();
        assert!(matches!(err, IoError::Schema(m) if m.contains("ghost")));
    }

    #[test]
    fn invalid_geometry_is_schema_error() {
        let text = r#"{
            "format": "sitm-space/1",
            "layers": [{
                "name": "rooms", "kind": "room",
                "cells": [{"key":"a","name":"A","class":"room",
                           "geometry": [[0,0],[1,0]]}],
                "transitions": []
            }],
            "joints": []
        }"#;
        let err = from_json_str(text).unwrap_err();
        assert!(matches!(err, IoError::Schema(m) if m.contains("invalid geometry")));
    }
}
