//! Navigation queries over one layer's accessibility NRG.

use sitm_graph::{paths, traversal, LayerIdx};

use crate::cell::CellRef;
use crate::model::IndoorSpace;
use crate::transition::Transition;

/// Navigation queries; implemented for [`IndoorSpace`].
pub trait SpaceQuery {
    /// True if `to` can be reached from `from` by following directed
    /// accessibility transitions (both cells must be in the same layer).
    fn accessible(&self, from: CellRef, to: CellRef) -> bool;

    /// Cells reachable from `from` within its layer (including itself), in
    /// BFS order.
    fn reachable_cells(&self, from: CellRef) -> Vec<CellRef>;

    /// Shortest route (fewest transitions; ties broken by insertion order)
    /// from `from` to `to`, as the visited cell sequence.
    fn route(&self, from: CellRef, to: CellRef) -> Option<Vec<CellRef>>;

    /// Shortest route weighted by transition cost hints (unknown hints count
    /// as one second).
    fn route_by_cost(&self, from: CellRef, to: CellRef) -> Option<(f64, Vec<CellRef>)>;

    /// Cells that lie on **every** route from `from` to `to` — the paper's
    /// Fig. 6 inference primitive. Excludes the endpoints; `None` when no
    /// route exists.
    fn unavoidable_between(&self, from: CellRef, to: CellRef) -> Option<Vec<CellRef>>;

    /// Cells of `layer` with no outgoing transitions (dead ends / exits).
    fn sinks(&self, layer: LayerIdx) -> Vec<CellRef>;

    /// Cells of `layer` with no incoming transitions (entry-only cells).
    fn sources(&self, layer: LayerIdx) -> Vec<CellRef>;
}

fn weight(t: &Transition) -> f64 {
    if t.cost_hint > 0.0 {
        t.cost_hint
    } else {
        1.0
    }
}

impl SpaceQuery for IndoorSpace {
    fn accessible(&self, from: CellRef, to: CellRef) -> bool {
        if from.layer != to.layer {
            return false;
        }
        self.nrg(from.layer)
            .is_some_and(|g| traversal::is_reachable(g, from.node, to.node))
    }

    fn reachable_cells(&self, from: CellRef) -> Vec<CellRef> {
        self.nrg(from.layer)
            .map(|g| {
                traversal::bfs_order(g, from.node)
                    .into_iter()
                    .map(|n| CellRef::new(from.layer, n))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn route(&self, from: CellRef, to: CellRef) -> Option<Vec<CellRef>> {
        if from.layer != to.layer {
            return None;
        }
        let g = self.nrg(from.layer)?;
        let sp = paths::shortest_path(g, from.node, to.node, |_, _| 1.0).ok()?;
        Some(
            sp.nodes
                .into_iter()
                .map(|n| CellRef::new(from.layer, n))
                .collect(),
        )
    }

    fn route_by_cost(&self, from: CellRef, to: CellRef) -> Option<(f64, Vec<CellRef>)> {
        if from.layer != to.layer {
            return None;
        }
        let g = self.nrg(from.layer)?;
        let sp = paths::shortest_path(g, from.node, to.node, |_, t| weight(t)).ok()?;
        Some((
            sp.cost,
            sp.nodes
                .into_iter()
                .map(|n| CellRef::new(from.layer, n))
                .collect(),
        ))
    }

    fn unavoidable_between(&self, from: CellRef, to: CellRef) -> Option<Vec<CellRef>> {
        if from.layer != to.layer {
            return None;
        }
        let g = self.nrg(from.layer)?;
        paths::unavoidable_nodes(g, from.node, to.node)
            .ok()
            .map(|nodes| {
                nodes
                    .into_iter()
                    .map(|n| CellRef::new(from.layer, n))
                    .collect()
            })
    }

    fn sinks(&self, layer: LayerIdx) -> Vec<CellRef> {
        self.nrg(layer)
            .map(|g| {
                g.node_ids()
                    .filter(|&n| g.out_degree(n) == 0)
                    .map(|n| CellRef::new(layer, n))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn sources(&self, layer: LayerIdx) -> Vec<CellRef> {
        self.nrg(layer)
            .map(|g| {
                g.node_ids()
                    .filter(|&n| g.in_degree(n) == 0)
                    .map(|n| CellRef::new(layer, n))
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{Cell, CellClass};
    use crate::layer::LayerKind;
    use crate::transition::{Transition, TransitionKind};

    /// The Fig. 6 shape: E -> P -> S -> C chain (one way), with S <-> P
    /// backtracking allowed.
    fn chain_space() -> (IndoorSpace, CellRef, CellRef, CellRef, CellRef) {
        let mut s = IndoorSpace::new();
        let zones = s.add_layer("zones", LayerKind::Thematic);
        let e = s
            .add_cell(zones, Cell::new("E", "Exhibition", CellClass::Exhibition))
            .unwrap();
        let p = s
            .add_cell(zones, Cell::new("P", "Passage", CellClass::Corridor))
            .unwrap();
        let sv = s
            .add_cell(zones, Cell::new("S", "Shops", CellClass::Shop))
            .unwrap();
        let c = s
            .add_cell(zones, Cell::new("C", "Carrousel exit", CellClass::Exit))
            .unwrap();
        s.add_transition(
            e,
            p,
            Transition::named(TransitionKind::Checkpoint, "checkpoint002"),
        )
        .unwrap();
        s.add_transition_pair(p, sv, Transition::new(TransitionKind::Opening))
            .unwrap();
        s.add_transition(sv, c, Transition::new(TransitionKind::Checkpoint))
            .unwrap();
        (s, e, p, sv, c)
    }

    #[test]
    fn accessibility_follows_direction() {
        let (s, e, _, _, c) = chain_space();
        assert!(s.accessible(e, c));
        assert!(!s.accessible(c, e), "exit is one-way");
    }

    #[test]
    fn reachable_cells_in_bfs_order() {
        let (s, e, p, sv, c) = chain_space();
        assert_eq!(s.reachable_cells(e), vec![e, p, sv, c]);
        assert_eq!(s.reachable_cells(c), vec![c]);
    }

    #[test]
    fn route_reconstructs_cell_sequence() {
        let (s, e, p, sv, c) = chain_space();
        assert_eq!(s.route(e, c), Some(vec![e, p, sv, c]));
        assert_eq!(s.route(c, e), None);
    }

    #[test]
    fn route_by_cost_uses_hints() {
        let mut s = IndoorSpace::new();
        let l = s.add_layer("rooms", LayerKind::Room);
        let a = s.add_cell(l, Cell::new("a", "A", CellClass::Room)).unwrap();
        let b = s.add_cell(l, Cell::new("b", "B", CellClass::Room)).unwrap();
        let c = s.add_cell(l, Cell::new("c", "C", CellClass::Room)).unwrap();
        // Direct slow corridor vs two fast doors.
        s.add_transition(a, c, Transition::new(TransitionKind::Door).with_cost(100.0))
            .unwrap();
        s.add_transition(a, b, Transition::new(TransitionKind::Door).with_cost(10.0))
            .unwrap();
        s.add_transition(b, c, Transition::new(TransitionKind::Door).with_cost(10.0))
            .unwrap();
        let (cost, route) = s.route_by_cost(a, c).unwrap();
        assert_eq!(cost, 20.0);
        assert_eq!(route, vec![a, b, c]);
        // Hop-count route prefers the direct edge.
        assert_eq!(s.route(a, c).unwrap(), vec![a, c]);
    }

    #[test]
    fn unavoidable_matches_fig6() {
        let (s, e, p, sv, c) = chain_space();
        assert_eq!(s.unavoidable_between(e, c), Some(vec![p, sv]));
        assert_eq!(s.unavoidable_between(e, sv), Some(vec![p]));
        assert_eq!(s.unavoidable_between(c, e), None, "no reverse route");
    }

    #[test]
    fn sinks_and_sources() {
        let (s, e, _, _, c) = chain_space();
        let zones = e.layer;
        assert_eq!(s.sinks(zones), vec![c]);
        assert_eq!(s.sources(zones), vec![e]);
    }

    #[test]
    fn cross_layer_queries_are_none() {
        let (mut s, e, ..) = chain_space();
        let other = s.add_layer("rooms", LayerKind::Room);
        let r = s
            .add_cell(other, Cell::new("r", "R", CellClass::Room))
            .unwrap();
        assert!(!s.accessible(e, r));
        assert_eq!(s.route(e, r), None);
        assert_eq!(s.unavoidable_between(e, r), None);
    }
}
