//! Property-based round-trip tests for the hand-rolled JSON codec.

use proptest::prelude::*;

use sitm_space::json::JsonValue;

/// Strategy for arbitrary JSON trees (bounded depth/size).
fn arb_json() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        // Finite doubles that survive text round-trips exactly enough for
        // PartialEq: use integers and dyadic fractions.
        (-1_000_000i64..1_000_000).prop_map(|n| JsonValue::Number(n as f64)),
        (-1_000i64..1_000, 1u32..8)
            .prop_map(|(n, d)| { JsonValue::Number(n as f64 / f64::from(1u32 << d)) }),
        "[ -~]{0,20}".prop_map(JsonValue::string), // printable ASCII
        "\\PC{0,8}".prop_map(JsonValue::string),   // arbitrary printable unicode
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(JsonValue::Array),
            proptest::collection::btree_map("[a-z]{1,6}", inner, 0..6).prop_map(JsonValue::Object),
        ]
    })
}

proptest! {
    #[test]
    fn compact_round_trips(v in arb_json()) {
        let text = v.to_compact();
        let back = JsonValue::parse(&text).expect("own output parses");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_round_trips(v in arb_json()) {
        let text = v.to_pretty();
        let back = JsonValue::parse(&text).expect("own output parses");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn serialization_is_deterministic(v in arb_json()) {
        prop_assert_eq!(v.to_compact(), v.clone().to_compact());
        prop_assert_eq!(v.to_pretty(), v.clone().to_pretty());
    }

    #[test]
    fn arbitrary_strings_escape_safely(s in "\\PC{0,40}") {
        let v = JsonValue::string(s.clone());
        let back = JsonValue::parse(&v.to_compact()).expect("escaped output parses");
        prop_assert_eq!(back.as_str(), Some(s.as_str()));
    }

    #[test]
    fn garbage_never_panics(s in "\\PC{0,60}") {
        // Parsing arbitrary text returns Ok or Err but never panics.
        let _ = JsonValue::parse(&s);
    }

    #[test]
    fn numbers_round_trip_as_values(n in -9_007_199_254_740i64..9_007_199_254_740) {
        let v = JsonValue::Number(n as f64);
        let back = JsonValue::parse(&v.to_compact()).expect("number parses");
        prop_assert_eq!(back.as_i64(), Some(n));
    }
}
