//! Wire-protocol torture: a request and a response frame truncated and
//! corrupted at **every byte offset**, asserting the peer errors
//! cleanly — no panic, no deadlock, and (server side) no casualty
//! beyond the one session. The every-offset idiom is the same one
//! `crates/store/tests/warehouse.rs` drives through the manifest and
//! segment files; here the "file" is the socket.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration as StdDuration;

use sitm_core::{Annotation, AnnotationSet, IntervalPredicate, Timestamp};
use sitm_graph::{LayerIdx, NodeId};
use sitm_query::wire::WireQuery;
use sitm_query::Predicate;
use sitm_serve::{
    decode_response, encode_request, encode_response, read_frame, write_frame, Client, Request,
    Response, Server, ServerConfig,
};
use sitm_space::CellRef;
use sitm_stream::{EngineConfig, StreamEvent, VisitKey};

static NEXT: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sitm-torture-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

fn engine_config() -> EngineConfig {
    EngineConfig::new(vec![(
        IntervalPredicate::in_cells([cell(1)]),
        AnnotationSet::from_iter([Annotation::goal("one")]),
    )])
    .with_shards(1)
}

/// A small but representative request frame (an ingest batch).
fn request_frame() -> Vec<u8> {
    let request = Request::IngestBatch(vec![
        StreamEvent::VisitOpened {
            visit: VisitKey(1),
            moving_object: "mo-1".into(),
            annotations: AnnotationSet::from_iter([Annotation::goal("visit")]),
            at: Timestamp(0),
        },
        StreamEvent::VisitClosed {
            visit: VisitKey(1),
            at: Timestamp(10),
        },
    ]);
    let mut payload = Vec::new();
    encode_request(&mut payload, &request);
    let mut frame = Vec::new();
    write_frame(&mut frame, &payload).expect("frame");
    frame
}

/// A representative response frame (a stats reply).
fn response_frame() -> Vec<u8> {
    let mut payload = Vec::new();
    encode_response(
        &mut payload,
        &Response::Stats {
            stats: Default::default(),
            rollup: Default::default(),
        },
    );
    let mut frame = Vec::new();
    write_frame(&mut frame, &payload).expect("frame");
    frame
}

/// Sends `bytes` raw, shuts down the write half, and drains whatever
/// the server answers until it closes the connection. Returns the
/// decoded responses (a truncated request should produce at most one
/// `Error`, possibly none when the tear looks like a clean close).
fn send_raw(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<Response> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(StdDuration::from_secs(10)))
        .expect("timeout");
    // The send and the half-close may race the server tearing the
    // session down (it answers and closes as soon as it sees a bad
    // frame) — a reset here is part of the scenario, not a test bug.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut responses = Vec::new();
    while let Ok(frame) = read_frame(&mut stream) {
        responses.push(decode_response(&mut frame.as_slice()).expect("well-framed response"));
    }
    responses
}

/// Truncate a request frame at every byte offset against a **live**
/// server: every tear is a per-session error (an `Error` response or a
/// silent close), the listener survives all of them, and a healthy
/// client still gets full service afterwards.
#[test]
fn torn_request_at_every_offset_never_kills_the_server() {
    let tmp = TempDir::new("torn-request");
    let server = Server::start(ServerConfig::new(engine_config(), &tmp.0).with_sessions(2))
        .expect("start server");
    let frame = request_frame();

    for cut in 0..frame.len() {
        let responses = send_raw(server.addr(), &frame[..cut]);
        for response in &responses {
            assert!(
                matches!(response, Response::Error(_)),
                "cut {cut}: torn frame must only ever produce an error, got {response:?}"
            );
        }
    }
    // Corrupt (bit-flip) every byte of the frame too: the CRC (or the
    // payload validation behind it) must reject each one cleanly.
    for i in 0..frame.len() {
        let mut corrupt = frame.clone();
        corrupt[i] ^= 0x01;
        let responses = send_raw(server.addr(), &corrupt);
        for response in &responses {
            assert!(
                matches!(response, Response::Error(_)),
                "flip {i}: corrupt frame must only ever produce an error, got {response:?}"
            );
        }
    }

    // The server took frame.len() tears + frame.len() corruptions and
    // must still serve a healthy session end-to-end.
    let mut client = Client::connect(server.addr()).expect("connect after torture");
    let stats = client.server_stats().expect("stats after torture");
    assert_eq!(
        stats.visits_opened, 0,
        "no torn ingest may have half-applied"
    );
    // Failure containment is *countable*: exactly one frame error per
    // torn connection. Cut 0 is a clean close (no frame on the wire, no
    // error); cuts 1..len are one tear each; every single-bit flip of a
    // full frame is one CRC/marker/length rejection (CRC-32 catches all
    // single-bit errors, and the session ends on its first bad frame,
    // so a tear can never double-count).
    let snapshot = client.metrics().expect("metrics after torture");
    assert_eq!(
        snapshot.counter("serve.frame_errors"),
        Some((2 * frame.len() - 1) as u64),
        "exactly one serve.frame_errors count per torn/corrupt connection"
    );
    assert_eq!(
        snapshot.counter("serve.bad_requests").unwrap_or(0),
        0,
        "framing (not request decoding) must absorb every tear"
    );
    client
        .ingest_batch(vec![
            StreamEvent::VisitOpened {
                visit: VisitKey(9),
                moving_object: "mo-9".into(),
                annotations: AnnotationSet::from_iter([Annotation::goal("visit")]),
                at: Timestamp(0),
            },
            StreamEvent::Presence {
                visit: VisitKey(9),
                interval: sitm_core::PresenceInterval::new(
                    sitm_core::TransitionTaken::Unknown,
                    cell(1),
                    Timestamp(0),
                    Timestamp(4),
                ),
            },
            StreamEvent::VisitClosed {
                visit: VisitKey(9),
                at: Timestamp(5),
            },
        ])
        .expect("ingest after torture");
    let (spilled, total, _) = client.checkpoint().expect("checkpoint after torture");
    assert_eq!((spilled, total), (1, 1));
    client.shutdown().expect("shutdown");
    server.join().expect("join");
}

/// The client-side mirror: a response frame truncated or corrupted at
/// every byte offset decodes to a clean error — never a panic, never a
/// partial value.
#[test]
fn torn_response_at_every_offset_errors_cleanly() {
    let frame = response_frame();
    for cut in 0..frame.len() {
        let mut cursor = &frame[..cut];
        assert!(read_frame(&mut cursor).is_err(), "cut {cut}");
    }
    for i in 0..frame.len() {
        let mut corrupt = frame.clone();
        corrupt[i] ^= 0x01;
        let mut cursor: &[u8] = &corrupt;
        match read_frame(&mut cursor) {
            Err(_) => {}
            Ok(payload) => panic!("flip {i} slipped through framing: {payload:?}"),
        }
    }
    // And a framed-but-corrupt payload fails in the codec, not the
    // framing: flip payload bytes and re-frame with a fresh CRC.
    let mut payload = Vec::new();
    encode_response(
        &mut payload,
        &Response::Stats {
            stats: Default::default(),
            rollup: Default::default(),
        },
    );
    for i in 0..payload.len() {
        let mut corrupt = payload.clone();
        corrupt[i] ^= 0xFF;
        let mut reframed = Vec::new();
        write_frame(&mut reframed, &corrupt).expect("frame");
        let mut cursor: &[u8] = &reframed;
        let recovered = read_frame(&mut cursor).expect("framing is intact");
        // Decoding either errors or yields *some* stats value — it must
        // never panic. (A flipped varint can still be a valid varint.)
        let _ = decode_response(&mut recovered.as_slice());
    }
}

/// The push ops under the same torture: a Subscribe request frame
/// torn/corrupted at every offset never kills the server and never
/// half-registers a subscription, and a Notification response frame
/// torn/corrupted at every offset errors cleanly client-side.
#[test]
fn torn_subscribe_and_notification_frames_error_cleanly() {
    use sitm_core::PresenceInterval;
    use sitm_serve::Subscriber;
    use sitm_stream::EmittedEpisode;

    let tmp = TempDir::new("torn-subscribe");
    let server = Server::start(ServerConfig::new(engine_config(), &tmp.0).with_sessions(2))
        .expect("start server");

    let mut payload = Vec::new();
    encode_request(
        &mut payload,
        &Request::Subscribe(WireQuery::filtered(Predicate::MovingObject("mo-1".into()))),
    );
    let mut frame = Vec::new();
    write_frame(&mut frame, &payload).expect("frame");
    for cut in 0..frame.len() {
        let responses = send_raw(server.addr(), &frame[..cut]);
        for response in &responses {
            assert!(
                matches!(response, Response::Error(_)),
                "cut {cut}: torn subscribe must only produce an error, got {response:?}"
            );
        }
    }
    for i in 0..frame.len() {
        let mut corrupt = frame.clone();
        corrupt[i] ^= 0x01;
        let responses = send_raw(server.addr(), &corrupt);
        for response in &responses {
            assert!(
                matches!(response, Response::Error(_)),
                "flip {i}: corrupt subscribe must only produce an error, got {response:?}"
            );
        }
    }

    // No tear half-registered anything, and the push path still works.
    let mut client = Client::connect(server.addr()).expect("connect");
    let snapshot = client.metrics().expect("metrics");
    assert_eq!(snapshot.gauge("serve.subscriptions_active").unwrap_or(0), 0);
    let sub = Subscriber::subscribe(server.addr(), &WireQuery::filtered(Predicate::True))
        .expect("subscribe after torture");
    client
        .ingest_batch(vec![
            StreamEvent::VisitOpened {
                visit: VisitKey(1),
                moving_object: "mo-1".into(),
                annotations: AnnotationSet::from_iter([Annotation::goal("visit")]),
                at: Timestamp(0),
            },
            StreamEvent::Presence {
                visit: VisitKey(1),
                interval: PresenceInterval::new(
                    sitm_core::TransitionTaken::Unknown,
                    cell(1),
                    Timestamp(0),
                    Timestamp(4),
                ),
            },
            StreamEvent::VisitClosed {
                visit: VisitKey(1),
                at: Timestamp(5),
            },
        ])
        .expect("ingest after torture");
    let drained: Vec<EmittedEpisode> = sub
        .unsubscribe()
        .expect("unsubscribe")
        .into_iter()
        .flat_map(|(_, eps)| eps)
        .collect();
    assert!(!drained.is_empty(), "the push path survived the torture");

    // Client side: a Notification frame torn at every offset fails in
    // the framing; corrupt payload bytes fail in the codec — never a
    // panic, never a partial value.
    let mut payload = Vec::new();
    encode_response(
        &mut payload,
        &Response::Notification {
            epoch: 3,
            episodes: drained,
        },
    );
    let mut frame = Vec::new();
    write_frame(&mut frame, &payload).expect("frame");
    for cut in 0..frame.len() {
        let mut cursor = &frame[..cut];
        assert!(read_frame(&mut cursor).is_err(), "cut {cut}");
    }
    for i in 0..payload.len() {
        let mut corrupt = payload.clone();
        corrupt[i] ^= 0xFF;
        let mut reframed = Vec::new();
        write_frame(&mut reframed, &corrupt).expect("frame");
        let mut cursor: &[u8] = &reframed;
        let recovered = read_frame(&mut cursor).expect("framing is intact");
        let _ = decode_response(&mut recovered.as_slice());
    }

    client.shutdown().expect("shutdown");
    server.join().expect("join");
}

/// The traced envelope under the same torture: a traced request frame
/// (marker `0x5B`, 16-byte context prefix in the checksummed body)
/// torn and bit-flipped at every offset against a live server is a
/// per-session error every time — including the one-bit flips that
/// turn the traced marker into the plain one, which the marker-covering
/// checksum must catch.
#[test]
fn torn_traced_frame_at_every_offset_never_kills_the_server() {
    use sitm_obs::trace::TraceContext;
    use sitm_serve::write_traced_frame;

    let tmp = TempDir::new("torn-traced");
    let server = Server::start(ServerConfig::new(engine_config(), &tmp.0).with_sessions(2))
        .expect("start server");

    let ctx = TraceContext {
        trace_id: 0xABAD_1DEA_0C0F_FEE5,
        parent_span_id: 3,
    };
    let mut payload = Vec::new();
    encode_request(
        &mut payload,
        &Request::Query(WireQuery::filtered(Predicate::True)),
    );
    let mut frame = Vec::new();
    write_traced_frame(&mut frame, ctx, &payload).expect("traced frame");

    for cut in 0..frame.len() {
        let responses = send_raw(server.addr(), &frame[..cut]);
        for response in &responses {
            assert!(
                matches!(response, Response::Error(_)),
                "cut {cut}: torn traced frame must only produce an error, got {response:?}"
            );
        }
    }
    for i in 0..frame.len() {
        let mut corrupt = frame.clone();
        corrupt[i] ^= 0x01;
        let responses = send_raw(server.addr(), &corrupt);
        for response in &responses {
            assert!(
                matches!(response, Response::Error(_)),
                "flip {i}: corrupt traced frame must only produce an error, got {response:?}"
            );
        }
    }

    // The intact frame still works, and the server adopted the carried
    // context (the recorder indexed the tree under our trace id).
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write_traced_frame(&mut stream, ctx, &payload).expect("send");
    let frame = read_frame(&mut stream).expect("response");
    assert!(matches!(
        decode_response(&mut frame.as_slice()).expect("decodes"),
        Response::Trajectories(_)
    ));
    drop(stream);
    // The response is written from inside the root span, so the client
    // can observe it a beat before the session loop finishes the span
    // and cuts the tree into the ring — poll instead of racing it.
    let deadline = std::time::Instant::now() + StdDuration::from_secs(10);
    loop {
        let trees = server.recorder().recent(usize::MAX);
        if trees.iter().any(|t| t.trace_id == ctx.trace_id) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no torture frame reached the recorder, the intact one did"
        );
        std::thread::sleep(StdDuration::from_millis(10));
    }
    server.shutdown();
    server.join().expect("join");
}

/// End-of-exchange sanity for the full loop: a live server answers a
/// well-formed raw frame with a well-formed response frame.
#[test]
fn raw_roundtrip_against_a_live_server() {
    let tmp = TempDir::new("raw");
    let server = Server::start(ServerConfig::new(engine_config(), &tmp.0)).expect("start");
    let mut payload = Vec::new();
    encode_request(
        &mut payload,
        &Request::Query(WireQuery::filtered(Predicate::VisitedCell(cell(1)))),
    );
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write_frame(&mut stream, &payload).expect("send");
    let frame = read_frame(&mut stream).expect("response");
    match decode_response(&mut frame.as_slice()).expect("decodes") {
        Response::Trajectories(rows) => assert!(rows.is_empty()),
        other => panic!("expected trajectories, got {other:?}"),
    }
    drop(stream);
    server.shutdown();
    server.join().expect("join");
}
