//! End-to-end server behaviour: the served pipeline must be
//! *observationally identical* to the in-process one. The differential
//! test here is the serving acceptance gate: a client ingesting and
//! querying over TCP gets byte-for-byte the trajectories that
//! `Query::execute_federated` produces over an identically fed
//! in-process engine + warehouse.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use sitm_core::{
    Annotation, AnnotationSet, Duration, IntervalPredicate, PresenceInterval, TimeInterval,
    Timestamp, TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_query::wire::WireQuery;
use sitm_query::{Predicate, SegmentedDb, SortKey, TrajectorySource};
use sitm_serve::{Client, Server, ServerConfig};
use sitm_space::CellRef;
use sitm_store::warehouse::WarehouseConfig;
use sitm_stream::{EngineConfig, Flusher, ShardedEngine, StreamEvent, VisitKey};

static NEXT: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("sitm-serve-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

fn engine_config() -> EngineConfig {
    EngineConfig::new(vec![
        (IntervalPredicate::in_cells([cell(1)]), label("one")),
        (IntervalPredicate::any(), label("whole")),
    ])
    .with_shards(2)
    .with_batch_capacity(4)
}

/// `visits` closed visits (spillable history) starting at key `base`,
/// plus `open` visits left open (live tier).
fn feed(base: u64, visits: u64, open: u64) -> Vec<StreamEvent> {
    let mut events = Vec::new();
    for v in base..base + visits + open {
        let t0 = v as i64 * 10;
        events.push(StreamEvent::VisitOpened {
            visit: VisitKey(v),
            moving_object: format!("mo-{v}"),
            annotations: label("visit"),
            at: Timestamp(t0),
        });
        for (i, c) in [1usize, (v % 3) as usize, 2].iter().enumerate() {
            events.push(StreamEvent::Presence {
                visit: VisitKey(v),
                interval: PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(*c),
                    Timestamp(t0 + i as i64 * 100),
                    Timestamp(t0 + i as i64 * 100 + 50),
                ),
            });
        }
        if v < base + visits {
            events.push(StreamEvent::VisitClosed {
                visit: VisitKey(v),
                at: Timestamp(t0 + 300),
            });
        }
    }
    events
}

fn queries() -> Vec<WireQuery> {
    vec![
        WireQuery {
            predicate: Predicate::True,
            order: Some((SortKey::MovingObject, true)),
            offset: 0,
            limit: None,
        },
        WireQuery {
            predicate: Predicate::VisitedCell(cell(1)),
            order: Some((SortKey::Start, true)),
            offset: 0,
            limit: None,
        },
        WireQuery {
            predicate: Predicate::MovingObject("mo-3".into()),
            order: None,
            offset: 0,
            limit: None,
        },
        // Sorted + paged: exercises offset/limit over the wire.
        WireQuery {
            predicate: Predicate::SpanOverlaps(TimeInterval::new(Timestamp(0), Timestamp(500))),
            order: Some((SortKey::End, false)),
            offset: 2,
            limit: Some(3),
        },
        WireQuery {
            predicate: Predicate::MinTotalDwell(Duration::seconds(100))
                .and(Predicate::VisitedCell(cell(2))),
            order: Some((SortKey::TotalDwell, false)),
            offset: 0,
            limit: Some(10),
        },
    ]
}

/// The serving acceptance gate: ingest over TCP in batches with a
/// mid-stream checkpoint, leave some visits open (live tier), then pin
/// every served query — warehouse-only and federated — equal to the
/// in-process pipeline fed identically.
#[test]
fn served_results_equal_in_process_federation() {
    let tmp_server = TempDir::new("diff-server");
    let tmp_local = TempDir::new("diff-local");

    let server =
        Server::start(ServerConfig::new(engine_config(), &tmp_server.0)).expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");

    // In-process reference: same events, same flush points.
    let mut reference = ShardedEngine::new(engine_config().with_warehouse()).expect("engine");
    let mut ref_flusher = Flusher::new(
        SegmentedDb::open(&tmp_local.0, WarehouseConfig::default())
            .expect("open")
            .0,
    );

    let first = feed(0, 6, 0);
    let second = feed(6, 4, 3); // 4 more closed + 3 left open
    for batch in [first, second] {
        let sent = client
            .ingest_batch(batch.clone())
            .expect("ingest over the wire");
        assert_eq!(sent, batch.len() as u64);
        reference.ingest_all(batch);
        // Spill both warehouses at the same point in the stream.
        let (spilled, _, _) = client.checkpoint().expect("checkpoint");
        let locally = ref_flusher.poll(&mut reference).expect("local spill");
        assert_eq!(spilled, locally as u64, "same spill at the same cut");
    }

    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.visits_opened, 13);
    assert_eq!(stats.visits_closed, 10);
    assert_eq!(stats.open_visits, 3);
    assert_eq!(stats.warehouse_trajectories, 10);
    assert_eq!(stats.anomalies, 0);

    let snapshot = reference.live_snapshot();
    let local_db = ref_flusher.db();
    for q in queries() {
        let served = client.query_federated(&q).expect("federated query");
        let local = q
            .to_query()
            .execute_federated(&[&*snapshot as &dyn TrajectorySource, local_db]);
        assert_eq!(served, local, "federated diverged for {:?}", q.predicate);

        // Warehouse-only queries are served by the segment pushdown,
        // whose ordering contract is `Query::execute`'s (global
        // position tiebreak) — pin against the same pushdown locally.
        let served_wh = client.query(&q).expect("warehouse query");
        let local_wh = q.to_query().execute_segmented(local_db);
        assert_eq!(
            served_wh, local_wh,
            "warehouse diverged for {:?}",
            q.predicate
        );
    }

    // Explain surfaces the federation plans and the warehouse pruning
    // counters for a selective point predicate.
    let report = client
        .explain(&Predicate::MovingObject("mo-2".into()))
        .expect("explain");
    assert_eq!(report.plans.len(), 2, "live + warehouse sources");
    assert_eq!(report.segments as usize, local_db.segments().len());
    let local_plan = local_db.explain(&Predicate::MovingObject("mo-2".into()));
    assert_eq!(report.zone_pruned as usize, local_plan.pruned);
    assert_eq!(report.bloom_pruned as usize, local_plan.bloom_pruned);
    assert_eq!(report.object_pruned as usize, local_plan.object_pruned);
    // Cold-tier I/O counters ride the report. This server wrote every
    // segment itself, so the write-through cache served the whole query
    // suite: nothing was read back or decoded from disk, and no segment
    // was lazily (headers-only) opened.
    assert_eq!(report.segment_bytes_read, 0);
    assert_eq!(report.trajectories_decoded, 0);
    assert_eq!(report.lazy_opens, 0);

    client.shutdown().expect("graceful shutdown");
    server.join().expect("join");
}

/// A graceful shutdown flushes the finished backlog into the warehouse
/// before acknowledging, so nothing closed is ever lost — a reopened
/// warehouse serves the full history.
#[test]
fn shutdown_flushes_the_warehouse_durably() {
    let tmp = TempDir::new("shutdown");
    let server = Server::start(ServerConfig::new(engine_config(), &tmp.0)).expect("start server");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    client.ingest_batch(feed(0, 5, 0)).expect("ingest");
    // No explicit checkpoint: shutdown itself must spill the 5 closed
    // visits.
    client.shutdown().expect("shutdown");
    server.join().expect("join");

    // A new client cannot connect (listener is down).
    assert!(Client::connect(addr).is_err(), "listener must be stopped");

    let (db, report) = SegmentedDb::open(&tmp.0, WarehouseConfig::default()).expect("reopen");
    assert!(report.is_clean());
    assert_eq!(db.len(), 5, "shutdown spilled every closed visit");
}

/// Multiple sequential requests on one session, plus an oversized /
/// malformed payload answered with a per-session error while the server
/// keeps serving other clients.
#[test]
fn sessions_survive_bad_payloads_and_servers_survive_bad_sessions() {
    let tmp = TempDir::new("errors");
    let server = Server::start(ServerConfig::new(engine_config(), &tmp.0)).expect("start server");

    let mut good = Client::connect(server.addr()).expect("connect");
    good.ingest_batch(feed(0, 2, 0)).expect("ingest");

    // A well-framed but semantically garbage payload: the session gets
    // an error response and stays usable... but our Client surfaces it.
    {
        use std::io::Write as _;
        let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect raw");
        let garbage = vec![0xEEu8; 16];
        sitm_serve::write_frame(&mut raw, &garbage).expect("send garbage");
        raw.flush().unwrap();
        let frame = sitm_serve::read_frame(&mut raw).expect("error response arrives");
        match sitm_serve::decode_response(&mut frame.as_slice()).expect("decodes") {
            sitm_serve::Response::Error(message) => {
                assert!(message.contains("bad request"), "{message}")
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    // The server is still fine: the good session keeps working.
    let stats = good.server_stats().expect("stats after bad session");
    assert_eq!(stats.visits_opened, 2);
    assert!(stats.sessions_accepted >= 2);

    good.shutdown().expect("shutdown");
    server.join().expect("join");
}

/// The client's reconnect contract after a severed session: the call
/// that hits the dead socket surfaces an error (or retries its write
/// on a fresh connection — both are legal depending on when the RST
/// lands), and the connection is re-established so a subsequent call
/// succeeds. Driven against a hand-rolled peer so the severing is
/// deterministic.
#[test]
fn client_reconnects_after_connection_loss() {
    use sitm_serve::{decode_request, encode_response, read_frame, write_frame};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let peer = std::thread::spawn(move || {
        // Session 1: accept, then hang up without answering.
        let (first, _) = listener.accept().expect("accept 1");
        drop(first);
        // Session 2: serve exactly one Stats request.
        let (mut second, _) = listener.accept().expect("accept 2");
        let frame = read_frame(&mut second).expect("request arrives");
        let request = decode_request(&mut frame.as_slice()).expect("decodes");
        assert_eq!(request, sitm_serve::Request::Stats);
        let mut buf = Vec::new();
        encode_response(
            &mut buf,
            &sitm_serve::Response::Stats {
                stats: Default::default(),
                rollup: Default::default(),
            },
        );
        write_frame(&mut second, &buf).expect("respond");
    });

    let mut client = Client::connect(addr).expect("connect");
    // The first call may fail (write buffered before the RST arrives →
    // response read fails, not retried by design); the client must
    // recover on a fresh connection within a retry or two.
    let mut served = None;
    for _ in 0..5 {
        match client.server_stats() {
            Ok(stats) => {
                served = Some(stats);
                break;
            }
            Err(_) => continue,
        }
    }
    assert_eq!(served, Some(Default::default()), "reconnect served stats");
    // The client's own transport counters must tell the same story:
    // exactly one reconnect (session 1 severed → session 2 served), no
    // oversized refusals, no decode errors, and one request per
    // server_stats attempt.
    let client_stats = client.stats();
    assert_eq!(client_stats.reconnects, 1, "exactly one reconnect");
    assert_eq!(client_stats.oversized_refused, 0);
    assert_eq!(client_stats.decode_errors, 0);
    assert!(
        client_stats.requests >= 1 && client_stats.requests <= 5,
        "one request per attempt, got {}",
        client_stats.requests
    );
    peer.join().expect("peer thread");
}
