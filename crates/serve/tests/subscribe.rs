//! The Subscribe push path, end to end.
//!
//! The acceptance gate is a **differential**: every episode a
//! subscriber is pushed must be exactly what an identically fed
//! in-process engine drains — same episodes, same count, no
//! duplicates, no gaps — on *both* runtimes, under concurrent ingest,
//! and across a subscriber crash + reconnect (the server re-injects a
//! dead subscriber's undelivered queue into the engine's pending
//! pool, so the next subscriber's first barriers carry them).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration as StdDuration, Instant};

use sitm_core::{
    Annotation, AnnotationSet, IntervalPredicate, PresenceInterval, Timestamp, TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_query::wire::WireQuery;
use sitm_query::Predicate;
use sitm_serve::{Client, ServeError, Server, ServerConfig, Subscriber};
use sitm_space::CellRef;
use sitm_stream::{
    EmittedEpisode, EngineConfig, ParallelEngine, ShardedEngine, StreamEvent, VisitKey,
};

static NEXT: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("sitm-sub-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

fn engine_config() -> EngineConfig {
    EngineConfig::new(vec![
        (IntervalPredicate::in_cells([cell(1)]), label("one")),
        (IntervalPredicate::any(), label("whole")),
    ])
    .with_shards(2)
    .with_batch_capacity(4)
}

/// `count` closed visits starting at key `base` (each emits episodes
/// at its close).
fn closed_visits(base: u64, count: u64) -> Vec<StreamEvent> {
    let mut events = Vec::new();
    for v in base..base + count {
        let t0 = v as i64 * 10;
        events.push(StreamEvent::VisitOpened {
            visit: VisitKey(v),
            moving_object: format!("mo-{v}"),
            annotations: label("visit"),
            at: Timestamp(t0),
        });
        events.push(StreamEvent::Presence {
            visit: VisitKey(v),
            interval: PresenceInterval::new(
                TransitionTaken::Unknown,
                cell(1),
                Timestamp(t0),
                Timestamp(t0 + 50),
            ),
        });
        events.push(StreamEvent::VisitClosed {
            visit: VisitKey(v),
            at: Timestamp(t0 + 60),
        });
    }
    events
}

/// What an identically fed in-process engine would drain, on both
/// runtimes — the replay side of the differential. The two runtimes
/// must agree with each other before either is compared to the wire.
fn replay_episodes(batches: &[Vec<StreamEvent>]) -> Vec<EmittedEpisode> {
    let mut sequential = ShardedEngine::new(engine_config()).expect("engine");
    let mut parallel = ParallelEngine::new(engine_config()).expect("engine");
    let mut seq_out = Vec::new();
    let mut par_out = Vec::new();
    for batch in batches {
        sequential.ingest_all(batch.clone());
        parallel.ingest_all(batch.clone());
        seq_out.extend(sequential.drain());
        par_out.extend(parallel.drain());
    }
    seq_out.sort_by_key(EmittedEpisode::sort_key);
    par_out.sort_by_key(EmittedEpisode::sort_key);
    assert_eq!(seq_out, par_out, "the two runtimes must replay identically");
    seq_out
}

fn sorted(mut episodes: Vec<EmittedEpisode>) -> Vec<EmittedEpisode> {
    episodes.sort_by_key(EmittedEpisode::sort_key);
    episodes
}

/// Push happy path: a subscriber is pushed every drained episode,
/// with strictly increasing epochs all above its registration epoch,
/// and the pushed set is exactly the in-process replay.
#[test]
fn subscriber_matches_polling_replay_exactly_once() {
    let tmp = TempDir::new("differential");
    let server =
        Server::start(ServerConfig::new(engine_config(), &tmp.0).with_sessions(3)).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let mut sub =
        Subscriber::subscribe(server.addr(), &WireQuery::filtered(Predicate::True)).expect("sub");
    let batches = vec![
        closed_visits(0, 5),
        closed_visits(50, 3),
        closed_visits(90, 4),
    ];
    for batch in &batches {
        client.ingest_batch(batch.clone()).expect("ingest");
    }

    // Exercise the push path proper (idle-poll flush), not only the
    // unsubscribe drain: wait for at least one pushed notification.
    let mut received = Vec::new();
    let mut epochs = Vec::new();
    let deadline = Instant::now() + StdDuration::from_secs(10);
    while received.is_empty() && Instant::now() < deadline {
        if let Some((epoch, episodes)) = sub.poll(StdDuration::from_millis(200)).expect("poll") {
            epochs.push(epoch);
            received.extend(episodes);
        }
    }
    assert!(!received.is_empty(), "no notification was pushed in 10s");

    // The rest rides the unsubscribe drain (deterministic hand-off).
    for (epoch, episodes) in sub.unsubscribe().expect("unsubscribe") {
        epochs.push(epoch);
        received.extend(episodes);
    }

    assert!(
        epochs.windows(2).all(|w| w[0] < w[1]),
        "notification epochs must be strictly increasing: {epochs:?}"
    );
    assert_eq!(sorted(received), replay_episodes(&batches));

    client.shutdown().expect("shutdown");
    server.join().expect("join");
}

/// Concurrent ingest: two writers race batches while the subscriber
/// listens. Barrier grouping is nondeterministic; the episode *set*
/// is not.
#[test]
fn concurrent_ingest_pushes_every_episode_exactly_once() {
    let tmp = TempDir::new("concurrent");
    let server =
        Server::start(ServerConfig::new(engine_config(), &tmp.0).with_sessions(4)).expect("start");

    let sub =
        Subscriber::subscribe(server.addr(), &WireQuery::filtered(Predicate::True)).expect("sub");
    let writers: Vec<_> = [(0u64, 6u64), (1000, 6)]
        .into_iter()
        .map(|(base, batches)| {
            let addr = server.addr();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for b in 0..batches {
                    client
                        .ingest_batch(closed_visits(base + b * 10, 4))
                        .expect("ingest");
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }

    // All ingests acknowledged → every barrier ran → everything is
    // queued (or already flushed); the unsubscribe drain collects it.
    let mut received = Vec::new();
    for (_, episodes) in sub.unsubscribe().expect("unsubscribe") {
        received.extend(episodes);
    }

    // Replay serially: visits are independent, so the union is
    // interleaving-invariant even though per-barrier grouping is not.
    let batches: Vec<Vec<StreamEvent>> = (0..6)
        .map(|b| closed_visits(b * 10, 4))
        .chain((0..6).map(|b| closed_visits(1000 + b * 10, 4)))
        .collect();
    assert_eq!(sorted(received), replay_episodes(&batches));

    let mut client = Client::connect(server.addr()).expect("connect");
    client.shutdown().expect("shutdown");
    server.join().expect("join");
}

/// Crash + reconnect: a subscriber dies with its queue undelivered;
/// the server re-injects those episodes, and the next subscriber
/// receives them alongside fresh ones — exactly once across the two
/// subscriber lifetimes.
#[test]
fn crashed_subscriber_loses_nothing_across_reconnect() {
    let tmp = TempDir::new("crash");
    // A long idle poll pins the hand-off: the crashed subscriber's
    // session cannot flush its queue to the (dead) socket between the
    // ingest barrier and the crash — the queue must travel through
    // `requeue_pending` instead. Correctness does not depend on this;
    // determinism of *what we assert* does.
    let mut config = ServerConfig::new(engine_config(), &tmp.0).with_sessions(3);
    config.idle_poll = StdDuration::from_secs(10);
    let server = Server::start(config).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let sub1 =
        Subscriber::subscribe(server.addr(), &WireQuery::filtered(Predicate::True)).expect("sub1");
    let batch_a = closed_visits(0, 5);
    client.ingest_batch(batch_a.clone()).expect("ingest A");
    // Crash: drop the connection without reading a single notification.
    drop(sub1);

    // Wait for the server to tear the session down (re-inject happens
    // there); `serve.subscriptions_active` returning to 0 is the signal.
    let deadline = Instant::now() + StdDuration::from_secs(10);
    loop {
        let snapshot = client.metrics().expect("metrics");
        if snapshot.gauge("serve.subscriptions_active") == Some(0) {
            break;
        }
        assert!(Instant::now() < deadline, "subscription never torn down");
        std::thread::sleep(StdDuration::from_millis(10));
    }

    let sub2 =
        Subscriber::subscribe(server.addr(), &WireQuery::filtered(Predicate::True)).expect("sub2");
    let batch_b = closed_visits(100, 4);
    client.ingest_batch(batch_b.clone()).expect("ingest B");

    // B's barrier drains batch B's episodes *and* the re-injected A
    // episodes in one deterministic sweep; the unsubscribe hand-off
    // collects them without waiting out the long idle poll.
    let mut received = Vec::new();
    for (_, episodes) in sub2.unsubscribe().expect("unsubscribe") {
        received.extend(episodes);
    }
    assert_eq!(
        sorted(received),
        replay_episodes(&[batch_a, batch_b]),
        "crash + reconnect must deliver everything exactly once"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("join");
}

/// Predicate-filtered subscriptions: decidable predicates filter
/// exactly; undecidable ones deliver (sound superset, never a miss).
/// Runs two subscribers at once to cover the multi-subscriber fan-out.
#[test]
fn filtered_subscriptions_are_sound() {
    let tmp = TempDir::new("filtered");
    let server =
        Server::start(ServerConfig::new(engine_config(), &tmp.0).with_sessions(4)).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Decidable from the delta: exact filtering.
    let exact = Subscriber::subscribe(
        server.addr(),
        &WireQuery::filtered(Predicate::MovingObject("mo-2".into())),
    )
    .expect("exact sub");
    // Undecidable from the delta (interval-shaped): sound superset.
    let superset = Subscriber::subscribe(
        server.addr(),
        &WireQuery::filtered(Predicate::VisitedCell(cell(999))),
    )
    .expect("superset sub");

    let batches = vec![closed_visits(0, 6)];
    for batch in &batches {
        client.ingest_batch(batch.clone()).expect("ingest");
    }
    let all = replay_episodes(&batches);

    let mut exact_got = Vec::new();
    for (_, episodes) in exact.unsubscribe().expect("unsubscribe exact") {
        exact_got.extend(episodes);
    }
    let expect: Vec<EmittedEpisode> = all
        .iter()
        .filter(|e| e.moving_object == "mo-2")
        .cloned()
        .collect();
    assert!(!expect.is_empty());
    assert_eq!(
        sorted(exact_got),
        expect,
        "decidable predicate filters exactly"
    );

    let mut superset_got = Vec::new();
    for (_, episodes) in superset.unsubscribe().expect("unsubscribe superset") {
        superset_got.extend(episodes);
    }
    assert_eq!(
        sorted(superset_got),
        all,
        "undecidable predicate must deliver everything (sound superset)"
    );

    client.shutdown().expect("shutdown");
    server.join().expect("join");
}

/// Slow consumer: one barrier that overflows the per-subscriber bound
/// lags the queue; the subscriber gets an in-band error and is
/// dropped, the session and the server survive, and the loss is
/// visible in `serve.subscribers_dropped`.
#[test]
fn lagging_subscriber_is_dropped_in_band() {
    let tmp = TempDir::new("lagged");
    let server =
        Server::start(ServerConfig::new(engine_config(), &tmp.0).with_sessions(3)).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let mut sub =
        Subscriber::subscribe(server.addr(), &WireQuery::filtered(Predicate::True)).expect("sub");
    // One barrier, > 4096 episodes (each closed visit emits two: the
    // in-cells predicate and the catch-all): overflows the bound in a
    // single push.
    client
        .ingest_batch(closed_visits(0, 2100))
        .expect("big ingest");

    let deadline = Instant::now() + StdDuration::from_secs(15);
    let err = loop {
        match sub.poll(StdDuration::from_millis(200)) {
            Ok(_) => assert!(Instant::now() < deadline, "lag error never arrived"),
            Err(err) => break err,
        }
    };
    match err {
        ServeError::Remote(message) => {
            assert!(message.contains("lagged"), "unexpected error: {message}")
        }
        other => panic!("expected the in-band lag error, got {other:?}"),
    }

    let snapshot = client.metrics().expect("metrics");
    assert_eq!(snapshot.counter("serve.subscribers_dropped"), Some(1));
    assert_eq!(snapshot.gauge("serve.subscriptions_active"), Some(0));
    // The server is fully healthy: a fresh subscription still works.
    let sub2 =
        Subscriber::subscribe(server.addr(), &WireQuery::filtered(Predicate::True)).expect("sub2");
    client.ingest_batch(closed_visits(5000, 2)).expect("ingest");
    let mut received = Vec::new();
    for (_, episodes) in sub2.unsubscribe().expect("unsubscribe") {
        received.extend(episodes);
    }
    assert_eq!(received.len(), 4, "two visits × two predicates");

    client.shutdown().expect("shutdown");
    server.join().expect("join");
}
