//! Concurrent-session equivalence: M writer clients and K query
//! clients hammer one server from separate threads, and the final
//! state must equal a **single-threaded in-process replay** of the
//! same events — the same differential idiom
//! `tests/parallel_equivalence.rs` uses to pin the parallel engine to
//! the sequential one, lifted to the network tier.
//!
//! Determinism argument: each writer owns a disjoint visit-key range
//! and sends its own visits' events in order, so per-visit event order
//! is preserved no matter how sessions interleave; every cross-visit
//! observable below (canonical warehouse runs, key-sorted snapshots,
//! sorted query output) is interleaving-independent by construction.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use sitm_core::{
    Annotation, AnnotationSet, IntervalPredicate, PresenceInterval, Timestamp, TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_query::wire::WireQuery;
use sitm_query::{Predicate, SegmentedDb, SortKey, TrajectorySource};
use sitm_serve::{Client, Server, ServerConfig};
use sitm_space::CellRef;
use sitm_store::warehouse::WarehouseConfig;
use sitm_stream::{EngineConfig, Flusher, ShardedEngine, StreamEvent, VisitKey};

static NEXT: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "sitm-serve-concurrent-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

fn engine_config() -> EngineConfig {
    EngineConfig::new(vec![
        (IntervalPredicate::in_cells([cell(1)]), label("one")),
        (IntervalPredicate::any(), label("whole")),
    ])
    .with_shards(2)
    .with_batch_capacity(8)
}

/// One writer's feed: `per_writer` closed visits plus one left open,
/// all inside the writer's own key range.
fn writer_feed(writer: u64, per_writer: u64) -> Vec<StreamEvent> {
    let base = writer * 1_000;
    let mut events = Vec::new();
    for v in base..base + per_writer + 1 {
        let t0 = (v % 97) as i64 * 10;
        events.push(StreamEvent::VisitOpened {
            visit: VisitKey(v),
            moving_object: format!("mo-{v}"),
            annotations: label("visit"),
            at: Timestamp(t0),
        });
        for (i, c) in [1usize, (v % 4) as usize, 2].iter().enumerate() {
            events.push(StreamEvent::Presence {
                visit: VisitKey(v),
                interval: PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(*c),
                    Timestamp(t0 + i as i64 * 60),
                    Timestamp(t0 + i as i64 * 60 + 30),
                ),
            });
        }
        if v < base + per_writer {
            // The last visit of each writer stays open (live tier).
            events.push(StreamEvent::VisitClosed {
                visit: VisitKey(v),
                at: Timestamp(t0 + 400),
            });
        }
    }
    events
}

#[test]
fn concurrent_writers_and_readers_equal_single_threaded_replay() {
    const WRITERS: u64 = 3;
    const READERS: usize = 2;
    const PER_WRITER: u64 = 8;

    let tmp_server = TempDir::new("server");
    let tmp_local = TempDir::new("local");
    let server = Server::start(
        ServerConfig::new(engine_config(), &tmp_server.0).with_sessions(WRITERS as usize + READERS),
    )
    .expect("start server");
    let addr = server.addr();

    // M writers, each on its own session, each chunking its feed into
    // several IngestBatch requests (so batches from different sessions
    // really interleave inside the server).
    let writer_handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("writer connect");
                let feed = writer_feed(w, PER_WRITER);
                for chunk in feed.chunks(7) {
                    let sent = client.ingest_batch(chunk.to_vec()).expect("ingest");
                    assert_eq!(sent, chunk.len() as u64);
                }
            })
        })
        .collect();

    // K readers issuing federated queries *while* the writers run.
    // Mid-flight results are cuts of an evolving stream — asserting
    // only sanity (the query executes, sorted order holds) here; the
    // exact-equality assertion happens after the barrier below.
    let reader_handles: Vec<_> = (0..READERS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("reader connect");
                for _ in 0..10 {
                    let q = WireQuery {
                        predicate: Predicate::VisitedCell(cell(1)),
                        order: Some((SortKey::MovingObject, true)),
                        offset: 0,
                        limit: None,
                    };
                    let rows = client.query_federated(&q).expect("federated query");
                    for pair in rows.windows(2) {
                        assert!(
                            pair[0].moving_object <= pair[1].moving_object,
                            "served rows must respect the requested order"
                        );
                    }
                }
            })
        })
        .collect();

    for handle in writer_handles {
        handle.join().expect("writer");
    }
    for handle in reader_handles {
        handle.join().expect("reader");
    }

    // Barrier: spill everything closed, then compare against the
    // single-threaded replay.
    let mut client = Client::connect(addr).expect("connect");
    let (spilled, warehouse_total, _) = client.checkpoint().expect("checkpoint");
    assert_eq!(spilled, WRITERS * PER_WRITER);
    assert_eq!(warehouse_total, WRITERS * PER_WRITER);

    // Single-threaded replay: same events, one engine, one flush.
    let mut reference = ShardedEngine::new(engine_config().with_warehouse()).expect("engine");
    for w in 0..WRITERS {
        reference.ingest_all(writer_feed(w, PER_WRITER));
    }
    let mut ref_flusher = Flusher::new(
        SegmentedDb::open(&tmp_local.0, WarehouseConfig::default())
            .expect("open")
            .0,
    );
    ref_flusher.force(&mut reference).expect("local spill");
    let snapshot = reference.live_snapshot();
    let local_db = ref_flusher.db();

    let stats = client.server_stats().expect("stats");
    assert_eq!(stats.visits_opened, WRITERS * (PER_WRITER + 1));
    assert_eq!(stats.visits_closed, WRITERS * PER_WRITER);
    assert_eq!(stats.open_visits, WRITERS, "one open visit per writer");
    assert_eq!(stats.anomalies, 0);

    // Canonical warehouse content: the server's segment tier may have
    // seen different flush boundaries than the replay (writers raced),
    // so compare the *sorted multiset* — and the sorted federated
    // query, which is boundary-independent by construction.
    for q in [
        WireQuery {
            predicate: Predicate::True,
            order: Some((SortKey::MovingObject, true)),
            offset: 0,
            limit: None,
        },
        WireQuery {
            predicate: Predicate::VisitedCell(cell(1)),
            order: Some((SortKey::MovingObject, true)),
            offset: 0,
            limit: None,
        },
        WireQuery {
            predicate: Predicate::MovingObject("mo-1003".into()),
            order: Some((SortKey::Start, true)),
            offset: 0,
            limit: None,
        },
    ] {
        let served = client.query_federated(&q).expect("federated");
        let mut local = q
            .to_query()
            .execute_federated(&[&*snapshot as &dyn TrajectorySource, local_db]);
        // MovingObject ids are unique per visit here and the sort is
        // total on them for the first two queries; the third is a
        // single-visit point query — either way the sorted sequences
        // must agree exactly.
        sitm_store::sort_run(&mut local);
        let mut served_sorted = served.clone();
        sitm_store::sort_run(&mut served_sorted);
        assert_eq!(served_sorted, local, "diverged for {:?}", q.predicate);
    }

    client.shutdown().expect("shutdown");
    server.join().expect("join");
}
