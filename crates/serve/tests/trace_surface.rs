//! The served observability surface: hierarchical request traces and
//! the Health report, exercised end to end over TCP.
//!
//! The acceptance gates pinned here:
//!
//! * a served federated query yields one trace tree whose child spans
//!   (handle → snapshot cut / evaluate, plus the wire write) account
//!   for ≥ 90% of the root span — the timeline attributes the request,
//!   it doesn't just decorate it;
//! * the traced spans and the `serve.handle_ns.*` histograms are two
//!   views of the same clock: their totals agree within 10%;
//! * a context carried in the traced wire envelope is adopted verbatim
//!   (the federation fan-out contract);
//! * Health answers from state the server already maintains — epoch,
//!   tier lag, session/subscriber load, checkpoint age.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use sitm_core::{
    Annotation, AnnotationSet, IntervalPredicate, PresenceInterval, Timestamp, TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_obs::trace::TraceContext;
use sitm_query::wire::WireQuery;
use sitm_query::{Predicate, SortKey};
use sitm_serve::{Client, Request, Response, Server, ServerConfig, Subscriber};
use sitm_space::CellRef;
use sitm_stream::{EngineConfig, StreamEvent, VisitKey};

static NEXT: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("sitm-trace-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

fn engine_config() -> EngineConfig {
    EngineConfig::new(vec![(IntervalPredicate::in_cells([cell(1)]), label("one"))])
        .with_shards(2)
        .with_batch_capacity(4)
}

/// `visits` closed visits starting at key `base` plus `open` left open.
fn feed(base: u64, visits: u64, open: u64) -> Vec<StreamEvent> {
    let mut events = Vec::new();
    for v in base..base + visits + open {
        let t0 = v as i64 * 10;
        events.push(StreamEvent::VisitOpened {
            visit: VisitKey(v),
            moving_object: format!("mo-{v}"),
            annotations: label("visit"),
            at: Timestamp(t0),
        });
        for (i, c) in [1usize, (v % 3) as usize, 2].iter().enumerate() {
            events.push(StreamEvent::Presence {
                visit: VisitKey(v),
                interval: PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(*c),
                    Timestamp(t0 + i as i64 * 100),
                    Timestamp(t0 + i as i64 * 100 + 50),
                ),
            });
        }
        if v < base + visits {
            events.push(StreamEvent::VisitClosed {
                visit: VisitKey(v),
                at: Timestamp(t0 + 300),
            });
        }
    }
    events
}

fn federated_query() -> WireQuery {
    WireQuery {
        predicate: Predicate::True,
        order: Some((SortKey::Start, true)),
        offset: 0,
        limit: Some(64),
    }
}

/// A populated server: history spilled to the warehouse, a few visits
/// live, so a federated query exercises both tiers.
fn populated_server(tmp: &TempDir) -> (Server, Client) {
    let server = Server::start(ServerConfig::new(engine_config(), &tmp.0)).expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ingest_batch(feed(0, 40, 3)).expect("ingest");
    client.checkpoint().expect("checkpoint");
    (server, client)
}

#[test]
fn served_federated_query_produces_a_covering_trace_tree() {
    let tmp = TempDir::new("coverage");
    let (server, mut client) = populated_server(&tmp);

    let rows = client.query_federated(&federated_query()).expect("query");
    assert!(!rows.is_empty(), "the query must do real work");

    // Fetch the traces over the wire — the served surface, not a
    // backdoor into the recorder.
    let trees = client.traces(64).expect("traces");
    let tree = trees
        .iter()
        .rev()
        .find(|t| t.root.name == "query_federated")
        .expect("a query_federated trace was recorded");

    // The expected hierarchy: root → handle → {snapshot_cut, evaluate},
    // root → wire_write.
    let handle = tree.root.find("handle").expect("handle span");
    assert!(handle.find("snapshot_cut").is_some(), "snapshot cut span");
    assert!(handle.find("evaluate").is_some(), "evaluate span");
    assert!(tree.root.find("wire_write").is_some(), "wire write span");

    // Coverage: the root's direct children account for ≥ 90% of the
    // root span (the gap is notification flushing + histogram upkeep).
    let child_sum: u64 = tree.root.children.iter().map(|c| c.duration_ns).sum();
    assert!(
        child_sum * 10 >= tree.root.duration_ns * 9,
        "children cover {child_sum} of {} root ns:\n{}",
        tree.root.duration_ns,
        tree.timeline()
    );

    // The rendered timeline names every tier on one screen.
    let text = tree.timeline();
    for needle in [
        "query_federated",
        "handle",
        "snapshot_cut",
        "evaluate",
        "wire_write",
    ] {
        assert!(text.contains(needle), "timeline misses {needle}:\n{text}");
    }
    drop(server);
}

// `TraceTree::render_timeline` via a helper so the assertion messages
// stay short.
trait Timeline {
    fn timeline(&self) -> String;
}

impl Timeline for sitm_obs::trace::TraceTree {
    fn timeline(&self) -> String {
        self.render_timeline()
    }
}

#[test]
fn span_durations_agree_with_the_handle_histogram() {
    let tmp = TempDir::new("differential");
    let (server, mut client) = populated_server(&tmp);

    let runs = 8;
    for _ in 0..runs {
        client.query_federated(&federated_query()).expect("query");
    }

    let snapshot = client.metrics().expect("metrics");
    let hist = snapshot
        .histogram("serve.handle_ns.query_federated")
        .expect("handle histogram");
    assert_eq!(hist.count, runs, "one sample per query");

    let trees = server.recorder().recent(usize::MAX);
    let handle_sum: u64 = trees
        .iter()
        .filter(|t| t.root.name == "query_federated")
        .map(|t| t.root.find("handle").expect("handle span").duration_ns)
        .sum();
    assert!(handle_sum > 0, "spans carry real durations");

    // Two independent measurements of the same interval: the `handle`
    // child span opens right after the histogram's clock starts and
    // closes right before it stops. Within 10% (plus a small absolute
    // floor for sub-millisecond totals).
    let diff = hist.sum.abs_diff(handle_sum);
    assert!(
        diff <= (hist.sum / 10).max(200_000),
        "span total {handle_sum} ns vs histogram total {} ns (diff {diff})",
        hist.sum
    );
    drop(server);
}

#[test]
fn wire_propagated_context_is_adopted() {
    let tmp = TempDir::new("propagate");
    let (server, mut client) = populated_server(&tmp);

    let ctx = TraceContext {
        trace_id: 0xFEED_FACE_CAFE_F00D,
        parent_span_id: 7,
    };
    let response = client
        .call_traced(&Request::QueryFederated(federated_query()), ctx)
        .expect("traced call");
    assert!(matches!(response, Response::Trajectories(_)));

    let trees = client.traces(64).expect("traces");
    let adopted = trees
        .iter()
        .find(|t| t.trace_id == ctx.trace_id)
        .expect("the propagated trace id names the server-side tree");
    assert_eq!(adopted.parent_span_id, 7, "parent span rides along");
    assert_eq!(adopted.root.name, "query_federated");

    // An untraced call generates a fresh context instead.
    client.query_federated(&federated_query()).expect("query");
    let trees = client.traces(64).expect("traces");
    let fresh = trees.last().expect("latest trace");
    assert_ne!(fresh.trace_id, 0, "generated ids are never zero");
    assert_eq!(fresh.parent_span_id, 0, "no parent outside a fan-out");
    drop(server);
}

#[test]
fn health_reports_the_server_story() {
    let tmp = TempDir::new("health");
    let (server, mut client) = populated_server(&tmp);
    let subscriber = Subscriber::subscribe(
        server.addr(),
        &WireQuery {
            predicate: Predicate::True,
            order: None,
            offset: 0,
            limit: None,
        },
    )
    .expect("subscribe");

    let health = client.health().expect("health");
    assert!(health.epoch > 0, "ingest advanced the epoch");
    assert!(health.sessions_accepted >= 2, "client + subscriber");
    assert!(health.sessions_active >= 2);
    assert_eq!(health.subscribers_active, 1);
    assert_eq!(
        health.flush_backlog_trajectories, 0,
        "checkpoint drained the spill tier"
    );
    assert!(
        !health.worker_queue_depths.is_empty(),
        "one depth per engine worker"
    );
    assert!(
        health.last_checkpoint_age_ms.is_some(),
        "a checkpoint completed"
    );
    assert_eq!(health.warehouse_trajectories, 40);
    assert!(health.warehouse_segments >= 1);
    assert!(health.traces_recorded > 0);

    // The server-side view is the same report.
    let direct = server.health();
    assert_eq!(direct.warehouse_trajectories, health.warehouse_trajectories);
    assert_eq!(direct.subscribers_active, 1);

    // Dropping the subscription releases the gauge (drop-guard).
    drop(subscriber);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        if server.health().subscribers_active == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "subscriber gauge never released"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    // render() is the one-glance sitm-top screen.
    let text = health.render();
    assert!(text.contains("epoch"), "render shows the epoch:\n{text}");
    drop(server);
}

#[test]
fn tracing_disabled_is_inert_and_free_of_traces() {
    let tmp = TempDir::new("disabled");
    let server = Server::start(
        ServerConfig::new(engine_config(), &tmp.0)
            .with_trace_capacity(0)
            .without_sampler(),
    )
    .expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ingest_batch(feed(0, 5, 0)).expect("ingest");
    client.checkpoint().expect("checkpoint");
    client.query_federated(&federated_query()).expect("query");

    assert!(client.traces(16).expect("traces").is_empty());
    let health = client.health().expect("health");
    assert_eq!(health.traces_recorded, 0);
    assert_eq!(health.events_per_sec_milli, 0, "no sampler, no rate window");
    drop(server);
}
