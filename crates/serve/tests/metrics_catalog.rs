//! The documented metric-name catalog cannot drift from the code:
//! every name in PROTOCOL.md's "Stable instrument names" table must be
//! emitted by a fully exercised server. (The reverse — names the code
//! emits but the table omits — is deliberately allowed: new
//! instruments land before their docs stabilize. Dropping or renaming
//! a *documented* name is the break this test catches.)

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use sitm_core::{
    Annotation, AnnotationSet, IntervalPredicate, PresenceInterval, Timestamp, TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_query::wire::WireQuery;
use sitm_query::{Predicate, SortKey};
use sitm_serve::{Client, Server, ServerConfig, Subscriber};
use sitm_space::CellRef;
use sitm_stream::{EngineConfig, StreamEvent, VisitKey};

static NEXT: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sitm-catalog-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

/// Pulls every backticked name out of the "Stable instrument names"
/// table. A name containing `{` documents a family
/// (`serve.requests.{op}`): it matches as a prefix up to the brace.
fn documented_catalog() -> Vec<String> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../PROTOCOL.md");
    let text = std::fs::read_to_string(&path).expect("read PROTOCOL.md");
    let section = text
        .split("### Stable instrument names")
        .nth(1)
        .expect("PROTOCOL.md documents the stable instrument names")
        .split("\n## ")
        .next()
        .expect("section body");
    let mut names = Vec::new();
    for line in section.lines() {
        // Table rows only; the header/separator rows carry no backticks.
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let name = rest.split('`').next().expect("closing backtick");
        names.push(name.to_string());
    }
    assert!(
        names.len() >= 40,
        "the catalog table went missing ({} rows parsed)",
        names.len()
    );
    names
}

/// Exercises every subsystem the catalog names: ingest (engine +
/// fence), checkpoint (flush + store), warehouse + federated queries
/// (query pruning, row cache, serve read-path splits), explain,
/// metrics/health/trace ops, a subscription (push path), a torn frame
/// (frame_errors), a bad payload (bad_requests), and an oversized
/// response (errors).
fn exercised_snapshot() -> sitm_obs::MetricsSnapshot {
    let tmp = TempDir::new("exercise");
    let config = EngineConfig::new(vec![(IntervalPredicate::in_cells([cell(1)]), label("one"))])
        .with_shards(2)
        .with_batch_capacity(4)
        .with_allowed_lateness(sitm_core::Duration::seconds(1));
    let server = Server::start(ServerConfig::new(config, &tmp.0)).expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");

    let subscriber = Subscriber::subscribe(server.addr(), &WireQuery::filtered(Predicate::True))
        .expect("subscribe");

    let mut events = Vec::new();
    for v in 0..12u64 {
        let t0 = v as i64 * 10;
        events.push(StreamEvent::VisitOpened {
            visit: VisitKey(v),
            moving_object: format!("mo-{v}"),
            annotations: label("visit"),
            at: Timestamp(t0),
        });
        events.push(StreamEvent::Presence {
            visit: VisitKey(v),
            interval: PresenceInterval::new(
                TransitionTaken::Unknown,
                cell(1),
                Timestamp(t0),
                Timestamp(t0 + 5),
            ),
        });
        events.push(StreamEvent::VisitClosed {
            visit: VisitKey(v),
            at: Timestamp(t0 + 6),
        });
    }
    // One hopelessly late event exercises the fence.
    events.push(StreamEvent::Presence {
        visit: VisitKey(0),
        interval: PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(1),
            Timestamp(-1_000_000),
            Timestamp(-999_999),
        ),
    });
    client.ingest_batch(events).expect("ingest");
    client.checkpoint().expect("checkpoint");
    // A second spill builds a second segment so compaction has feed.
    client
        .ingest_batch(vec![
            StreamEvent::VisitOpened {
                visit: VisitKey(100),
                moving_object: "mo-100".into(),
                annotations: label("visit"),
                at: Timestamp(5_000),
            },
            StreamEvent::VisitClosed {
                visit: VisitKey(100),
                at: Timestamp(5_010),
            },
        ])
        .expect("ingest");
    client.checkpoint().expect("checkpoint");

    // Warehouse + federated queries: selective (pruning, row cache) and
    // sorted/paged (candidates, pushdown).
    for predicate in [
        Predicate::MovingObject("mo-3".into()),
        Predicate::VisitedCell(cell(1)),
        Predicate::True,
    ] {
        let q = WireQuery {
            predicate,
            order: Some((SortKey::Start, true)),
            offset: 0,
            limit: Some(4),
        };
        client.query(&q).expect("warehouse query");
        client.query_federated(&q).expect("federated query");
    }
    client
        .explain(&Predicate::MovingObject("mo-3".into()))
        .expect("explain");
    client.server_stats().expect("stats");
    client.health().expect("health");
    client.traces(4).expect("traces");
    drop(subscriber.unsubscribe().expect("unsubscribe"));

    // A torn frame (frame_errors) and an undecodable payload
    // (bad_requests), each on a throwaway connection.
    {
        use std::io::Write as _;
        let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(&[0x5A, 1, 0]).expect("torn header");
        drop(stream);
        let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
        sitm_serve::write_frame(&mut stream, &[0xFF, 0xFF]).expect("bad payload");
        drop(stream);
    }
    // An error response: a query over an unknown op is impossible via
    // the typed client, so use a request the server answers with Error
    // — an oversized batch is refused client-side, so instead query
    // with an offset the server handles fine... simplest in-band error:
    // Unsubscribe without a subscription.
    let err = client.call(&sitm_serve::Request::Unsubscribe);
    assert!(
        err.is_ok(),
        "unsubscribe without subscription answers in-band"
    );

    // Poll until the frame errors land (those sessions race this read).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let snapshot = client.metrics().expect("metrics");
        if snapshot.counter("serve.frame_errors").unwrap_or(0) >= 1
            && snapshot.counter("serve.bad_requests").unwrap_or(0) >= 1
        {
            client.shutdown().expect("shutdown");
            server.join().expect("join");
            return snapshot;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "frame/bad-request counters never moved"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

#[test]
fn documented_names_are_a_subset_of_an_exercised_registry() {
    let snapshot = exercised_snapshot();
    let mut emitted: BTreeSet<String> = BTreeSet::new();
    emitted.extend(snapshot.counters.iter().map(|(n, _)| n.clone()));
    emitted.extend(snapshot.gauges.iter().map(|(n, _)| n.clone()));
    emitted.extend(snapshot.histograms.iter().map(|(n, _)| n.clone()));

    let mut missing = Vec::new();
    for name in documented_catalog() {
        let found = match name.split_once('{') {
            // A family row: at least one emitted name extends the
            // prefix before the brace.
            Some((prefix, _)) => emitted.iter().any(|n| n.starts_with(prefix)),
            None => emitted.contains(&name),
        };
        if !found {
            missing.push(name);
        }
    }
    assert!(
        missing.is_empty(),
        "PROTOCOL.md documents names the code never emitted: {missing:?}\n\
         emitted: {emitted:?}"
    );
}

/// The op families are complete: one `serve.requests.{op}` counter and
/// one `serve.handle_ns.{op}` histogram per documented op name.
#[test]
fn op_families_cover_every_documented_op() {
    let ops = [
        "ingest",
        "query",
        "query_federated",
        "explain",
        "stats",
        "checkpoint",
        "shutdown",
        "metrics",
        "subscribe",
        "unsubscribe",
        "health",
        "trace",
    ];
    let snapshot = exercised_snapshot();
    for op in ops {
        assert!(
            snapshot.counter(&format!("serve.requests.{op}")).is_some(),
            "no request counter for op {op}"
        );
        assert!(
            snapshot
                .histogram(&format!("serve.handle_ns.{op}"))
                .is_some(),
            "no handle histogram for op {op}"
        );
    }
}
