//! Stream framing: the CRC-framed, length-prefixed envelope every
//! request and response travels in.
//!
//! The frame layout is byte-identical to the segment/log frame the
//! storage tier already torture-tests ([`sitm_store::segment`]):
//!
//! ```text
//! frame := marker 0x5A | payload_len u32 LE | crc32(payload) u32 LE | payload
//! ```
//!
//! Reusing the durable format on the wire buys the same properties the
//! WAL gets from it: a torn or bit-flipped frame is detected *before*
//! any payload decoding runs, the oversize bound rejects hostile
//! lengths before allocation, and the torture tests
//! (`tests/wire_torture.rs`) can reuse the every-byte-offset idiom from
//! `crates/store/tests/warehouse.rs` wholesale.
//!
//! Unlike a file, a socket has liveness concerns, so the reader is
//! split: [`read_frame`] blocks until a full frame (or a definite
//! error) arrives, while [`read_frame_or_idle`] treats a read timeout
//! *before the first byte* as "no request yet" — the hook the server's
//! session loop uses to poll its shutdown flag without dropping
//! long-lived idle connections. A timeout *mid-frame* is a real error
//! (the peer stalled inside an envelope), bounded by the socket's
//! configured read timeout per read call.
//!
//! ## The traced envelope
//!
//! A second marker byte, [`TRACED_FRAME_MARKER`] (`0x5B`), carries the
//! same CRC-checked frame plus a fixed 16-byte [`TraceContext`] prefix
//! inside the checksummed body:
//!
//! ```text
//! traced := marker 0x5B | body_len u32 LE | crc32(marker | body) u32 LE | body
//! body   := trace_id u64 LE | parent_span_id u64 LE | payload
//! ```
//!
//! Unlike the plain frame, the traced checksum also covers the marker
//! byte: the two markers differ by a single bit, so a CRC over the
//! body alone would let a one-bit marker flip silently re-frame a
//! traced message as a plain one (context bytes leaking into the
//! payload) — covering the marker makes the flip a checksum error in
//! both directions.
//!
//! This is how a federation fan-out keeps **one** trace id across
//! peers: the caller writes its active context ahead of the request
//! payload, and the receiving server adopts it instead of generating a
//! fresh one. The extension is optional end to end — [`read_message`]
//! accepts both markers, and a plain [`read_frame`] reader simply
//! discards the context — so traced and untraced endpoints interoperate
//! frame by frame.

use std::io::{ErrorKind, Read, Write};

use sitm_obs::trace::TraceContext;
use sitm_store::crc32;
use sitm_store::segment::{FRAME_MARKER, FRAME_OVERHEAD, MAX_PAYLOAD};

/// Marker byte opening a trace-context-carrying frame (plain frames
/// open with [`FRAME_MARKER`], `0x5A`).
pub const TRACED_FRAME_MARKER: u8 = 0x5B;

/// Bytes the trace context occupies at the head of a traced frame's
/// body (two little-endian `u64`s).
pub const TRACE_ENVELOPE_BYTES: usize = 16;

/// Framing-level failures. Payload decoding has its own error type
/// ([`sitm_store::CodecError`], surfaced via [`crate::ServeError`]).
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// An I/O failure (including mid-frame EOF and mid-frame timeouts).
    Io(std::io::Error),
    /// The frame did not start with [`FRAME_MARKER`].
    BadMarker(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// The payload checksum did not match: corruption in flight.
    BadChecksum,
    /// A traced frame's body is too short to hold its context prefix.
    BadEnvelope(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::BadMarker(b) => write!(f, "bad frame marker {b:#04x}"),
            WireError::Oversized(n) => write!(f, "frame declares {n} bytes (over the bound)"),
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
            WireError::BadEnvelope(n) => {
                write!(f, "traced frame body of {n} bytes cannot hold a context")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One frame off the wire: the payload plus the trace context it
/// carried, if its envelope had one ([`TRACED_FRAME_MARKER`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMessage {
    /// The context from a traced envelope; `None` for a plain frame.
    pub trace: Option<TraceContext>,
    /// The protocol payload (request or response bytes).
    pub payload: Vec<u8>,
}

/// Writes one frame (marker, length, CRC, payload) and flushes. A
/// payload over [`MAX_PAYLOAD`] is an `InvalidInput` error, not a
/// panic — on a network path the caller substitutes a smaller message
/// (the server downgrades an oversized response to an `Error` reply;
/// the client tells the caller to split the batch).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            format!("payload of {} bytes exceeds the frame bound", payload.len()),
        ));
    }
    let mut header = [0u8; FRAME_OVERHEAD];
    header[0] = FRAME_MARKER;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[5..9].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Writes one traced frame: the same CRC-checked envelope with `ctx`
/// prefixed inside the body (see the module docs for the grammar).
/// The payload bound is unchanged — the 16 context bytes ride on top.
pub fn write_traced_frame(
    w: &mut impl Write,
    ctx: TraceContext,
    payload: &[u8],
) -> std::io::Result<()> {
    if payload.len() > MAX_PAYLOAD as usize {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            format!("payload of {} bytes exceeds the frame bound", payload.len()),
        ));
    }
    let mut body = Vec::with_capacity(TRACE_ENVELOPE_BYTES + payload.len());
    body.extend_from_slice(&ctx.trace_id.to_le_bytes());
    body.extend_from_slice(&ctx.parent_span_id.to_le_bytes());
    body.extend_from_slice(payload);
    let mut header = [0u8; FRAME_OVERHEAD];
    header[0] = TRACED_FRAME_MARKER;
    header[1..5].copy_from_slice(&(body.len() as u32).to_le_bytes());
    header[5..9].copy_from_slice(&traced_crc(&body).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&body)?;
    w.flush()
}

/// The traced frame's checksum: CRC over the marker byte *followed by*
/// the body, so a one-bit marker flip (`0x5B` ↔ `0x5A`) cannot pass
/// either marker's check (see the module docs).
fn traced_crc(body: &[u8]) -> u32 {
    let mut check = Vec::with_capacity(1 + body.len());
    check.push(TRACED_FRAME_MARKER);
    check.extend_from_slice(body);
    crc32(&check)
}

/// Mid-frame read timeouts tolerated before a stalled peer is declared
/// dead. The server's session sockets carry a short `read_timeout` so
/// *idle* connections can poll the shutdown flag; once a frame has
/// started, that knob must not double as the stall threshold — a slow
/// client legitimately pauses between packets of a large frame. With
/// the default 25 ms poll this allows ~10 s of mid-frame silence.
const MIDFRAME_TIMEOUT_PATIENCE: u32 = 400;

/// Reads exactly `buf.len()` bytes, retrying interrupted reads and up
/// to [`MIDFRAME_TIMEOUT_PATIENCE`] read timeouts (socket-level
/// `read_timeout` firings while the peer refills its send buffer).
/// Distinguishes a clean close *before any byte* (`Ok(false)`) from a
/// mid-buffer EOF (error) when `clean_close_ok` is set.
fn read_exact_or_close(
    r: &mut impl Read,
    buf: &mut [u8],
    clean_close_ok: bool,
) -> Result<bool, WireError> {
    let mut filled = 0;
    let mut timeouts = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && clean_close_ok {
                    return Ok(false);
                }
                return Err(WireError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )));
            }
            Ok(n) => {
                filled += n;
                // Progress resets the stall clock: the patience bounds
                // one continuous silence, not the frame's total
                // transfer time (a 16 MiB frame in slow bursts is a
                // legitimate peer, not a stalled one).
                timeouts = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                timeouts += 1;
                if timeouts > MIDFRAME_TIMEOUT_PATIENCE {
                    return Err(WireError::Io(e));
                }
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

/// Parses a frame whose marker byte has already been consumed,
/// splitting off the trace context when the marker declares one.
fn read_frame_body(r: &mut impl Read, marker: u8) -> Result<WireMessage, WireError> {
    let traced = match marker {
        FRAME_MARKER => false,
        TRACED_FRAME_MARKER => true,
        other => return Err(WireError::BadMarker(other)),
    };
    let mut header = [0u8; FRAME_OVERHEAD - 1];
    read_exact_or_close(r, &mut header, false)?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    let bound = MAX_PAYLOAD
        + if traced {
            TRACE_ENVELOPE_BYTES as u32
        } else {
            0
        };
    if len > bound {
        return Err(WireError::Oversized(len));
    }
    if traced && (len as usize) < TRACE_ENVELOPE_BYTES {
        return Err(WireError::BadEnvelope(len));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_or_close(r, &mut body, false)?;
    let expected = if traced {
        traced_crc(&body)
    } else {
        crc32(&body)
    };
    if expected != crc {
        return Err(WireError::BadChecksum);
    }
    if !traced {
        return Ok(WireMessage {
            trace: None,
            payload: body,
        });
    }
    let trace_id = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
    let parent_span_id = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
    body.drain(..TRACE_ENVELOPE_BYTES);
    Ok(WireMessage {
        trace: Some(TraceContext {
            trace_id,
            parent_span_id,
        }),
        payload: body,
    })
}

/// Reads one message — plain or traced envelope — blocking until it
/// arrives. A clean peer close between frames yields
/// [`WireError::Closed`].
pub fn read_message(r: &mut impl Read) -> Result<WireMessage, WireError> {
    let mut marker = [0u8; 1];
    if !read_exact_or_close(r, &mut marker, true)? {
        return Err(WireError::Closed);
    }
    read_frame_body(r, marker[0])
}

/// Like [`read_message`], but a read timeout *before the first byte*
/// (the socket's `read_timeout` firing on an idle connection) returns
/// `Ok(None)` instead of an error, so a session loop can interleave
/// shutdown checks with waiting for the next request.
pub fn read_message_or_idle(r: &mut impl Read) -> Result<Option<WireMessage>, WireError> {
    let mut marker = [0u8; 1];
    loop {
        return match r.read(&mut marker) {
            Ok(0) => Err(WireError::Closed),
            Ok(_) => Ok(Some(read_frame_body(r, marker[0])?)),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                Ok(None)
            }
            Err(e) => Err(WireError::Io(e)),
        };
    }
}

/// Reads one full frame, blocking until it arrives, discarding any
/// trace context — the compatibility reader for callers that don't
/// trace. A clean peer close between frames yields
/// [`WireError::Closed`].
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    read_message(r).map(|m| m.payload)
}

/// Like [`read_frame`], but a read timeout *before the first byte*
/// returns `Ok(None)` instead of an error (see [`read_message_or_idle`]).
pub fn read_frame_or_idle(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    Ok(read_message_or_idle(r)?.map(|m| m.payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload).unwrap();
        buf
    }

    #[test]
    fn round_trips_through_a_byte_stream() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"alpha").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, &[0xAB; 1000]).unwrap();
        let mut cursor: &[u8] = &stream;
        assert_eq!(read_frame(&mut cursor).unwrap(), b"alpha");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap(), vec![0xAB; 1000]);
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Closed)));
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let buf = framed(b"payload-bytes");
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            assert!(read_frame(&mut cursor).is_err(), "cut {cut}");
        }
        // Cut 0 is the clean-close case.
        assert!(matches!(read_frame(&mut &buf[..0]), Err(WireError::Closed)));
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let buf = framed(b"payload-bytes");
        for i in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[i] ^= 0x01;
            let mut cursor: &[u8] = &corrupt;
            match read_frame(&mut cursor) {
                Err(_) => {}
                // A flip in the length field can also *shorten* the
                // declared payload so the frame still checks out only
                // if the CRC happens to match — CRC32 makes that
                // impossible for a 1-bit flip.
                Ok(payload) => panic!("flip at {i} slipped through: {payload:?}"),
            }
        }
    }

    fn ctx() -> TraceContext {
        TraceContext {
            trace_id: 0x0123_4567_89AB_CDEF,
            parent_span_id: 42,
        }
    }

    #[test]
    fn traced_frames_round_trip_with_their_context() {
        let mut stream = Vec::new();
        write_traced_frame(&mut stream, ctx(), b"req").unwrap();
        write_traced_frame(&mut stream, ctx(), b"").unwrap();
        write_frame(&mut stream, b"plain").unwrap();
        let mut cursor: &[u8] = &stream;
        assert_eq!(
            read_message(&mut cursor).unwrap(),
            WireMessage {
                trace: Some(ctx()),
                payload: b"req".to_vec()
            }
        );
        assert_eq!(
            read_message(&mut cursor).unwrap(),
            WireMessage {
                trace: Some(ctx()),
                payload: Vec::new()
            },
            "an empty payload still carries its context"
        );
        assert_eq!(
            read_message(&mut cursor).unwrap(),
            WireMessage {
                trace: None,
                payload: b"plain".to_vec()
            },
            "plain frames interleave with traced ones"
        );
        assert!(matches!(read_message(&mut cursor), Err(WireError::Closed)));
    }

    #[test]
    fn plain_readers_discard_the_context() {
        let mut stream = Vec::new();
        write_traced_frame(&mut stream, ctx(), b"legacy-peer").unwrap();
        assert_eq!(read_frame(&mut stream.as_slice()).unwrap(), b"legacy-peer");
    }

    #[test]
    fn traced_truncations_and_flips_are_clean_errors() {
        let mut buf = Vec::new();
        write_traced_frame(&mut buf, ctx(), b"payload-bytes").unwrap();
        for cut in 1..buf.len() {
            assert!(read_message(&mut &buf[..cut]).is_err(), "cut {cut}");
        }
        assert!(matches!(
            read_message(&mut &buf[..0]),
            Err(WireError::Closed)
        ));
        for i in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[i] ^= 0x01;
            match read_message(&mut corrupt.as_slice()) {
                Err(_) => {}
                Ok(msg) => panic!("flip at {i} slipped through: {msg:?}"),
            }
        }
    }

    #[test]
    fn traced_body_too_short_for_a_context_is_rejected() {
        // A hand-built traced frame whose body is 8 bytes: valid CRC,
        // but no room for the 16-byte context.
        let body = [0xAAu8; 8];
        let mut buf = vec![TRACED_FRAME_MARKER];
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&traced_crc(&body).to_le_bytes());
        buf.extend_from_slice(&body);
        assert!(matches!(
            read_message(&mut buf.as_slice()),
            Err(WireError::BadEnvelope(8))
        ));
    }

    #[test]
    fn traced_bound_admits_a_max_payload_plus_context() {
        let payload = vec![0x5Cu8; MAX_PAYLOAD as usize];
        let mut buf = Vec::new();
        write_traced_frame(&mut buf, ctx(), &payload).unwrap();
        let msg = read_message(&mut buf.as_slice()).unwrap();
        assert_eq!(msg.payload.len(), MAX_PAYLOAD as usize);
        assert_eq!(msg.trace, Some(ctx()));
        // One byte past that is oversized.
        let mut buf = vec![TRACED_FRAME_MARKER];
        buf.extend_from_slice(&(MAX_PAYLOAD + TRACE_ENVELOPE_BYTES as u32 + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_message(&mut buf.as_slice()),
            Err(WireError::Oversized(_))
        ));
        // And the plain marker does not get the extended bound.
        let mut buf = vec![FRAME_MARKER];
        buf.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_message(&mut buf.as_slice()),
            Err(WireError::Oversized(_))
        ));
    }

    #[test]
    fn oversized_and_bad_marker_are_rejected() {
        let mut buf = vec![FRAME_MARKER];
        buf.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::Oversized(_))
        ));
        let buf = [0x00u8; 16];
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::BadMarker(0))
        ));
    }
}
