#![warn(missing_docs)]

//! # sitm-serve
//!
//! The network tier: a concurrent TCP server (and its blocking client)
//! exposing the full ingest → query pipeline — [`sitm_stream`]'s
//! work-stealing engine, live snapshots, and the
//! [`sitm_query::SegmentedDb`] warehouse — to remote applications. This
//! is the layer the paper's model exists to feed: stays, moves, and
//! annotated episodes *served* to clients (the service surface the
//! moving-object meta-model and trajectory-warehouse lines of the
//! related work presuppose), rather than reachable only in-process.
//!
//! * [`wire`] — the framed transport: every message rides the same
//!   `marker | len | crc32 | payload` envelope the storage tier
//!   torture-tests, so torn and corrupted frames are detected before
//!   any decoding; a second marker (`0x5B`) carries an optional
//!   16-byte trace-context prefix so one trace id follows a request
//!   across federation hops;
//! * [`proto`] — the request/response vocabulary ([`Request`],
//!   [`Response`]) and its fully validated payload codec: ingest
//!   batches of [`sitm_stream::StreamEvent`]s, warehouse and federated
//!   queries ([`sitm_query::wire::WireQuery`]), plans, stats,
//!   checkpoints, graceful shutdown;
//! * [`server`] — [`Server`]: a listener thread plus a bounded
//!   session-worker pool (the parallel engine's bounded-channel
//!   backpressure idiom at the accept layer) around one shared
//!   [`sitm_stream::ParallelEngine`] and one
//!   [`sitm_stream::Flusher`]-fed warehouse;
//! * [`client`] — [`Client`]: blocking, reconnect-safe on the send
//!   side, one session per instance (run one per thread to load a
//!   server — `bench_serve` does exactly that).
//!
//! ## The served pipeline
//!
//! ```text
//! client ─IngestBatch─▶ ParallelEngine (live tier: open visits)
//!                         │ close + fence          │ live_snapshot()
//!                         ▼                        ▼
//!                  finished backlog         QueryFederated ══▶ results
//!                         │ Checkpoint             ▲   (live ∪ warehouse,
//!                         ▼                        │    sorted / paged)
//!                  Flusher ─▶ SegmentedDb ─────────┘
//!                  (immutable segments, zone maps + Blooms, manifest)
//! ```
//!
//! Failure containment is per-session: a torn frame, a hostile length,
//! or an undecodable payload costs exactly one connection (answered
//! with [`Response::Error`] when the transport still stands) — the
//! listener, the other sessions, and the engine underneath keep
//! serving. `tests/wire_torture.rs` tears a request at every byte
//! offset against a live server to pin this down.
//!
//! ## Observability
//!
//! Every server owns a fresh [`sitm_obs::MetricsRegistry`] (injectable
//! via [`ServerConfig::with_metrics`]) threaded through the engine, the
//! flusher, and the warehouse, plus the serve tier's own instruments:
//! per-op `serve.requests.{op}` counters and `serve.handle_ns.{op}`
//! histograms, `serve.bytes_in`/`serve.bytes_out`,
//! `serve.errors`/`serve.frame_errors`/`serve.bad_requests`, a
//! `serve.sessions_active` gauge, and the federated-latency split
//! `serve.snapshot_build_ns`/`serve.evaluate_ns`. [`Request::Metrics`]
//! returns the whole registry as a versioned snapshot
//! ([`Client::metrics`]); [`ServerConfig::with_slow_query_threshold`]
//! arms the slow-query ring buffer carried in the same snapshot.
//!
//! On top of metrics, every served request records a hierarchical
//! trace tree (root → `handle` → `snapshot_cut`/`evaluate`/pushdown
//! tiers → `wire_write`) into a bounded [`sitm_obs::trace`] ring,
//! fetched over the wire with [`Request::Trace`]; a background
//! [`sitm_obs::timeseries`] sampler snapshots the registry each period
//! so [`Request::Health`] can answer with *current* rates and tier lag
//! ([`Client::health`] / [`Client::traces`]). A client that already
//! holds a trace context (a federation fan-out) propagates it with
//! [`Client::call_traced`] so the server-side tree joins the caller's
//! trace instead of starting a fresh one.
//!
//! Consistency over the wire is exactly the in-process contract:
//! `QueryFederated` evaluates over a snapshot-consistent live cut
//! unioned with the newest committed warehouse manifest, via the same
//! `Query::execute_federated` the embedded API uses — the differential
//! test in `tests/server.rs` pins served results == in-process results
//! on identical input.

pub mod client;
pub mod proto;
pub mod server;
pub mod wire;

pub use client::{Client, ClientStats, Notification, Subscriber};
pub use proto::{
    decode_episode, decode_request, decode_response, encode_episode, encode_request,
    encode_response, ExplainReport, Request, Response, ServerStats, StatsRollup, WirePlan,
};
pub use server::{Server, ServerConfig};
pub use wire::{
    read_frame, read_message, read_message_or_idle, write_frame, write_traced_frame, WireError,
    WireMessage, TRACED_FRAME_MARKER, TRACE_ENVELOPE_BYTES,
};

use sitm_store::CodecError;

/// Anything that can go wrong serving or calling.
#[derive(Debug)]
pub enum ServeError {
    /// Socket/transport failure.
    Io(std::io::Error),
    /// Framing failure (torn frame, checksum mismatch, peer closed).
    Wire(WireError),
    /// A payload failed validation.
    Codec(CodecError),
    /// Engine construction/restore failure.
    Engine(sitm_stream::EngineError),
    /// Warehouse tier failure.
    Warehouse(sitm_store::warehouse::WarehouseError),
    /// The server answered with an error message.
    Remote(String),
    /// The server answered with a response of the wrong shape.
    Protocol(String),
    /// A server thread panicked (surfaced at join).
    WorkerPanicked,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::Wire(e) => write!(f, "wire: {e}"),
            ServeError::Codec(e) => write!(f, "codec: {e}"),
            ServeError::Engine(e) => write!(f, "engine: {e}"),
            ServeError::Warehouse(e) => write!(f, "warehouse: {e}"),
            ServeError::Remote(message) => write!(f, "server error: {message}"),
            ServeError::Protocol(message) => write!(f, "protocol violation: {message}"),
            ServeError::WorkerPanicked => write!(f, "a server thread panicked"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<CodecError> for ServeError {
    fn from(e: CodecError) -> Self {
        ServeError::Codec(e)
    }
}

impl From<sitm_stream::EngineError> for ServeError {
    fn from(e: sitm_stream::EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<sitm_store::warehouse::WarehouseError> for ServeError {
    fn from(e: sitm_store::warehouse::WarehouseError) -> Self {
        ServeError::Warehouse(e)
    }
}
