//! The request/response vocabulary and its payload codec.
//!
//! One frame ([`crate::wire`]) carries one message. Requests and
//! responses are tagged unions encoded with the same `sitm-store`
//! primitives as every durable artifact — stream events reuse the
//! presence/annotation/cell codecs, trajectories ship as
//! [`sitm_store::codec::encode_trajectory`] rows, and query specs ride
//! [`sitm_query::wire`]. Decoding validates everything (tags, lengths,
//! UTF-8, interval ordering) and fails with a [`CodecError`] instead of
//! materializing an invalid value, so a corrupted frame that somehow
//! cleared the CRC still cannot reach the engine.

use sitm_core::{Episode, SemanticTrajectory, TimeInterval, Timestamp};
use sitm_obs::codec::{decode_snapshot, snapshot_to_bytes};
use sitm_obs::health::{decode_health, health_to_bytes, HealthReport};
use sitm_obs::trace::{decode_traces, traces_to_bytes, TraceTree};
use sitm_obs::MetricsSnapshot;
use sitm_query::wire::{decode_wire_query, encode_wire_query, WireQuery};
use sitm_query::{decode_predicate, encode_predicate, Predicate};
use sitm_space::CellRef;
use sitm_store::codec::{
    decode_annotations, decode_cell, decode_count, decode_presence, decode_str, decode_trajectory,
    encode_annotations, encode_cell, encode_presence, encode_str, encode_trajectory, take_tag,
};
use sitm_store::warehouse::CellRollup;
use sitm_store::{varint, CodecError};
use sitm_stream::{EmittedEpisode, StreamEvent, VisitKey};

// --- stream events ---------------------------------------------------------

const EV_OPENED: u8 = 0;
const EV_FIX: u8 = 1;
const EV_PRESENCE: u8 = 2;
const EV_CLOSED: u8 = 3;

/// Encodes one ingestion event.
pub fn encode_event(buf: &mut Vec<u8>, event: &StreamEvent) {
    match event {
        StreamEvent::VisitOpened {
            visit,
            moving_object,
            annotations,
            at,
        } => {
            buf.push(EV_OPENED);
            varint::encode_u64(buf, visit.0);
            encode_str(buf, moving_object);
            encode_annotations(buf, annotations);
            varint::encode_i64(buf, at.0);
        }
        StreamEvent::Fix { visit, cell, at } => {
            buf.push(EV_FIX);
            varint::encode_u64(buf, visit.0);
            encode_cell(buf, *cell);
            varint::encode_i64(buf, at.0);
        }
        StreamEvent::Presence { visit, interval } => {
            buf.push(EV_PRESENCE);
            varint::encode_u64(buf, visit.0);
            encode_presence(buf, interval);
        }
        StreamEvent::VisitClosed { visit, at } => {
            buf.push(EV_CLOSED);
            varint::encode_u64(buf, visit.0);
            varint::encode_i64(buf, at.0);
        }
    }
}

/// Decodes one ingestion event.
pub fn decode_event(buf: &mut &[u8]) -> Result<StreamEvent, CodecError> {
    match take_tag(buf)? {
        EV_OPENED => {
            let visit = VisitKey(varint::decode_u64(buf)?);
            let moving_object = decode_str(buf)?;
            let annotations = decode_annotations(buf)?;
            let at = Timestamp(varint::decode_i64(buf)?);
            Ok(StreamEvent::VisitOpened {
                visit,
                moving_object,
                annotations,
                at,
            })
        }
        EV_FIX => {
            let visit = VisitKey(varint::decode_u64(buf)?);
            let cell = decode_cell(buf)?;
            let at = Timestamp(varint::decode_i64(buf)?);
            Ok(StreamEvent::Fix { visit, cell, at })
        }
        EV_PRESENCE => {
            let visit = VisitKey(varint::decode_u64(buf)?);
            let interval = decode_presence(buf)?;
            Ok(StreamEvent::Presence { visit, interval })
        }
        EV_CLOSED => {
            let visit = VisitKey(varint::decode_u64(buf)?);
            let at = Timestamp(varint::decode_i64(buf)?);
            Ok(StreamEvent::VisitClosed { visit, at })
        }
        other => Err(CodecError::BadTag(other)),
    }
}

// --- requests --------------------------------------------------------------

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Route a batch of events into the shared engine.
    IngestBatch(Vec<StreamEvent>),
    /// Execute a query over the **warehouse tier only** (spilled
    /// history; sorted/limited paging applies).
    Query(WireQuery),
    /// Execute a query over **live ∪ warehouse** — the engine's
    /// snapshot-consistent live cut federated with the segment tier via
    /// `Query::execute_federated`.
    QueryFederated(WireQuery),
    /// Plan a predicate without executing it: per-source access paths
    /// plus the warehouse's zone-map / Bloom pruning counts.
    Explain(Predicate),
    /// Engine counters plus warehouse shape.
    Stats,
    /// Spill the engine's finished backlog into the warehouse now
    /// (durable on response).
    Checkpoint,
    /// Graceful shutdown: flush the warehouse, stop accepting, drain
    /// sessions.
    Shutdown,
    /// A versioned snapshot of the server's `MetricsRegistry`: every
    /// counter/gauge/histogram across the ingest → warehouse → serve
    /// path, plus the slow-query ring buffer.
    Metrics,
    /// Register a continuous query on this session. On every ingest
    /// barrier that advances the engine epoch, drained episodes whose
    /// delta evaluation is not provably false for the predicate are
    /// pushed to this session as [`Response::Notification`] frames.
    /// One subscription per session; re-subscribing replaces the query.
    Subscribe(WireQuery),
    /// Drop this session's continuous query. The server stops pushing;
    /// notifications already queued are still flushed before the
    /// [`Response::Unsubscribed`] acknowledgement.
    Unsubscribe,
    /// A point-in-time liveness summary: uptime, epoch, tier lag
    /// (flush backlog, worker queues, checkpoint age), session load,
    /// and the current ingest rate. Cheap enough to poll every second.
    Health,
    /// The most recent `limit` trace trees from the server's recorder
    /// (empty when tracing is disabled).
    Trace {
        /// Most-recent trees to return (the server also caps this at
        /// its ring capacity).
        limit: u64,
    },
}

const REQ_INGEST: u8 = 0;
const REQ_QUERY: u8 = 1;
const REQ_QUERY_FEDERATED: u8 = 2;
const REQ_EXPLAIN: u8 = 3;
const REQ_STATS: u8 = 4;
const REQ_CHECKPOINT: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;
const REQ_METRICS: u8 = 7;
const REQ_SUBSCRIBE: u8 = 8;
const REQ_UNSUBSCRIBE: u8 = 9;
const REQ_HEALTH: u8 = 10;
const REQ_TRACE: u8 = 11;

/// Encodes a request into a frame payload.
pub fn encode_request(buf: &mut Vec<u8>, req: &Request) {
    match req {
        Request::IngestBatch(events) => {
            buf.push(REQ_INGEST);
            varint::encode_u64(buf, events.len() as u64);
            for e in events {
                encode_event(buf, e);
            }
        }
        Request::Query(q) => {
            buf.push(REQ_QUERY);
            encode_wire_query(buf, q);
        }
        Request::QueryFederated(q) => {
            buf.push(REQ_QUERY_FEDERATED);
            encode_wire_query(buf, q);
        }
        Request::Explain(p) => {
            buf.push(REQ_EXPLAIN);
            encode_predicate(buf, p);
        }
        Request::Stats => buf.push(REQ_STATS),
        Request::Checkpoint => buf.push(REQ_CHECKPOINT),
        Request::Shutdown => buf.push(REQ_SHUTDOWN),
        Request::Metrics => buf.push(REQ_METRICS),
        Request::Subscribe(q) => {
            buf.push(REQ_SUBSCRIBE);
            encode_wire_query(buf, q);
        }
        Request::Unsubscribe => buf.push(REQ_UNSUBSCRIBE),
        Request::Health => buf.push(REQ_HEALTH),
        Request::Trace { limit } => {
            buf.push(REQ_TRACE);
            varint::encode_u64(buf, *limit);
        }
    }
}

/// Decodes a request frame payload.
pub fn decode_request(buf: &mut &[u8]) -> Result<Request, CodecError> {
    let req = match take_tag(buf)? {
        REQ_INGEST => {
            let count = decode_count(buf)?;
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                events.push(decode_event(buf)?);
            }
            Request::IngestBatch(events)
        }
        REQ_QUERY => Request::Query(decode_wire_query(buf)?),
        REQ_QUERY_FEDERATED => Request::QueryFederated(decode_wire_query(buf)?),
        REQ_EXPLAIN => Request::Explain(decode_predicate(buf)?),
        REQ_STATS => Request::Stats,
        REQ_CHECKPOINT => Request::Checkpoint,
        REQ_SHUTDOWN => Request::Shutdown,
        REQ_METRICS => Request::Metrics,
        REQ_SUBSCRIBE => Request::Subscribe(decode_wire_query(buf)?),
        REQ_UNSUBSCRIBE => Request::Unsubscribe,
        REQ_HEALTH => Request::Health,
        REQ_TRACE => Request::Trace {
            limit: varint::decode_u64(buf)?,
        },
        other => return Err(CodecError::BadTag(other)),
    };
    if !buf.is_empty() {
        return Err(CodecError::InvalidTrace(
            "trailing bytes after request".into(),
        ));
    }
    Ok(req)
}

// --- responses -------------------------------------------------------------

/// One federation participant's plan, as reported over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePlan {
    /// Candidates the source's indexes narrowed to (`None` = full scan).
    pub candidates: Option<u64>,
    /// Trajectories in the source.
    pub total: u64,
}

/// The server-side plan for a predicate: one [`WirePlan`] per federated
/// source (live snapshot first, then the warehouse) plus the warehouse
/// pruning counters surfaced from `SegmentedDb::explain`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplainReport {
    /// Per-source access paths, in federation order (live, warehouse).
    pub plans: Vec<WirePlan>,
    /// Live warehouse segments consulted.
    pub segments: u64,
    /// Segments zone-map pruning skipped entirely.
    pub zone_pruned: u64,
    /// Of those, segments the Bloom filters alone rejected.
    pub bloom_pruned: u64,
    /// Segments the global object index skipped before their zone maps
    /// were consulted (disjoint from `zone_pruned`).
    pub object_pruned: u64,
    /// Cumulative `query.segment_bytes_read` at explain time: segment
    /// bytes lazily read off disk by cold queries since the server
    /// started (directory-guided frame reads + hydrations).
    pub segment_bytes_read: u64,
    /// Cumulative `query.trajectories_decoded` at explain time.
    pub trajectories_decoded: u64,
    /// Cumulative `store.lazy_opens`: segments opened headers-only
    /// (format v2/v3) since the server started.
    pub lazy_opens: u64,
    /// Cumulative `query.row_cache_hits`: single-row reads served from
    /// the warehouse's bounded row-decode cache since the server
    /// started.
    pub row_cache_hits: u64,
    /// Cumulative `query.row_cache_misses`.
    pub row_cache_misses: u64,
    /// Nanoseconds the server spent cutting the live snapshot for this
    /// plan (quiesce + open-visit clone) — the per-stage timing that
    /// decomposes a federated query's latency.
    pub snapshot_build_ns: u64,
    /// Nanoseconds spent planning/evaluating against the snapshot and
    /// the warehouse after the snapshot was cut.
    pub evaluate_ns: u64,
    /// Whether the live snapshot this plan consulted was served from
    /// the server's epoch cache (`snapshot_build_ns` is then the cache
    /// lookup, not a quiesce).
    pub snapshot_cached: bool,
}

/// Engine + warehouse counters, as served by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Events applied by the engine.
    pub events: u64,
    /// Presence intervals accepted.
    pub presences: u64,
    /// Visits opened.
    pub visits_opened: u64,
    /// Visits closed.
    pub visits_closed: u64,
    /// Episodes finalized.
    pub episodes: u64,
    /// Rejected/adapted events (all anomaly classes summed).
    pub anomalies: u64,
    /// Visits currently open (live tier population).
    pub open_visits: u64,
    /// Trajectories in the warehouse tier.
    pub warehouse_trajectories: u64,
    /// Live warehouse segments.
    pub warehouse_segments: u64,
    /// Sessions the server has accepted over its lifetime.
    pub sessions_accepted: u64,
    /// Sessions connected right now.
    pub sessions_active: u64,
}

/// Decode-free warehouse breakdowns served alongside [`ServerStats`]:
/// the segments' header-frame rollups merged with a live-tier fold, so
/// per-cell and per-period totals ride the `Stats` op without the
/// server decoding a single trajectory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsRollup {
    /// Bucket width of the `periods` axis, in seconds.
    pub period_seconds: u64,
    /// Per-cell totals, strictly ascending by cell.
    pub cells: Vec<(CellRef, CellRollup)>,
    /// Period bucket start (seconds, floor-aligned) → distinct
    /// trajectories present, strictly ascending by bucket.
    pub periods: Vec<(i64, u64)>,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The batch was routed into the engine.
    Ingested {
        /// Events accepted into the router.
        events: u64,
    },
    /// Query results, cloned out of the server's snapshot.
    Trajectories(Vec<SemanticTrajectory>),
    /// The plan for an [`Request::Explain`].
    Explained(ExplainReport),
    /// Current counters plus decode-free warehouse breakdowns.
    Stats {
        /// Engine + warehouse counters.
        stats: ServerStats,
        /// Rollup-served per-cell / per-period aggregates.
        rollup: StatsRollup,
    },
    /// The finished backlog was spilled and committed.
    Checkpointed {
        /// Trajectories made durable by this checkpoint.
        spilled: u64,
        /// Warehouse population after the spill.
        warehouse_trajectories: u64,
        /// The warehouse manifest sequence now current.
        manifest_sequence: u64,
    },
    /// Shutdown acknowledged; the connection closes after this frame.
    ShuttingDown,
    /// The request could not be served (bad payload, engine error...).
    /// The session survives: the client may send further requests.
    Error(String),
    /// The server's metrics snapshot (versioned payload, see
    /// `sitm_obs::codec`).
    Metrics(MetricsSnapshot),
    /// The continuous query was registered. `epoch` is the engine epoch
    /// at registration: every notification the subscription will ever
    /// receive carries an epoch strictly greater than this.
    Subscribed {
        /// Engine epoch when the subscription took effect.
        epoch: u64,
    },
    /// The continuous query was dropped; no further notifications
    /// follow on this session.
    Unsubscribed,
    /// A pushed batch of drained episodes matching (or not provably
    /// missing) a session's subscription. Unsolicited: arrives between
    /// request/response pairs, identified by its tag.
    Notification {
        /// The engine epoch whose ingest barrier drained these episodes.
        epoch: u64,
        /// The matching episodes, in the drain's deterministic order.
        episodes: Vec<EmittedEpisode>,
    },
    /// The liveness summary (versioned payload, see
    /// `sitm_obs::health`).
    Health(HealthReport),
    /// Recent trace trees, oldest first (versioned payload, see
    /// `sitm_obs::trace`).
    Traces(Vec<TraceTree>),
}

const RESP_INGESTED: u8 = 0;
const RESP_TRAJECTORIES: u8 = 1;
const RESP_EXPLAINED: u8 = 2;
const RESP_STATS: u8 = 3;
const RESP_CHECKPOINTED: u8 = 4;
const RESP_SHUTTING_DOWN: u8 = 5;
const RESP_ERROR: u8 = 6;
const RESP_METRICS: u8 = 7;
const RESP_SUBSCRIBED: u8 = 8;
const RESP_UNSUBSCRIBED: u8 = 9;
const RESP_NOTIFICATION: u8 = 10;
const RESP_HEALTH: u8 = 11;
const RESP_TRACES: u8 = 12;

/// Encodes one drained episode as pushed by a subscription.
pub fn encode_episode(buf: &mut Vec<u8>, episode: &EmittedEpisode) {
    varint::encode_u64(buf, episode.visit.0);
    encode_str(buf, &episode.moving_object);
    varint::encode_u64(buf, episode.predicate as u64);
    varint::encode_u64(buf, episode.episode.range.start as u64);
    varint::encode_u64(buf, episode.episode.range.end as u64);
    varint::encode_i64(buf, episode.episode.time.start.0);
    varint::encode_i64(buf, episode.episode.time.end.0);
    encode_annotations(buf, &episode.episode.annotations);
}

/// Decodes one drained episode, validating range and interval ordering.
pub fn decode_episode(buf: &mut &[u8]) -> Result<EmittedEpisode, CodecError> {
    let visit = VisitKey(varint::decode_u64(buf)?);
    let moving_object = decode_str(buf)?;
    let predicate = varint::decode_u64(buf)? as usize;
    let start = varint::decode_u64(buf)? as usize;
    let end = varint::decode_u64(buf)? as usize;
    if end < start {
        return Err(CodecError::InvalidTrace(
            "episode range end before start".into(),
        ));
    }
    let t_start = Timestamp(varint::decode_i64(buf)?);
    let t_end = Timestamp(varint::decode_i64(buf)?);
    if t_end < t_start {
        return Err(CodecError::InvalidTrace(
            "episode interval end before start".into(),
        ));
    }
    let annotations = decode_annotations(buf)?;
    Ok(EmittedEpisode {
        visit,
        moving_object,
        predicate,
        episode: Episode {
            range: start..end,
            time: TimeInterval::new(t_start, t_end),
            annotations,
        },
    })
}

/// Encodes a response into a frame payload.
pub fn encode_response(buf: &mut Vec<u8>, resp: &Response) {
    match resp {
        Response::Ingested { events } => {
            buf.push(RESP_INGESTED);
            varint::encode_u64(buf, *events);
        }
        Response::Trajectories(rows) => {
            buf.push(RESP_TRAJECTORIES);
            varint::encode_u64(buf, rows.len() as u64);
            for t in rows {
                encode_trajectory(buf, t);
            }
        }
        Response::Explained(report) => {
            buf.push(RESP_EXPLAINED);
            varint::encode_u64(buf, report.plans.len() as u64);
            for plan in &report.plans {
                match plan.candidates {
                    None => buf.push(0),
                    Some(n) => {
                        buf.push(1);
                        varint::encode_u64(buf, n);
                    }
                }
                varint::encode_u64(buf, plan.total);
            }
            varint::encode_u64(buf, report.segments);
            varint::encode_u64(buf, report.zone_pruned);
            varint::encode_u64(buf, report.bloom_pruned);
            varint::encode_u64(buf, report.object_pruned);
            varint::encode_u64(buf, report.segment_bytes_read);
            varint::encode_u64(buf, report.trajectories_decoded);
            varint::encode_u64(buf, report.lazy_opens);
            varint::encode_u64(buf, report.row_cache_hits);
            varint::encode_u64(buf, report.row_cache_misses);
            varint::encode_u64(buf, report.snapshot_build_ns);
            varint::encode_u64(buf, report.evaluate_ns);
            buf.push(report.snapshot_cached as u8);
        }
        Response::Stats { stats: s, rollup } => {
            buf.push(RESP_STATS);
            for n in [
                s.events,
                s.presences,
                s.visits_opened,
                s.visits_closed,
                s.episodes,
                s.anomalies,
                s.open_visits,
                s.warehouse_trajectories,
                s.warehouse_segments,
                s.sessions_accepted,
                s.sessions_active,
            ] {
                varint::encode_u64(buf, n);
            }
            varint::encode_u64(buf, rollup.period_seconds);
            varint::encode_u64(buf, rollup.cells.len() as u64);
            for (cell, agg) in &rollup.cells {
                encode_cell(buf, *cell);
                varint::encode_u64(buf, agg.trajectories);
                varint::encode_u64(buf, agg.stays);
                varint::encode_u64(buf, agg.dwell_seconds);
            }
            varint::encode_u64(buf, rollup.periods.len() as u64);
            for (bucket, count) in &rollup.periods {
                varint::encode_i64(buf, *bucket);
                varint::encode_u64(buf, *count);
            }
        }
        Response::Checkpointed {
            spilled,
            warehouse_trajectories,
            manifest_sequence,
        } => {
            buf.push(RESP_CHECKPOINTED);
            varint::encode_u64(buf, *spilled);
            varint::encode_u64(buf, *warehouse_trajectories);
            varint::encode_u64(buf, *manifest_sequence);
        }
        Response::ShuttingDown => buf.push(RESP_SHUTTING_DOWN),
        Response::Error(message) => {
            buf.push(RESP_ERROR);
            encode_str(buf, message);
        }
        Response::Metrics(snapshot) => {
            buf.push(RESP_METRICS);
            // The snapshot codec is versioned and self-delimiting; it
            // rides the response as a length-prefixed blob so the
            // trailing-bytes check below still covers the whole frame.
            let bytes = snapshot_to_bytes(snapshot);
            varint::encode_u64(buf, bytes.len() as u64);
            buf.extend_from_slice(&bytes);
        }
        Response::Subscribed { epoch } => {
            buf.push(RESP_SUBSCRIBED);
            varint::encode_u64(buf, *epoch);
        }
        Response::Unsubscribed => buf.push(RESP_UNSUBSCRIBED),
        Response::Notification { epoch, episodes } => {
            buf.push(RESP_NOTIFICATION);
            varint::encode_u64(buf, *epoch);
            varint::encode_u64(buf, episodes.len() as u64);
            for e in episodes {
                encode_episode(buf, e);
            }
        }
        Response::Health(report) => {
            buf.push(RESP_HEALTH);
            // Versioned, self-delimiting payload as a length-prefixed
            // blob — the `Metrics` idiom, same trailing-bytes coverage.
            let bytes = health_to_bytes(report);
            varint::encode_u64(buf, bytes.len() as u64);
            buf.extend_from_slice(&bytes);
        }
        Response::Traces(trees) => {
            buf.push(RESP_TRACES);
            let bytes = traces_to_bytes(trees);
            varint::encode_u64(buf, bytes.len() as u64);
            buf.extend_from_slice(&bytes);
        }
    }
}

/// Decodes a response frame payload.
pub fn decode_response(buf: &mut &[u8]) -> Result<Response, CodecError> {
    let resp = match take_tag(buf)? {
        RESP_INGESTED => Response::Ingested {
            events: varint::decode_u64(buf)?,
        },
        RESP_TRAJECTORIES => {
            let count = decode_count(buf)?;
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                rows.push(decode_trajectory(buf)?);
            }
            Response::Trajectories(rows)
        }
        RESP_EXPLAINED => {
            let count = decode_count(buf)?;
            let mut plans = Vec::with_capacity(count);
            for _ in 0..count {
                let candidates = match take_tag(buf)? {
                    0 => None,
                    1 => Some(varint::decode_u64(buf)?),
                    other => return Err(CodecError::BadTag(other)),
                };
                let total = varint::decode_u64(buf)?;
                plans.push(WirePlan { candidates, total });
            }
            let segments = varint::decode_u64(buf)?;
            let zone_pruned = varint::decode_u64(buf)?;
            let bloom_pruned = varint::decode_u64(buf)?;
            let object_pruned = varint::decode_u64(buf)?;
            let segment_bytes_read = varint::decode_u64(buf)?;
            let trajectories_decoded = varint::decode_u64(buf)?;
            let lazy_opens = varint::decode_u64(buf)?;
            let row_cache_hits = varint::decode_u64(buf)?;
            let row_cache_misses = varint::decode_u64(buf)?;
            let snapshot_build_ns = varint::decode_u64(buf)?;
            let evaluate_ns = varint::decode_u64(buf)?;
            let snapshot_cached = match take_tag(buf)? {
                0 => false,
                1 => true,
                other => return Err(CodecError::BadTag(other)),
            };
            Response::Explained(ExplainReport {
                plans,
                segments,
                zone_pruned,
                bloom_pruned,
                object_pruned,
                segment_bytes_read,
                trajectories_decoded,
                lazy_opens,
                row_cache_hits,
                row_cache_misses,
                snapshot_build_ns,
                evaluate_ns,
                snapshot_cached,
            })
        }
        RESP_STATS => {
            let mut fields = [0u64; 11];
            for slot in &mut fields {
                *slot = varint::decode_u64(buf)?;
            }
            let period_seconds = varint::decode_u64(buf)?;
            let cell_count = decode_count(buf)?;
            let mut cells: Vec<(CellRef, CellRollup)> = Vec::with_capacity(cell_count);
            for _ in 0..cell_count {
                let cell = decode_cell(buf)?;
                if let Some((last, _)) = cells.last() {
                    if *last >= cell {
                        return Err(CodecError::InvalidTrace(
                            "stats rollup cells out of order".into(),
                        ));
                    }
                }
                let trajectories = varint::decode_u64(buf)?;
                let stays = varint::decode_u64(buf)?;
                let dwell_seconds = varint::decode_u64(buf)?;
                cells.push((
                    cell,
                    CellRollup {
                        trajectories,
                        stays,
                        dwell_seconds,
                    },
                ));
            }
            let period_count = decode_count(buf)?;
            let mut periods: Vec<(i64, u64)> = Vec::with_capacity(period_count);
            for _ in 0..period_count {
                let bucket = varint::decode_i64(buf)?;
                if let Some((last, _)) = periods.last() {
                    if *last >= bucket {
                        return Err(CodecError::InvalidTrace(
                            "stats rollup periods out of order".into(),
                        ));
                    }
                }
                periods.push((bucket, varint::decode_u64(buf)?));
            }
            Response::Stats {
                stats: ServerStats {
                    events: fields[0],
                    presences: fields[1],
                    visits_opened: fields[2],
                    visits_closed: fields[3],
                    episodes: fields[4],
                    anomalies: fields[5],
                    open_visits: fields[6],
                    warehouse_trajectories: fields[7],
                    warehouse_segments: fields[8],
                    sessions_accepted: fields[9],
                    sessions_active: fields[10],
                },
                rollup: StatsRollup {
                    period_seconds,
                    cells,
                    periods,
                },
            }
        }
        RESP_CHECKPOINTED => Response::Checkpointed {
            spilled: varint::decode_u64(buf)?,
            warehouse_trajectories: varint::decode_u64(buf)?,
            manifest_sequence: varint::decode_u64(buf)?,
        },
        RESP_SHUTTING_DOWN => Response::ShuttingDown,
        RESP_ERROR => Response::Error(decode_str(buf)?),
        RESP_METRICS => {
            // `decode_count` already rejects a length past the frame.
            let len = decode_count(buf)?;
            let (blob, rest) = buf.split_at(len);
            *buf = rest;
            let snapshot = decode_snapshot(blob)
                .map_err(|e| CodecError::InvalidTrace(format!("metrics snapshot: {e}")))?;
            Response::Metrics(snapshot)
        }
        RESP_SUBSCRIBED => Response::Subscribed {
            epoch: varint::decode_u64(buf)?,
        },
        RESP_UNSUBSCRIBED => Response::Unsubscribed,
        RESP_NOTIFICATION => {
            let epoch = varint::decode_u64(buf)?;
            let count = decode_count(buf)?;
            let mut episodes = Vec::with_capacity(count);
            for _ in 0..count {
                episodes.push(decode_episode(buf)?);
            }
            Response::Notification { epoch, episodes }
        }
        RESP_HEALTH => {
            let len = decode_count(buf)?;
            let (blob, rest) = buf.split_at(len);
            *buf = rest;
            let report = decode_health(blob)
                .map_err(|e| CodecError::InvalidTrace(format!("health report: {e}")))?;
            Response::Health(report)
        }
        RESP_TRACES => {
            let len = decode_count(buf)?;
            let (blob, rest) = buf.split_at(len);
            *buf = rest;
            let trees = decode_traces(blob)
                .map_err(|e| CodecError::InvalidTrace(format!("trace trees: {e}")))?;
            Response::Traces(trees)
        }
        other => return Err(CodecError::BadTag(other)),
    };
    if !buf.is_empty() {
        return Err(CodecError::InvalidTrace(
            "trailing bytes after response".into(),
        ));
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{Annotation, AnnotationSet, PresenceInterval, Trace, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_query::SortKey;
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn sample_events() -> Vec<StreamEvent> {
        vec![
            StreamEvent::VisitOpened {
                visit: VisitKey(7),
                moving_object: "mo-7".into(),
                annotations: AnnotationSet::from_iter([Annotation::goal("visit")]),
                at: Timestamp(-12),
            },
            StreamEvent::Fix {
                visit: VisitKey(7),
                cell: cell(3),
                at: Timestamp(5),
            },
            StreamEvent::Presence {
                visit: VisitKey(8),
                interval: PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(1),
                    Timestamp(0),
                    Timestamp(50),
                ),
            },
            StreamEvent::VisitClosed {
                visit: VisitKey(7),
                at: Timestamp(100),
            },
        ]
    }

    fn sample_trajectory() -> SemanticTrajectory {
        let stay = PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(2),
            Timestamp(10),
            Timestamp(60),
        );
        SemanticTrajectory::new(
            "mo",
            Trace::new(vec![stay]).unwrap(),
            AnnotationSet::from_iter([Annotation::goal("visit")]),
        )
        .unwrap()
    }

    fn requests() -> Vec<Request> {
        vec![
            Request::IngestBatch(sample_events()),
            Request::IngestBatch(vec![]),
            Request::Query(WireQuery::filtered(Predicate::VisitedCell(cell(1)))),
            Request::QueryFederated(WireQuery {
                predicate: Predicate::MovingObject("mo".into()),
                order: Some((SortKey::Start, true)),
                offset: 1,
                limit: Some(5),
            }),
            Request::Explain(Predicate::VisitedCell(cell(1)).not()),
            Request::Stats,
            Request::Checkpoint,
            Request::Shutdown,
            Request::Metrics,
            Request::Subscribe(WireQuery::filtered(
                Predicate::HasTrajAnnotation(Annotation::goal("visit"))
                    .and(Predicate::MovingObject("mo".into())),
            )),
            Request::Unsubscribe,
            Request::Health,
            Request::Trace { limit: 16 },
        ]
    }

    fn sample_health() -> HealthReport {
        HealthReport {
            uptime_ms: 12_000,
            epoch: 9,
            sessions_accepted: 4,
            sessions_active: 2,
            subscribers_active: 1,
            flush_backlog_trajectories: 30,
            worker_queue_depths: vec![0, 5],
            last_checkpoint_age_ms: Some(800),
            warehouse_segments: 3,
            warehouse_trajectories: 700,
            traces_recorded: 11,
            events_per_sec_milli: 2_500,
        }
    }

    fn sample_traces() -> Vec<TraceTree> {
        use sitm_obs::trace::SpanRecord;
        use std::borrow::Cow;
        vec![TraceTree {
            trace_id: 0xFEED,
            parent_span_id: 3,
            root: SpanRecord {
                id: 1,
                name: Cow::Borrowed("query_federated"),
                start_ns: 0,
                duration_ns: 90_000,
                children: vec![SpanRecord {
                    id: 2,
                    name: Cow::Borrowed("snapshot_cut"),
                    start_ns: 50,
                    duration_ns: 7_000,
                    children: Vec::new(),
                }],
            },
        }]
    }

    fn sample_episode() -> EmittedEpisode {
        EmittedEpisode {
            visit: VisitKey(41),
            moving_object: "mo-41".into(),
            predicate: 2,
            episode: Episode {
                range: 1..4,
                time: TimeInterval::new(Timestamp(-3), Timestamp(90)),
                annotations: AnnotationSet::from_iter([Annotation::goal("visit")]),
            },
        }
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let registry = sitm_obs::MetricsRegistry::new();
        registry.counter("serve.requests.query").add(3);
        registry.gauge("serve.sessions_active").set(2);
        registry.histogram("serve.handle_ns.query").record(12_000);
        registry.set_slow_threshold_ns(1);
        registry.record_slow_with("query", 271_000, || "limit=5".into());
        registry.snapshot()
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::Ingested { events: 42 },
            Response::Trajectories(vec![sample_trajectory()]),
            Response::Trajectories(vec![]),
            Response::Explained(ExplainReport {
                plans: vec![
                    WirePlan {
                        candidates: None,
                        total: 10,
                    },
                    WirePlan {
                        candidates: Some(3),
                        total: 100,
                    },
                ],
                segments: 4,
                zone_pruned: 2,
                bloom_pruned: 1,
                object_pruned: 1,
                segment_bytes_read: 4_096,
                trajectories_decoded: 7,
                lazy_opens: 4,
                row_cache_hits: 9,
                row_cache_misses: 5,
                snapshot_build_ns: 48_000,
                evaluate_ns: 31_000,
                snapshot_cached: true,
            }),
            Response::Stats {
                stats: ServerStats {
                    events: 1,
                    presences: 2,
                    visits_opened: 3,
                    visits_closed: 4,
                    episodes: 5,
                    anomalies: 6,
                    open_visits: 7,
                    warehouse_trajectories: 8,
                    warehouse_segments: 9,
                    sessions_accepted: 10,
                    sessions_active: 2,
                },
                rollup: StatsRollup {
                    period_seconds: 3600,
                    cells: vec![
                        (
                            cell(1),
                            CellRollup {
                                trajectories: 2,
                                stays: 3,
                                dwell_seconds: 120,
                            },
                        ),
                        (
                            cell(4),
                            CellRollup {
                                trajectories: 1,
                                stays: 1,
                                dwell_seconds: 60,
                            },
                        ),
                    ],
                    periods: vec![(-3600, 1), (0, 2), (7200, 1)],
                },
            },
            Response::Stats {
                stats: ServerStats::default(),
                rollup: StatsRollup::default(),
            },
            Response::Checkpointed {
                spilled: 12,
                warehouse_trajectories: 99,
                manifest_sequence: 7,
            },
            Response::ShuttingDown,
            Response::Error("bad payload".into()),
            Response::Metrics(sample_snapshot()),
            Response::Metrics(MetricsSnapshot::default()),
            Response::Subscribed { epoch: 17 },
            Response::Unsubscribed,
            Response::Notification {
                epoch: 18,
                episodes: vec![sample_episode()],
            },
            Response::Notification {
                epoch: 19,
                episodes: vec![],
            },
            Response::Health(sample_health()),
            Response::Health(HealthReport::default()),
            Response::Traces(sample_traces()),
            Response::Traces(Vec::new()),
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for req in requests() {
            let mut buf = Vec::new();
            encode_request(&mut buf, &req);
            let back = decode_request(&mut buf.as_slice()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn every_response_round_trips() {
        for resp in responses() {
            let mut buf = Vec::new();
            encode_response(&mut buf, &resp);
            let back = decode_response(&mut buf.as_slice()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn truncated_messages_error_and_never_panic() {
        for req in requests() {
            let mut buf = Vec::new();
            encode_request(&mut buf, &req);
            for cut in 0..buf.len() {
                assert!(decode_request(&mut &buf[..cut]).is_err(), "cut {cut}");
            }
        }
        for resp in responses() {
            let mut buf = Vec::new();
            encode_response(&mut buf, &resp);
            for cut in 0..buf.len() {
                assert!(decode_response(&mut &buf[..cut]).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_request(&mut buf, &Request::Stats);
        buf.push(0);
        assert!(decode_request(&mut buf.as_slice()).is_err());
        let mut buf = Vec::new();
        encode_response(&mut buf, &Response::ShuttingDown);
        buf.push(0);
        assert!(decode_response(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn inverted_episode_ranges_and_intervals_are_rejected() {
        // range end before start
        let mut buf = Vec::new();
        let mut bad = sample_episode();
        encode_episode(&mut buf, &bad);
        let good_len = buf.len();
        buf.clear();
        varint::encode_u64(&mut buf, bad.visit.0);
        encode_str(&mut buf, &bad.moving_object);
        varint::encode_u64(&mut buf, bad.predicate as u64);
        varint::encode_u64(&mut buf, 4); // start
        varint::encode_u64(&mut buf, 1); // end < start
        varint::encode_i64(&mut buf, bad.episode.time.start.0);
        varint::encode_i64(&mut buf, bad.episode.time.end.0);
        encode_annotations(&mut buf, &bad.episode.annotations);
        assert!(decode_episode(&mut buf.as_slice()).is_err());

        // interval end before start — swap the timestamps
        bad.episode.range = 1..4;
        buf.clear();
        varint::encode_u64(&mut buf, bad.visit.0);
        encode_str(&mut buf, &bad.moving_object);
        varint::encode_u64(&mut buf, bad.predicate as u64);
        varint::encode_u64(&mut buf, bad.episode.range.start as u64);
        varint::encode_u64(&mut buf, bad.episode.range.end as u64);
        varint::encode_i64(&mut buf, bad.episode.time.end.0);
        varint::encode_i64(&mut buf, bad.episode.time.start.0);
        encode_annotations(&mut buf, &bad.episode.annotations);
        assert!(decode_episode(&mut buf.as_slice()).is_err());

        // and the well-formed encoding still round-trips
        buf.clear();
        let episode = sample_episode();
        encode_episode(&mut buf, &episode);
        assert_eq!(buf.len(), good_len);
        assert_eq!(decode_episode(&mut buf.as_slice()).unwrap(), episode);
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(matches!(
            decode_request(&mut [0xEEu8].as_slice()),
            Err(CodecError::BadTag(0xEE))
        ));
        assert!(matches!(
            decode_response(&mut [0xEEu8].as_slice()),
            Err(CodecError::BadTag(0xEE))
        ));
        assert!(matches!(
            decode_event(&mut [0xEEu8].as_slice()),
            Err(CodecError::BadTag(0xEE))
        ));
    }
}
