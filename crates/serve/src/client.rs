//! The blocking client.
//!
//! [`Client`] speaks the framed request/response protocol over one TCP
//! connection, lazily (re)established. It is **reconnect-safe on the
//! send side**: a request that fails while connecting or while writing
//! the frame is retried once on a fresh connection — at that point the
//! server cannot have observed it, so the retry is exact-once. A
//! failure while *reading the response* is **not** retried: the server
//! may already have applied the request (an ingest batch, a checkpoint),
//! and a blind replay would double it. Callers that want at-least-once
//! ingest semantics retry explicitly and deduplicate by visit key.
//!
//! One client drives one session; concurrency comes from running one
//! client per thread (`bench_serve` drives N of them against one
//! server).

use std::net::{SocketAddr, TcpStream};
use std::time::Duration as StdDuration;

use sitm_core::SemanticTrajectory;
use sitm_obs::health::HealthReport;
use sitm_obs::trace::{TraceContext, TraceTree};
use sitm_obs::MetricsSnapshot;
use sitm_query::wire::WireQuery;
use sitm_query::Predicate;
use sitm_stream::{EmittedEpisode, StreamEvent};

use crate::proto::{
    decode_response, encode_request, ExplainReport, Request, Response, ServerStats, StatsRollup,
};
use crate::wire::{read_frame, read_frame_or_idle, write_frame, write_traced_frame};
use crate::ServeError;

/// Client-side transport counters (see [`Client::stats`]). These count
/// what the *client* observed — complementary to the server-side
/// `serve.*` metrics fetched via [`Client::metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests attempted (each [`Client::call`], counted once even
    /// when the send is retried on a fresh connection).
    pub requests: u64,
    /// Fresh connections established after the initial one — send-side
    /// retries plus reads that tore the connection down.
    pub reconnects: u64,
    /// Requests refused locally for exceeding the frame bound (never
    /// reached the wire).
    pub oversized_refused: u64,
    /// Response frames received but not decodable.
    pub decode_errors: u64,
}

/// A blocking, reconnect-safe connection to a [`crate::Server`].
pub struct Client {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    stats: ClientStats,
}

impl Client {
    /// Connects eagerly (fails fast when the server is down).
    pub fn connect(addr: SocketAddr) -> Result<Client, ServeError> {
        let mut client = Client {
            addr,
            stream: None,
            stats: ClientStats::default(),
        };
        client.ensure_connected()?;
        // The eager connect is the baseline, not a reconnect.
        client.stats.reconnects = 0;
        Ok(client)
    }

    /// The server address this client targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This client's transport counters so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    fn ensure_connected(&mut self) -> Result<&mut TcpStream, ServeError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
            self.stats.reconnects += 1;
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// One request/response round trip (see the module docs for the
    /// retry contract).
    pub fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        self.call_inner(request, None)
    }

    /// Like [`Client::call`], but the request rides a traced envelope
    /// carrying `ctx` — the server adopts that trace id and parent span
    /// instead of generating fresh ones, so the resulting server-side
    /// trace tree joins the caller's trace (the federation fan-out
    /// contract; see `sitm_obs::trace::current_context`).
    pub fn call_traced(
        &mut self,
        request: &Request,
        ctx: TraceContext,
    ) -> Result<Response, ServeError> {
        self.call_inner(request, Some(ctx))
    }

    fn call_inner(
        &mut self,
        request: &Request,
        ctx: Option<TraceContext>,
    ) -> Result<Response, ServeError> {
        self.stats.requests += 1;
        let mut payload = Vec::new();
        encode_request(&mut payload, request);
        if payload.len() > sitm_store::segment::MAX_PAYLOAD as usize {
            self.stats.oversized_refused += 1;
            return Err(ServeError::Protocol(format!(
                "request of {} bytes exceeds the frame bound; split the batch",
                payload.len()
            )));
        }
        // Send side: a connect *or* write failure is retried once on a
        // fresh connection — in either case the server cannot have
        // observed the request yet.
        let mut attempt = 0;
        loop {
            attempt += 1;
            let sent = match self.ensure_connected() {
                Ok(stream) => match ctx {
                    Some(ctx) => write_traced_frame(stream, ctx, &payload).map_err(ServeError::Io),
                    None => write_frame(stream, &payload).map_err(ServeError::Io),
                },
                Err(err) => Err(err),
            };
            match sent {
                Ok(()) => break,
                Err(err) => {
                    self.stream = None;
                    if attempt >= 2 {
                        return Err(err);
                    }
                }
            }
        }
        // Receive side: never retried (the request may have applied).
        let stream = self.stream.as_mut().expect("connected above");
        let frame = match read_frame(stream) {
            Ok(frame) => frame,
            Err(err) => {
                self.stream = None;
                return Err(ServeError::Wire(err));
            }
        };
        let response = match decode_response(&mut frame.as_slice()) {
            Ok(response) => response,
            Err(err) => {
                self.stats.decode_errors += 1;
                return Err(err.into());
            }
        };
        Ok(response)
    }

    fn expect_error(response: Response) -> ServeError {
        match response {
            Response::Error(message) => ServeError::Remote(message),
            other => ServeError::Protocol(format!("unexpected response {other:?}")),
        }
    }

    /// Sends a batch of events into the server's engine. Returns the
    /// number of events routed.
    pub fn ingest_batch(&mut self, events: Vec<StreamEvent>) -> Result<u64, ServeError> {
        match self.call(&Request::IngestBatch(events))? {
            Response::Ingested { events } => Ok(events),
            other => Err(Self::expect_error(other)),
        }
    }

    /// Executes a query over the warehouse tier only.
    pub fn query(&mut self, query: &WireQuery) -> Result<Vec<SemanticTrajectory>, ServeError> {
        match self.call(&Request::Query(query.clone()))? {
            Response::Trajectories(rows) => Ok(rows),
            other => Err(Self::expect_error(other)),
        }
    }

    /// Executes a query over live ∪ warehouse (sorted/limited paging
    /// per the spec).
    pub fn query_federated(
        &mut self,
        query: &WireQuery,
    ) -> Result<Vec<SemanticTrajectory>, ServeError> {
        match self.call(&Request::QueryFederated(query.clone()))? {
            Response::Trajectories(rows) => Ok(rows),
            other => Err(Self::expect_error(other)),
        }
    }

    /// Plans a predicate server-side without executing it.
    pub fn explain(&mut self, predicate: &Predicate) -> Result<ExplainReport, ServeError> {
        match self.call(&Request::Explain(predicate.clone()))? {
            Response::Explained(report) => Ok(report),
            other => Err(Self::expect_error(other)),
        }
    }

    /// Fetches engine + warehouse counters (server-side totals; for
    /// this client's own transport counters see [`Client::stats`]).
    pub fn server_stats(&mut self) -> Result<ServerStats, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats { stats, .. } => Ok(stats),
            other => Err(Self::expect_error(other)),
        }
    }

    /// Fetches the counters together with the decode-free warehouse
    /// breakdowns: per-cell trajectory/stay/dwell totals and per-period
    /// occupancy, merged across every segment's rollup frame and the
    /// live tier.
    pub fn server_stats_with_rollup(&mut self) -> Result<(ServerStats, StatsRollup), ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats { stats, rollup } => Ok((stats, rollup)),
            other => Err(Self::expect_error(other)),
        }
    }

    /// Fetches the server's full metrics snapshot — every `engine.*`,
    /// `flush.*`, `store.*`, `query.*`, and `serve.*` instrument plus
    /// the slow-query log.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ServeError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(snapshot) => Ok(snapshot),
            other => Err(Self::expect_error(other)),
        }
    }

    /// Spills the engine's finished backlog into the warehouse.
    /// Returns `(spilled, warehouse_trajectories, manifest_sequence)`.
    pub fn checkpoint(&mut self) -> Result<(u64, u64, u64), ServeError> {
        match self.call(&Request::Checkpoint)? {
            Response::Checkpointed {
                spilled,
                warehouse_trajectories,
                manifest_sequence,
            } => Ok((spilled, warehouse_trajectories, manifest_sequence)),
            other => Err(Self::expect_error(other)),
        }
    }

    /// Polls the server's liveness summary: uptime, epoch, tier lag,
    /// session load, ingest rate. Cheap on both sides.
    pub fn health(&mut self) -> Result<HealthReport, ServeError> {
        match self.call(&Request::Health)? {
            Response::Health(report) => Ok(report),
            other => Err(Self::expect_error(other)),
        }
    }

    /// Fetches the server's most recent `limit` trace trees, oldest
    /// first (empty when tracing is disabled server-side).
    pub fn traces(&mut self, limit: u64) -> Result<Vec<TraceTree>, ServeError> {
        match self.call(&Request::Trace { limit })? {
            Response::Traces(trees) => Ok(trees),
            other => Err(Self::expect_error(other)),
        }
    }

    /// Requests a graceful server shutdown (warehouse flushed before
    /// the acknowledgement). The connection is closed afterwards.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => {
                self.stream = None;
                Ok(())
            }
            other => Err(Self::expect_error(other)),
        }
    }
}

/// One pushed notification: the epoch whose ingest barrier drained the
/// episodes, and the episodes the subscription's predicate did not
/// provably reject.
pub type Notification = (u64, Vec<EmittedEpisode>);

/// A continuous-query subscription on its own dedicated connection.
///
/// Unlike [`Client`], a `Subscriber` receives **unsolicited**
/// [`Response::Notification`] frames, so it never shares a connection
/// with request/response traffic: create it alongside a `Client`, not
/// from one. Dropping a `Subscriber` without [`Subscriber::unsubscribe`]
/// closes the connection; the server then re-injects any undelivered
/// episodes into its pending pool, so nothing is lost — the next
/// subscriber (or this one, reconnecting) sees them in its first
/// barriers. The one loss path is falling behind the server's bounded
/// per-subscriber queue, which surfaces here as [`ServeError::Remote`]
/// from [`Subscriber::poll`] ("subscription lagged…").
pub struct Subscriber {
    stream: TcpStream,
    epoch: u64,
}

impl Subscriber {
    /// Connects and registers `query` as this connection's continuous
    /// query. On success, every notification this subscription ever
    /// receives carries an epoch strictly greater than
    /// [`Subscriber::epoch`].
    pub fn subscribe(addr: SocketAddr, query: &WireQuery) -> Result<Subscriber, ServeError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut payload = Vec::new();
        encode_request(&mut payload, &Request::Subscribe(query.clone()));
        write_frame(&mut stream, &payload)?;
        let frame = read_frame(&mut stream).map_err(ServeError::Wire)?;
        match decode_response(&mut frame.as_slice())? {
            Response::Subscribed { epoch } => Ok(Subscriber { stream, epoch }),
            Response::Error(message) => Err(ServeError::Remote(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response to subscribe: {other:?}"
            ))),
        }
    }

    /// The engine epoch at registration.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Waits up to `timeout` for one pushed notification. `Ok(None)`
    /// means no notification arrived in time (the subscription is still
    /// live); a lagged-and-dropped subscription surfaces as
    /// [`ServeError::Remote`].
    pub fn poll(&mut self, timeout: StdDuration) -> Result<Option<Notification>, ServeError> {
        self.stream.set_read_timeout(Some(timeout))?;
        match read_frame_or_idle(&mut self.stream) {
            Ok(None) => Ok(None),
            Ok(Some(frame)) => match decode_response(&mut frame.as_slice())? {
                Response::Notification { epoch, episodes } => Ok(Some((epoch, episodes))),
                Response::Error(message) => Err(ServeError::Remote(message)),
                other => Err(ServeError::Protocol(format!(
                    "unexpected frame on subscription: {other:?}"
                ))),
            },
            Err(err) => Err(ServeError::Wire(err)),
        }
    }

    /// Deregisters the continuous query, draining notifications still
    /// queued server-side (returned in order) until the acknowledgement.
    pub fn unsubscribe(mut self) -> Result<Vec<Notification>, ServeError> {
        let mut payload = Vec::new();
        encode_request(&mut payload, &Request::Unsubscribe);
        write_frame(&mut self.stream, &payload)?;
        self.stream.set_read_timeout(None)?;
        let mut drained = Vec::new();
        loop {
            let frame = read_frame(&mut self.stream).map_err(ServeError::Wire)?;
            match decode_response(&mut frame.as_slice())? {
                Response::Notification { epoch, episodes } => drained.push((epoch, episodes)),
                Response::Unsubscribed => return Ok(drained),
                Response::Error(message) => return Err(ServeError::Remote(message)),
                other => {
                    return Err(ServeError::Protocol(format!(
                        "unexpected frame draining unsubscribe: {other:?}"
                    )))
                }
            }
        }
    }
}
