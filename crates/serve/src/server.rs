//! The concurrent ingest + query server.
//!
//! ## Architecture
//!
//! ```text
//!   clients ──TCP──▶ listener thread ──bounded queue──▶ session workers
//!                                                          │ (pool of N)
//!                                          frame ⇄ request │
//!                                                          ▼
//!                                              ┌─────── Core (Mutex) ───────┐
//!                                              │ ParallelEngine   (ingest,  │
//!                                              │   live_snapshot, stats)    │
//!                                              │ Flusher → SegmentedDb      │
//!                                              │   (checkpoint, queries)    │
//!                                              └────────────────────────────┘
//! ```
//!
//! * **Listener** — one thread accepting connections and handing each
//!   socket to a **bounded** session queue (`std::sync::mpsc::sync_channel`,
//!   the same bounded-channel backpressure idiom the parallel engine's
//!   router uses): when every session worker is busy and the backlog is
//!   full, `accept`ed clients wait in the queue send rather than
//!   ballooning threads.
//! * **Session workers** — a fixed pool. Each worker serves one
//!   connection at a time: read frame → decode → execute against the
//!   shared core → encode → write frame, until the client closes
//!   (or a graceful shutdown drains it). A malformed or torn frame is a
//!   **per-session** failure: the worker answers with
//!   [`Response::Error`] when the transport still works, closes that
//!   one connection, and moves on — the listener and every other
//!   session stay up (`tests/wire_torture.rs` tears frames at every
//!   byte offset to pin this).
//! * **Core** — the shared pipeline state: one work-stealing
//!   [`ParallelEngine`] (itself internally concurrent) and the
//!   [`Flusher`]-fed [`sitm_query::SegmentedDb`] warehouse. Sessions
//!   serialize on the core mutex per *request*; the engine's own worker
//!   pool runs event application in parallel underneath it.
//! * **Shutdown** — a [`Request::Shutdown`] spills the finished backlog
//!   into the warehouse (durable), acknowledges, then flips the shared
//!   flag and nudges the listener awake with a loop-back connection.
//!   The listener stops accepting; sessions notice the flag at their
//!   next idle poll (sockets carry a read timeout) or after their
//!   in-flight request and close; [`Server::join`] returns once every
//!   thread is down.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration as StdDuration;

use sitm_query::{Predicate, SegmentedDb, TrajectorySource};
use sitm_store::warehouse::WarehouseConfig;
use sitm_stream::{EngineConfig, Flusher, ParallelEngine};

use crate::proto::{
    decode_request, encode_response, ExplainReport, Request, Response, ServerStats, WirePlan,
};
use crate::wire::{read_frame_or_idle, write_frame, WireError};
use crate::ServeError;

/// Server construction parameters.
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port — the
    /// test/bench default).
    pub bind: SocketAddr,
    /// Engine configuration for the shared [`ParallelEngine`]. The
    /// server forces `with_warehouse()` on it (live queries + finished
    /// retention) — the full pipeline is the point of serving.
    pub engine: EngineConfig,
    /// Directory of the warehouse tier ([`SegmentedDb`]).
    pub warehouse_dir: PathBuf,
    /// Warehouse configuration (manifest policy, compaction fanout).
    pub warehouse: WarehouseConfig,
    /// Session worker threads (concurrent connections served; min 1).
    pub sessions: usize,
    /// Accepted connections queued beyond the busy workers before the
    /// listener itself blocks (min 1).
    pub backlog: usize,
    /// Finished visits to accumulate before a `Checkpoint` spill
    /// produces a segment (the [`Flusher::with_min_batch`] knob).
    pub flush_batch: usize,
    /// How often an idle session polls the shutdown flag (doubles as
    /// the per-read socket timeout).
    pub idle_poll: StdDuration,
}

impl ServerConfig {
    /// A config with the given engine and warehouse directory, an
    /// ephemeral loopback port, and moderate defaults (4 session
    /// workers, 16-connection backlog, spill every non-empty
    /// checkpoint, 25 ms idle poll).
    pub fn new(engine: EngineConfig, warehouse_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            engine,
            warehouse_dir: warehouse_dir.into(),
            warehouse: WarehouseConfig::default(),
            sessions: 4,
            backlog: 16,
            flush_batch: 1,
            idle_poll: StdDuration::from_millis(25),
        }
    }

    /// Overrides the session worker count.
    #[must_use]
    pub fn with_sessions(mut self, sessions: usize) -> ServerConfig {
        self.sessions = sessions;
        self
    }

    /// Overrides the accept backlog bound.
    #[must_use]
    pub fn with_backlog(mut self, backlog: usize) -> ServerConfig {
        self.backlog = backlog;
        self
    }

    /// Overrides the checkpoint spill batch threshold.
    #[must_use]
    pub fn with_flush_batch(mut self, n: usize) -> ServerConfig {
        self.flush_batch = n;
        self
    }
}

/// The shared pipeline state every session executes against.
struct Core {
    engine: ParallelEngine,
    flusher: Flusher,
}

/// State shared by the listener, the workers, and the handle.
struct Shared {
    core: Mutex<Core>,
    shutdown: AtomicBool,
    sessions_accepted: AtomicU64,
    /// The bound address, kept so any thread can nudge a blocked
    /// `accept` awake after flipping the shutdown flag.
    addr: SocketAddr,
}

/// A running server: listener + session-worker pool around one shared
/// ingest→query pipeline. Dropping without [`Server::join`] still shuts
/// the threads down (best-effort); the graceful path is a client
/// [`Request::Shutdown`] followed by `join`.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, opens (or recovers) the warehouse, spawns the engine and
    /// the thread pool, and starts accepting.
    pub fn start(config: ServerConfig) -> Result<Server, ServeError> {
        let engine_config = config.engine.with_warehouse();
        let engine = ParallelEngine::new(engine_config)?;
        let (db, _report) = SegmentedDb::open(&config.warehouse_dir, config.warehouse)?;
        let flusher = Flusher::new(db).with_min_batch(config.flush_batch);

        let listener = TcpListener::bind(config.bind)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            core: Mutex::new(Core { engine, flusher }),
            shutdown: AtomicBool::new(false),
            sessions_accepted: AtomicU64::new(0),
            addr,
        });

        let (tx, rx) = sync_channel::<TcpStream>(config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let idle_poll = config.idle_poll;
        let workers = (0..config.sessions.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("sitm-session-{i}"))
                    .spawn(move || worker_loop(&shared, &rx, idle_poll))
                    .expect("spawn session worker")
            })
            .collect();

        let listener_shared = Arc::clone(&shared);
        let listener_handle = std::thread::Builder::new()
            .name("sitm-listener".into())
            .spawn(move || listener_loop(listener, listener_shared, tx))
            .expect("spawn listener");

        Ok(Server {
            addr,
            shared,
            listener: Some(listener_handle),
            workers,
        })
    }

    /// The bound address (with the real port when `bind` used port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown from the server side (the in-process twin of a
    /// client's [`Request::Shutdown`]): flushes the warehouse, stops
    /// the listener, lets sessions drain.
    pub fn shutdown(&self) {
        {
            let mut core = self.shared.core.lock().unwrap_or_else(|p| p.into_inner());
            let Core { engine, flusher } = &mut *core;
            let _ = flusher.force(engine);
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        wake_listener(self.addr);
    }

    /// Waits for the listener and every session worker to finish (i.e.
    /// for a shutdown to complete and the sessions to drain), then
    /// runs one final warehouse flush: ingest batches acknowledged
    /// during the drain window (a session finishing its in-flight
    /// request *after* the shutdown handler's flush) land after the
    /// workers are down, so the post-drain flush is what makes every
    /// acknowledged closed visit durable.
    pub fn join(mut self) -> Result<(), ServeError> {
        if let Some(handle) = self.listener.take() {
            handle.join().map_err(|_| ServeError::WorkerPanicked)?;
        }
        for handle in self.workers.drain(..) {
            handle.join().map_err(|_| ServeError::WorkerPanicked)?;
        }
        flush_final(&self.shared);
        Ok(())
    }
}

/// The post-drain flush shared by [`Server::join`] and `Drop`: with
/// every session worker stopped, nothing can ingest concurrently, so
/// this cut is the server's final durable state.
fn flush_final(shared: &Shared) {
    let mut core = shared.core.lock().unwrap_or_else(|p| p.into_inner());
    let Core { engine, flusher } = &mut *core;
    let _ = flusher.force(engine);
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.listener.is_none() && self.workers.is_empty() {
            return; // joined already
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        wake_listener(self.addr);
        if let Some(handle) = self.listener.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        flush_final(&self.shared);
    }
}

/// Nudges a blocked `accept` so the listener re-checks the shutdown
/// flag (the standard std-net trick — there is no poll/select in std).
fn wake_listener(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

fn listener_loop(listener: TcpListener, shared: Arc<Shared>, tx: SyncSender<TcpStream>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late client): refuse.
                    drop(stream);
                    break;
                }
                shared.sessions_accepted.fetch_add(1, Ordering::Relaxed);
                // Bounded hand-off: blocks when workers + backlog are
                // saturated (backpressure on accept, not on memory).
                if tx.send(stream).is_err() {
                    break; // workers are gone
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure (EMFILE etc.): keep serving.
            }
        }
    }
    // Dropping `tx` lets the workers drain the queue and exit.
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>, idle_poll: StdDuration) {
    loop {
        let stream = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        match stream {
            Ok(stream) => run_session(shared, stream, idle_poll),
            Err(_) => break, // listener closed the queue and it's drained
        }
    }
}

/// Serves one connection until the client closes, a fatal transport
/// error occurs, or shutdown drains it. Malformed input never panics
/// and never takes the server down — worst case, this one session ends.
fn run_session(shared: &Shared, mut stream: TcpStream, idle_poll: StdDuration) {
    let _ = stream.set_read_timeout(Some(idle_poll));
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_frame_or_idle(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                // Idle: between frames is the safe drain point.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(WireError::Closed) => return,
            Err(err) => {
                // Torn or corrupt frame: answer if the transport still
                // works, then drop this session only.
                let _ = respond(&mut stream, &Response::Error(format!("bad frame: {err}")));
                return;
            }
        };
        let request = match decode_request(&mut payload.as_slice()) {
            Ok(request) => request,
            Err(err) => {
                // A well-framed but undecodable payload: the stream is
                // still in sync (framing is self-delimiting), so the
                // session survives the error response.
                if respond(&mut stream, &Response::Error(format!("bad request: {err}"))).is_err() {
                    return;
                }
                continue;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        let response = handle_request(shared, request);
        if respond(&mut stream, &response).is_err() {
            return;
        }
        if is_shutdown {
            shared.shutdown.store(true, Ordering::SeqCst);
            wake_listener(shared.addr);
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // drain: finish the in-flight request, then close
        }
    }
}

fn respond(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut buf = Vec::new();
    encode_response(&mut buf, response);
    if buf.len() > sitm_store::segment::MAX_PAYLOAD as usize {
        // A result set too large for one frame must not kill the
        // session (or, worse, panic the worker): downgrade to an
        // in-band error telling the caller to page.
        buf.clear();
        encode_response(
            &mut buf,
            &Response::Error(
                "response exceeds the frame bound; narrow the query or add a limit/offset page"
                    .into(),
            ),
        );
    }
    write_frame(stream, &buf)?;
    stream.flush()
}

/// Executes one request against the shared core. Every failure becomes
/// a [`Response::Error`]; nothing here may panic on bad input.
fn handle_request(shared: &Shared, request: Request) -> Response {
    let mut core = shared.core.lock().unwrap_or_else(|p| p.into_inner());
    let Core { engine, flusher } = &mut *core;
    match request {
        Request::IngestBatch(events) => {
            let n = events.len() as u64;
            engine.ingest_all(events);
            Response::Ingested { events: n }
        }
        Request::Query(wire_query) => {
            let query = wire_query.to_query();
            Response::Trajectories(
                query.execute_federated(&[flusher.db() as &dyn TrajectorySource]),
            )
        }
        Request::QueryFederated(wire_query) => {
            let query = wire_query.to_query();
            let snapshot = engine.live_snapshot();
            Response::Trajectories(query.execute_federated(&[
                &snapshot as &dyn TrajectorySource,
                flusher.db() as &dyn TrajectorySource,
            ]))
        }
        Request::Explain(predicate) => {
            Response::Explained(explain(engine, flusher.db(), &predicate))
        }
        Request::Stats => {
            let stats = engine.stats();
            Response::Stats(ServerStats {
                events: stats.events,
                presences: stats.presences,
                visits_opened: stats.visits_opened,
                visits_closed: stats.visits_closed,
                episodes: stats.episodes,
                anomalies: stats.anomalies.total(),
                open_visits: stats.open_visits,
                warehouse_trajectories: flusher.db().len() as u64,
                warehouse_segments: flusher.db().segments().len() as u64,
                sessions: shared.sessions_accepted.load(Ordering::Relaxed),
            })
        }
        Request::Checkpoint => match flusher.force(engine) {
            Ok(spilled) => Response::Checkpointed {
                spilled: spilled as u64,
                warehouse_trajectories: flusher.db().len() as u64,
                manifest_sequence: flusher.db().store().sequence(),
            },
            Err(err) => Response::Error(format!("checkpoint failed: {err}")),
        },
        Request::Shutdown => match flusher.force(engine) {
            // The session loop flips the flag *after* this response is
            // on the wire, so the acknowledgement always arrives.
            Ok(_) => Response::ShuttingDown,
            Err(err) => Response::Error(format!("shutdown flush failed: {err}")),
        },
    }
}

/// Plans `predicate` over live ∪ warehouse: per-source access paths
/// (the federation's `federated_explain`) plus the warehouse's
/// zone-map / Bloom pruning counters ([`SegmentedDb::explain`]).
fn explain(engine: &mut ParallelEngine, db: &SegmentedDb, predicate: &Predicate) -> ExplainReport {
    let snapshot = engine.live_snapshot();
    let sources: [&dyn TrajectorySource; 2] = [&snapshot, db];
    let plans: Vec<WirePlan> = sitm_query::federated_explain(predicate, &sources)
        .into_iter()
        .map(|plan| WirePlan {
            candidates: match plan.access {
                sitm_query::AccessPath::FullScan => None,
                sitm_query::AccessPath::IndexCandidates { candidates } => Some(candidates as u64),
            },
            total: plan.total as u64,
        })
        .collect();
    let segmented = db.explain(predicate);
    ExplainReport {
        plans,
        segments: segmented.segments as u64,
        zone_pruned: segmented.pruned as u64,
        bloom_pruned: segmented.bloom_pruned as u64,
    }
}
