//! The concurrent ingest + query server.
//!
//! ## Architecture
//!
//! ```text
//!   clients ──TCP──▶ listener thread ──bounded queue──▶ session workers
//!                                                          │ (pool of N)
//!                                          frame ⇄ request │
//!                                                          ▼
//!                      ┌─────── Core (Mutex) ────────┐ ┌─ Warehouse (RwLock) ─┐
//!                      │ ParallelEngine (ingest,     │ │ Flusher → SegmentedDb│
//!                      │   epoch, cached snapshot,   │ │  (readers share;     │
//!                      │   drain → subscriptions)    │ │   checkpoint writes) │
//!                      └─────────────────────────────┘ └──────────────────────┘
//! ```
//!
//! * **Listener** — one thread accepting connections and handing each
//!   socket to a **bounded** session queue (`std::sync::mpsc::sync_channel`,
//!   the same bounded-channel backpressure idiom the parallel engine's
//!   router uses): when every session worker is busy and the backlog is
//!   full, `accept`ed clients wait in the queue send rather than
//!   ballooning threads.
//! * **Session workers** — a fixed pool. Each worker serves one
//!   connection at a time: read frame → decode → execute against the
//!   shared core → encode → write frame, until the client closes
//!   (or a graceful shutdown drains it). A malformed or torn frame is a
//!   **per-session** failure: the worker answers with
//!   [`Response::Error`] when the transport still works, closes that
//!   one connection, and moves on — the listener and every other
//!   session stay up (`tests/wire_torture.rs` tears frames at every
//!   byte offset to pin this).
//! * **Core + warehouse** — the mutable pipeline state splits in two.
//!   The core mutex guards the work-stealing [`ParallelEngine`]; the
//!   [`Flusher`]-fed [`sitm_query::SegmentedDb`] warehouse sits behind
//!   its own `RwLock`, shared by query readers and written only by
//!   checkpoints. Only ingest, checkpoint, shutdown, and subscription
//!   registration serialize on the core mutex: the query/explain ops
//!   clone the engine's **epoch-cached** `Arc<LiveSnapshot>` and
//!   acquire a warehouse read guard under the lock, then release it
//!   and evaluate outside — concurrent queries run truly in parallel,
//!   and back-to-back queries between ingest barriers share one
//!   snapshot (`serve.snapshot_cache_hits`).
//! * **Subscriptions** — a session can register a continuous query.
//!   While at least one subscription exists, every ingest barrier
//!   drains the engine's emitted-episode backlog, stamps the new
//!   epoch, and fans the delta out to each subscriber whose predicate
//!   does not provably reject it (`Predicate::delta_may_match`), into
//!   a **bounded** per-subscriber queue. The owning session flushes
//!   its queue as [`Response::Notification`] frames between requests
//!   and at every idle poll. A subscriber that falls behind the bound
//!   is sent an in-band [`Response::Error`] and dropped (the session
//!   survives); a subscriber that disconnects with undelivered
//!   episodes has them re-injected into the engine's pending pool so
//!   nothing is lost.
//! * **Shutdown** — a [`Request::Shutdown`] spills the finished backlog
//!   into the warehouse (durable), acknowledges, then flips the shared
//!   flag and nudges the listener awake with a loop-back connection.
//!   The listener stops accepting; sessions notice the flag at their
//!   next idle poll (sockets carry a read timeout) or after their
//!   in-flight request and close; [`Server::join`] returns once every
//!   thread is down.

use std::collections::HashMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

use sitm_obs::health::HealthReport;
use sitm_obs::timeseries::{rate_per_sec, Sampler, DEFAULT_SAMPLE_PERIOD, DEFAULT_SERIES_CAPACITY};
use sitm_obs::trace::{self, TraceContext, TraceRecorder, DEFAULT_TRACE_CAPACITY};
use sitm_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use sitm_query::{Predicate, SegmentedDb, TrajectorySource};
use sitm_store::segment::FRAME_OVERHEAD;
use sitm_store::warehouse::{SegmentRollup, WarehouseConfig, DEFAULT_ROLLUP_PERIOD_SECONDS};
use sitm_stream::{EmittedEpisode, EngineConfig, Flusher, LiveSnapshot, ParallelEngine};

use crate::proto::{
    decode_request, encode_response, ExplainReport, Request, Response, ServerStats, StatsRollup,
    WirePlan,
};
use crate::wire::{read_message_or_idle, write_frame, WireError};
use crate::ServeError;

/// Server construction parameters.
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port — the
    /// test/bench default).
    pub bind: SocketAddr,
    /// Engine configuration for the shared [`ParallelEngine`]. The
    /// server forces `with_warehouse()` on it (live queries + finished
    /// retention) — the full pipeline is the point of serving.
    pub engine: EngineConfig,
    /// Directory of the warehouse tier ([`SegmentedDb`]).
    pub warehouse_dir: PathBuf,
    /// Warehouse configuration (manifest policy, compaction fanout).
    pub warehouse: WarehouseConfig,
    /// Session worker threads (concurrent connections served; min 1).
    pub sessions: usize,
    /// Accepted connections queued beyond the busy workers before the
    /// listener itself blocks (min 1).
    pub backlog: usize,
    /// Finished visits to accumulate before a `Checkpoint` spill
    /// produces a segment (the [`Flusher::with_min_batch`] knob).
    pub flush_batch: usize,
    /// How often an idle session polls the shutdown flag (doubles as
    /// the per-read socket timeout).
    pub idle_poll: StdDuration,
    /// The registry the whole pipeline records into (engine, flusher,
    /// warehouse, sessions) and the `Metrics` op snapshots. `None` (the
    /// default) gives each server a **fresh** registry, so concurrent
    /// servers in one process never cross-contaminate counters.
    pub metrics: Option<MetricsRegistry>,
    /// Requests at or above this duration enter the slow-query ring
    /// buffer (queryable via the `Metrics` op). `None` disables it.
    pub slow_query_threshold: Option<StdDuration>,
    /// Trace trees the server's [`TraceRecorder`] retains for the
    /// `Trace` op. `0` disables tracing entirely: requests skip the
    /// span machinery and `Trace` serves an empty list.
    pub trace_capacity: usize,
    /// The time-series sampler: `(period, frames retained)`. `None`
    /// disables it (Health then reports a 0 ingest rate).
    pub sampler: Option<(StdDuration, usize)>,
}

impl ServerConfig {
    /// A config with the given engine and warehouse directory, an
    /// ephemeral loopback port, and moderate defaults (4 session
    /// workers, 16-connection backlog, spill every non-empty
    /// checkpoint, 25 ms idle poll).
    pub fn new(engine: EngineConfig, warehouse_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            engine,
            warehouse_dir: warehouse_dir.into(),
            warehouse: WarehouseConfig::default(),
            sessions: 4,
            backlog: 16,
            flush_batch: 1,
            idle_poll: StdDuration::from_millis(25),
            metrics: None,
            slow_query_threshold: None,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            sampler: Some((DEFAULT_SAMPLE_PERIOD, DEFAULT_SERIES_CAPACITY)),
        }
    }

    /// Overrides the session worker count.
    #[must_use]
    pub fn with_sessions(mut self, sessions: usize) -> ServerConfig {
        self.sessions = sessions;
        self
    }

    /// Overrides the accept backlog bound.
    #[must_use]
    pub fn with_backlog(mut self, backlog: usize) -> ServerConfig {
        self.backlog = backlog;
        self
    }

    /// Overrides the checkpoint spill batch threshold.
    #[must_use]
    pub fn with_flush_batch(mut self, n: usize) -> ServerConfig {
        self.flush_batch = n;
        self
    }

    /// Records the pipeline's instruments into `registry` instead of a
    /// fresh per-server one (e.g. to share a registry with in-process
    /// components, or to inspect it without the wire op).
    #[must_use]
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> ServerConfig {
        self.metrics = Some(registry);
        self
    }

    /// Enables the slow-query log: requests taking at least `threshold`
    /// are retained (op, duration, request rendering) in a bounded ring
    /// buffer served by the `Metrics` op.
    #[must_use]
    pub fn with_slow_query_threshold(mut self, threshold: StdDuration) -> ServerConfig {
        self.slow_query_threshold = Some(threshold);
        self
    }

    /// Overrides the trace ring capacity (`0` turns tracing off).
    #[must_use]
    pub fn with_trace_capacity(mut self, capacity: usize) -> ServerConfig {
        self.trace_capacity = capacity;
        self
    }

    /// Overrides the time-series sampler's period and retained frames.
    #[must_use]
    pub fn with_sampler(mut self, period: StdDuration, capacity: usize) -> ServerConfig {
        self.sampler = Some((period, capacity));
        self
    }

    /// Disables the time-series sampler.
    #[must_use]
    pub fn without_sampler(mut self) -> ServerConfig {
        self.sampler = None;
        self
    }
}

/// Wire-op names, indexed by [`op_index`] — the suffixes of the
/// `serve.requests.{op}` counters and `serve.handle_ns.{op}` histograms.
const OP_NAMES: [&str; 12] = [
    "ingest",
    "query",
    "query_federated",
    "explain",
    "stats",
    "checkpoint",
    "shutdown",
    "metrics",
    "subscribe",
    "unsubscribe",
    "health",
    "trace",
];

fn op_index(request: &Request) -> usize {
    match request {
        Request::IngestBatch(_) => 0,
        Request::Query(_) => 1,
        Request::QueryFederated(_) => 2,
        Request::Explain(_) => 3,
        Request::Stats => 4,
        Request::Checkpoint => 5,
        Request::Shutdown => 6,
        Request::Metrics => 7,
        Request::Subscribe(_) => 8,
        Request::Unsubscribe => 9,
        Request::Health => 10,
        Request::Trace { .. } => 11,
    }
}

/// Per-op instrument pair: request count + handle-time distribution.
struct OpMetrics {
    requests: Arc<Counter>,
    handle_ns: Arc<Histogram>,
}

/// Serve-tier instrument handles (`serve.*` metric names), resolved
/// once at startup so the per-request path pays atomics and two
/// `Instant::now()` reads.
struct ServeMetrics {
    /// The registry the whole pipeline shares — what `Metrics` serves.
    registry: MetricsRegistry,
    ops: Vec<OpMetrics>,
    /// `Response::Error`s sent (any op).
    errors: Arc<Counter>,
    /// Torn/corrupt frames that ended a session (per-session failure
    /// containment: exactly one per torn connection).
    frame_errors: Arc<Counter>,
    /// Well-framed payloads that failed request decoding (the session
    /// survives these).
    bad_requests: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    sessions_active: Arc<Gauge>,
    /// Federated-query latency decomposition: cutting the live
    /// snapshot vs evaluating against it + the warehouse.
    snapshot_build_ns: Arc<Histogram>,
    evaluate_ns: Arc<Histogram>,
    /// `Explain`'s snapshot acquisition, recorded apart from the query
    /// path so plans don't pollute `serve.snapshot_build_ns`.
    explain_snapshot_ns: Arc<Histogram>,
    /// Epoch-cache outcomes for query/explain snapshot acquisitions.
    snapshot_cache_hits: Arc<Counter>,
    snapshot_cache_misses: Arc<Counter>,
    /// Continuous queries registered right now.
    subscriptions_active: Arc<Gauge>,
    /// Live [`Subscription`] objects (drop-guard maintained, the
    /// `sessions_active` idiom): stays high while an unregistered
    /// subscription's queue is still being flushed, so Health sees the
    /// push tier's true load.
    subscribers_active: Arc<Gauge>,
    /// Notification frames written to subscribers.
    notifications_pushed: Arc<Counter>,
    /// Subscribers dropped for falling behind their queue bound.
    subscribers_dropped: Arc<Counter>,
}

impl ServeMetrics {
    fn bind(registry: MetricsRegistry) -> ServeMetrics {
        let ops = OP_NAMES
            .iter()
            .map(|name| OpMetrics {
                requests: registry.counter(&format!("serve.requests.{name}")),
                handle_ns: registry.histogram(&format!("serve.handle_ns.{name}")),
            })
            .collect();
        ServeMetrics {
            ops,
            errors: registry.counter("serve.errors"),
            frame_errors: registry.counter("serve.frame_errors"),
            bad_requests: registry.counter("serve.bad_requests"),
            bytes_in: registry.counter("serve.bytes_in"),
            bytes_out: registry.counter("serve.bytes_out"),
            sessions_active: registry.gauge("serve.sessions_active"),
            snapshot_build_ns: registry.histogram("serve.snapshot_build_ns"),
            evaluate_ns: registry.histogram("serve.evaluate_ns"),
            explain_snapshot_ns: registry.histogram("serve.explain_snapshot_ns"),
            snapshot_cache_hits: registry.counter("serve.snapshot_cache_hits"),
            snapshot_cache_misses: registry.counter("serve.snapshot_cache_misses"),
            subscriptions_active: registry.gauge("serve.subscriptions_active"),
            subscribers_active: registry.gauge("serve.subscribers_active"),
            notifications_pushed: registry.counter("serve.notifications_pushed"),
            subscribers_dropped: registry.counter("serve.subscribers_dropped"),
            registry,
        }
    }
}

/// The engine side of the pipeline — everything that mutates per
/// event. Queries never hold this lock while evaluating: they clone
/// the engine's epoch-cached snapshot `Arc` and leave.
struct Core {
    engine: ParallelEngine,
}

/// Episodes a single subscriber may hold queued before the server
/// declares it lagged, drops the subscription, and tells it so in-band.
const SUBSCRIBER_QUEUE_BOUND: usize = 4096;

/// Undelivered notification batches for one subscriber.
#[derive(Default)]
struct SubscriptionQueue {
    /// `(epoch, episodes)` batches in drain order.
    batches: Vec<(u64, Vec<EmittedEpisode>)>,
    /// Episodes across all queued batches (the bound's unit).
    queued: usize,
    /// The queue overflowed: contents were discarded and the owning
    /// session must error + drop the subscription.
    lagged: bool,
}

/// One session's continuous query, shared between the ingest path
/// (producer) and the owning session thread (consumer). Its lifetime
/// maintains `serve.subscribers_active` drop-guard style: incremented
/// at construction, decremented when the last `Arc` drops — so the
/// gauge counts subscriptions that still exist anywhere (registered,
/// or unregistered but draining), the way `sessions_active` counts
/// sockets rather than registrations.
struct Subscription {
    predicate: Predicate,
    queue: Mutex<SubscriptionQueue>,
    active: Arc<Gauge>,
}

impl Subscription {
    fn new(predicate: Predicate, active: Arc<Gauge>) -> Subscription {
        active.add(1);
        Subscription {
            predicate,
            queue: Mutex::new(SubscriptionQueue::default()),
            active,
        }
    }

    /// Takes every queued batch (and the lagged flag) in one swap.
    fn take_batches(&self) -> (Vec<(u64, Vec<EmittedEpisode>)>, bool) {
        let mut queue = self.queue.lock().unwrap_or_else(|p| p.into_inner());
        queue.queued = 0;
        (std::mem::take(&mut queue.batches), queue.lagged)
    }

    /// Flattens the undelivered episodes for re-injection.
    fn take_episodes(&self) -> Vec<EmittedEpisode> {
        let (batches, _) = self.take_batches();
        batches.into_iter().flat_map(|(_, eps)| eps).collect()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.active.add(-1);
    }
}

/// State shared by the listener, the workers, and the handle.
struct Shared {
    core: Mutex<Core>,
    /// The warehouse tier. Readers (query ops) share; checkpoint and
    /// shutdown flushes take the write side. Lock order is always
    /// core → warehouse when both are held.
    warehouse: RwLock<Flusher>,
    /// Registered continuous queries by session id. Lock order is
    /// core → subscriptions when both are held (the ingest fan-out).
    subscriptions: Mutex<HashMap<u64, Arc<Subscription>>>,
    shutdown: AtomicBool,
    sessions_accepted: AtomicU64,
    next_session_id: AtomicU64,
    /// The bound address, kept so any thread can nudge a blocked
    /// `accept` awake after flipping the shutdown flag.
    addr: SocketAddr,
    metrics: ServeMetrics,
    /// When the server started (Health's uptime origin).
    started: Instant,
    /// Finished span trees, served by the `Trace` op.
    recorder: TraceRecorder,
    /// The background metrics sampler, when enabled.
    sampler: Option<Sampler>,
    /// Milliseconds after `started` at which the last successful
    /// checkpoint (or shutdown flush) committed; `u64::MAX` = never.
    last_checkpoint_ms: AtomicU64,
    /// `engine.queue_depth.w{i}` handles, resolved once, in worker
    /// order — Health's per-worker ingest-lag column.
    worker_queue_depths: Vec<Arc<Gauge>>,
}

/// A running server: listener + session-worker pool around one shared
/// ingest→query pipeline. Dropping without [`Server::join`] still shuts
/// the threads down (best-effort); the graceful path is a client
/// [`Request::Shutdown`] followed by `join`.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, opens (or recovers) the warehouse, spawns the engine and
    /// the thread pool, and starts accepting.
    pub fn start(config: ServerConfig) -> Result<Server, ServeError> {
        let registry = config.metrics.clone().unwrap_or_default();
        if let Some(threshold) = config.slow_query_threshold {
            registry.set_slow_threshold_ns(threshold.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        let engine_config = config
            .engine
            .with_warehouse()
            .with_metrics(registry.clone());
        let engine = ParallelEngine::new(engine_config)?;
        let (db, _report) = SegmentedDb::open(&config.warehouse_dir, config.warehouse)?;
        let db = db.with_metrics(&registry);
        let flusher = Flusher::new(db)
            .with_min_batch(config.flush_batch)
            .with_metrics(&registry);

        let worker_queue_depths = (0..engine.workers())
            .map(|i| registry.gauge(&format!("engine.queue_depth.w{i}")))
            .collect();
        let sampler = config
            .sampler
            .map(|(period, capacity)| Sampler::start(registry.clone(), period, capacity));

        let listener = TcpListener::bind(config.bind)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            core: Mutex::new(Core { engine }),
            warehouse: RwLock::new(flusher),
            subscriptions: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            sessions_accepted: AtomicU64::new(0),
            next_session_id: AtomicU64::new(0),
            addr,
            metrics: ServeMetrics::bind(registry),
            started: Instant::now(),
            recorder: TraceRecorder::new(config.trace_capacity),
            sampler,
            last_checkpoint_ms: AtomicU64::new(u64::MAX),
            worker_queue_depths,
        });

        let (tx, rx) = sync_channel::<TcpStream>(config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let idle_poll = config.idle_poll;
        let workers = (0..config.sessions.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("sitm-session-{i}"))
                    .spawn(move || worker_loop(&shared, &rx, idle_poll))
                    .expect("spawn session worker")
            })
            .collect();

        let listener_shared = Arc::clone(&shared);
        let listener_handle = std::thread::Builder::new()
            .name("sitm-listener".into())
            .spawn(move || listener_loop(listener, listener_shared, tx))
            .expect("spawn listener");

        Ok(Server {
            addr,
            shared,
            listener: Some(listener_handle),
            workers,
        })
    }

    /// The bound address (with the real port when `bind` used port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown from the server side (the in-process twin of a
    /// client's [`Request::Shutdown`]): flushes the warehouse, stops
    /// the listener, lets sessions drain.
    pub fn shutdown(&self) {
        flush_final(&self.shared);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        wake_listener(self.addr);
    }

    /// Waits for the listener and every session worker to finish (i.e.
    /// for a shutdown to complete and the sessions to drain), then
    /// runs one final warehouse flush: ingest batches acknowledged
    /// during the drain window (a session finishing its in-flight
    /// request *after* the shutdown handler's flush) land after the
    /// workers are down, so the post-drain flush is what makes every
    /// acknowledged closed visit durable.
    pub fn join(mut self) -> Result<(), ServeError> {
        if let Some(handle) = self.listener.take() {
            handle.join().map_err(|_| ServeError::WorkerPanicked)?;
        }
        for handle in self.workers.drain(..) {
            handle.join().map_err(|_| ServeError::WorkerPanicked)?;
        }
        flush_final(&self.shared);
        if let Some(sampler) = &self.shared.sampler {
            sampler.stop();
        }
        Ok(())
    }

    /// The server's trace recorder (e.g. to inspect trees in-process
    /// without the `Trace` wire op).
    pub fn recorder(&self) -> TraceRecorder {
        self.shared.recorder.clone()
    }

    /// The liveness report the `Health` op serves, built in-process.
    pub fn health(&self) -> HealthReport {
        build_health(&self.shared)
    }
}

/// The post-drain flush shared by [`Server::join`] and `Drop`: with
/// every session worker stopped, nothing can ingest concurrently, so
/// this cut is the server's final durable state.
fn flush_final(shared: &Shared) {
    // Lock order: core → warehouse (matches every dual-lock site).
    let mut core = shared.core.lock().unwrap_or_else(|p| p.into_inner());
    let mut warehouse = shared.warehouse.write().unwrap_or_else(|p| p.into_inner());
    let _ = warehouse.force(&mut core.engine);
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.listener.is_none() && self.workers.is_empty() {
            return; // joined already
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        wake_listener(self.addr);
        if let Some(handle) = self.listener.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        flush_final(&self.shared);
        if let Some(sampler) = &self.shared.sampler {
            sampler.stop();
        }
    }
}

/// Nudges a blocked `accept` so the listener re-checks the shutdown
/// flag (the standard std-net trick — there is no poll/select in std).
fn wake_listener(addr: SocketAddr) {
    let _ = TcpStream::connect(addr);
}

fn listener_loop(listener: TcpListener, shared: Arc<Shared>, tx: SyncSender<TcpStream>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late client): refuse.
                    drop(stream);
                    break;
                }
                shared.sessions_accepted.fetch_add(1, Ordering::Relaxed);
                // Bounded hand-off: blocks when workers + backlog are
                // saturated (backpressure on accept, not on memory).
                if tx.send(stream).is_err() {
                    break; // workers are gone
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure (EMFILE etc.): keep serving.
            }
        }
    }
    // Dropping `tx` lets the workers drain the queue and exit.
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>, idle_poll: StdDuration) {
    loop {
        let stream = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        match stream {
            Ok(stream) => run_session(shared, stream, idle_poll),
            Err(_) => break, // listener closed the queue and it's drained
        }
    }
}

/// One session's server-side state beyond the socket: its identity in
/// the subscription registry and its (at most one) continuous query.
struct SessionState {
    id: u64,
    subscription: Option<Arc<Subscription>>,
}

/// Serves one connection until the client closes, a fatal transport
/// error occurs, or shutdown drains it. Malformed input never panics
/// and never takes the server down — worst case, this one session ends.
fn run_session(shared: &Shared, mut stream: TcpStream, idle_poll: StdDuration) {
    let metrics = &shared.metrics;
    metrics.sessions_active.add(1);
    // Decrement on *every* exit path (early returns included).
    struct ActiveGuard<'a>(&'a Gauge);
    impl Drop for ActiveGuard<'_> {
        fn drop(&mut self) {
            self.0.add(-1);
        }
    }
    let _active = ActiveGuard(&metrics.sessions_active);
    let mut session = SessionState {
        id: shared.next_session_id.fetch_add(1, Ordering::Relaxed),
        subscription: None,
    };
    session_loop(shared, &mut stream, idle_poll, &mut session);
    teardown_session(shared, &mut session);
}

/// Unregisters a session's subscription (if any) and re-injects its
/// undelivered episodes into the engine's pending pool, so a
/// subscriber crash never loses drained episodes. A lagged queue was
/// already emptied — the slow-consumer contract is the one loss path.
fn teardown_session(shared: &Shared, session: &mut SessionState) {
    let Some(sub) = session.subscription.take() else {
        return;
    };
    {
        let mut subs = shared
            .subscriptions
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        subs.remove(&session.id);
    }
    shared.metrics.subscriptions_active.add(-1);
    // The registry entry is gone, so no producer can enqueue anymore:
    // this swap observes the queue's final state.
    let undelivered = sub.take_episodes();
    if !undelivered.is_empty() {
        let mut core = shared.core.lock().unwrap_or_else(|p| p.into_inner());
        core.engine.requeue_pending(undelivered);
    }
}

/// Writes every queued notification for this session's subscription,
/// then handles the lagged case: in-band error, drop the subscription
/// (no re-inject — the overflow already discarded the backlog), keep
/// the session. `Err` means the transport failed and the session ends.
fn flush_notifications(
    shared: &Shared,
    stream: &mut TcpStream,
    session: &mut SessionState,
) -> std::io::Result<()> {
    let Some(sub) = &session.subscription else {
        return Ok(());
    };
    let (batches, lagged) = sub.take_batches();
    for (epoch, episodes) in batches {
        shared.metrics.notifications_pushed.inc();
        respond(
            stream,
            &Response::Notification { epoch, episodes },
            &shared.metrics,
        )?;
    }
    if lagged {
        {
            let mut subs = shared
                .subscriptions
                .lock()
                .unwrap_or_else(|p| p.into_inner());
            subs.remove(&session.id);
        }
        session.subscription = None;
        shared.metrics.subscriptions_active.add(-1);
        shared.metrics.subscribers_dropped.inc();
        respond(
            stream,
            &Response::Error(
                "subscription lagged: the notification queue overflowed and was dropped; \
                 re-subscribe to resume"
                    .into(),
            ),
            &shared.metrics,
        )?;
    }
    Ok(())
}

fn session_loop(
    shared: &Shared,
    stream: &mut TcpStream,
    idle_poll: StdDuration,
    session: &mut SessionState,
) {
    let metrics = &shared.metrics;
    let _ = stream.set_read_timeout(Some(idle_poll));
    let _ = stream.set_nodelay(true);
    loop {
        let message = match read_message_or_idle(&mut *stream) {
            Ok(Some(message)) => message,
            Ok(None) => {
                // Idle: push queued notifications, then the safe
                // drain point between frames.
                if flush_notifications(shared, stream, session).is_err() {
                    return;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(WireError::Closed) => return,
            Err(err) => {
                // Torn or corrupt frame: answer if the transport still
                // works, then drop this session only. Exactly one
                // frame-error count per torn connection.
                metrics.frame_errors.inc();
                let _ = respond(
                    stream,
                    &Response::Error(format!("bad frame: {err}")),
                    metrics,
                );
                return;
            }
        };
        metrics
            .bytes_in
            .add((message.payload.len() + FRAME_OVERHEAD) as u64);
        let request = match decode_request(&mut message.payload.as_slice()) {
            Ok(request) => request,
            Err(err) => {
                // A well-framed but undecodable payload: the stream is
                // still in sync (framing is self-delimiting), so the
                // session survives the error response.
                metrics.bad_requests.inc();
                if respond(
                    stream,
                    &Response::Error(format!("bad request: {err}")),
                    metrics,
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        let op = op_index(&request);
        metrics.ops[op].requests.inc();
        // Render slow-log detail only when the log is armed — the
        // rendering (Debug of the request) is not hot-path free.
        let slow_armed = metrics.registry.slow_threshold_ns() < u64::MAX;
        let detail = slow_armed.then(|| {
            let mut s = format!("{request:?}");
            s.truncate(160);
            s
        });
        // The root span covers handle → notification flush → response
        // write; a context from a traced envelope is adopted (one trace
        // id across a federation fan-out) and gets the full detail-span
        // breakdown — that caller asked about this request — while
        // locally-generated traces sample detail 1-in-N. With tracing
        // disabled (capacity 0) `begin` returns `None` and every
        // child-span call below stays inert.
        let _root = match message.trace {
            Some(ctx) => shared.recorder.begin_detailed(OP_NAMES[op], ctx),
            None => shared
                .recorder
                .begin(OP_NAMES[op], TraceContext::generate()),
        };
        let started = Instant::now();
        let response = {
            let _handle = trace::child("handle");
            handle_request(shared, request, session)
        };
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        metrics.ops[op].handle_ns.record(elapsed_ns);
        if slow_armed {
            metrics
                .registry
                .record_slow_with(OP_NAMES[op], elapsed_ns, || detail.unwrap_or_default());
        }
        if matches!(response, Response::Unsubscribed) {
            // The handler already unregistered the subscription, so
            // its queue is quiescent: flush what's left to the client,
            // then drop it — nothing re-injects on a clean unsubscribe.
            if flush_notifications(shared, stream, session).is_err() {
                return;
            }
            if session.subscription.take().is_some() {
                metrics.subscriptions_active.add(-1);
            }
        } else if flush_notifications(shared, stream, session).is_err() {
            return;
        }
        if respond(stream, &response, metrics).is_err() {
            return;
        }
        if is_shutdown {
            shared.shutdown.store(true, Ordering::SeqCst);
            wake_listener(shared.addr);
            return;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // drain: finish the in-flight request, then close
        }
    }
}

fn respond(
    stream: &mut TcpStream,
    response: &Response,
    metrics: &ServeMetrics,
) -> std::io::Result<()> {
    let _wire = trace::child("wire_write");
    let mut buf = Vec::new();
    encode_response(&mut buf, response);
    let mut is_error = matches!(response, Response::Error(_));
    if buf.len() > sitm_store::segment::MAX_PAYLOAD as usize {
        // A result set too large for one frame must not kill the
        // session (or, worse, panic the worker): downgrade to an
        // in-band error telling the caller to page.
        buf.clear();
        encode_response(
            &mut buf,
            &Response::Error(
                "response exceeds the frame bound; narrow the query or add a limit/offset page"
                    .into(),
            ),
        );
        is_error = true;
    }
    if is_error {
        metrics.errors.inc();
    }
    metrics.bytes_out.add((buf.len() + FRAME_OVERHEAD) as u64);
    write_frame(stream, &buf)?;
    stream.flush()
}

/// Acquires the consistent read set for a federated query/explain:
/// under the core lock, clone the engine's epoch-cached snapshot `Arc`
/// and take the warehouse read guard; then release the core. Taking
/// the warehouse guard *before* the core unlocks is what keeps the cut
/// atomic — a checkpoint needs the write side, so no visit can move
/// live → warehouse between the snapshot and the guard (no double
/// count, no gap).
fn acquire_read_set<'a>(
    shared: &'a Shared,
) -> (
    Arc<LiveSnapshot>,
    bool,
    std::sync::RwLockReadGuard<'a, Flusher>,
) {
    let mut core = shared.core.lock().unwrap_or_else(|p| p.into_inner());
    let (snapshot, cached) = core.engine.live_snapshot_cached();
    let warehouse = shared.warehouse.read().unwrap_or_else(|p| p.into_inner());
    if cached {
        shared.metrics.snapshot_cache_hits.inc();
    } else {
        shared.metrics.snapshot_cache_misses.inc();
    }
    (snapshot, cached, warehouse)
}

/// The ingest barrier's push half: while subscriptions exist, drain
/// the engine's emitted-episode backlog, stamp the epoch the barrier
/// advanced to, and enqueue the delta on every subscriber whose
/// predicate does not provably reject it. Runs under the core lock;
/// takes subscriptions after it (the documented order).
fn notify_subscribers(shared: &Shared, engine: &mut ParallelEngine) {
    let subs = shared
        .subscriptions
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    if subs.is_empty() {
        // No subscribers → the barrier must not consume the backlog;
        // polling consumers (`drain` via checkpointed replay) keep it.
        return;
    }
    let episodes = engine.drain();
    let epoch = engine.epoch();
    if episodes.is_empty() {
        return;
    }
    for sub in subs.values() {
        let matched: Vec<EmittedEpisode> = episodes
            .iter()
            .filter(|e| {
                sub.predicate.delta_may_match(
                    &e.moving_object,
                    &e.episode.annotations,
                    e.episode.time,
                )
            })
            .cloned()
            .collect();
        if matched.is_empty() {
            continue;
        }
        let mut queue = sub.queue.lock().unwrap_or_else(|p| p.into_inner());
        if queue.lagged {
            continue; // already overflowed; awaiting the owner's drop
        }
        queue.queued += matched.len();
        queue.batches.push((epoch, matched));
        if queue.queued > SUBSCRIBER_QUEUE_BOUND {
            // Slow consumer: discard the backlog and flag. The owning
            // session errors + drops the subscription at its next
            // flush — the one sanctioned loss path.
            queue.batches.clear();
            queue.queued = 0;
            queue.lagged = true;
        }
    }
}

/// Executes one request. Ingest, checkpoint, shutdown, and
/// subscription registration serialize on the core mutex; the query
/// ops acquire their read set under it and evaluate *outside* it.
/// Every failure becomes a [`Response::Error`]; nothing here may panic
/// on bad input.
fn handle_request(shared: &Shared, request: Request, session: &mut SessionState) -> Response {
    match request {
        Request::IngestBatch(events) => {
            let n = events.len() as u64;
            let mut core = shared.core.lock().unwrap_or_else(|p| p.into_inner());
            core.engine.ingest_all(events);
            notify_subscribers(shared, &mut core.engine);
            Response::Ingested { events: n }
        }
        Request::Query(wire_query) => {
            // Warehouse-only: the immutable segment tier needs no core
            // lock at all — concurrent queries share the read side.
            // Served by the segment pushdown (`Query::execute_segmented`):
            // ordering/paging ride the offset directories, so cold
            // segments are touched per returned frame, not per segment.
            // On this arm the handler *is* the evaluation (no snapshot
            // cut, no flush), so the coarse `handle` span already tells
            // the whole story — `evaluate` rides the detail tier.
            let query = wire_query.to_query();
            let warehouse = shared.warehouse.read().unwrap_or_else(|p| p.into_inner());
            let _eval = trace::child_detail("evaluate");
            Response::Trajectories(query.execute_segmented(warehouse.db()))
        }
        Request::QueryFederated(wire_query) => {
            let query = wire_query.to_query();
            // The federated RTT decomposition: acquiring the live
            // snapshot (cache hit: an Arc clone; miss: quiesce + cut)
            // vs evaluating over live ∪ warehouse, both outside the
            // core lock. The remainder of the client-observed RTT is
            // wire + framing.
            let build = Instant::now();
            let (snapshot, _cached, warehouse) = {
                let _cut = trace::child("snapshot_cut");
                acquire_read_set(shared)
            };
            let build_ns = u64::try_from(build.elapsed().as_nanos()).unwrap_or(u64::MAX);
            shared.metrics.snapshot_build_ns.record(build_ns);
            let eval = Instant::now();
            let trajectories = {
                let _eval = trace::child("evaluate");
                query.execute_federated(&[
                    &*snapshot as &dyn TrajectorySource,
                    warehouse.db() as &dyn TrajectorySource,
                ])
            };
            let eval_ns = u64::try_from(eval.elapsed().as_nanos()).unwrap_or(u64::MAX);
            shared.metrics.evaluate_ns.record(eval_ns);
            // The snapshot Arc is shared with the engine's cache: our
            // clone drops here without freeing anything, so evaluate_ns
            // no longer carries the cut's dealloc.
            Response::Trajectories(trajectories)
        }
        Request::Explain(predicate) => Response::Explained(explain(shared, &predicate)),
        Request::Stats => {
            let stats = {
                let mut core = shared.core.lock().unwrap_or_else(|p| p.into_inner());
                core.engine.stats()
            };
            // The breakdowns decode nothing: segment totals come from
            // the warehouse's header-frame rollups, the live tier folds
            // through the (epoch-cached) snapshot, and the two merge
            // component-wise.
            let (snapshot, _cached, warehouse) = acquire_read_set(shared);
            let mut merged = SegmentRollup::new(DEFAULT_ROLLUP_PERIOD_SECONDS);
            snapshot.for_each_trajectory(&mut |t| merged.add(t));
            for (cell, agg) in warehouse.db().rollup_cells() {
                merged.cells.entry(cell).or_default().merge(&agg);
            }
            for (bucket, count) in warehouse.db().rollup_occupancy() {
                *merged.periods.entry(bucket).or_insert(0) += count;
            }
            Response::Stats {
                stats: ServerStats {
                    events: stats.events,
                    presences: stats.presences,
                    visits_opened: stats.visits_opened,
                    visits_closed: stats.visits_closed,
                    episodes: stats.episodes,
                    anomalies: stats.anomalies.total(),
                    open_visits: stats.open_visits,
                    warehouse_trajectories: warehouse.db().len() as u64,
                    warehouse_segments: warehouse.db().segments().len() as u64,
                    sessions_accepted: shared.sessions_accepted.load(Ordering::Relaxed),
                    sessions_active: shared.metrics.sessions_active.get().max(0) as u64,
                },
                rollup: StatsRollup {
                    period_seconds: merged.period_seconds,
                    cells: merged.cells.into_iter().collect(),
                    periods: merged.periods.into_iter().collect(),
                },
            }
        }
        Request::Checkpoint => {
            let mut core = shared.core.lock().unwrap_or_else(|p| p.into_inner());
            let mut warehouse = shared.warehouse.write().unwrap_or_else(|p| p.into_inner());
            match warehouse.force(&mut core.engine) {
                Ok(spilled) => {
                    mark_checkpoint(shared);
                    Response::Checkpointed {
                        spilled: spilled as u64,
                        warehouse_trajectories: warehouse.db().len() as u64,
                        manifest_sequence: warehouse.db().store().sequence(),
                    }
                }
                Err(err) => Response::Error(format!("checkpoint failed: {err}")),
            }
        }
        Request::Shutdown => {
            let mut core = shared.core.lock().unwrap_or_else(|p| p.into_inner());
            let mut warehouse = shared.warehouse.write().unwrap_or_else(|p| p.into_inner());
            match warehouse.force(&mut core.engine) {
                // The session loop flips the flag *after* this response
                // is on the wire, so the acknowledgement always arrives.
                Ok(_) => {
                    mark_checkpoint(shared);
                    Response::ShuttingDown
                }
                Err(err) => Response::Error(format!("shutdown flush failed: {err}")),
            }
        }
        Request::Metrics => Response::Metrics(shared.metrics.registry.snapshot()),
        Request::Subscribe(wire_query) => {
            // Register under the core lock so the acknowledged epoch
            // is exact: every later barrier (which needs this lock)
            // notifies this subscription with a strictly greater epoch.
            let mut core = shared.core.lock().unwrap_or_else(|p| p.into_inner());
            let epoch = core.engine.epoch();
            let sub = Arc::new(Subscription::new(
                wire_query.predicate,
                Arc::clone(&shared.metrics.subscribers_active),
            ));
            {
                let mut subs = shared
                    .subscriptions
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                subs.insert(session.id, Arc::clone(&sub));
            }
            if let Some(old) = session.subscription.replace(sub) {
                // Re-subscribe replaces the query; the old queue's
                // undelivered episodes go back to the pending pool
                // rather than silently vanishing.
                let undelivered = old.take_episodes();
                core.engine.requeue_pending(undelivered);
            } else {
                shared.metrics.subscriptions_active.add(1);
            }
            Response::Subscribed { epoch }
        }
        Request::Unsubscribe => {
            // Unregister only; the session loop flushes the (now
            // quiescent) queue to the client before this ack goes out.
            if session.subscription.is_some() {
                let mut subs = shared
                    .subscriptions
                    .lock()
                    .unwrap_or_else(|p| p.into_inner());
                subs.remove(&session.id);
            }
            Response::Unsubscribed
        }
        Request::Health => Response::Health(build_health(shared)),
        Request::Trace { limit } => {
            // Cap at the ring capacity's practical ceiling so a hostile
            // limit cannot drive allocation.
            let limit = usize::try_from(limit).unwrap_or(usize::MAX).min(4096);
            Response::Traces(shared.recorder.recent(limit))
        }
    }
}

/// Stamps "a checkpoint committed now" for Health's checkpoint age.
fn mark_checkpoint(shared: &Shared) {
    let ms = u64::try_from(shared.started.elapsed().as_millis()).unwrap_or(u64::MAX - 1);
    shared.last_checkpoint_ms.store(ms, Ordering::Relaxed);
}

/// Assembles the `Health` report from state the server already
/// maintains: one brief core lock for the epoch, one warehouse read
/// guard for the backlog and segment shape, and relaxed gauge/counter
/// loads for the rest — cheap enough to poll at the sampler period.
fn build_health(shared: &Shared) -> HealthReport {
    let uptime_ms = u64::try_from(shared.started.elapsed().as_millis()).unwrap_or(u64::MAX);
    let epoch = {
        let mut core = shared.core.lock().unwrap_or_else(|p| p.into_inner());
        core.engine.epoch()
    };
    let (flush_backlog_trajectories, warehouse_trajectories, warehouse_segments) = {
        let warehouse = shared.warehouse.read().unwrap_or_else(|p| p.into_inner());
        (
            warehouse.backlog() as u64,
            warehouse.db().len() as u64,
            warehouse.db().segments().len() as u64,
        )
    };
    let last_checkpoint_age_ms = match shared.last_checkpoint_ms.load(Ordering::Relaxed) {
        u64::MAX => None,
        at_ms => Some(uptime_ms.saturating_sub(at_ms)),
    };
    let events_per_sec_milli = shared
        .sampler
        .as_ref()
        .and_then(|s| s.ring().last_pair())
        .and_then(|(a, b)| rate_per_sec(&a, &b, "engine.events_ingested"))
        .map_or(0, |rate| (rate * 1000.0) as u64);
    HealthReport {
        uptime_ms,
        epoch,
        sessions_accepted: shared.sessions_accepted.load(Ordering::Relaxed),
        sessions_active: shared.metrics.sessions_active.get().max(0) as u64,
        subscribers_active: shared.metrics.subscribers_active.get().max(0) as u64,
        flush_backlog_trajectories,
        worker_queue_depths: shared
            .worker_queue_depths
            .iter()
            .map(|g| g.get().max(0) as u64)
            .collect(),
        last_checkpoint_age_ms,
        warehouse_segments,
        warehouse_trajectories,
        traces_recorded: shared.recorder.recorded(),
        events_per_sec_milli,
    }
}

/// Plans `predicate` over live ∪ warehouse: per-source access paths
/// (the federation's `federated_explain`) plus the warehouse's
/// zone-map / Bloom pruning counters ([`SegmentedDb::explain`]).
/// Evaluates outside the core lock, like the query ops, and records
/// its snapshot acquisition into `serve.explain_snapshot_ns` so plans
/// don't pollute the query path's `serve.snapshot_build_ns`.
fn explain(shared: &Shared, predicate: &Predicate) -> ExplainReport {
    let build = Instant::now();
    let (snapshot, snapshot_cached, warehouse) = {
        let _cut = trace::child("snapshot_cut");
        acquire_read_set(shared)
    };
    let snapshot_build_ns = u64::try_from(build.elapsed().as_nanos()).unwrap_or(u64::MAX);
    shared.metrics.explain_snapshot_ns.record(snapshot_build_ns);
    let db: &SegmentedDb = warehouse.db();
    let eval = Instant::now();
    let _eval_span = trace::child("evaluate");
    let plans: Vec<WirePlan> = {
        let sources: [&dyn TrajectorySource; 2] = [&*snapshot, db];
        sitm_query::federated_explain(predicate, &sources)
            .into_iter()
            .map(|plan| WirePlan {
                candidates: match plan.access {
                    sitm_query::AccessPath::FullScan => None,
                    sitm_query::AccessPath::IndexCandidates { candidates } => {
                        Some(candidates as u64)
                    }
                },
                total: plan.total as u64,
            })
            .collect()
    };
    let segmented = db.explain(predicate);
    let evaluate_ns = u64::try_from(eval.elapsed().as_nanos()).unwrap_or(u64::MAX);
    shared.metrics.evaluate_ns.record(evaluate_ns);
    // Cold-tier I/O attribution: cumulative counters at explain time
    // (bound to the server's registry by the pipeline), so a client can
    // difference two Explains around a query to see what it cost.
    let registry = &shared.metrics.registry;
    ExplainReport {
        plans,
        segments: segmented.segments as u64,
        zone_pruned: segmented.pruned as u64,
        bloom_pruned: segmented.bloom_pruned as u64,
        object_pruned: segmented.object_pruned as u64,
        segment_bytes_read: registry.counter("query.segment_bytes_read").get(),
        trajectories_decoded: registry.counter("query.trajectories_decoded").get(),
        lazy_opens: registry.counter("store.lazy_opens").get(),
        row_cache_hits: registry.counter("query.row_cache_hits").get(),
        row_cache_misses: registry.counter("query.row_cache_misses").get(),
        snapshot_build_ns,
        evaluate_ns,
        snapshot_cached,
    }
}
