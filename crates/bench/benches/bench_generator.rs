//! Dataset generator benchmarks (experiment D1's engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sitm_bench::scaled_config;
use sitm_louvre::{generate_dataset, GeneratorConfig, PaperCalibration};

/// Proportionally scaled calibrations (identities preserved).
fn config_at_scale(divisor: usize) -> GeneratorConfig {
    let base = PaperCalibration::default();
    // Keep visitor mix ratios; recompute visits from the mix.
    let visitors = base.visitors / divisor;
    let returning = base.returning_visitors / divisor;
    let revisits = (returning * base.revisits / base.returning_visitors).max(returning);
    let visits =
        (visitors - returning) + 2 * (2 * returning - revisits) + 3 * (revisits - returning);
    let detections = visits * base.detections / base.visits;
    GeneratorConfig {
        seed: 99,
        calibration: PaperCalibration {
            visits,
            visitors,
            returning_visitors: returning,
            revisits,
            detections,
            transitions: detections - visits,
            ..base
        },
        ..GeneratorConfig::default()
    }
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.sample_size(10);
    for divisor in [20usize, 5] {
        let config = config_at_scale(divisor);
        let visits = config.calibration.visits;
        group.bench_with_input(BenchmarkId::new("visits", visits), &config, |b, config| {
            b.iter(|| generate_dataset(black_box(config)));
        });
    }
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let ds = generate_dataset(&scaled_config(1));
    c.bench_function("generator/stats_scaled", |b| {
        b.iter(|| black_box(&ds).stats());
    });
    c.bench_function("generator/choropleth_counts", |b| {
        b.iter(|| black_box(&ds).detections_per_zone());
    });
}

criterion_group!(benches, bench_generation, bench_stats);
criterion_main!(benches);
