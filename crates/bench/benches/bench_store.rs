//! Storage-engine benchmarks: codec throughput, segment scan, and log
//! round-trips over the calibrated Louvre dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sitm_core::SemanticTrajectory;
use sitm_louvre::{build_louvre, generate_dataset, GeneratorConfig};
use sitm_store::codec::{decode_trajectory, encode_trajectory};
use sitm_store::segment::{scan, write_frame, write_header};
use sitm_store::LogStore;

fn trajectories() -> Vec<SemanticTrajectory> {
    let model = build_louvre();
    let dataset = generate_dataset(&GeneratorConfig::default());
    dataset
        .visits
        .iter()
        .filter(|v| !v.detections.is_empty())
        .filter_map(|v| dataset.to_trajectory(&model, v))
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let trajs = trajectories();
    let mut group = c.benchmark_group("store/codec");
    group.sample_size(20);
    group.bench_function("encode_4945_visits", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(512 * 1024);
            for t in &trajs {
                encode_trajectory(black_box(&mut buf), t);
            }
            buf
        });
    });
    let mut encoded: Vec<Vec<u8>> = Vec::with_capacity(trajs.len());
    for t in &trajs {
        let mut buf = Vec::new();
        encode_trajectory(&mut buf, t);
        encoded.push(buf);
    }
    group.bench_function("decode_4945_visits", |b| {
        b.iter(|| {
            let mut decoded = 0usize;
            for buf in &encoded {
                decode_trajectory(black_box(&mut buf.as_slice())).expect("clean");
                decoded += 1;
            }
            decoded
        });
    });
    group.finish();
}

fn bench_segment_scan(c: &mut Criterion) {
    let trajs = trajectories();
    let mut segment = Vec::new();
    write_header(&mut segment);
    let mut scratch = Vec::new();
    for t in &trajs {
        scratch.clear();
        encode_trajectory(&mut scratch, t);
        write_frame(&mut segment, &scratch);
    }
    let mut group = c.benchmark_group("store/segment");
    group.throughput(criterion::Throughput::Bytes(segment.len() as u64));
    group.bench_function("scan_validate_crc", |b| {
        b.iter(|| scan(black_box(&segment)).payloads.len());
    });
    group.finish();
}

fn bench_log_round_trip(c: &mut Criterion) {
    let trajs: Vec<SemanticTrajectory> = trajectories().into_iter().take(500).collect();
    let mut group = c.benchmark_group("store/log");
    group.sample_size(10);
    group.bench_function("append_sync_reopen_500", |b| {
        b.iter(|| {
            let path = std::env::temp_dir().join(format!(
                "sitm-bench-{}-{:p}.log",
                std::process::id(),
                &trajs
            ));
            let _ = std::fs::remove_file(&path);
            {
                let (mut log, _, _) = LogStore::<SemanticTrajectory>::open(&path).expect("open");
                log.append_batch(trajs.iter()).expect("append");
                log.sync().expect("sync");
            }
            let (_, records, report) = LogStore::<SemanticTrajectory>::open(&path).expect("reopen");
            assert!(report.is_clean());
            std::fs::remove_file(&path).ok();
            records.len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_segment_scan,
    bench_log_round_trip
);
criterion_main!(benches);
