//! Streaming-ingestion benchmarks: event throughput by shard count
//! (sequential vs work-stealing parallel), skewed-ingest behaviour
//! under Zipf visit/cell distributions, live-query latency (indexed vs
//! scan), and checkpoint/restore latency.
//!
//! **Parallel speedup caveat:** parallel-over-sequential wins only
//! materialize with ≥ 2 physical cores. On a single-core host
//! (`nproc == 1` — the CI container this repo grew up in) the workers
//! time-slice one CPU, so `parallel/*` and `skewed_ingest/parallel_*`
//! land at ~0.6–1.0× sequential (scheduler overhead, no concurrency to
//! win); that is hardware-bound, not a runtime defect. What the skewed
//! group demonstrates *regardless of cores* is the routing change: the
//! old static hash router pinned every visit of a hot shard to one
//! worker, so `skewed/parallel_4` used to collapse to one busy worker
//! (≈ `parallel_1`); the work-stealing router lets idle workers take
//! whole cold visits, so on a multi-core box `skewed/parallel_4`
//! tracks the uniform `parallel_4` instead. The differential tests
//! prove the output identical either way; run this bench on a
//! multi-core box to see the scaling. The `live_query` group compares
//! `count_matching` (live-index candidates + re-check) against
//! `count_matching_scan` (predicate over every open prefix); the
//! indexed path is the ≥ 5× win the live index exists for, and is
//! core-count independent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sitm_bench::stream_feeds::{louvre_feed as feed, skewed_feed, stream_config as config};
use sitm_core::Duration;
use sitm_louvre::{build_louvre, zone_key};
use sitm_query::Predicate;
use sitm_store::{CheckpointFrame, LogStore};
use sitm_stream::{resume_from_log, ParallelEngine, ShardedEngine, StreamEvent};

fn bench_ingest_throughput(c: &mut Criterion) {
    let model = build_louvre();
    let events = feed(&model);
    let mut group = c.benchmark_group("stream/ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    for shards in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut engine = ShardedEngine::new(config(&model, shards)).expect("engine");
                    engine.ingest_all(black_box(events.iter().cloned()));
                    engine.finish().len()
                });
            },
        );
    }
    group.finish();
}

/// Sequential vs parallel ingest on the same 500-visit workload. The
/// parallel engine is constructed inside the timed body on purpose:
/// worker spawn + join is part of what a deployment pays per engine, and
/// excluding it would flatter small feeds.
fn bench_parallel_ingest(c: &mut Criterion) {
    let model = build_louvre();
    let events = feed(&model);
    let mut group = c.benchmark_group("stream/parallel_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("sequential/1", |b| {
        b.iter(|| {
            let mut engine = ShardedEngine::new(config(&model, 1)).expect("engine");
            engine.ingest_all(black_box(events.iter().cloned()));
            engine.finish().len()
        });
    });
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut engine = ParallelEngine::new(config(&model, workers)).expect("engine");
                    engine.ingest_all(black_box(events.iter().cloned()));
                    engine.finish().len()
                });
            },
        );
    }
    group.finish();
}

/// Skewed ingest: one dominant visit plus a cold tail. The old static
/// hash router degraded `parallel/*` here to single-worker throughput;
/// work-stealing keeps the cold tail flowing through idle workers (see
/// the module header for single-core caveats).
fn bench_skewed_ingest(c: &mut Criterion) {
    let model = build_louvre();
    let events = skewed_feed(400, 20_000, 1.2);
    let mut group = c.benchmark_group("stream/skewed_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("sequential_1", |b| {
        b.iter(|| {
            let mut engine = ShardedEngine::new(config(&model, 1)).expect("engine");
            engine.ingest_all(black_box(events.iter().cloned()));
            engine.finish().len()
        });
    });
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut engine = ParallelEngine::new(config(&model, workers)).expect("engine");
                    engine.ingest_all(black_box(events.iter().cloned()));
                    engine.finish().len()
                });
            },
        );
    }
    group.finish();
}

/// Live-query federation over a half-ingested day: snapshot cost and
/// predicate evaluation over the union of live shard state.
fn bench_live_query(c: &mut Criterion) {
    let model = build_louvre();
    let events = feed(&model);
    let hall = model
        .space
        .resolve(&zone_key(60886))
        .expect("zone resolves");
    let mut engine = ParallelEngine::new(config(&model, 4).with_live_queries()).expect("engine");
    engine.ingest_all(events[..events.len() / 2].iter().cloned());

    let mut group = c.benchmark_group("stream/live_query");
    group.sample_size(10);
    group.bench_function("snapshot", |b| {
        b.iter(|| black_box(engine.live_snapshot()).visits.len());
    });
    let snapshot = engine.live_snapshot();
    let predicate =
        Predicate::VisitedCell(hall).and(Predicate::MinTotalDwell(Duration::minutes(2)));
    group.bench_function("predicate_over_live", |b| {
        b.iter(|| snapshot.count_matching(black_box(&predicate)));
    });

    // Indexed vs scan at full 500-visit scale: strip the closes so the
    // whole day stays open, then ask the flagship selective live query
    // ("where is this visitor right now"). The index answers from the
    // moving-object postings; the scan evaluates the predicate over
    // every open prefix. The acceptance target is indexed ≥ 5× faster.
    let no_closes: Vec<StreamEvent> = events
        .iter()
        .filter(|e| !matches!(e, StreamEvent::VisitClosed { .. }))
        .cloned()
        .collect();
    let mut open_engine =
        ParallelEngine::new(config(&model, 4).with_live_queries()).expect("engine");
    open_engine.ingest_all(no_closes);
    let open_snapshot = open_engine.live_snapshot();
    let target = open_snapshot.visits[open_snapshot.visits.len() / 2]
        .trajectory
        .moving_object
        .clone();
    let selective = Predicate::MovingObject(target);
    group.bench_function("indexed_count", |b| {
        b.iter(|| open_snapshot.count_matching(black_box(&selective)));
    });
    group.bench_function("scan_count", |b| {
        b.iter(|| open_snapshot.count_matching_scan(black_box(&selective)));
    });
    group.finish();
}

fn bench_checkpoint_restore(c: &mut Criterion) {
    let model = build_louvre();
    let events = feed(&model);
    let mut group = c.benchmark_group("stream/checkpoint");
    group.sample_size(10);

    // Engine loaded with the first half of the day: open visits, open
    // runs, pending episodes — a representative snapshot.
    let load = |shards: usize| {
        let mut engine = ShardedEngine::new(config(&model, shards)).expect("engine");
        engine.ingest_all(events[..events.len() / 2].iter().cloned());
        engine.flush();
        engine
    };

    let path = std::env::temp_dir().join(format!("sitm-bench-ckpt-{}.log", std::process::id()));
    for shards in [1usize, 8] {
        let mut engine = load(shards);
        group.bench_with_input(BenchmarkId::new("checkpoint", shards), &shards, |b, _| {
            b.iter(|| {
                let _ = std::fs::remove_file(&path);
                let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&path).expect("log");
                engine.checkpoint(&mut log).expect("checkpoint")
            });
        });
        // One final checkpoint to restore from.
        let _ = std::fs::remove_file(&path);
        let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&path).expect("log");
        engine.checkpoint(&mut log).expect("checkpoint");
        drop(log);
        group.bench_with_input(
            BenchmarkId::new("restore", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let (engine, _log, _report) =
                        resume_from_log(config(&model, shards), &path).expect("restore");
                    black_box(engine.stats().open_visits)
                });
            },
        );
    }
    let _ = std::fs::remove_file(&path);
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest_throughput,
    bench_parallel_ingest,
    bench_skewed_ingest,
    bench_live_query,
    bench_checkpoint_restore
);
criterion_main!(benches);
