//! Streaming-ingestion benchmarks: event throughput by shard count, and
//! checkpoint/restore latency — the perf baseline for future scaling PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sitm_core::{Annotation, AnnotationSet, Duration, IntervalPredicate};
use sitm_louvre::{
    build_louvre, generate_dataset, zone_key, GeneratorConfig, LouvreModel, PaperCalibration,
};
use sitm_store::{CheckpointFrame, LogStore};
use sitm_stream::{dataset_events, resume_from_log, EngineConfig, ShardedEngine, StreamEvent};

/// A mid-size day: ~500 visits, ~2500 detections.
fn feed(model: &LouvreModel) -> Vec<StreamEvent> {
    let cal = PaperCalibration {
        visits: 500,
        visitors: 400,
        returning_visitors: 100,
        revisits: 100,
        detections: 2_500,
        transitions: 2_000,
        ..PaperCalibration::default()
    };
    let dataset = generate_dataset(&GeneratorConfig {
        seed: 20_170_119,
        calibration: cal,
        ..GeneratorConfig::default()
    });
    dataset_events(model, &dataset)
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

fn config(model: &LouvreModel, shards: usize) -> EngineConfig {
    let exit_chain = [60887u32, 60888, 60890]
        .map(|id| model.space.resolve(&zone_key(id)).expect("zone resolves"));
    EngineConfig::new(vec![
        (
            IntervalPredicate::in_cells(exit_chain),
            label("exit museum"),
        ),
        (
            IntervalPredicate::min_duration(Duration::minutes(5)),
            label("long stay"),
        ),
        (IntervalPredicate::any(), label("whole visit")),
    ])
    .with_shards(shards)
}

fn bench_ingest_throughput(c: &mut Criterion) {
    let model = build_louvre();
    let events = feed(&model);
    let mut group = c.benchmark_group("stream/ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    for shards in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut engine = ShardedEngine::new(config(&model, shards)).expect("engine");
                    engine.ingest_all(black_box(events.iter().cloned()));
                    engine.finish().len()
                });
            },
        );
    }
    group.finish();
}

fn bench_checkpoint_restore(c: &mut Criterion) {
    let model = build_louvre();
    let events = feed(&model);
    let mut group = c.benchmark_group("stream/checkpoint");
    group.sample_size(10);

    // Engine loaded with the first half of the day: open visits, open
    // runs, pending episodes — a representative snapshot.
    let load = |shards: usize| {
        let mut engine = ShardedEngine::new(config(&model, shards)).expect("engine");
        engine.ingest_all(events[..events.len() / 2].iter().cloned());
        engine.flush();
        engine
    };

    let path = std::env::temp_dir().join(format!("sitm-bench-ckpt-{}.log", std::process::id()));
    for shards in [1usize, 8] {
        let mut engine = load(shards);
        group.bench_with_input(BenchmarkId::new("checkpoint", shards), &shards, |b, _| {
            b.iter(|| {
                let _ = std::fs::remove_file(&path);
                let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&path).expect("log");
                engine.checkpoint(&mut log).expect("checkpoint")
            });
        });
        // One final checkpoint to restore from.
        let _ = std::fs::remove_file(&path);
        let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&path).expect("log");
        engine.checkpoint(&mut log).expect("checkpoint");
        drop(log);
        group.bench_with_input(
            BenchmarkId::new("restore", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let (engine, _log, _report) =
                        resume_from_log(config(&model, shards), &path).expect("restore");
                    black_box(engine.stats().open_visits)
                });
            },
        );
    }
    let _ = std::fs::remove_file(&path);
    group.finish();
}

criterion_group!(benches, bench_ingest_throughput, bench_checkpoint_restore);
criterion_main!(benches);
