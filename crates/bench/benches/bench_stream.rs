//! Streaming-ingestion benchmarks: event throughput by shard count
//! (sequential vs thread-per-shard parallel), live-query federation
//! latency, and checkpoint/restore latency.
//!
//! **Parallel speedup caveat:** the ≥ 2× target for `parallel/4` over
//! `sequential/1` only materializes with ≥ 2 physical cores. On a
//! single-core host (`nproc == 1` — the CI container this repo grew up
//! in) the workers time-slice one CPU, so parallel throughput lands at
//! ~0.8–1.0× sequential (channel overhead, no concurrency to win);
//! that is hardware-bound, not a runtime defect. The differential tests
//! prove the output identical either way; run this bench on a
//! multi-core box to see the scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use sitm_core::{Annotation, AnnotationSet, Duration, IntervalPredicate};
use sitm_louvre::{
    build_louvre, generate_dataset, zone_key, GeneratorConfig, LouvreModel, PaperCalibration,
};
use sitm_query::Predicate;
use sitm_store::{CheckpointFrame, LogStore};
use sitm_stream::{
    dataset_events, resume_from_log, EngineConfig, ParallelEngine, ShardedEngine, StreamEvent,
};

/// A mid-size day: ~500 visits, ~2500 detections.
fn feed(model: &LouvreModel) -> Vec<StreamEvent> {
    let cal = PaperCalibration {
        visits: 500,
        visitors: 400,
        returning_visitors: 100,
        revisits: 100,
        detections: 2_500,
        transitions: 2_000,
        ..PaperCalibration::default()
    };
    let dataset = generate_dataset(&GeneratorConfig {
        seed: 20_170_119,
        calibration: cal,
        ..GeneratorConfig::default()
    });
    dataset_events(model, &dataset)
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

fn config(model: &LouvreModel, shards: usize) -> EngineConfig {
    let exit_chain = [60887u32, 60888, 60890]
        .map(|id| model.space.resolve(&zone_key(id)).expect("zone resolves"));
    EngineConfig::new(vec![
        (
            IntervalPredicate::in_cells(exit_chain),
            label("exit museum"),
        ),
        (
            IntervalPredicate::min_duration(Duration::minutes(5)),
            label("long stay"),
        ),
        (IntervalPredicate::any(), label("whole visit")),
    ])
    .with_shards(shards)
}

fn bench_ingest_throughput(c: &mut Criterion) {
    let model = build_louvre();
    let events = feed(&model);
    let mut group = c.benchmark_group("stream/ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    for shards in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut engine = ShardedEngine::new(config(&model, shards)).expect("engine");
                    engine.ingest_all(black_box(events.iter().cloned()));
                    engine.finish().len()
                });
            },
        );
    }
    group.finish();
}

/// Sequential vs parallel ingest on the same 500-visit workload. The
/// parallel engine is constructed inside the timed body on purpose:
/// worker spawn + join is part of what a deployment pays per engine, and
/// excluding it would flatter small feeds.
fn bench_parallel_ingest(c: &mut Criterion) {
    let model = build_louvre();
    let events = feed(&model);
    let mut group = c.benchmark_group("stream/parallel_ingest");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("sequential/1", |b| {
        b.iter(|| {
            let mut engine = ShardedEngine::new(config(&model, 1)).expect("engine");
            engine.ingest_all(black_box(events.iter().cloned()));
            engine.finish().len()
        });
    });
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut engine = ParallelEngine::new(config(&model, workers)).expect("engine");
                    engine.ingest_all(black_box(events.iter().cloned()));
                    engine.finish().len()
                });
            },
        );
    }
    group.finish();
}

/// Live-query federation over a half-ingested day: snapshot cost and
/// predicate evaluation over the union of live shard state.
fn bench_live_query(c: &mut Criterion) {
    let model = build_louvre();
    let events = feed(&model);
    let hall = model
        .space
        .resolve(&zone_key(60886))
        .expect("zone resolves");
    let mut engine = ParallelEngine::new(config(&model, 4).with_live_queries()).expect("engine");
    engine.ingest_all(events[..events.len() / 2].iter().cloned());

    let mut group = c.benchmark_group("stream/live_query");
    group.sample_size(10);
    group.bench_function("snapshot", |b| {
        b.iter(|| black_box(engine.live_snapshot()).visits.len());
    });
    let snapshot = engine.live_snapshot();
    let predicate =
        Predicate::VisitedCell(hall).and(Predicate::MinTotalDwell(Duration::minutes(2)));
    group.bench_function("predicate_over_live", |b| {
        b.iter(|| snapshot.count_matching(black_box(&predicate)));
    });
    group.finish();
}

fn bench_checkpoint_restore(c: &mut Criterion) {
    let model = build_louvre();
    let events = feed(&model);
    let mut group = c.benchmark_group("stream/checkpoint");
    group.sample_size(10);

    // Engine loaded with the first half of the day: open visits, open
    // runs, pending episodes — a representative snapshot.
    let load = |shards: usize| {
        let mut engine = ShardedEngine::new(config(&model, shards)).expect("engine");
        engine.ingest_all(events[..events.len() / 2].iter().cloned());
        engine.flush();
        engine
    };

    let path = std::env::temp_dir().join(format!("sitm-bench-ckpt-{}.log", std::process::id()));
    for shards in [1usize, 8] {
        let mut engine = load(shards);
        group.bench_with_input(BenchmarkId::new("checkpoint", shards), &shards, |b, _| {
            b.iter(|| {
                let _ = std::fs::remove_file(&path);
                let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&path).expect("log");
                engine.checkpoint(&mut log).expect("checkpoint")
            });
        });
        // One final checkpoint to restore from.
        let _ = std::fs::remove_file(&path);
        let (mut log, _, _) = LogStore::<CheckpointFrame>::open(&path).expect("log");
        engine.checkpoint(&mut log).expect("checkpoint");
        drop(log);
        group.bench_with_input(
            BenchmarkId::new("restore", shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let (engine, _log, _report) =
                        resume_from_log(config(&model, shards), &path).expect("restore");
                    black_box(engine.stats().open_visits)
                });
            },
        );
    }
    let _ = std::fs::remove_file(&path);
    group.finish();
}

criterion_group!(
    benches,
    bench_ingest_throughput,
    bench_parallel_ingest,
    bench_live_query,
    bench_checkpoint_restore
);
criterion_main!(benches);
