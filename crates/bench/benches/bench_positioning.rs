//! Positioning substrate benchmarks, including ablation A6 (full geometric
//! pipeline vs symbolic replay).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sitm_geometry::Point;
use sitm_louvre::build_louvre;
use sitm_positioning::{
    trilaterate, BeaconDeployment, Ekf, GroundTruthFix, ParticleFilter, Pipeline, RssiModel,
    TrilaterationInput, ZoneMap,
};
use sitm_sim::SimRng;

fn bench_trilateration(c: &mut Criterion) {
    let truth = Point::new(12.0, 7.0);
    let anchors = [
        Point::new(0.0, 0.0),
        Point::new(25.0, 0.0),
        Point::new(0.0, 20.0),
        Point::new(25.0, 20.0),
        Point::new(12.0, 0.0),
        Point::new(12.0, 20.0),
    ];
    let inputs: Vec<TrilaterationInput> = anchors
        .iter()
        .map(|&a| TrilaterationInput {
            anchor: a,
            distance: a.distance(truth) + 0.3,
            weight: 1.0,
        })
        .collect();
    c.bench_function("positioning/trilaterate_6_anchors", |b| {
        b.iter(|| trilaterate(black_box(&inputs)));
    });
}

fn bench_filters(c: &mut Criterion) {
    c.bench_function("positioning/ekf_step", |b| {
        let mut ekf = Ekf::pedestrian();
        ekf.update(Point::new(0.0, 0.0));
        let mut i = 0.0;
        b.iter(|| {
            i += 1.0;
            ekf.step(1.0, Point::new(i, i * 0.5))
        });
    });
    c.bench_function("positioning/particle_step_1000", |b| {
        let mut rng = SimRng::seeded(1);
        let mut pf = ParticleFilter::pedestrian(1_000);
        pf.update(Point::new(0.0, 0.0), &mut rng);
        let mut i = 0.0;
        b.iter(|| {
            i += 1.0;
            pf.step(1.0, Point::new(i * 0.1, 0.0), &mut rng)
        });
    });
}

/// A6: the full geometric pipeline per fix vs symbolic zone replay.
fn bench_pipeline_vs_symbolic(c: &mut Criterion) {
    let model = build_louvre();
    let zones = ZoneMap::build(&model.space, model.zone_layer, 20.0);
    let mut deployment = BeaconDeployment::new();
    deployment.grid(model.site_bbox(), 0, 12.0, -59.0);
    let pipeline = Pipeline::new(deployment, RssiModel::indoor_default());
    let path: Vec<GroundTruthFix> = (0..120)
        .map(|i| GroundTruthFix {
            at: sitm_core::Timestamp(i),
            position: Point::new(5.0 + i as f64 * 1.5, 20.0),
            floor: 0,
        })
        .collect();

    let mut group = c.benchmark_group("positioning/a6");
    group.sample_size(20);
    group.bench_function("geometric_pipeline_120_fixes", |b| {
        b.iter(|| {
            let mut rng = SimRng::seeded(42);
            pipeline.run(&model.space, &zones, black_box(&path), &mut rng)
        });
    });
    // Symbolic replay: the same walk expressed directly as zone detections.
    let mut rng = SimRng::seeded(42);
    let report = pipeline.run(&model.space, &zones, &path, &mut rng);
    group.bench_function("symbolic_replay_same_walk", |b| {
        b.iter(|| {
            let trace = report.to_trace();
            black_box(trace.transition_count())
        });
    });
    group.finish();

    c.bench_function("positioning/zonemap_locate", |b| {
        b.iter(|| zones.locate(&model.space, black_box(Point::new(100.0, 20.0)), 0));
    });
}

criterion_group!(
    benches,
    bench_trilateration,
    bench_filters,
    bench_pipeline_vs_symbolic
);
criterion_main!(benches);
