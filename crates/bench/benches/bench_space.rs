//! Indoor space model benchmarks: building the Louvre, validating its
//! hierarchy, ablation A2 (static hierarchy lifting), A3 (coverage).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sitm_core::{lift_trace, PresenceInterval, Timestamp, Trace, TransitionTaken};
use sitm_louvre::{build_louvre, building::room_key};
use sitm_space::{coverage_of, validate_hierarchy, SpaceQuery};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("space");
    group.sample_size(20);
    group.bench_function("build_louvre", |b| {
        b.iter(build_louvre);
    });
    group.finish();
}

fn bench_validation(c: &mut Criterion) {
    let model = build_louvre();
    c.bench_function("space/validate_hierarchy", |b| {
        b.iter(|| validate_hierarchy(black_box(&model.space), &model.hierarchy));
    });
    c.bench_function("space/audit_geometry", |b| {
        b.iter(|| model.space.audit_joints_against_geometry());
    });
}

/// A2: lifting a long room-level trace through the static hierarchy.
fn bench_lifting(c: &mut Criterion) {
    let model = build_louvre();
    // A 200-tuple room trace bouncing between two zones.
    let rooms: Vec<_> = (0..200)
        .map(|i| {
            let zone = if i % 2 == 0 { 60861 } else { 60862 };
            model
                .space
                .resolve(&room_key(zone, i % 3))
                .expect("room exists")
        })
        .collect();
    let intervals: Vec<PresenceInterval> = rooms
        .iter()
        .enumerate()
        .map(|(i, &cell)| {
            PresenceInterval::new(
                TransitionTaken::Unknown,
                cell,
                Timestamp(i as i64 * 60),
                Timestamp(i as i64 * 60 + 60),
            )
        })
        .collect();
    let trace = Trace::new(intervals).expect("chronological");
    c.bench_function("space/a2_lift_200_tuples_to_floor", |b| {
        b.iter(|| {
            lift_trace(
                black_box(&model.space),
                &model.hierarchy,
                black_box(&trace),
                model.floor_layer,
            )
        });
    });
    c.bench_function("space/a2_lift_200_tuples_to_museum", |b| {
        b.iter(|| {
            lift_trace(
                black_box(&model.space),
                &model.hierarchy,
                black_box(&trace),
                model.complex_layer,
            )
        });
    });
}

/// A3: explicit coverage measurement vs assuming full coverage.
fn bench_coverage(c: &mut Criterion) {
    let model = build_louvre();
    let rooms: Vec<_> = model
        .space
        .cells_in(model.room_layer)
        .map(|(r, _)| r)
        .collect();
    c.bench_function("space/a3_coverage_all_rooms", |b| {
        b.iter(|| {
            rooms
                .iter()
                .map(|&room| coverage_of(&model.space, &model.hierarchy, room))
                .filter(|r| r.is_full_coverage())
                .count()
        });
    });
}

fn bench_routing(c: &mut Criterion) {
    let model = build_louvre();
    let from = model.zone(60886).expect("entrance");
    let to = model.zone(60872).expect("upper floor zone");
    c.bench_function("space/route_zone_layer", |b| {
        b.iter(|| model.space.route(black_box(from), black_box(to)));
    });
    let e = model.zone(60887).expect("E");
    let s = model.zone(60890).expect("S");
    c.bench_function("space/unavoidable_fig6", |b| {
        b.iter(|| model.space.unavoidable_between(black_box(e), black_box(s)));
    });
}

criterion_group!(
    benches,
    bench_build,
    bench_validation,
    bench_lifting,
    bench_coverage,
    bench_routing
);
criterion_main!(benches);
