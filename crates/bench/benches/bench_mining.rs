//! Mining benchmarks over synthetic visit sequences.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sitm_mining::{
    edit_distance, k_medoids, mine_rules, mine_sequential_patterns, DistanceMatrix, MarkovModel,
    NGramModel, OdMatrix,
};
use sitm_sim::{SimRng, Zipf};

/// Synthetic zone-sequence database with Zipf-distributed zones.
fn sequence_db(n_sequences: usize, mean_len: usize, alphabet: usize) -> Vec<Vec<u32>> {
    let mut rng = SimRng::seeded(11);
    let zipf = Zipf::new(alphabet, 1.0);
    (0..n_sequences)
        .map(|_| {
            let len = 1 + rng.range_usize(0, mean_len * 2);
            (0..len).map(|_| zipf.sample(&mut rng) as u32).collect()
        })
        .collect()
}

fn bench_prefixspan(c: &mut Criterion) {
    let db = sequence_db(1_000, 4, 30);
    let mut group = c.benchmark_group("mining/prefixspan");
    group.sample_size(20);
    group.bench_function("1000_seqs_minsup_50", |b| {
        b.iter(|| mine_sequential_patterns(black_box(&db), 50, 4));
    });
    group.bench_function("1000_seqs_minsup_200", |b| {
        b.iter(|| mine_sequential_patterns(black_box(&db), 200, 4));
    });
    group.finish();
}

fn bench_rules(c: &mut Criterion) {
    let db = sequence_db(1_000, 4, 30);
    let patterns = mine_sequential_patterns(&db, 50, 4);
    c.bench_function("mining/rules_from_patterns", |b| {
        b.iter(|| mine_rules(black_box(&patterns), db.len(), 0.2));
    });
}

fn bench_markov(c: &mut Criterion) {
    let db = sequence_db(2_000, 4, 30);
    c.bench_function("mining/markov_fit_2000", |b| {
        b.iter(|| MarkovModel::fit(black_box(&db)));
    });
    let model = MarkovModel::fit(&db);
    let test = sequence_db(200, 4, 30);
    c.bench_function("mining/markov_accuracy_200", |b| {
        b.iter(|| model.accuracy(black_box(&test)));
    });
}

fn bench_similarity(c: &mut Criterion) {
    let db = sequence_db(2, 40, 30);
    c.bench_function("mining/edit_distance_80ish", |b| {
        b.iter(|| edit_distance(black_box(&db[0]), black_box(&db[1])));
    });
}

fn bench_clustering(c: &mut Criterion) {
    let db = sequence_db(60, 5, 30);
    let matrix = DistanceMatrix::build(db.len(), |i, j| edit_distance(&db[i], &db[j]) as f64);
    let mut group = c.benchmark_group("mining/k_medoids");
    group.sample_size(20);
    group.bench_function("60_visitors_k4", |b| {
        b.iter(|| k_medoids(black_box(&matrix), 4, 50));
    });
    group.finish();
}

/// Ablation: how much does model order cost/buy on next-zone prediction?
fn bench_ngram_orders(c: &mut Criterion) {
    let db = sequence_db(1_000, 6, 30);
    let (train, test) = db.split_at(800);
    let mut group = c.benchmark_group("mining/ngram");
    group.sample_size(20);
    for order in [1usize, 2, 3] {
        group.bench_function(format!("fit_order_{order}"), |b| {
            b.iter(|| NGramModel::fit(black_box(train), order));
        });
    }
    let m2 = NGramModel::fit(train, 2);
    group.bench_function("accuracy_order_2", |b| {
        b.iter(|| m2.accuracy(black_box(test)));
    });
    group.finish();
}

fn bench_od_matrix(c: &mut Criterion) {
    let db = sequence_db(5_000, 6, 30);
    c.bench_function("mining/od_matrix_5000", |b| {
        b.iter(|| OdMatrix::from_sequences(black_box(&db)));
    });
}

criterion_group!(
    benches,
    bench_prefixspan,
    bench_rules,
    bench_markov,
    bench_similarity,
    bench_clustering,
    bench_ngram_orders,
    bench_od_matrix
);
criterion_main!(benches);
