//! Query-engine benchmarks: index-backed retrieval vs full scans over
//! the calibrated Louvre dataset (ablation A7 — the value of secondary
//! indexes on symbolic trajectory collections).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sitm_core::{Duration, SemanticTrajectory, TimeInterval, Timestamp};
use sitm_louvre::{build_louvre, generate_dataset, GeneratorConfig};
use sitm_query::{dwell_by_cell, flow_matrix, occupancy, Predicate, Query, TrajectoryDb};

fn louvre_db() -> (TrajectoryDb, sitm_space::CellRef) {
    let model = build_louvre();
    let dataset = generate_dataset(&GeneratorConfig::default());
    let trajectories: Vec<SemanticTrajectory> = dataset
        .visits
        .iter()
        .filter(|v| !v.detections.is_empty())
        .filter_map(|v| dataset.to_trajectory(&model, v))
        .collect();
    let p_zone = model.zone(60888).expect("zone 60888 modelled");
    (TrajectoryDb::build(trajectories), p_zone)
}

fn bench_build(c: &mut Criterion) {
    let model = build_louvre();
    let dataset = generate_dataset(&GeneratorConfig::default());
    let trajectories: Vec<SemanticTrajectory> = dataset
        .visits
        .iter()
        .filter(|v| !v.detections.is_empty())
        .filter_map(|v| dataset.to_trajectory(&model, v))
        .collect();
    let mut group = c.benchmark_group("query/build");
    group.sample_size(10);
    group.bench_function("index_4945_visits", |b| {
        b.iter(|| TrajectoryDb::build(black_box(trajectories.clone())));
    });
    group.finish();
}

fn bench_selection(c: &mut Criterion) {
    let (db, p_zone) = louvre_db();
    let window = TimeInterval::new(
        Timestamp::from_ymd_hms(2017, 3, 1, 0, 0, 0),
        Timestamp::from_ymd_hms(2017, 3, 8, 0, 0, 0),
    );
    let mut group = c.benchmark_group("query/selection");
    group.bench_function("indexed_cell_and_window", |b| {
        b.iter(|| {
            Query::new()
                .visited(black_box(p_zone))
                .during(black_box(window))
                .count(&db)
        });
    });
    // The same predicate forced down the scan path (Not defeats indexing).
    let scan_pred = Predicate::VisitedCell(p_zone)
        .and(Predicate::SpanOverlaps(window))
        .and(Predicate::Not(Box::new(Predicate::Or(vec![]))));
    group.bench_function("full_scan_cell_and_window", |b| {
        b.iter(|| Query::new().filter(black_box(scan_pred.clone())).count(&db));
    });
    group.bench_function("stay_window_probe", |b| {
        b.iter(|| {
            Query::new()
                .filter(Predicate::StayOverlaps(
                    black_box(p_zone),
                    black_box(window),
                ))
                .count(&db)
        });
    });
    group.bench_function("min_dwell_scan", |b| {
        b.iter(|| {
            Query::new()
                .filter(Predicate::MinTotalDwell(Duration::minutes(30)))
                .count(&db)
        });
    });
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let (db, _) = louvre_db();
    let mut group = c.benchmark_group("query/aggregation");
    group.sample_size(20);
    group.bench_function("dwell_by_cell", |b| {
        b.iter(|| dwell_by_cell(black_box(&db).iter()));
    });
    group.bench_function("flow_matrix", |b| {
        b.iter(|| flow_matrix(black_box(&db).iter()));
    });
    group.bench_function("occupancy_1h_buckets", |b| {
        b.iter(|| occupancy(black_box(&db), Duration::hours(1)));
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_selection, bench_aggregation);
criterion_main!(benches);
