//! Ontology benchmarks: triple-store pattern queries, reasoner
//! saturation, and trace enrichment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sitm_core::{PresenceInterval, Timestamp, Trace, TransitionTaken};
use sitm_louvre::{build_louvre, zone_key};
use sitm_ontology::{
    build_louvre_kb, enrich_trace, saturate, theme_dwell_profile, zone_semantics, Pattern,
    TripleStore,
};
use sitm_space::CellRef;

fn saturated_kb() -> TripleStore {
    let mut kb = build_louvre_kb();
    saturate(&mut kb);
    kb
}

fn bench_store_ops(c: &mut Criterion) {
    let kb = saturated_kb();
    let ty = kb.term("rdf:type").expect("interned");
    let mut group = c.benchmark_group("ontology/store");
    group.bench_function("build_louvre_kb", |b| {
        b.iter(build_louvre_kb);
    });
    group.bench_function("saturate", |b| {
        b.iter(|| {
            let mut kb = build_louvre_kb();
            saturate(black_box(&mut kb))
        });
    });
    group.bench_function("pattern_query_by_predicate", |b| {
        b.iter(|| {
            kb.query(black_box(Pattern {
                s: None,
                p: Some(ty),
                o: None,
            }))
            .len()
        });
    });
    group.finish();
}

fn bench_enrichment(c: &mut Criterion) {
    let kb = saturated_kb();
    let model = build_louvre();
    // A long visit cycling through the KB's flagship zones.
    let zones = [60862u32, 60852, 60863, 60853, 60854, 60864];
    let stays: Vec<PresenceInterval> = (0..120)
        .map(|i| {
            let zone = zones[i % zones.len()];
            PresenceInterval::new(
                TransitionTaken::Unknown,
                model.space.resolve(&zone_key(zone)).expect("zone modelled"),
                Timestamp(i as i64 * 300),
                Timestamp(i as i64 * 300 + 280),
            )
        })
        .collect();
    let trace = Trace::new(stays).expect("ordered");
    let zone_of = |cell: CellRef| -> Option<u32> {
        model
            .space
            .cell(cell)
            .and_then(|c| c.key.strip_prefix("zone"))
            .and_then(|k| k.parse().ok())
    };
    let mut group = c.benchmark_group("ontology/enrich");
    group.bench_function("enrich_120_stay_trace", |b| {
        b.iter(|| enrich_trace(black_box(&kb), trace.clone(), zone_of));
    });
    group.bench_function("theme_dwell_profile", |b| {
        b.iter(|| theme_dwell_profile(black_box(&kb), &trace, zone_of));
    });
    group.bench_function("zone_semantics_lookup", |b| {
        b.iter(|| zone_semantics(black_box(&kb), 60862));
    });
    group.finish();
}

criterion_group!(benches, bench_store_ops, bench_enrichment);
criterion_main!(benches);
