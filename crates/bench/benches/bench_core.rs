//! Trajectory-model benchmarks: ablation A4 (overlapping vs exclusive
//! segmentation), A5 (event-based splitting), and the F6 inference.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sitm_core::{
    apply_annotation_events, infer_missing_cells, maximal_episodes, Annotation, AnnotationEvent,
    AnnotationSet, EpisodicSegmentation, IntervalPredicate, PresenceInterval, SemanticTrajectory,
    Timestamp, Trace, TransitionTaken,
};
use sitm_louvre::{build_louvre, scenarios, zone_catalog};

/// A long synthetic zone trace across the active zones.
fn long_trace(model: &sitm_louvre::LouvreModel, tuples: usize) -> Trace {
    let active: Vec<u32> = zone_catalog()
        .iter()
        .filter(|z| z.active)
        .map(|z| z.id)
        .collect();
    let intervals: Vec<PresenceInterval> = (0..tuples)
        .map(|i| {
            let zone = active[i % active.len()];
            PresenceInterval::new(
                TransitionTaken::Unknown,
                model.zone(zone).expect("active zone"),
                Timestamp(i as i64 * 120),
                Timestamp(i as i64 * 120 + 100),
            )
        })
        .collect();
    Trace::new(intervals).expect("chronological")
}

fn trajectory(model: &sitm_louvre::LouvreModel, tuples: usize) -> SemanticTrajectory {
    SemanticTrajectory::new(
        "bench",
        long_trace(model, tuples),
        AnnotationSet::from_iter([Annotation::goal("visit")]),
    )
    .expect("valid")
}

/// A4: overlapping segmentation (two predicates over overlapping cell sets)
/// vs mutually exclusive segmentation (disjoint cell sets).
fn bench_segmentation(c: &mut Criterion) {
    let model = build_louvre();
    let traj = trajectory(&model, 500);
    let active: Vec<_> = zone_catalog()
        .iter()
        .filter(|z| z.active)
        .map(|z| model.zone(z.id).expect("zone"))
        .collect();
    let half = active.len() / 2;

    c.bench_function("core/a4_overlapping_segmentation", |b| {
        b.iter(|| {
            EpisodicSegmentation::from_predicates(
                black_box(&traj),
                &[
                    (
                        IntervalPredicate::in_cells(active.iter().copied()),
                        AnnotationSet::from_iter([Annotation::goal("everything")]),
                    ),
                    (
                        IntervalPredicate::in_cells(active[..half + 4].iter().copied()),
                        AnnotationSet::from_iter([Annotation::goal("first-part")]),
                    ),
                ],
            )
        });
    });
    c.bench_function("core/a4_exclusive_segmentation", |b| {
        b.iter(|| {
            EpisodicSegmentation::from_predicates(
                black_box(&traj),
                &[
                    (
                        IntervalPredicate::in_cells(active[..half].iter().copied()),
                        AnnotationSet::from_iter([Annotation::goal("first-half")]),
                    ),
                    (
                        IntervalPredicate::in_cells(active[half..].iter().copied()),
                        AnnotationSet::from_iter([Annotation::goal("second-half")]),
                    ),
                ],
            )
        });
    });
}

/// A5: event-based splitting throughput.
fn bench_enrichment(c: &mut Criterion) {
    let model = build_louvre();
    let trace = long_trace(&model, 500);
    let events: Vec<AnnotationEvent> = (0..50)
        .map(|i| {
            AnnotationEvent::new(
                Timestamp(i * 1200 + 30),
                AnnotationSet::from_iter([Annotation::goal(format!("goal-{i}"))]),
            )
        })
        .collect();
    c.bench_function("core/a5_apply_50_events_to_500_tuples", |b| {
        b.iter(|| apply_annotation_events(black_box(&trace), black_box(&events)));
    });
}

/// F6: inference over sparse traces.
fn bench_inference(c: &mut Criterion) {
    let model = build_louvre();
    // Sparse trace: every third active zone, so gaps need inference.
    let active: Vec<u32> = zone_catalog()
        .iter()
        .filter(|z| z.active && z.floor == 0)
        .map(|z| z.id)
        .collect();
    let intervals: Vec<PresenceInterval> = active
        .iter()
        .step_by(3)
        .enumerate()
        .map(|(i, &zone)| {
            PresenceInterval::new(
                TransitionTaken::Unknown,
                model.zone(zone).expect("zone"),
                Timestamp(i as i64 * 600),
                Timestamp(i as i64 * 600 + 300),
            )
        })
        .collect();
    let sparse = Trace::new(intervals).expect("chronological");
    c.bench_function("core/f6_infer_missing_cells", |b| {
        b.iter(|| {
            infer_missing_cells(black_box(&model.space), black_box(&sparse), |_| {
                AnnotationSet::new()
            })
        });
    });
    c.bench_function("core/f6_scenario_inference", |b| {
        b.iter(|| scenarios::fig6_inference(black_box(&model)));
    });
}

fn bench_episode_extraction(c: &mut Criterion) {
    let model = build_louvre();
    let traj = trajectory(&model, 1_000);
    let shops = model.zone(60890).expect("S");
    let pred = IntervalPredicate::in_cells([shops]);
    c.bench_function("core/maximal_episodes_1000_tuples", |b| {
        b.iter(|| {
            maximal_episodes(
                black_box(&traj),
                &pred,
                AnnotationSet::from_iter([Annotation::goal("shopping")]),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_segmentation,
    bench_enrichment,
    bench_inference,
    bench_episode_extraction
);
criterion_main!(benches);
