//! Qualitative spatial reasoning benchmarks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sitm_qsr::{compose, compose_sets, ConstraintNetwork, Rcc8, Rcc8Set};

fn bench_composition(c: &mut Criterion) {
    c.bench_function("qsr/compose_all_pairs", |b| {
        b.iter(|| {
            let mut acc = Rcc8Set::EMPTY;
            for r1 in Rcc8::ALL {
                for r2 in Rcc8::ALL {
                    acc = acc.union(compose(black_box(r1), black_box(r2)));
                }
            }
            acc
        });
    });
    c.bench_function("qsr/compose_sets_full", |b| {
        b.iter(|| compose_sets(black_box(Rcc8Set::FULL), black_box(Rcc8Set::FULL)));
    });
}

/// Path consistency over a containment chain (the hierarchy-validation
/// workload: room ⊂ floor ⊂ wing ⊂ museum, many rooms).
fn bench_path_consistency(c: &mut Criterion) {
    let mut group = c.benchmark_group("qsr/path_consistency");
    group.sample_size(20);
    for n in [10usize, 30, 60] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut net = ConstraintNetwork::new(n);
                // A containment chain plus disjointness among siblings.
                for i in 1..n {
                    net.constrain_single(i, 0, Rcc8::Ntpp);
                }
                for i in 1..n {
                    for j in (i + 1)..n {
                        net.constrain_single(i, j, Rcc8::Dc);
                    }
                }
                black_box(net.propagate())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_composition, bench_path_consistency);
criterion_main!(benches);
