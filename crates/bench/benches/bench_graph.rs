//! Graph substrate benchmarks, including ablation A1 (directed vs
//! undirected accessibility).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sitm_graph::{
    bfs_order, dijkstra, strongly_connected_components, unavoidable_nodes, DiMultigraph, NodeId,
};

/// Chain-with-shortcuts graph of `n` nodes, mimicking museum enfilades.
fn corridor_graph(n: usize, one_way: bool) -> (DiMultigraph<u32, f64>, Vec<NodeId>) {
    let mut g = DiMultigraph::with_capacity(n, n * 2);
    let nodes: Vec<NodeId> = (0..n).map(|i| g.add_node(i as u32)).collect();
    for i in 0..n - 1 {
        g.add_edge(nodes[i], nodes[i + 1], 1.0);
        if !one_way {
            g.add_edge(nodes[i + 1], nodes[i], 1.0);
        }
    }
    // Shortcut every 10 cells (stairs).
    for i in (0..n - 10).step_by(10) {
        g.add_edge(nodes[i], nodes[i + 10], 2.0);
        if !one_way {
            g.add_edge(nodes[i + 10], nodes[i], 2.0);
        }
    }
    (g, nodes)
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/construction");
    for n in [100usize, 1_000, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| corridor_graph(black_box(n), false));
        });
    }
    group.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let (g, nodes) = corridor_graph(5_000, false);
    c.bench_function("graph/bfs_5000", |b| {
        b.iter(|| bfs_order(black_box(&g), nodes[0]));
    });
    c.bench_function("graph/dijkstra_5000", |b| {
        b.iter(|| dijkstra(black_box(&g), nodes[0], |_, w| *w));
    });
    c.bench_function("graph/scc_5000", |b| {
        b.iter(|| strongly_connected_components(black_box(&g)));
    });
}

/// A1: the one-way rule's effect on reachability work.
fn bench_directedness_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/a1_directedness");
    for (label, one_way) in [("bidirectional", false), ("one_way", true)] {
        let (g, nodes) = corridor_graph(2_000, one_way);
        group.bench_function(label, |b| {
            b.iter(|| bfs_order(black_box(&g), nodes[0]));
        });
    }
    group.finish();
}

/// F6 primitive: unavoidable-node computation cost by graph size.
fn bench_unavoidable(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph/unavoidable_nodes");
    for n in [50usize, 200, 1_000] {
        let (g, nodes) = corridor_graph(n, false);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| unavoidable_nodes(black_box(&g), nodes[0], nodes[n - 1]));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_construction,
    bench_traversal,
    bench_directedness_ablation,
    bench_unavoidable
);
criterion_main!(benches);
