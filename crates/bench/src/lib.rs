//! # sitm-bench
//!
//! The paper-reproduction harness: one module per table/figure of the
//! paper, each returning the printable report the corresponding `repro_*`
//! binary emits. Criterion benches live in `benches/`.
//!
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured records.

pub mod repro;
pub mod stream_feeds;

pub use repro::*;
