//! Reproduction of every table and figure of the paper.
//!
//! Each function builds its experiment from scratch (models are cheap) and
//! returns the textual report. The `repro_*` binaries print these; the
//! workspace integration tests assert on their structure.

use std::fmt::Write as _;

use sitm_analytics::{bar_chart, table, Choropleth, Summary, TableAlign};
use sitm_core::{lift_trace, AnnotationKind, Duration};
use sitm_louvre::scenarios;
use sitm_louvre::{
    build_louvre, generate_dataset, zone_catalog, GeneratorConfig, PaperCalibration,
};
use sitm_qsr::{NineIntersection, Rcc8};
use sitm_space::{validate_hierarchy, IssueSeverity, SpaceQuery};

/// A paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Metric name.
    pub metric: String,
    /// The paper's reported value.
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// Whether the measurement matches (exactly or within the documented
    /// tolerance).
    pub matches: bool,
}

fn comparison_table(rows: &[ComparisonRow]) -> String {
    table(
        &["metric", "paper", "measured", "match"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.metric.clone(),
                    r.paper.clone(),
                    r.measured.clone(),
                    if r.matches { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
        &[
            TableAlign::Left,
            TableAlign::Right,
            TableAlign::Right,
            TableAlign::Left,
        ],
    )
}

/// T1 — Table 1: the terminology correspondence, driven by the Rust types
/// that realize each concept.
pub fn table1() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "== Table 1: closely related terms under indoor space modeling ==\n"
    )
    .unwrap();
    let rows = vec![
        vec![
            "(spatial) region".to_string(),
            "cell / \"cellspace\"".to_string(),
            "node".to_string(),
            "state".to_string(),
            "sitm_space::Cell @ DiMultigraph node".to_string(),
        ],
        vec![
            "(region) boundary".to_string(),
            "cell boundary".to_string(),
            "(intra-layer) edge".to_string(),
            "transition".to_string(),
            "sitm_space::Transition @ DiMultigraph edge".to_string(),
        ],
        vec![
            "overlap/coveredBy/inside/covers/contains/equal".to_string(),
            "binary topological relationship".to_string(),
            "(inter-layer) joint edge".to_string(),
            "valid overall state".to_string(),
            "sitm_space::JointRelation @ coupling edge".to_string(),
        ],
    ];
    out.push_str(&table(
        &[
            "n-intersection",
            "primal space (2D)",
            "dual space (NRG)",
            "dual space (navigation)",
            "realized by",
        ],
        &rows,
        &[],
    ));
    // The six joint relations and their 9-intersection matrices.
    writeln!(
        out,
        "\njoint relations as 9-intersection patterns (regular closed regions):"
    )
    .unwrap();
    for rel in sitm_space::JointRelation::ALL {
        let matrix = NineIntersection::from_rcc8(rel.to_rcc8());
        writeln!(
            out,
            "  {:<10} RCC8 {:<6} 9IM {}",
            rel.name(),
            rel.to_rcc8().name(),
            matrix
        )
        .unwrap();
    }
    // And the two excluded ones.
    for rcc in [Rcc8::Dc, Rcc8::Ec] {
        let matrix = NineIntersection::from_rcc8(rcc);
        writeln!(
            out,
            "  {:<10} RCC8 {:<6} 9IM {}   (excluded from joint edges)",
            rcc.to_spatial().name(),
            rcc.name(),
            matrix
        )
        .unwrap();
    }
    out
}

/// D1 — §4.1 dataset statistics, paper vs generated.
pub fn dataset_stats(config: &GeneratorConfig) -> String {
    let cal = &config.calibration;
    let ds = generate_dataset(config);
    let stats = ds.stats();
    let fmt_dur = |d: Duration| d.to_string();
    let rows = vec![
        ComparisonRow {
            metric: "visits".into(),
            paper: cal.visits.to_string(),
            measured: stats.visits.to_string(),
            matches: stats.visits == cal.visits,
        },
        ComparisonRow {
            metric: "visitors".into(),
            paper: cal.visitors.to_string(),
            measured: stats.visitors.to_string(),
            matches: stats.visitors == cal.visitors,
        },
        ComparisonRow {
            metric: "returning visitors".into(),
            paper: cal.returning_visitors.to_string(),
            measured: stats.returning_visitors.to_string(),
            matches: stats.returning_visitors == cal.returning_visitors,
        },
        ComparisonRow {
            metric: "second/third visits".into(),
            paper: cal.revisits.to_string(),
            measured: stats.revisits.to_string(),
            matches: stats.revisits == cal.revisits,
        },
        ComparisonRow {
            metric: "zone detections".into(),
            paper: cal.detections.to_string(),
            measured: stats.detections.to_string(),
            matches: stats.detections == cal.detections,
        },
        ComparisonRow {
            metric: "intra-visit transitions".into(),
            paper: cal.transitions.to_string(),
            measured: stats.transitions.to_string(),
            matches: stats.transitions == cal.transitions,
        },
        ComparisonRow {
            metric: "zones in dataset".into(),
            paper: cal.zones_active.to_string(),
            measured: stats.distinct_zones.to_string(),
            matches: stats.distinct_zones == cal.zones_active,
        },
        ComparisonRow {
            metric: "zero-duration rate".into(),
            paper: format!("~{:.0}%", cal.zero_duration_rate * 100.0),
            measured: format!("{:.1}%", stats.zero_duration_rate * 100.0),
            matches: (stats.zero_duration_rate - cal.zero_duration_rate).abs() < 0.02,
        },
        ComparisonRow {
            metric: "min visit duration".into(),
            paper: "0:00:00 (potential error)".into(),
            measured: fmt_dur(stats.min_visit_duration),
            matches: stats.min_visit_duration == Duration::ZERO,
        },
        ComparisonRow {
            metric: "max visit duration".into(),
            paper: fmt_dur(cal.max_visit_duration),
            measured: fmt_dur(stats.max_visit_duration),
            matches: stats.max_visit_duration <= cal.max_visit_duration,
        },
        ComparisonRow {
            metric: "max detection duration".into(),
            paper: fmt_dur(cal.max_detection_duration),
            measured: fmt_dur(stats.max_detection_duration),
            matches: stats.max_detection_duration <= cal.max_detection_duration,
        },
        ComparisonRow {
            metric: "mean detections/visit".into(),
            paper: format!("{:.3}", cal.mean_detections_per_visit()),
            measured: format!("{:.3}", stats.mean_detections_per_visit),
            matches: (stats.mean_detections_per_visit - cal.mean_detections_per_visit()).abs()
                < 0.01,
        },
    ];
    let mut out = String::new();
    writeln!(
        out,
        "== D1: dataset statistics (§4.1), paper vs synthetic ==\n"
    )
    .unwrap();
    out.push_str(&comparison_table(&rows));
    writeln!(
        out,
        "\nnote: maxima are generator caps (paper reports observed maxima);\n\
         the zero-duration rate target is the paper's \"around 10%\"."
    )
    .unwrap();
    out
}

/// F1 — Fig. 1: the Denon two-level hierarchical graph.
pub fn fig1() -> String {
    let fig = sitm_louvre::denon::denon_figure1();
    let mut out = String::new();
    writeln!(
        out,
        "== F1: Fig. 1 — Denon wing, 1st floor, 2-level graph ==\n"
    )
    .unwrap();
    for (idx, layer) in fig.space.layers() {
        writeln!(out, "layer {idx}: {layer}").unwrap();
        for (cref, cell) in fig.space.cells_in(idx) {
            writeln!(out, "  node {cref}: {} [{}]", cell.name, cell.class).unwrap();
        }
        for e in fig.space.transitions_in(idx) {
            writeln!(out, "  edge {} -> {} via {}", e.from, e.to, e.payload).unwrap();
        }
    }
    writeln!(out, "joint edges:").unwrap();
    for j in fig.space.joints() {
        writeln!(
            out,
            "  {}:{} -[{}]-> {}:{}",
            j.from.0, j.from.1, j.payload, j.to.0, j.to.1
        )
        .unwrap();
    }
    let salle = fig.rooms[3];
    let room2 = fig.rooms[1];
    let nrg = fig.space.nrg(salle.layer).expect("layer exists");
    writeln!(
        out,
        "\nSalle des Etats one-way rule: 4->2 allowed = {}, 2->4 allowed = {}",
        nrg.has_edge(salle.node, room2.node),
        nrg.has_edge(room2.node, salle.node)
    )
    .unwrap();
    let detour = fig.space.route(room2, salle).expect("detour exists");
    writeln!(
        out,
        "entering room 4 from room 2 requires the detour of {} cells",
        detour.len()
    )
    .unwrap();
    out
}

/// F2 — Fig. 2: the extended 5-layer core hierarchy, on the full Louvre.
pub fn fig2() -> String {
    let model = build_louvre();
    let mut out = String::new();
    writeln!(
        out,
        "== F2: Fig. 2 — core layer hierarchy with complex root and RoI leaf ==\n"
    )
    .unwrap();
    let mut rows = Vec::new();
    for &layer in model.hierarchy.layers() {
        let meta = model.space.layer(layer).expect("layer exists");
        let cells = model.space.cells_in(layer).count();
        let edges = model.space.transitions_in(layer).count();
        rows.push(vec![
            format!("{layer}"),
            meta.name.clone(),
            meta.kind.to_string(),
            cells.to_string(),
            edges.to_string(),
        ]);
    }
    out.push_str(&table(
        &["layer", "name", "kind", "cells", "acc. edges"],
        &rows,
        &[
            TableAlign::Left,
            TableAlign::Left,
            TableAlign::Left,
            TableAlign::Right,
            TableAlign::Right,
        ],
    ));
    let issues = validate_hierarchy(&model.space, &model.hierarchy);
    let errors = issues
        .iter()
        .filter(|i| i.severity() == IssueSeverity::Error)
        .count();
    let warnings = issues.len() - errors;
    writeln!(
        out,
        "\nhierarchy validation: {errors} error(s), {warnings} warning(s) \
         (contains/covers only, top->bottom, no layer skips, single parents)"
    )
    .unwrap();
    writeln!(
        out,
        "joint edges total: {} (incl. the thematic zone layer \"between Layer 2 and Layer 1\")",
        model.space.stats().joints
    )
    .unwrap();
    out
}

/// F3 — Fig. 3: choropleth of detections over the 11 ground-floor zones.
pub fn fig3(config: &GeneratorConfig) -> String {
    let ds = generate_dataset(config);
    let counts = ds.detections_per_zone();
    let catalog = zone_catalog();
    let mut series: Vec<(String, f64)> = catalog
        .iter()
        .filter(|z| z.floor == 0)
        .map(|z| {
            (
                format!("{} {}", z.id, z.theme),
                counts.get(&z.id).copied().unwrap_or(0) as f64,
            )
        })
        .collect();
    series.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let choropleth = Choropleth::quantiles(series.clone(), 5);
    let mut out = String::new();
    writeln!(
        out,
        "== F3: Fig. 3 — ground-floor zone detection choropleth ==\n"
    )
    .unwrap();
    out.push_str(&bar_chart(&series, 40));
    writeln!(out, "\nquantile classes (5 = darkest):").unwrap();
    for e in choropleth.entries() {
        writeln!(out, "  class {}  {}", e.class + 1, e.label).unwrap();
    }
    out
}

/// F4 — Fig. 4: RoIs of zones 60853/60854 do not cover their zones.
pub fn fig4() -> String {
    let model = build_louvre();
    let mut out = String::new();
    writeln!(
        out,
        "== F4: Fig. 4 — RoIs inside zones 60854 and 60853 ==\n"
    )
    .unwrap();
    let mut rows = Vec::new();
    for zone_id in [60853u32, 60854] {
        let zone_ref = model.zone(zone_id).expect("catalog zone");
        let zone_cell = model.space.cell(zone_ref).expect("cell exists");
        let zone_poly = zone_cell.geometry.as_ref().expect("zones have geometry");
        // RoIs tagged with this zone id.
        let mut roi_count = 0usize;
        let mut roi_area = 0.0f64;
        for (_, cell) in model.space.cells_in(model.roi_layer) {
            if cell.attribute("zone") == Some(zone_id.to_string().as_str()) {
                roi_count += 1;
                roi_area += cell.geometry.as_ref().map(|p| p.area()).unwrap_or(0.0);
            }
        }
        let coverage = roi_area / zone_poly.area();
        rows.push(vec![
            format!("zone{zone_id}"),
            zone_cell.name.clone(),
            roi_count.to_string(),
            format!("{:.0}", zone_poly.area()),
            format!("{:.0}", roi_area),
            format!("{:.1}%", coverage * 100.0),
        ]);
    }
    out.push_str(&table(
        &["zone", "theme", "RoIs", "zone m^2", "RoI m^2", "coverage"],
        &rows,
        &[
            TableAlign::Left,
            TableAlign::Left,
            TableAlign::Right,
            TableAlign::Right,
            TableAlign::Right,
            TableAlign::Right,
        ],
    ));
    writeln!(
        out,
        "\nthe RoIs \"do not completely cover their room's surface\" — the\n\
         full-coverage hypothesis fails at the RoI layer, as the paper argues."
    )
    .unwrap();
    out
}

/// F5 — Fig. 5: the overlapping "exit museum" / "buy souvenir" episodes.
pub fn fig5() -> String {
    let model = build_louvre();
    let traj = scenarios::fig5_trajectory(&model);
    let seg = scenarios::fig5_segmentation(&model, &traj).expect("annotations differ");
    let mut out = String::new();
    writeln!(
        out,
        "== F5: Fig. 5 — overlapping goal episodes over E->P->S->C ==\n"
    )
    .unwrap();
    writeln!(out, "trajectory {}:", traj.moving_object).unwrap();
    for p in traj.trace().intervals() {
        let cell = model.space.cell(p.cell).expect("cell exists");
        writeln!(out, "  {} [{}]  {}", p, cell.name, cell.key).unwrap();
    }
    writeln!(out, "\nepisodic segmentation ({} episodes):", seg.len()).unwrap();
    for (i, e) in seg.episodes().iter().enumerate() {
        writeln!(
            out,
            "  episode {}: tuples {:?}, {} .. {}, {}",
            i + 1,
            e.range,
            e.time.start,
            e.time.end,
            e.annotations
        )
        .unwrap();
    }
    writeln!(
        out,
        "\ncovers trajectory: {} | overlapping pairs: {:?} | mutually exclusive: {}",
        seg.covers(&traj),
        seg.overlapping_pairs(),
        seg.is_mutually_exclusive()
    )
    .unwrap();
    writeln!(
        out,
        "the same E->P->S movement belongs to both episodes — the model\n\
         permits overlapping episodic segmentations by design (§3.3)."
    )
    .unwrap();
    out
}

/// F6 — Fig. 6: inference of the undetected passage zone plus the
/// population-level dwell comparison (δt1 ≫ δt2).
pub fn fig6(config: &GeneratorConfig) -> String {
    let model = build_louvre();
    let mut out = String::new();
    writeln!(
        out,
        "== F6: Fig. 6 — topology-based inference of zone 60888 ==\n"
    )
    .unwrap();
    let observed = scenarios::fig6_observed_trace(&model);
    writeln!(out, "observed (sparse) trace:").unwrap();
    for p in observed.intervals() {
        let cell = model.space.cell(p.cell).expect("cell exists");
        writeln!(out, "  {} [{}]", p, cell.key).unwrap();
    }
    let outcome = scenarios::fig6_inference(&model);
    writeln!(
        out,
        "\nafter inference ({} tuple inserted):",
        outcome.inferred.len()
    )
    .unwrap();
    for p in outcome.trace.intervals() {
        let cell = model.space.cell(p.cell).expect("cell exists");
        let marker = if p
            .annotations
            .has(&AnnotationKind::Custom("inference".to_string()), "topology")
        {
            "  <-- inferred"
        } else {
            ""
        };
        writeln!(out, "  {} [{}]{}", p, cell.key, marker).unwrap();
    }
    writeln!(
        out,
        "\nscenario dwell ratio dt1/dt2 = {:.1} (expected >> 1)",
        scenarios::fig6_dwell_ratio(&model)
    )
    .unwrap();

    // Population-level check over the synthetic dataset: mean dwell in the
    // separate-ticket exhibition E vs the exit-path shops S.
    let ds = generate_dataset(config);
    let dwell_of = |zone_id: u32| -> Option<Summary> {
        let mut values = Vec::new();
        for v in &ds.visits {
            for d in &v.detections {
                if d.zone_id == zone_id {
                    values.push(d.duration().as_secs_f64());
                }
            }
        }
        Summary::of(&values)
    };
    if let (Some(e), Some(s)) = (dwell_of(60887), dwell_of(60890)) {
        writeln!(
            out,
            "population dwell: E mean {:.0}s (n={}) vs S mean {:.0}s (n={}); ratio {:.2}",
            e.mean,
            e.count,
            s.mean,
            s.count,
            e.mean / s.mean
        )
        .unwrap();
    }
    writeln!(
        out,
        "ambiguous segments: {} (0 expected: P is unavoidable between E and S)",
        outcome.ambiguous.len()
    )
    .unwrap();
    out
}

/// A6 ablation summary — symbolic vs geometric location handling: runs the
/// positioning pipeline over a walk inside the Louvre zones and reports the
/// detection stream it produces.
pub fn positioning_demo() -> String {
    use sitm_geometry::Point;
    use sitm_positioning::{BeaconDeployment, GroundTruthFix, Pipeline, RssiModel, ZoneMap};
    use sitm_sim::SimRng;

    let model = build_louvre();
    let zones = ZoneMap::build(&model.space, model.zone_layer, 20.0);
    let mut deployment = BeaconDeployment::new();
    // Cover floor 0 (the Fig. 3 floor): zones live in wing bands.
    deployment.grid(model.site_bbox(), 0, 12.0, -59.0);
    let pipeline = Pipeline::new(deployment, RssiModel::indoor_default());

    // Ground truth: a walk across the Denon band on floor 0.
    let path: Vec<GroundTruthFix> = (0..240)
        .map(|i| GroundTruthFix {
            at: sitm_core::Timestamp(i),
            position: Point::new(5.0 + i as f64 * 1.2, 20.0),
            floor: 0,
        })
        .collect();
    let mut rng = SimRng::seeded(99);
    let report = pipeline.run(&model.space, &zones, &path, &mut rng);
    let mut out = String::new();
    writeln!(
        out,
        "== A6: geometric positioning pipeline over the Louvre floor 0 ==\n"
    )
    .unwrap();
    writeln!(
        out,
        "fixes {} | solved {} | raw err {:.2} m | filtered err {:.2} m | unmapped {}",
        report.fixes,
        report.solved_fixes,
        report.raw_error_mean,
        report.filtered_error_mean,
        report.unmapped_fixes
    )
    .unwrap();
    writeln!(out, "zone detections:").unwrap();
    for d in &report.detections {
        let cell = model.space.cell(d.cell).expect("cell exists");
        writeln!(out, "  {} [{} .. {}]", cell.key, d.start, d.end).unwrap();
    }
    let trace = report.to_trace();
    writeln!(
        out,
        "\nsymbolic trace: {} tuples, {} transitions — the model's working\n\
         representation after the geometric pipeline is left behind (§1).",
        trace.len(),
        trace.transition_count()
    )
    .unwrap();
    out
}

/// Floor-switching patterns (§5 "coarse level of granularity") over the
/// synthetic dataset, via granularity lifting of the room-level scenario.
pub fn floor_patterns(config: &GeneratorConfig) -> String {
    let ds = generate_dataset(config);
    let catalog = zone_catalog();
    let floor_of: std::collections::BTreeMap<u32, i8> =
        catalog.iter().map(|z| (z.id, z.floor)).collect();
    let visits: Vec<Vec<i8>> = ds
        .visits
        .iter()
        .map(|v| v.detections.iter().map(|d| floor_of[&d.zone_id]).collect())
        .collect();
    let bigrams = sitm_mining::floor_switch_ngrams(&visits, 2);
    let mut out = String::new();
    writeln!(out, "== floor-switching patterns (§5) ==\n").unwrap();
    let rows: Vec<Vec<String>> = bigrams
        .iter()
        .take(10)
        .map(|(gram, count)| {
            vec![
                gram.iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join(" -> "),
                count.to_string(),
            ]
        })
        .collect();
    out.push_str(&table(
        &["floor switch", "count"],
        &rows,
        &[TableAlign::Left, TableAlign::Right],
    ));
    out
}

/// Demonstrates granularity lifting on a generated visit: zone trace cannot
/// lift (zones sit outside the hierarchy) but the room-level Fig. 5 walk
/// lifts to floors and buildings.
pub fn lifting_demo() -> String {
    use sitm_core::{PresenceInterval, Timestamp, Trace, TransitionTaken};

    let model = build_louvre();
    let mut out = String::new();
    writeln!(
        out,
        "== granularity lifting (§3.2 transitivity of parthood) ==\n"
    )
    .unwrap();
    // Build a room-level trace: rooms of zones 60886 (floor -2) then 60861,
    // 60862 (floor +1, Denon).
    let room = |zone: u32, idx: usize| {
        model
            .space
            .resolve(&sitm_louvre::building::room_key(zone, idx))
            .expect("room exists")
    };
    let trace = Trace::new(vec![
        PresenceInterval::new(
            TransitionTaken::Unknown,
            room(60886, 0),
            Timestamp(0),
            Timestamp(300),
        ),
        PresenceInterval::new(
            TransitionTaken::Unknown,
            room(60861, 0),
            Timestamp(300),
            Timestamp(900),
        ),
        PresenceInterval::new(
            TransitionTaken::Unknown,
            room(60861, 1),
            Timestamp(900),
            Timestamp(1200),
        ),
        PresenceInterval::new(
            TransitionTaken::Unknown,
            room(60862, 0),
            Timestamp(1200),
            Timestamp(2400),
        ),
    ])
    .expect("chronological");
    writeln!(out, "room-level trace: {} tuples", trace.len()).unwrap();
    for &(layer, label) in &[
        (model.floor_layer, "floor"),
        (model.building_layer, "building"),
        (model.complex_layer, "museum"),
    ] {
        let lifted = lift_trace(&model.space, &model.hierarchy, &trace, layer).expect("lifts");
        let cells: Vec<String> = lifted
            .intervals()
            .iter()
            .map(|p| model.space.cell(p.cell).expect("cell").key.clone())
            .collect();
        writeln!(
            out,
            "  lifted to {label:<9} {} tuples: {}",
            lifted.len(),
            cells.join(" -> ")
        )
        .unwrap();
    }
    out
}

/// Runs every reproduction and concatenates the reports.
pub fn all(config: &GeneratorConfig) -> String {
    let mut out = String::new();
    for section in [
        table1(),
        fig1(),
        fig2(),
        fig4(),
        fig5(),
        dataset_stats(config),
        fig3(config),
        fig6(config),
        floor_patterns(config),
        positioning_demo(),
        lifting_demo(),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    out
}

/// A scaled-down calibration for fast tests (all §4.1 identities hold).
pub fn scaled_config(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        seed,
        calibration: PaperCalibration {
            visits: 310,
            visitors: 200,
            returning_visitors: 80,
            revisits: 110,
            detections: 1_300,
            transitions: 1_300 - 310,
            ..PaperCalibration::default()
        },
        ..GeneratorConfig::default()
    }
}

/// Full paper-scale configuration with the canonical seed.
pub fn paper_config() -> GeneratorConfig {
    GeneratorConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_all_vocabularies() {
        let out = table1();
        assert!(out.contains("n-intersection"));
        assert!(out.contains("joint edge"));
        assert!(out.contains("coveredBy"));
        assert!(out.contains("TFFFTFFFT"), "EQ 9IM pattern");
        assert!(out.contains("excluded from joint edges"));
    }

    #[test]
    fn dataset_stats_all_rows_match_on_scaled_config() {
        let out = dataset_stats(&scaled_config(3));
        assert!(!out.contains(" NO"), "mismatch rows in:\n{out}");
        assert!(out.contains("visits"));
        assert!(out.contains("zero-duration rate"));
    }

    #[test]
    fn fig1_shows_one_way_rule() {
        let out = fig1();
        assert!(out.contains("4->2 allowed = true"));
        assert!(out.contains("2->4 allowed = false"));
    }

    #[test]
    fn fig2_validates_cleanly() {
        let out = fig2();
        assert!(out.contains("0 error(s)"));
        assert!(out.contains("buildingComplex"));
        assert!(out.contains("roi"));
    }

    #[test]
    fn fig3_lists_eleven_ground_floor_zones() {
        let out = fig3(&scaled_config(4));
        let bars = out.lines().filter(|l| l.contains('#')).count();
        assert!(bars >= 8, "most ground-floor zones get detections:\n{out}");
        assert!(out.contains("608"));
    }

    #[test]
    fn fig4_shows_partial_coverage() {
        let out = fig4();
        assert!(out.contains("zone60853"));
        assert!(out.contains("zone60854"));
        // Coverage column shows percentages well below 100%.
        assert!(out.contains('%'));
        assert!(!out.contains("100.0%"));
    }

    #[test]
    fn fig5_reports_overlap() {
        let out = fig5();
        assert!(out.contains("overlapping pairs: [(0, 1)]"));
        assert!(out.contains("mutually exclusive: false"));
        assert!(out.contains("buy souvenir"));
        assert!(out.contains("exit museum"));
    }

    #[test]
    fn fig6_reports_inference() {
        let out = fig6(&scaled_config(5));
        assert!(out.contains("<-- inferred"));
        assert!(out.contains("zone60888"));
        assert!(out.contains("cloakroomPickup"));
        assert!(out.contains("ambiguous segments: 0"));
    }

    #[test]
    fn positioning_demo_produces_detections() {
        let out = positioning_demo();
        assert!(out.contains("zone detections:"));
        assert!(out.contains("symbolic trace:"));
    }

    #[test]
    fn lifting_demo_shows_floor_switch() {
        let out = lifting_demo();
        assert!(out.contains("floor-napoleon-m2"));
        assert!(out.contains("floor-denon-p1"));
        assert!(out.contains("wing-napoleon -> wing-denon"));
        assert!(
            out.contains("louvre"),
            "museum-level lift collapses to one cell"
        );
    }

    #[test]
    fn floor_patterns_counts_bigrams() {
        let out = floor_patterns(&scaled_config(6));
        assert!(out.contains("->"));
        assert!(out.contains("count"));
    }
}
