//! Shared workload builders for the streaming benchmarks.
//!
//! `benches/bench_stream.rs` (criterion, human-readable) and
//! `bin/bench_json.rs` (machine-readable `BENCH_3.json` snapshot)
//! measure the same workloads; keeping the feed and engine-config
//! constructors here guarantees the two stay in lockstep — a tweak to
//! the Zipf shape or the predicate table changes both measurements or
//! neither.

use sitm_core::{
    Annotation, AnnotationSet, Duration, IntervalPredicate, PresenceInterval, Timestamp,
    TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_louvre::{generate_dataset, zone_key, GeneratorConfig, LouvreModel, PaperCalibration};
use sitm_space::CellRef;
use sitm_stream::{dataset_events, EngineConfig, StreamEvent, VisitKey};

/// One-goal annotation set.
pub fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

/// A mid-size Louvre day: ~500 visits, ~2500 detections (the scale the
/// live-query acceptance targets are stated at).
pub fn louvre_feed(model: &LouvreModel) -> Vec<StreamEvent> {
    let cal = PaperCalibration {
        visits: 500,
        visitors: 400,
        returning_visitors: 100,
        revisits: 100,
        detections: 2_500,
        transitions: 2_000,
        ..PaperCalibration::default()
    };
    let dataset = generate_dataset(&GeneratorConfig {
        seed: 20_170_119,
        calibration: cal,
        ..GeneratorConfig::default()
    });
    dataset_events(model, &dataset)
}

/// The benchmark predicate table (exit chain, long stay, whole visit).
pub fn stream_config(model: &LouvreModel, shards: usize) -> EngineConfig {
    let exit_chain = [60887u32, 60888, 60890]
        .map(|id| model.space.resolve(&zone_key(id)).expect("zone resolves"));
    EngineConfig::new(vec![
        (
            IntervalPredicate::in_cells(exit_chain),
            label("exit museum"),
        ),
        (
            IntervalPredicate::min_duration(Duration::minutes(5)),
            label("long stay"),
        ),
        (IntervalPredicate::any(), label("whole visit")),
    ])
    .with_shards(shards)
}

/// A Zipf-skewed synthetic feed: visit v's event budget is proportional
/// to `1 / (v + 1)^s`, so visit 0 dominates (the tour-group device that
/// used to saturate one worker under the static hash router) while
/// hundreds of cold visits trickle. Cells are skewed too.
/// Deterministic — no RNG needed.
pub fn skewed_feed(visits: usize, total_events: usize, s: f64) -> Vec<StreamEvent> {
    let cell = |n: usize| CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n));
    let weights: Vec<f64> = (0..visits)
        .map(|v| 1.0 / ((v + 1) as f64).powf(s))
        .collect();
    let norm: f64 = weights.iter().sum();
    let mut events = Vec::with_capacity(total_events + 2 * visits);
    for (v, w) in weights.iter().enumerate() {
        let budget = ((w / norm) * total_events as f64).ceil() as usize;
        let base = v as i64;
        events.push(StreamEvent::VisitOpened {
            visit: VisitKey(v as u64),
            moving_object: format!("mo-{v}"),
            annotations: label("visit"),
            at: Timestamp(base),
        });
        for i in 0..budget.max(1) {
            // Zipf-ish cell choice: low cells dominate.
            let c = (i * (v + 7)) % 11;
            let c = if c < 6 {
                0
            } else if c < 9 {
                1
            } else {
                c
            };
            events.push(StreamEvent::Presence {
                visit: VisitKey(v as u64),
                interval: PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(c),
                    Timestamp(base + i as i64 * 10),
                    Timestamp(base + i as i64 * 10 + 10),
                ),
            });
        }
        events.push(StreamEvent::VisitClosed {
            visit: VisitKey(v as u64),
            at: Timestamp(base + budget.max(1) as i64 * 10 + 10),
        });
    }
    sitm_stream::event::sort_feed(&mut events);
    events
}
