//! Prints the Fig. 4 RoI coverage report (experiment F4).
fn main() {
    print!("{}", sitm_bench::fig4());
}
