//! Prints the Fig. 6 missing-zone inference walk-through (experiment F6).
//! Pass `--scaled` for the fast scaled-down calibration.
fn main() {
    let config = if std::env::args().any(|a| a == "--scaled") {
        sitm_bench::scaled_config(1)
    } else {
        sitm_bench::paper_config()
    };
    print!("{}", sitm_bench::fig6(&config));
}
