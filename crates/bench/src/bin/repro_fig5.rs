//! Prints the Fig. 5 overlapping episodic segmentation (experiment F5).
fn main() {
    print!("{}", sitm_bench::fig5());
}
