//! Prints the Fig. 1 Denon two-level graph (experiment F1).
fn main() {
    print!("{}", sitm_bench::fig1());
}
