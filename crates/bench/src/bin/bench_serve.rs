//! Multi-client load generator for the network tier: N concurrent
//! client threads drive one `sitm-serve` server end to end (TCP,
//! framing, codec, engine, warehouse) and report aggregate **ingest
//! events/s** and **queries/s**.
//!
//! Usage:
//! `cargo run --release -p sitm-bench --bin bench_serve [clients] [events_per_client] [queries_per_client]`
//! (defaults: 4 clients, 20 000 events each, 200 queries each).
//!
//! The acceptance shape this binary demonstrates: N ≥ 4 concurrent
//! clients ingesting into and querying one server, with a final
//! consistency check (served totals == what the clients sent). On a
//! single-core container the numbers measure protocol + scheduler
//! overhead; rerun on a multi-core host for throughput that reflects
//! the engine's parallelism.

use std::time::Instant;

use sitm_core::{
    Annotation, AnnotationSet, Duration, IntervalPredicate, PresenceInterval, Timestamp,
    TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_query::wire::WireQuery;
use sitm_query::{Predicate, SortKey};
use sitm_serve::{Client, Server, ServerConfig};
use sitm_space::CellRef;
use sitm_stream::{EngineConfig, StreamEvent, VisitKey};

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

fn label(s: &str) -> AnnotationSet {
    AnnotationSet::from_iter([Annotation::goal(s)])
}

/// One client's feed: visits in the client's own key range, every
/// visit closed (so the history is spillable), ~5 events per visit.
fn client_feed(client: u64, events_target: usize) -> Vec<StreamEvent> {
    let visits = (events_target / 5).max(1) as u64;
    let base = client * 10_000_000;
    let mut events = Vec::with_capacity(events_target + 2);
    for v in base..base + visits {
        let t0 = ((v - base) % 1009) as i64 * 10;
        events.push(StreamEvent::VisitOpened {
            visit: VisitKey(v),
            moving_object: format!("mo-{v}"),
            annotations: label("visit"),
            at: Timestamp(t0),
        });
        for (i, c) in [1usize, (v % 7) as usize, 2].iter().enumerate() {
            events.push(StreamEvent::Presence {
                visit: VisitKey(v),
                interval: PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(*c),
                    Timestamp(t0 + i as i64 * 50),
                    Timestamp(t0 + i as i64 * 50 + 40),
                ),
            });
        }
        events.push(StreamEvent::VisitClosed {
            visit: VisitKey(v),
            at: Timestamp(t0 + 300),
        });
    }
    events
}

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let events_per_client: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let queries_per_client: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    assert!(clients >= 1, "need at least one client");

    let warehouse_dir =
        std::env::temp_dir().join(format!("sitm-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&warehouse_dir);

    let engine = EngineConfig::new(vec![
        (IntervalPredicate::in_cells([cell(1)]), label("one")),
        (
            IntervalPredicate::min_duration(Duration::seconds(35)),
            label("long"),
        ),
    ])
    .with_shards(2);
    let server = Server::start(
        ServerConfig::new(engine, &warehouse_dir)
            .with_sessions(clients as usize + 1)
            // Spill in chunky segments so zone maps stay selective.
            .with_flush_batch(256),
    )
    .expect("start server");
    let addr = server.addr();
    println!(
        "# bench_serve: {clients} clients × {events_per_client} events + {queries_per_client} queries against {addr}"
    );
    println!(
        "# host: {} core(s) visible",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // ---- Phase 1: concurrent ingest ------------------------------------
    let ingest_start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let feed = client_feed(c, events_per_client);
                let total = feed.len() as u64;
                let mut sent = 0u64;
                for chunk in feed.chunks(512) {
                    sent += client.ingest_batch(chunk.to_vec()).expect("ingest");
                }
                assert_eq!(sent, total);
                total
            })
        })
        .collect();
    let total_events: u64 = handles.into_iter().map(|h| h.join().expect("writer")).sum();
    let ingest_secs = ingest_start.elapsed().as_secs_f64();

    // Spill everything closed so the query phase hits a real warehouse.
    let mut control = Client::connect(addr).expect("connect control");
    let (spilled, warehouse_total, _) = control.checkpoint().expect("checkpoint");
    let stats = control.server_stats().expect("stats");
    assert_eq!(
        stats.events, total_events,
        "server applied every event the clients sent"
    );
    assert_eq!(stats.anomalies, 0);
    assert_eq!(spilled, warehouse_total, "first spill owns the warehouse");

    println!(
        "serve/ingest: {total_events} events over {clients} clients in {ingest_secs:.3}s \
         = {:.0} events/s end-to-end",
        total_events as f64 / ingest_secs
    );

    // ---- Phase 2: concurrent queries -----------------------------------
    // A selective point query (one visitor's history) — the shape the
    // zone-map + Bloom pruning tier exists for.
    let query_start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let target = format!("mo-{}", c * 10_000_000 + 1);
                let q = WireQuery {
                    predicate: Predicate::MovingObject(target),
                    order: Some((SortKey::Start, true)),
                    offset: 0,
                    limit: Some(10),
                };
                for _ in 0..queries_per_client {
                    let rows = client.query_federated(&q).expect("query");
                    assert_eq!(rows.len(), 1, "each visitor has exactly one visit");
                }
                queries_per_client as u64
            })
        })
        .collect();
    let total_queries: u64 = handles.into_iter().map(|h| h.join().expect("reader")).sum();
    let query_secs = query_start.elapsed().as_secs_f64();
    println!(
        "serve/query_federated: {total_queries} point queries over {clients} clients in \
         {query_secs:.3}s = {:.0} queries/s end-to-end",
        total_queries as f64 / query_secs
    );

    // The pruning tier really engages on this workload.
    let report = control
        .explain(&Predicate::MovingObject("mo-1".into()))
        .expect("explain");
    println!(
        "explain mo-1: {} segments, {} zone-pruned ({} by Bloom alone)",
        report.segments, report.zone_pruned, report.bloom_pruned
    );

    control.shutdown().expect("shutdown");
    server.join().expect("join");
    let _ = std::fs::remove_dir_all(&warehouse_dir);
}
