//! Prints the Fig. 3 ground-floor choropleth (experiment F3).
//! Pass `--scaled` for the fast scaled-down calibration.
fn main() {
    let config = if std::env::args().any(|a| a == "--scaled") {
        sitm_bench::scaled_config(1)
    } else {
        sitm_bench::paper_config()
    };
    print!("{}", sitm_bench::fig3(&config));
}
