//! Prints the Fig. 2 five-layer hierarchy inventory (experiment F2).
fn main() {
    print!("{}", sitm_bench::fig2());
}
