//! Prints the Table 1 terminology correspondence (experiment T1).
fn main() {
    print!("{}", sitm_bench::table1());
}
