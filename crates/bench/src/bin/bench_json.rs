//! Machine-readable performance snapshot: times the hot paths this
//! repo's perf work targets and writes `BENCH_3.json` (group → ns/op)
//! — the seed of the cross-PR perf trajectory, uploaded as a CI
//! artifact so regressions are diffable without parsing criterion
//! output.
//!
//! Usage: `cargo run --release -p sitm-bench --bin bench_json [path]`
//! (default output path: `BENCH_3.json` in the working directory).
//!
//! The wall-clock numbers carry the same caveat as `bench_stream`: on a
//! single-core container the parallel groups measure scheduler overhead
//! with no cores to win, so compare `skewed_ingest/parallel_4` against
//! `skewed_ingest/sequential_1` only on multi-core hosts. The
//! `live_query/indexed_count` vs `live_query/scan_count` ratio (the
//! ≥ 5× acceptance target) is core-count independent.

use std::fmt::Write as _;
use std::time::Instant;

use sitm_bench::stream_feeds::{louvre_feed, skewed_feed, stream_config as config};
use sitm_louvre::build_louvre;
use sitm_query::Predicate;
use sitm_stream::{ParallelEngine, ShardedEngine, StreamEvent};

/// Median-of-runs wall-clock timer: ns per invocation of `body`.
fn time_ns<T>(runs: usize, mut body: impl FnMut() -> T) -> u64 {
    // One warmup outside the measurement.
    let _ = body();
    let mut samples: Vec<u64> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            let result = body();
            let ns = start.elapsed().as_nanos() as u64;
            std::hint::black_box(result);
            ns
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_3.json".to_string());
    let model = build_louvre();
    let louvre = louvre_feed(&model);
    let skewed = skewed_feed(400, 20_000, 1.2);
    let mut results: Vec<(String, u64)> = Vec::new();

    // Uniform ingest, sequential vs work-stealing parallel.
    results.push((
        "stream/ingest/sequential_8".into(),
        time_ns(5, || {
            let mut engine = ShardedEngine::new(config(&model, 8)).expect("engine");
            engine.ingest_all(louvre.iter().cloned());
            engine.finish().len()
        }),
    ));
    for workers in [1usize, 4] {
        results.push((
            format!("stream/parallel_ingest/parallel_{workers}"),
            time_ns(5, || {
                let mut engine = ParallelEngine::new(config(&model, workers)).expect("engine");
                engine.ingest_all(louvre.iter().cloned());
                engine.finish().len()
            }),
        ));
    }

    // Zipf-skewed ingest: the work-stealing router's target case.
    results.push((
        "stream/skewed_ingest/sequential_1".into(),
        time_ns(5, || {
            let mut engine = ShardedEngine::new(config(&model, 1)).expect("engine");
            engine.ingest_all(skewed.iter().cloned());
            engine.finish().len()
        }),
    ));
    for workers in [1usize, 4] {
        results.push((
            format!("stream/skewed_ingest/parallel_{workers}"),
            time_ns(5, || {
                let mut engine = ParallelEngine::new(config(&model, workers)).expect("engine");
                engine.ingest_all(skewed.iter().cloned());
                engine.finish().len()
            }),
        ));
    }

    // Live queries at 500-visit scale: all visits held open (closes
    // stripped) so the live population is the full day, indexed vs scan.
    let no_closes: Vec<StreamEvent> = louvre
        .iter()
        .filter(|e| !matches!(e, StreamEvent::VisitClosed { .. }))
        .cloned()
        .collect();
    let mut engine = ParallelEngine::new(config(&model, 4).with_live_queries()).expect("engine");
    engine.ingest_all(no_closes);
    let snapshot = engine.live_snapshot();
    // The flagship selective live query — "where is this visitor right
    // now" — answered by the moving-object postings vs a scan of every
    // open prefix.
    let target = snapshot.visits[snapshot.visits.len() / 2]
        .trajectory
        .moving_object
        .clone();
    let selective = Predicate::MovingObject(target);
    results.push((
        "stream/live_query/snapshot".into(),
        time_ns(9, || engine.live_snapshot().visits.len()),
    ));
    results.push((
        "stream/live_query/indexed_count".into(),
        time_ns(199, || snapshot.count_matching(&selective)),
    ));
    results.push((
        "stream/live_query/scan_count".into(),
        time_ns(199, || snapshot.count_matching_scan(&selective)),
    ));

    let mut json = String::from("{\n");
    for (i, (group, ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        writeln!(json, "  \"{group}\": {ns}{comma}").expect("write json");
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_3.json");
    print!("{json}");
    eprintln!("wrote {out_path} ({} groups, ns/op, median)", results.len());

    let indexed = results
        .iter()
        .find(|(g, _)| g.ends_with("indexed_count"))
        .expect("indexed group")
        .1
        .max(1);
    let scan = results
        .iter()
        .find(|(g, _)| g.ends_with("scan_count"))
        .expect("scan group")
        .1;
    eprintln!(
        "live-query speedup (scan/indexed): {:.1}x",
        scan as f64 / indexed as f64
    );
}
