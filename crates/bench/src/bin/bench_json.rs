//! Machine-readable performance snapshot: times the hot paths this
//! repo's perf work targets and writes `BENCH_10.json` (group → ns/op)
//! — the cross-PR perf trajectory, uploaded as a CI artifact so
//! regressions are diffable without parsing criterion output.
//!
//! Usage: `cargo run --release -p sitm-bench --bin bench_json [path]`
//! (default output path: `BENCH_10.json` in the working directory).
//!
//! New in BENCH_10: the observability tax, measured instead of assumed.
//! `trace_overhead/query_warehouse_point/{traced,untraced}_ns` times
//! the same warehouse point query over the wire against two identically
//! loaded servers — one recording hierarchical trace trees (the
//! default) and one with tracing disabled outright (ring capacity 0, no
//! sampler) — and the run aborts unless the traced RTT stays within 5%
//! of the untraced one. `serve/health_rtt` times the `Health` op (the
//! one-glance liveness report a monitor polls every second: epoch, tier
//! lag, session load, checkpoint age).
//!
//! From BENCH_9: the warm read path. `warehouse/paged_rescan_warm`
//! re-runs a paged scan against the bounded row-decode cache and must
//! be ≥ 5× faster than `warehouse/paged_rescan_cold` (the same scan
//! with the cache disabled) with a `query.trajectories_decoded` delta
//! of exactly zero on the re-scan; `warehouse/content_sorted_limit`
//! orders by a content key (`TotalDwell`) from the segment-v3 sort
//! columns and must decode no more rows than it returns (it used to
//! decode every candidate); `serve/stats_rollup` times the Stats op's
//! rollup-served per-cell/per-period breakdowns over the wire. The
//! cold-open group now also asserts `store.lazy_opens` is non-zero —
//! BENCH_8 reported 0 because the served workload builds its segments
//! in-process (flushes pre-cache their runs), not because the counter
//! missed the lazy path.
//!
//! From BENCH_8: the cold-scale warehouse groups. A 12-segment
//! warehouse is reopened cold for every measurement so the format-v2
//! offset directories — not decoded trajectories — answer the work:
//! `warehouse/cold_open` (header-only open; asserted ≥ 5× faster than
//! `warehouse/eager_open_baseline`, which opens *and* decodes every
//! segment), `warehouse/cold_point_query` (an absent-object point query
//! the global object index rejects outright; the run aborts unless the
//! `query.segment_bytes_read` / `query.trajectories_decoded` deltas are
//! exactly zero), and `warehouse/paged_pushdown` (a sorted+limited
//! `Query::execute_segmented` page served through the directories; the
//! run aborts if more trajectories decode than the page returns).
//!
//! From BENCH_7: the served warehouse is loaded through chunked
//! checkpoints (time-partitioned segments, like the in-process
//! `warehouse/pruned_count` group), so the wire-side query groups
//! exercise real zone-map + Bloom pruning — the run aborts if either
//! pruning counter stays zero. The `stream/live_query/snapshot` group
//! now measures the epoch-cached read path (`Arc` clone on a clean
//! engine, not a rebuild), and `metrics/serve/snapshot_cache_*` embed
//! the server-side hit/miss counts for the federated groups.
//!
//! From BENCH_6: the server's own metrics snapshot is embedded
//! alongside the wall-clock groups — `serve/rtt/*` decomposes the
//! federated point-query round trip into server handle time (further
//! split snapshot-build vs evaluate) and wire remainder, measured by
//! metrics-snapshot deltas around the timed block; `metrics/*` carries
//! the pipeline counters (events ingested, spills, segments built,
//! zone/Bloom pruning) the run accumulated.
//!
//! The wall-clock numbers carry the same caveat as `bench_stream`: on a
//! single-core container the parallel groups measure scheduler overhead
//! with no cores to win, so compare `skewed_ingest/parallel_4` against
//! `skewed_ingest/sequential_1` only on multi-core hosts. The
//! `live_query/indexed_count` vs `live_query/scan_count` ratio (≥ 5×
//! acceptance target) and the `warehouse/pruned_count` vs
//! `warehouse/scan_count` ratio (pruned must win on the selective
//! predicate) are core-count independent. The `serve/*` groups time
//! whole client→server round trips over loopback TCP (framing, codec,
//! engine, warehouse), so they bound the per-request protocol cost;
//! `bench_serve` is the multi-client throughput companion.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use sitm_bench::stream_feeds::{louvre_feed, skewed_feed, stream_config as config};
use sitm_core::SemanticTrajectory;
use sitm_louvre::build_louvre;
use sitm_query::{Predicate, Query, SegmentedDb, SortKey};
use sitm_store::warehouse::WarehouseConfig;
use sitm_stream::{Flusher, ParallelEngine, ShardedEngine, StreamEvent};

/// Median-of-runs wall-clock timer: ns per invocation of `body`.
fn time_ns<T>(runs: usize, mut body: impl FnMut() -> T) -> u64 {
    // One warmup outside the measurement.
    let _ = body();
    let mut samples: Vec<u64> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            let result = body();
            let ns = start.elapsed().as_nanos() as u64;
            std::hint::black_box(result);
            ns
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A fresh throwaway warehouse directory per invocation.
struct TempWarehouse {
    dir: PathBuf,
    counter: u64,
}

impl TempWarehouse {
    fn new() -> TempWarehouse {
        TempWarehouse {
            dir: std::env::temp_dir().join(format!("sitm-bench-warehouse-{}", std::process::id())),
            counter: 0,
        }
    }

    fn fresh(&mut self) -> SegmentedDb {
        self.counter += 1;
        let dir = self.dir.join(format!("run-{}", self.counter));
        let _ = std::fs::remove_dir_all(&dir);
        SegmentedDb::open(&dir, WarehouseConfig::default())
            .expect("open bench warehouse")
            .0
    }
}

impl Drop for TempWarehouse {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_10.json".to_string());
    let model = build_louvre();
    let louvre = louvre_feed(&model);
    let skewed = skewed_feed(400, 20_000, 1.2);
    let mut results: Vec<(String, u64)> = Vec::new();

    // Uniform ingest, sequential vs work-stealing parallel.
    results.push((
        "stream/ingest/sequential_8".into(),
        time_ns(5, || {
            let mut engine = ShardedEngine::new(config(&model, 8)).expect("engine");
            engine.ingest_all(louvre.iter().cloned());
            engine.finish().len()
        }),
    ));
    for workers in [1usize, 4] {
        results.push((
            format!("stream/parallel_ingest/parallel_{workers}"),
            time_ns(5, || {
                let mut engine = ParallelEngine::new(config(&model, workers)).expect("engine");
                engine.ingest_all(louvre.iter().cloned());
                engine.finish().len()
            }),
        ));
    }

    // Zipf-skewed ingest: the work-stealing router's target case.
    results.push((
        "stream/skewed_ingest/sequential_1".into(),
        time_ns(5, || {
            let mut engine = ShardedEngine::new(config(&model, 1)).expect("engine");
            engine.ingest_all(skewed.iter().cloned());
            engine.finish().len()
        }),
    ));
    for workers in [1usize, 4] {
        results.push((
            format!("stream/skewed_ingest/parallel_{workers}"),
            time_ns(5, || {
                let mut engine = ParallelEngine::new(config(&model, workers)).expect("engine");
                engine.ingest_all(skewed.iter().cloned());
                engine.finish().len()
            }),
        ));
    }

    // Live queries at 500-visit scale: all visits held open (closes
    // stripped) so the live population is the full day, indexed vs scan.
    let no_closes: Vec<StreamEvent> = louvre
        .iter()
        .filter(|e| !matches!(e, StreamEvent::VisitClosed { .. }))
        .cloned()
        .collect();
    let mut engine = ParallelEngine::new(config(&model, 4).with_live_queries()).expect("engine");
    engine.ingest_all(no_closes);
    let snapshot = engine.live_snapshot();
    // The flagship selective live query — "where is this visitor right
    // now" — answered by the moving-object postings vs a scan of every
    // open prefix.
    let target = snapshot.visits[snapshot.visits.len() / 2]
        .trajectory
        .moving_object
        .clone();
    let selective = Predicate::MovingObject(target);
    // With the epoch cache and no ingest between reads, this group
    // times the *cached* cut — an `Arc` clone, the serving hot path —
    // not a per-call rebuild.
    results.push((
        "stream/live_query/snapshot".into(),
        time_ns(9, || engine.live_snapshot().visits.len()),
    ));
    results.push((
        "stream/live_query/indexed_count".into(),
        time_ns(199, || snapshot.count_matching(&selective)),
    ));
    results.push((
        "stream/live_query/scan_count".into(),
        time_ns(199, || snapshot.count_matching_scan(&selective)),
    ));
    drop(engine);

    // ---- Warehouse tier -------------------------------------------------
    // The spilled history: every closed Louvre visit as a trajectory.
    let mut source = ShardedEngine::new(config(&model, 4).with_warehouse()).expect("engine");
    source.ingest_all(louvre.iter().cloned());
    source.finish();
    let history: Vec<SemanticTrajectory> = source.take_finished();
    assert!(history.len() > 300, "bench corpus is a real day");
    let mut warehouses = TempWarehouse::new();

    // Segment build: one immutable sorted segment (sort + zone map +
    // encode + fsync + manifest commit) over the full day. Inputs are
    // prepared outside the timed body (fresh warehouse + corpus copy
    // per run) so the group times flush() alone, not clone/setup.
    let mut prepared: std::collections::VecDeque<(SegmentedDb, Vec<SemanticTrajectory>)> = (0..6)
        .map(|_| (warehouses.fresh(), history.clone()))
        .collect();
    results.push((
        "warehouse/segment_build".into(),
        time_ns(5, || {
            let (mut db, batch) = prepared.pop_front().expect("prepared run");
            db.flush(batch).expect("flush");
            db.len()
        }),
    ));

    // Flush throughput: the streaming spill pipeline — engine-side
    // take_finished batches through a Flusher, incl. the size-tiered
    // compactions the small segments trigger.
    results.push((
        "warehouse/flush_throughput".into(),
        time_ns(3, || {
            let mut engine =
                ShardedEngine::new(config(&model, 4).with_warehouse()).expect("engine");
            let mut flusher = Flusher::new(warehouses.fresh()).with_min_batch(64);
            for chunk in louvre.chunks(louvre.len() / 8) {
                engine.ingest_all(chunk.iter().cloned());
                flusher.poll(&mut engine).expect("poll");
            }
            engine.finish();
            flusher.force(&mut engine).expect("force");
            flusher.db().len()
        }),
    ));

    // Zone-map pruning: time-partitioned flushes give span/object
    // disjoint segments; the selective point query ("this visitor's
    // history") must beat the full segment scan.
    let mut pruned_db = warehouses.fresh();
    for chunk in history.chunks(history.len() / 8) {
        pruned_db.flush(chunk.to_vec()).expect("flush");
    }
    let target = history[history.len() / 2].moving_object.clone();
    let point = Predicate::MovingObject(target);
    results.push((
        "warehouse/pruned_count".into(),
        time_ns(199, || pruned_db.count_matching(&point)),
    ));
    results.push((
        "warehouse/scan_count".into(),
        time_ns(199, || pruned_db.count_matching_scan(&point)),
    ));
    drop(pruned_db);

    // ---- Cold-scale warehouse (segment format v2) -----------------------
    // A 12-segment warehouse built once on disk, then reopened *cold*
    // for every group below: the offset directories, rollups, and the
    // global object index are all that `open` reads, so the groups
    // measure what a pruned or paged query costs when nothing is
    // resident yet. `fanout: 64` disables size-tiered compaction so the
    // twelve time-sliced flushes stay twelve distinct segments.
    let cold_config = WarehouseConfig {
        fanout: 64,
        ..WarehouseConfig::default()
    };
    let cold_dir = std::env::temp_dir().join(format!("sitm-bench-cold-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cold_dir);
    // Four museum days of history (day-suffixed visitor ids), so the
    // eager baseline pays a realistic decode bill: at one day the
    // per-segment fixed open cost (syscalls, zone-map decode) drowns
    // out the decode saving the lazy open exists to measure.
    let cold_history: Vec<SemanticTrajectory> = (0..4)
        .flat_map(|day| {
            history.iter().map(move |t| {
                let mut t = t.clone();
                t.moving_object = format!("{}-day{day}", t.moving_object);
                t
            })
        })
        .collect();
    {
        let (mut db, _) = SegmentedDb::open(&cold_dir, cold_config).expect("open cold warehouse");
        for chunk in cold_history.chunks(cold_history.len() / 12) {
            db.flush(chunk.to_vec()).expect("flush cold chunk");
        }
        let segments = db.explain(&Predicate::True).segments;
        assert!(
            segments >= 10,
            "cold-scale bench needs >= 10 segments, got {segments}"
        );
    }
    let cold_open = || {
        SegmentedDb::open(&cold_dir, cold_config)
            .expect("cold open")
            .0
    };

    // Lazy open (headers only: zone map + directory + rollup frames)
    // vs the eager baseline that also decodes every trajectory — the
    // pre-v2 open cost. The ≥ 5× acceptance gate is asserted after the
    // JSON is written.
    results.push((
        "warehouse/cold_open".into(),
        time_ns(19, || cold_open().len()),
    ));
    results.push((
        "warehouse/eager_open_baseline".into(),
        time_ns(19, || cold_open().iter().count()),
    ));

    // Fully-pruned cold point query: the global object index rejects
    // the absent visitor before zone maps or segment bytes are touched.
    // The I/O counters are bound to a fresh registry so their *totals*
    // are this group's deltas — both must be exactly zero.
    let registry = sitm_obs::MetricsRegistry::new();
    let cold_db = cold_open().with_metrics(&registry);
    // The rebind credits the open's header-only segment opens, so a
    // zero here would mean the lazy-open path stopped counting (the
    // served workload below legitimately reports 0: its segments are
    // built in-process and flushes pre-cache their runs).
    let cold_lazy_opens = registry.counter("store.lazy_opens").get();
    assert!(
        cold_lazy_opens >= 10,
        "a cold 12-segment open must count its lazy opens"
    );
    results.push(("metrics/store/cold_lazy_opens".into(), cold_lazy_opens));
    let absent = Predicate::MovingObject("bench-no-such-visitor".into());
    results.push((
        "warehouse/cold_point_query".into(),
        time_ns(199, || cold_db.count_matching(&absent)),
    ));
    let bytes_read = registry.counter("query.segment_bytes_read").get();
    let decoded = registry.counter("query.trajectories_decoded").get();
    assert_eq!(
        (bytes_read, decoded),
        (0, 0),
        "a fully-pruned cold point query must read zero segment bytes"
    );
    results.push(("metrics/query/cold_segment_bytes_read".into(), bytes_read));
    results.push(("metrics/query/cold_trajectories_decoded".into(), decoded));
    drop(cold_db);

    // Sorted+limited pushdown on a cold warehouse: the directories
    // order every candidate by start time and only the returned page is
    // ever decoded. The decode-count assertion is taken on one isolated
    // cold run before the timing loop.
    let page_registry = sitm_obs::MetricsRegistry::new();
    let paged_db = cold_open().with_metrics(&page_registry);
    let first_page = Query::new().order_by(SortKey::Start, true).limit(10);
    let page = first_page.execute_segmented(&paged_db);
    let page_decoded = page_registry.counter("query.trajectories_decoded").get();
    assert!(
        page_decoded as usize <= page.len(),
        "paged pushdown must decode at most the returned page ({} rows), decoded {page_decoded}",
        page.len()
    );
    results.push((
        "warehouse/paged_pushdown".into(),
        time_ns(199, || first_page.execute_segmented(&paged_db).len()),
    ));
    results.push((
        "metrics/query/paged_trajectories_decoded".into(),
        page_decoded,
    ));
    drop(paged_db);

    // Warm vs cold paged re-scan: the same 1000-row page, repeated.
    // (A page large enough that frame fetches — not the shared
    // plan/order step — dominate the run.) Cold disables the row-decode
    // cache (`row_cache_bytes: 0`), so every run re-seeks and re-decodes
    // its frames — the pre-v3 cost of a repeated scan. Warm uses the
    // default budget: after one priming pass the rows are resident, and
    // the re-scan's `query.trajectories_decoded` delta must be exactly
    // zero. The ≥ 5× acceptance gate is asserted after the JSON is
    // written.
    let rescan_page = Query::new().order_by(SortKey::Start, true).limit(1000);
    let uncached_config = WarehouseConfig {
        row_cache_bytes: 0,
        ..cold_config
    };
    let uncached_db = SegmentedDb::open(&cold_dir, uncached_config)
        .expect("cold open, cache off")
        .0;
    results.push((
        "warehouse/paged_rescan_cold".into(),
        time_ns(199, || rescan_page.execute_segmented(&uncached_db).len()),
    ));
    drop(uncached_db);
    let warm_registry = sitm_obs::MetricsRegistry::new();
    let warm_db = cold_open().with_metrics(&warm_registry);
    let primed = rescan_page.execute_segmented(&warm_db);
    assert_eq!(primed.len(), 1000, "the priming pass returns the page");
    let decoded_before = warm_registry.counter("query.trajectories_decoded").get();
    let rescan = rescan_page.execute_segmented(&warm_db);
    let decoded_after = warm_registry.counter("query.trajectories_decoded").get();
    assert_eq!(rescan, primed, "the warm re-scan answers identically");
    assert_eq!(
        decoded_after - decoded_before,
        0,
        "a warm paged re-scan must decode zero rows"
    );
    results.push((
        "warehouse/paged_rescan_warm".into(),
        time_ns(199, || rescan_page.execute_segmented(&warm_db).len()),
    ));
    results.push((
        "metrics/query/warm_rescan_trajectories_decoded".into(),
        decoded_after - decoded_before,
    ));
    // The cache never outgrows its configured budget, even after the
    // scans churned rows through it.
    let resident = warm_registry.gauge("query.row_cache_bytes").get();
    let budget = WarehouseConfig::default().row_cache_bytes as i64;
    assert!(
        (0..=budget).contains(&resident),
        "row cache residency {resident} must stay within its {budget}-byte budget"
    );
    results.push((
        "metrics/query/row_cache_bytes".into(),
        resident.max(0) as u64,
    ));
    drop(warm_db);

    // Content-key sorted/limited query, cold: the ordering comes from
    // the segment-v3 sort columns, so — like the directory-served keys —
    // only the returned page is ever decoded (this used to materialize
    // every candidate).
    let content_registry = sitm_obs::MetricsRegistry::new();
    let content_db = cold_open().with_metrics(&content_registry);
    let content_page = Query::new().order_by(SortKey::TotalDwell, false).limit(10);
    let content = content_page.execute_segmented(&content_db);
    let content_decoded = content_registry.counter("query.trajectories_decoded").get();
    assert!(
        content_decoded as usize <= content.len(),
        "content-key pushdown must decode at most the returned page ({} rows), decoded {content_decoded}",
        content.len()
    );
    results.push((
        "warehouse/content_sorted_limit".into(),
        time_ns(199, || content_page.execute_segmented(&content_db).len()),
    ));
    results.push((
        "metrics/query/content_sorted_trajectories_decoded".into(),
        content_decoded,
    ));
    drop(content_db);
    let _ = std::fs::remove_dir_all(&cold_dir);

    // ---- Network tier ---------------------------------------------------
    // One server over loopback TCP; each group is a full client round
    // trip (encode → frame → TCP → decode → engine/warehouse → back).
    {
        use sitm_query::wire::WireQuery;
        use sitm_serve::{Client, Server, ServerConfig};

        let serve_dir =
            std::env::temp_dir().join(format!("sitm-bench-json-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&serve_dir);
        let server = Server::start(
            ServerConfig::new(config(&model, 2), &serve_dir)
                .with_sessions(5)
                .with_flush_batch(128),
        )
        .expect("start bench server");
        let addr = server.addr();

        // Ingest round trip: one 256-event batch per op (amortized
        // per-batch cost; divide by 256 for per-event).
        let batch: Vec<StreamEvent> = louvre.iter().take(256).cloned().collect();
        let mut client = Client::connect(addr).expect("connect");
        results.push((
            "serve/ingest_batch_256".into(),
            time_ns(19, || {
                client
                    .ingest_batch(batch.clone())
                    .expect("ingest round trip")
            }),
        ));
        // Load the warehouse with the day's history through *chunked*
        // checkpoints: each chunk closes a time-slice of the day, so
        // each checkpoint cuts a span/object-disjoint segment —
        // mirroring the in-process `warehouse/pruned_count` setup so
        // the wire-side point queries below exercise real zone-map +
        // Bloom pruning instead of scanning one monolithic segment.
        for chunk in louvre.chunks(louvre.len() / 8) {
            client.ingest_batch(chunk.to_vec()).expect("ingest chunk");
            client.checkpoint().expect("spill chunk");
        }
        let segments = client
            .explain(&Predicate::True)
            .expect("segment probe")
            .segments;
        assert!(
            segments >= 4,
            "serve bench needs >= 4 segments to exercise pruning, got {segments}"
        );
        let target = {
            let probe = client
                .query_federated(&WireQuery {
                    predicate: Predicate::True,
                    order: Some((SortKey::MovingObject, true)),
                    offset: 0,
                    limit: Some(1),
                })
                .expect("probe");
            probe[0].moving_object.clone()
        };
        let point_query = WireQuery {
            predicate: Predicate::MovingObject(target.clone()),
            order: Some((SortKey::Start, true)),
            offset: 0,
            limit: Some(10),
        };
        // Metrics-snapshot deltas around the timed block turn the
        // client-observed RTT into a server-side decomposition:
        // handle = time inside handle_request, split into cutting the
        // live snapshot vs evaluating live ∪ warehouse; wire = RTT
        // minus handle (framing, TCP, codec on both sides).
        let hist = |snap: &sitm_obs::MetricsSnapshot, name: &str| {
            snap.histogram(name)
                .map(|h| (h.count, h.sum))
                .unwrap_or((0, 0))
        };
        let before = client.metrics().expect("metrics before federated");
        results.push((
            "serve/query_federated_point".into(),
            time_ns(49, || {
                client
                    .query_federated(&point_query)
                    .expect("federated query")
                    .len()
            }),
        ));
        let after = client.metrics().expect("metrics after federated");
        let delta_mean = |name: &str| {
            let (c0, s0) = hist(&before, name);
            let (c1, s1) = hist(&after, name);
            (s1 - s0) / (c1 - c0).max(1)
        };
        let rtt_ns = results.last().expect("federated group").1;
        let handle_ns = delta_mean("serve.handle_ns.query_federated");
        let snapshot_build_ns = delta_mean("serve.snapshot_build_ns");
        let evaluate_ns = delta_mean("serve.evaluate_ns");
        results.push(("serve/rtt/query_federated_point/total_ns".into(), rtt_ns));
        results.push((
            "serve/rtt/query_federated_point/handle_ns".into(),
            handle_ns,
        ));
        results.push((
            "serve/rtt/query_federated_point/snapshot_build_ns".into(),
            snapshot_build_ns,
        ));
        results.push((
            "serve/rtt/query_federated_point/evaluate_ns".into(),
            evaluate_ns,
        ));
        results.push((
            "serve/rtt/query_federated_point/wire_ns".into(),
            rtt_ns.saturating_sub(handle_ns),
        ));
        results.push((
            "serve/query_warehouse_point".into(),
            time_ns(49, || {
                client.query(&point_query).expect("warehouse query").len()
            }),
        ));
        results.push((
            "serve/explain".into(),
            time_ns(49, || {
                client
                    .explain(&Predicate::MovingObject(target.clone()))
                    .expect("explain")
                    .segments
            }),
        ));
        results.push((
            "serve/stats".into(),
            time_ns(49, || client.server_stats().expect("stats").events),
        ));
        // The rollup-served Stats breakdowns: per-cell and per-period
        // totals merged from the segments' header-frame rollups and a
        // live-tier fold — a full round trip that decodes nothing.
        let (_, rollup) = client
            .server_stats_with_rollup()
            .expect("stats rollup probe");
        assert!(
            !rollup.cells.is_empty(),
            "the loaded warehouse serves per-cell rollups"
        );
        results.push((
            "serve/stats_rollup".into(),
            time_ns(49, || {
                client
                    .server_stats_with_rollup()
                    .expect("stats rollup")
                    .1
                    .cells
                    .len()
            }),
        ));
        // The liveness poll a monitor runs every second: one Health
        // round trip — the report is assembled under a brief core lock
        // (epoch, tier lag, session load) plus a warehouse read guard,
        // so this bounds how cheap "is it alive and keeping up" can be.
        results.push((
            "serve/health_rtt".into(),
            time_ns(49, || client.health().expect("health").epoch),
        ));

        // Multi-client burst: 4 concurrent sessions each ingesting a
        // fixed slice — the whole burst is one op (wall-clock ns).
        let slice: Vec<StreamEvent> = louvre.iter().take(2_000).cloned().collect();
        results.push((
            "serve/concurrent_ingest_4x2000".into(),
            time_ns(3, || {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let slice = slice.clone();
                        std::thread::spawn(move || {
                            let mut c = Client::connect(addr).expect("connect");
                            for chunk in slice.chunks(500) {
                                c.ingest_batch(chunk.to_vec()).expect("ingest");
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("burst client");
                }
            }),
        ));

        // The global object index answers served *object* point queries
        // at stage 0 now (they bump `query.object_pruned`; the zone maps
        // of object-rejected segments are never consulted), so two extra
        // probes keep the later pruning tiers exercised over the wire: a
        // span window covering only the day's first half hour zone-prunes
        // the later time-slices, and a cell no layer defines is a
        // Bloom-tier fast no in every segment.
        {
            use sitm_core::{TimeInterval, Timestamp};
            use sitm_graph::{LayerIdx, NodeId};
            use sitm_space::CellRef;
            let t0 = history
                .iter()
                .map(|t| t.span().start)
                .min()
                .expect("corpus spans the day");
            let probe = |predicate: Predicate| WireQuery {
                predicate,
                order: None,
                offset: 0,
                limit: Some(1),
            };
            client
                .query(&probe(Predicate::SpanOverlaps(TimeInterval::new(
                    t0,
                    Timestamp(t0.0 + 1800),
                ))))
                .expect("zone-map probe");
            client
                .query(&probe(Predicate::VisitedCell(CellRef::new(
                    LayerIdx::from_index(0),
                    NodeId::from_index(1_000_000),
                ))))
                .expect("bloom probe");
        }

        // The run's accumulated pipeline counters, embedded so pruning
        // effectiveness rides the same artifact as the timings.
        let final_metrics = client.metrics().expect("final metrics");
        for name in [
            "engine.events_ingested",
            "engine.visits_routed",
            "engine.visits_stolen",
            "flush.spills",
            "store.segments_built",
            "store.segments_compacted",
            "store.lazy_opens",
            "query.segments_scanned",
            "query.object_pruned",
            "query.zone_pruned",
            "query.bloom_pruned",
            "query.segment_bytes_read",
            "query.trajectories_decoded",
            "query.row_cache_hits",
            "query.row_cache_misses",
            "query.row_cache_evicted_bytes",
            "serve.snapshot_cache_hits",
            "serve.snapshot_cache_misses",
        ] {
            results.push((
                format!("metrics/{}", name.replace('.', "/")),
                final_metrics.counter(name).unwrap_or(0),
            ));
        }
        // The chunked-checkpoint load exists to make pruning real over
        // the wire; a zero here means the serve workload regressed to
        // a shape none of the three pruning tiers (object index, zone
        // map, Bloom) can reject.
        for name in [
            "query.object_pruned",
            "query.zone_pruned",
            "query.bloom_pruned",
        ] {
            assert!(
                final_metrics.counter(name).unwrap_or(0) > 0,
                "served queries must prune segments ({name} is zero)"
            );
        }
        assert!(
            final_metrics
                .counter("serve.snapshot_cache_hits")
                .unwrap_or(0)
                > 0,
            "repeated federated reads between barriers must hit the snapshot cache"
        );

        client.shutdown().expect("shutdown bench server");
        server.join().expect("join bench server");
        let _ = std::fs::remove_dir_all(&serve_dir);
    }

    // ---- Tracing overhead -----------------------------------------------
    // What recording a span tree per request actually costs: two
    // identically loaded servers, one with the default trace ring and
    // sampler, one with tracing off outright (capacity 0, no sampler
    // thread). The same selective warehouse point query is timed over
    // the wire against both; the traced RTT must stay within 5% of the
    // untraced one. Medians absorb most scheduler noise, but loopback
    // RTTs on a busy container still jitter past 5%, so the pair is
    // re-measured (both sides, back to back) up to three times and the
    // gate takes the best-ratio round.
    {
        use sitm_query::wire::WireQuery;
        use sitm_serve::{Client, Server, ServerConfig};

        let setup = |tag: &str, traced: bool| {
            let dir = std::env::temp_dir().join(format!(
                "sitm-bench-json-trace-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let mut server_config =
                ServerConfig::new(config(&model, 2), &dir).with_flush_batch(128);
            if !traced {
                server_config = server_config.with_trace_capacity(0).without_sampler();
            }
            let server = Server::start(server_config).expect("start trace-bench server");
            let mut client = Client::connect(server.addr()).expect("connect");
            for chunk in louvre.chunks(louvre.len() / 4) {
                client.ingest_batch(chunk.to_vec()).expect("ingest chunk");
                client.checkpoint().expect("spill chunk");
            }
            (server, client, dir)
        };
        let (on_server, mut on_client, on_dir) = setup("on", true);
        let (off_server, mut off_client, off_dir) = setup("off", false);

        let target = on_client
            .query_federated(&WireQuery {
                predicate: Predicate::True,
                order: Some((SortKey::MovingObject, true)),
                offset: 0,
                limit: Some(1),
            })
            .expect("probe")[0]
            .moving_object
            .clone();
        let point_query = WireQuery {
            predicate: Predicate::MovingObject(target),
            order: Some((SortKey::Start, true)),
            offset: 0,
            limit: Some(10),
        };

        let (mut traced_ns, mut untraced_ns) = (u64::MAX, u64::MAX);
        for _ in 0..3 {
            // Order-balanced within the round (on/off then off/on, min
            // per side), so a machine that drifts faster or slower over
            // the round doesn't masquerade as tracing overhead.
            let mut on = time_ns(199, || {
                on_client.query(&point_query).expect("traced query").len()
            });
            let mut off = time_ns(199, || {
                off_client
                    .query(&point_query)
                    .expect("untraced query")
                    .len()
            });
            off = off.min(time_ns(199, || {
                off_client
                    .query(&point_query)
                    .expect("untraced query")
                    .len()
            }));
            on = on.min(time_ns(199, || {
                on_client.query(&point_query).expect("traced query").len()
            }));
            // Keep the round with the best traced/untraced ratio
            // (compared cross-multiplied to stay in integers).
            if traced_ns == u64::MAX
                || (on as u128) * (untraced_ns as u128) < (traced_ns as u128) * (off as u128)
            {
                (traced_ns, untraced_ns) = (on, off);
            }
            if traced_ns <= untraced_ns + untraced_ns / 20 {
                break;
            }
        }
        results.push((
            "trace_overhead/query_warehouse_point/traced_ns".into(),
            traced_ns,
        ));
        results.push((
            "trace_overhead/query_warehouse_point/untraced_ns".into(),
            untraced_ns,
        ));
        assert!(
            traced_ns <= untraced_ns + untraced_ns / 20,
            "recording trace trees must cost <= 5% of the warehouse point-query RTT \
             (traced {traced_ns}ns vs untraced {untraced_ns}ns)"
        );

        // The comparison is honest only if the knob worked: the traced
        // server banked trees for the timed queries, the untraced one
        // recorded nothing at all.
        let health = on_client.health().expect("health");
        assert!(
            health.traces_recorded > 0,
            "the traced server must have recorded span trees"
        );
        assert!(
            off_client.traces(8).expect("traces").is_empty(),
            "capacity 0 must disable the trace ring"
        );

        for (server, mut client, dir) in [
            (on_server, on_client, on_dir),
            (off_server, off_client, off_dir),
        ] {
            client.shutdown().expect("shutdown trace-bench server");
            server.join().expect("join trace-bench server");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    let mut json = String::from("{\n");
    for (i, (group, ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        writeln!(json, "  \"{group}\": {ns}{comma}").expect("write json");
    }
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    print!("{json}");
    eprintln!("wrote {out_path} ({} groups, ns/op, median)", results.len());

    let ratio = |indexed: &str, scan: &str| {
        let i = results
            .iter()
            .find(|(g, _)| g.ends_with(indexed))
            .expect("indexed group")
            .1
            .max(1);
        let s = results
            .iter()
            .find(|(g, _)| g.ends_with(scan))
            .expect("scan group")
            .1;
        s as f64 / i as f64
    };
    eprintln!(
        "live-query speedup (scan/indexed): {:.1}x",
        ratio("live_query/indexed_count", "live_query/scan_count")
    );
    eprintln!(
        "warehouse pruning speedup (scan/pruned): {:.1}x",
        ratio("warehouse/pruned_count", "warehouse/scan_count")
    );
    let cold_speedup = ratio("warehouse/cold_open", "warehouse/eager_open_baseline");
    eprintln!("cold-open speedup (eager/lazy): {cold_speedup:.1}x");
    assert!(
        cold_speedup >= 5.0,
        "warehouse/cold_open must be >= 5x faster than the eager-decode baseline, \
         got {cold_speedup:.1}x"
    );
    let warm_speedup = ratio("warehouse/paged_rescan_warm", "warehouse/paged_rescan_cold");
    eprintln!("warm re-scan speedup (cold/warm): {warm_speedup:.1}x");
    assert!(
        warm_speedup >= 5.0,
        "warehouse/paged_rescan_warm must be >= 5x faster than the uncached re-scan, \
         got {warm_speedup:.1}x"
    );
    let find = |key: &str| {
        results
            .iter()
            .find(|(g, _)| g == key)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let traced = find("trace_overhead/query_warehouse_point/traced_ns");
    let untraced = find("trace_overhead/query_warehouse_point/untraced_ns");
    eprintln!(
        "trace overhead: {traced}ns traced vs {untraced}ns untraced ({:+.1}% — gate <= +5%)",
        100.0 * (traced as f64 - untraced as f64) / untraced.max(1) as f64
    );
    let rtt = find("serve/rtt/query_federated_point/total_ns");
    let handle = find("serve/rtt/query_federated_point/handle_ns");
    let build = find("serve/rtt/query_federated_point/snapshot_build_ns");
    let eval = find("serve/rtt/query_federated_point/evaluate_ns");
    eprintln!(
        "federated point RTT {rtt}ns = handle {handle}ns (snapshot-build {build}ns + \
         evaluate {eval}ns + dispatch {}ns) + wire {}ns — split covers {:.0}% of handle",
        handle.saturating_sub(build + eval),
        rtt.saturating_sub(handle),
        100.0 * (build + eval) as f64 / handle.max(1) as f64,
    );
}
