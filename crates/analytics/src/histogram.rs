//! Fixed-bin histograms.

/// A histogram over `[lo, hi)` with uniform bins; values outside the range
/// land in saturating edge bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Creates an empty histogram with `bins` uniform bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Builds a histogram directly from values.
    pub fn of(values: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        let mut h = Histogram::new(lo, hi, bins);
        for &v in values {
            h.add(v);
        }
        h
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let idx = if value < self.lo {
            0
        } else if value >= self.hi {
            bins - 1
        } else {
            (((value - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.total
    }

    /// `(bin_start, bin_end, count)` per bin.
    pub fn bins(&self) -> Vec<(f64, f64, usize)> {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (
                    self.lo + i as f64 * width,
                    self.lo + (i + 1) as f64 * width,
                    c,
                )
            })
            .collect()
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .expect("bins is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_their_bins() {
        let h = Histogram::of(&[0.5, 1.5, 1.7, 2.5, 3.9], 0.0, 4.0, 4);
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.mode_bin(), 1);
    }

    #[test]
    fn out_of_range_values_saturate() {
        let h = Histogram::of(&[-5.0, 10.0, 4.0], 0.0, 4.0, 4);
        assert_eq!(h.counts(), &[1, 0, 0, 2], "lo-edge and hi-edge capture");
    }

    #[test]
    fn bin_edges_are_uniform() {
        let h = Histogram::new(0.0, 10.0, 5);
        let bins = h.bins();
        assert_eq!(bins.len(), 5);
        assert_eq!(bins[0].0, 0.0);
        assert_eq!(bins[0].1, 2.0);
        assert_eq!(bins[4].0, 8.0);
        assert_eq!(bins[4].1, 10.0);
    }

    #[test]
    fn boundary_value_goes_to_upper_bin() {
        let h = Histogram::of(&[2.0], 0.0, 4.0, 4);
        assert_eq!(h.counts(), &[0, 0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        Histogram::new(1.0, 1.0, 4);
    }
}
