//! Choropleth series (the paper's Fig. 3).
//!
//! A choropleth colours regions by a value; textually, that is a labelled
//! value series plus a class assignment (quantile binning, the standard
//! cartographic choice for skewed count data).

/// One region of the choropleth.
#[derive(Debug, Clone, PartialEq)]
pub struct ChoroplethEntry {
    /// Region label (e.g. zone id + theme).
    pub label: String,
    /// The mapped value (e.g. detection count).
    pub value: f64,
    /// Class index in `0..classes` (darker = higher).
    pub class: usize,
}

/// A quantile-classed choropleth series.
#[derive(Debug, Clone, PartialEq)]
pub struct Choropleth {
    entries: Vec<ChoroplethEntry>,
    classes: usize,
}

impl Choropleth {
    /// Builds a choropleth with `classes` quantile classes from labelled
    /// values. Entries keep their input order; classes are assigned by
    /// value rank.
    pub fn quantiles(values: Vec<(String, f64)>, classes: usize) -> Choropleth {
        assert!(classes > 0, "need at least one class");
        let n = values.len();
        // Rank by value (stable for ties by input order).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            values[a]
                .1
                .partial_cmp(&values[b].1)
                .expect("finite values")
        });
        let mut class_of = vec![0usize; n];
        for (rank, &idx) in order.iter().enumerate() {
            class_of[idx] = if n <= 1 {
                classes - 1
            } else {
                (rank * classes / n).min(classes - 1)
            };
        }
        Choropleth {
            entries: values
                .into_iter()
                .zip(class_of)
                .map(|((label, value), class)| ChoroplethEntry {
                    label,
                    value,
                    class,
                })
                .collect(),
            classes,
        }
    }

    /// The entries in input order.
    pub fn entries(&self) -> &[ChoroplethEntry] {
        &self.entries
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Entries sorted by descending value.
    pub fn ranked(&self) -> Vec<&ChoroplethEntry> {
        let mut out: Vec<&ChoroplethEntry> = self.entries.iter().collect();
        out.sort_by(|a, b| b.value.partial_cmp(&a.value).expect("finite"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<(String, f64)> {
        vec![
            ("low".into(), 1.0),
            ("mid".into(), 10.0),
            ("high".into(), 100.0),
            ("top".into(), 1000.0),
        ]
    }

    #[test]
    fn quantile_classes_follow_rank() {
        let c = Choropleth::quantiles(series(), 4);
        let class_of = |label: &str| {
            c.entries()
                .iter()
                .find(|e| e.label == label)
                .map(|e| e.class)
                .unwrap()
        };
        assert_eq!(class_of("low"), 0);
        assert_eq!(class_of("mid"), 1);
        assert_eq!(class_of("high"), 2);
        assert_eq!(class_of("top"), 3);
    }

    #[test]
    fn fewer_classes_than_entries_buckets_them() {
        let c = Choropleth::quantiles(series(), 2);
        let classes: Vec<usize> = c.entries().iter().map(|e| e.class).collect();
        assert_eq!(classes, vec![0, 0, 1, 1]);
    }

    #[test]
    fn ranked_is_descending() {
        let c = Choropleth::quantiles(series(), 4);
        let ranked = c.ranked();
        assert_eq!(ranked[0].label, "top");
        assert_eq!(ranked[3].label, "low");
    }

    #[test]
    fn input_order_is_preserved() {
        let c = Choropleth::quantiles(series(), 4);
        let labels: Vec<&str> = c.entries().iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["low", "mid", "high", "top"]);
    }

    #[test]
    fn single_entry_gets_top_class() {
        let c = Choropleth::quantiles(vec![("only".into(), 5.0)], 3);
        assert_eq!(c.entries()[0].class, 2);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_rejected() {
        Choropleth::quantiles(series(), 0);
    }
}
