//! Data-quality reporting.
//!
//! "Around 10% of the zone detections have a duration of zero value,
//! forcing us to filter them out as detection errors" and "the trajectories
//! obtained from the dataset are sparse" (§4.1). This module quantifies
//! both pathologies on SITM traces.

use sitm_core::{find_gaps, Duration, Trace};

/// Quality metrics of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Total tuples.
    pub detections: usize,
    /// Zero-duration tuples (detection errors per §4.1).
    pub zero_duration: usize,
    /// Zero-duration fraction.
    pub zero_duration_rate: f64,
    /// Tracking gaps longer than the sampling rate.
    pub gaps: usize,
    /// Total untracked time inside gaps.
    pub gap_time: Duration,
    /// Tracked (dwell) time.
    pub dwell_time: Duration,
    /// Tracked share of the total span, in `[0, 1]` (1 = fully continuous).
    pub continuity: f64,
}

/// Computes quality metrics for a trace with the given sampling rate.
pub fn quality_of_trace(trace: &Trace, sampling_rate: Duration) -> QualityReport {
    let detections = trace.len();
    let zero = trace
        .intervals()
        .iter()
        .filter(|p| p.is_instantaneous())
        .count();
    let gaps = find_gaps(trace, sampling_rate);
    let gap_time = gaps
        .iter()
        .fold(Duration::ZERO, |acc, g| acc + g.duration());
    let dwell = trace.dwell_total();
    let span = trace.span().map(|s| s.duration()).unwrap_or(Duration::ZERO);
    QualityReport {
        detections,
        zero_duration: zero,
        zero_duration_rate: if detections > 0 {
            zero as f64 / detections as f64
        } else {
            0.0
        },
        gaps: gaps.len(),
        gap_time,
        dwell_time: dwell,
        continuity: if span.as_seconds() > 0 {
            (dwell.as_secs_f64() / span.as_secs_f64()).min(1.0)
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{PresenceInterval, Timestamp, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn stay(c: usize, s: i64, e: i64) -> PresenceInterval {
        PresenceInterval::new(
            TransitionTaken::Unknown,
            CellRef::new(LayerIdx::from_index(0), NodeId::from_index(c)),
            Timestamp(s),
            Timestamp(e),
        )
    }

    #[test]
    fn counts_zero_durations_and_gaps() {
        let trace = Trace::new(vec![
            stay(0, 0, 100),
            stay(1, 100, 100), // zero-duration
            stay(2, 400, 500), // 300 s gap
        ])
        .unwrap();
        let q = quality_of_trace(&trace, Duration::seconds(30));
        assert_eq!(q.detections, 3);
        assert_eq!(q.zero_duration, 1);
        assert!((q.zero_duration_rate - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(q.gaps, 1);
        assert_eq!(q.gap_time.as_seconds(), 300);
        assert_eq!(q.dwell_time.as_seconds(), 200);
        assert!((q.continuity - 0.4).abs() < 1e-9, "200 of 500 tracked");
    }

    #[test]
    fn continuous_trace_has_full_continuity() {
        let trace = Trace::new(vec![stay(0, 0, 50), stay(1, 50, 100)]).unwrap();
        let q = quality_of_trace(&trace, Duration::seconds(10));
        assert_eq!(q.gaps, 0);
        assert_eq!(q.continuity, 1.0);
        assert_eq!(q.zero_duration, 0);
    }

    #[test]
    fn empty_trace_is_trivially_clean() {
        let q = quality_of_trace(&Trace::empty(), Duration::seconds(10));
        assert_eq!(q.detections, 0);
        assert_eq!(q.zero_duration_rate, 0.0);
        assert_eq!(q.continuity, 1.0);
    }
}
