//! Transition matrices over labelled states.

use std::collections::BTreeMap;

/// A transition count matrix over string-labelled states (zones, floors).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransitionMatrix {
    counts: BTreeMap<(String, String), usize>,
    states: std::collections::BTreeSet<String>,
}

impl TransitionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        TransitionMatrix::default()
    }

    /// Records one transition.
    pub fn record(&mut self, from: impl Into<String>, to: impl Into<String>) {
        let from = from.into();
        let to = to.into();
        self.states.insert(from.clone());
        self.states.insert(to.clone());
        *self.counts.entry((from, to)).or_insert(0) += 1;
    }

    /// Fits a matrix from label sequences.
    pub fn fit<S: AsRef<str>>(sequences: &[Vec<S>]) -> Self {
        let mut m = TransitionMatrix::new();
        for seq in sequences {
            for w in seq.windows(2) {
                m.record(w[0].as_ref(), w[1].as_ref());
            }
        }
        m
    }

    /// States in order.
    pub fn states(&self) -> Vec<&str> {
        self.states.iter().map(String::as_str).collect()
    }

    /// Raw count of `from -> to`.
    pub fn count(&self, from: &str, to: &str) -> usize {
        self.counts
            .get(&(from.to_string(), to.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Total outgoing transitions of `from`.
    pub fn row_total(&self, from: &str) -> usize {
        self.counts
            .iter()
            .filter(|((f, _), _)| f == from)
            .map(|(_, &c)| c)
            .sum()
    }

    /// `P(to | from)`.
    pub fn probability(&self, from: &str, to: &str) -> f64 {
        let total = self.row_total(from);
        if total == 0 {
            0.0
        } else {
            self.count(from, to) as f64 / total as f64
        }
    }

    /// Total transitions recorded.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// The most frequent transitions, descending.
    pub fn top_transitions(&self, k: usize) -> Vec<(&str, &str, usize)> {
        let mut all: Vec<(&str, &str, usize)> = self
            .counts
            .iter()
            .map(|((f, t), &c)| (f.as_str(), t.as_str(), c))
            .collect();
        all.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> TransitionMatrix {
        TransitionMatrix::fit(&[vec!["a", "b", "c"], vec!["a", "b", "b"], vec!["c", "a"]])
    }

    #[test]
    fn counts_and_probabilities() {
        let m = matrix();
        assert_eq!(m.count("a", "b"), 2);
        assert_eq!(m.count("b", "c"), 1);
        assert_eq!(m.count("b", "b"), 1);
        assert_eq!(m.count("x", "y"), 0);
        assert_eq!(m.row_total("b"), 2);
        assert_eq!(m.probability("b", "c"), 0.5);
        assert_eq!(m.probability("a", "b"), 1.0);
        assert_eq!(m.probability("zzz", "a"), 0.0);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn states_are_sorted_and_complete() {
        let m = matrix();
        assert_eq!(m.states(), vec!["a", "b", "c"]);
    }

    #[test]
    fn top_transitions_ordered() {
        let m = matrix();
        let top = m.top_transitions(2);
        assert_eq!(top[0], ("a", "b", 2));
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn empty_matrix() {
        let m = TransitionMatrix::new();
        assert_eq!(m.total(), 0);
        assert!(m.states().is_empty());
        assert!(m.top_transitions(5).is_empty());
    }
}
