//! Plain-text rendering of tables and bar charts for the repro harness.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableAlign {
    /// Left-aligned.
    Left,
    /// Right-aligned.
    Right,
}

/// Renders an aligned text table. `header` and every row must have the same
/// arity; `aligns` may be shorter (missing columns default to left).
pub fn table(header: &[&str], rows: &[Vec<String>], aligns: &[TableAlign]) -> String {
    let cols = header.len();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity mismatch");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let align_of = |i: usize| aligns.get(i).copied().unwrap_or(TableAlign::Left);
    let fmt_cell = |text: &str, i: usize| {
        let pad = widths[i] - text.chars().count();
        match align_of(i) {
            TableAlign::Left => format!("{text}{}", " ".repeat(pad)),
            TableAlign::Right => format!("{}{text}", " ".repeat(pad)),
        }
    };
    let mut out = String::new();
    let head: Vec<String> = header
        .iter()
        .enumerate()
        .map(|(i, h)| fmt_cell(h, i))
        .collect();
    out.push_str(&head.join("  "));
    out.push('\n');
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&rule.join("  "));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| fmt_cell(c, i))
            .collect();
        out.push_str(&cells.join("  "));
        out.push('\n');
    }
    out
}

/// Renders a horizontal bar chart: one line per `(label, value)`, bars
/// scaled to `max_width` characters.
pub fn bar_chart(entries: &[(String, f64)], max_width: usize) -> String {
    assert!(max_width > 0, "bar width must be positive");
    let peak = entries.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_width = entries
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (label, value) in entries {
        let bar_len = if peak > 0.0 {
            ((value / peak) * max_width as f64).round() as usize
        } else {
            0
        };
        let pad = " ".repeat(label_width - label.chars().count());
        out.push_str(&format!(
            "{label}{pad}  {:>10.0}  {}\n",
            value,
            "#".repeat(bar_len)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let out = table(
            &["zone", "count"],
            &[
                vec!["60850".to_string(), "7".to_string()],
                vec!["60851-long".to_string(), "1234".to_string()],
            ],
            &[TableAlign::Left, TableAlign::Right],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("zone"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("60850"));
        // Right-aligned numbers end at the same column.
        let col_end = |line: &str| line.rfind(|c: char| !c.is_whitespace()).unwrap();
        assert_eq!(col_end(lines[2]), col_end(lines[3]));
    }

    #[test]
    fn bar_chart_scales_to_peak() {
        let out = bar_chart(&[("a".to_string(), 10.0), ("b".to_string(), 5.0)], 20);
        let lines: Vec<&str> = out.lines().collect();
        let hashes = |s: &str| s.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[0]), 20);
        assert_eq!(hashes(lines[1]), 10);
    }

    #[test]
    fn zero_peak_draws_no_bars() {
        let out = bar_chart(&[("a".to_string(), 0.0)], 10);
        assert!(!out.contains('#'));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let out = table(&["x"], &[], &[]);
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        table(&["a", "b"], &[vec!["only-one".to_string()]], &[]);
    }
}
