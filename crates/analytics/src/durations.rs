//! Duration distributions of traces and visits.

use sitm_core::{Duration, Trace};

use crate::stats::Summary;

/// Per-stay durations of a batch of traces, in seconds.
pub fn durations_of_detections(traces: &[Trace]) -> Vec<f64> {
    traces
        .iter()
        .flat_map(|t| t.intervals().iter().map(|p| p.duration().as_secs_f64()))
        .collect()
}

/// Whole-trace (visit) durations, in seconds. Empty traces are skipped.
pub fn durations_of_visits(traces: &[Trace]) -> Vec<f64> {
    traces
        .iter()
        .filter_map(|t| t.span().map(|s| s.duration().as_secs_f64()))
        .collect()
}

/// Summary of a batch of [`Duration`]s.
pub fn duration_summary(durations: &[Duration]) -> Option<Summary> {
    let values: Vec<f64> = durations.iter().map(|d| d.as_secs_f64()).collect();
    Summary::of(&values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{PresenceInterval, Timestamp, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn trace(stays: &[(i64, i64)]) -> Trace {
        let intervals = stays
            .iter()
            .enumerate()
            .map(|(i, &(s, e))| {
                PresenceInterval::new(
                    TransitionTaken::Unknown,
                    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(i)),
                    Timestamp(s),
                    Timestamp(e),
                )
            })
            .collect();
        Trace::new(intervals).unwrap()
    }

    #[test]
    fn detection_durations_flatten_all_traces() {
        let traces = vec![trace(&[(0, 10), (10, 40)]), trace(&[(0, 5)])];
        let durations = durations_of_detections(&traces);
        assert_eq!(durations, vec![10.0, 30.0, 5.0]);
    }

    #[test]
    fn visit_durations_span_first_to_last() {
        let traces = vec![trace(&[(0, 10), (20, 100)]), Trace::empty()];
        let durations = durations_of_visits(&traces);
        assert_eq!(durations, vec![100.0], "empty trace skipped");
    }

    #[test]
    fn duration_summary_works() {
        let s = duration_summary(&[
            Duration::seconds(10),
            Duration::seconds(20),
            Duration::seconds(30),
        ])
        .unwrap();
        assert_eq!(s.mean, 20.0);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 30.0);
        assert!(duration_summary(&[]).is_none());
    }
}
