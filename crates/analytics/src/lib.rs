#![warn(missing_docs)]

//! # sitm-analytics
//!
//! Descriptive statistics and reporting over SITM datasets: summary
//! statistics, histograms, duration distributions, transition matrices,
//! choropleth series (the paper's Fig. 3), data-quality reports (the ~10%
//! zero-duration detections of §4.1) and plain-text rendering used by the
//! reproduction harness.

pub mod choropleth;
pub mod durations;
pub mod histogram;
pub mod matrix;
pub mod quality;
pub mod render;
pub mod stats;

pub use choropleth::{Choropleth, ChoroplethEntry};
pub use durations::{duration_summary, durations_of_detections, durations_of_visits};
pub use histogram::Histogram;
pub use matrix::TransitionMatrix;
pub use quality::{quality_of_trace, QualityReport};
pub use render::{bar_chart, table, TableAlign};
pub use stats::Summary;
