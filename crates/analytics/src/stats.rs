//! Summary statistics.

/// Summary of a numeric sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median (interpolated).
    pub median: f64,
    /// First quartile.
    pub p25: f64,
    /// Third quartile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
}

impl Summary {
    /// Computes a summary; `None` for an empty sample or a sample with
    /// non-finite values.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        Some(Summary {
            count: n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            std_dev: var.sqrt(),
            median: percentile_sorted(&sorted, 50.0),
            p25: percentile_sorted(&sorted, 25.0),
            p75: percentile_sorted(&sorted, 75.0),
            p90: percentile_sorted(&sorted, 90.0),
        })
    }
}

/// Linear-interpolated percentile over a pre-sorted slice, `p` in `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let values = [4.0, 2.0, 1.0, 3.0, 5.0];
        let s = Summary::of(&values).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-9);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 90.0), 9.0);
    }

    #[test]
    fn empty_and_non_finite_samples_rejected() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn singleton_sample() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p90, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_of_empty_panics() {
        percentile_sorted(&[], 50.0);
    }
}
