#![warn(missing_docs)]

//! # sitm-geometry
//!
//! Minimal 2D computational-geometry substrate for the SITM toolkit.
//!
//! The paper argues that indoor analytics should "avoid cumbersome
//! calculations over geometric representations" and work symbolically — but
//! the *construction* of a symbolic model still needs geometry: zone polygons
//! (Fig. 3), RoI containment and coverage ratios (Fig. 4), Poincaré-duality
//! adjacency derivation, and the positioning pipeline's point→zone mapping.
//! This crate supplies exactly those primitives:
//!
//! * [`Point`], [`Vec2`], [`Segment`], [`BBox`] — basic primitives;
//! * [`Polygon`] — simple polygons with area, centroid, point location;
//! * [`relate_polygons`] — derivation of the eight binary
//!   topological relations (disjoint, meet, overlap, equal, contains,
//!   inside, covers, coveredBy) between simple polygons;
//! * [`Grid`] — a uniform spatial hash for fast point→polygon lookup.
//!
//! All coordinates are `f64`; comparisons use a fixed tolerance
//! [`EPSILON`] suitable for building-scale metric coordinates.

pub mod bbox;
pub mod grid;
pub mod point;
pub mod polygon;
pub mod relate;
pub mod segment;

pub use bbox::BBox;
pub use grid::Grid;
pub use point::{Point, Vec2};
pub use polygon::{PointLocation, Polygon, PolygonError};
pub use relate::{relate_polygons, SpatialRelation};
pub use segment::{Segment, SegmentIntersection};

/// Comparison tolerance for coordinates in metres. Building-scale models
/// stay well above this resolution.
pub const EPSILON: f64 = 1e-7;

/// True if `a` and `b` are equal within [`EPSILON`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}
