//! Simple polygons: construction, area, centroid, point location.
//!
//! Zones and RoIs in the Louvre model are simple polygons without holes
//! (the paper: "For simplicity, a RoI includes the area physically taken up
//! by the exhibit itself and its display installation (i.e. no holes)").

use crate::bbox::BBox;
use crate::point::{orientation, Orientation, Point};
use crate::segment::Segment;
use crate::EPSILON;

/// Error building a polygon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices.
    TooFewVertices,
    /// Two consecutive vertices coincide.
    DegenerateEdge,
    /// Zero enclosed area (all vertices collinear).
    ZeroArea,
    /// Non-adjacent edges intersect: the ring is self-crossing.
    SelfIntersection,
}

impl std::fmt::Display for PolygonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "polygon needs at least 3 vertices"),
            PolygonError::DegenerateEdge => write!(f, "consecutive vertices coincide"),
            PolygonError::ZeroArea => write!(f, "polygon encloses zero area"),
            PolygonError::SelfIntersection => write!(f, "polygon ring is self-intersecting"),
        }
    }
}

impl std::error::Error for PolygonError {}

/// Where a point sits relative to a polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointLocation {
    /// Strictly inside.
    Inside,
    /// On the boundary (within tolerance).
    Boundary,
    /// Strictly outside.
    Outside,
}

/// A simple polygon (a non-self-intersecting closed ring, no holes), stored
/// counter-clockwise.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    ring: Vec<Point>,
    bbox: BBox,
}

impl Polygon {
    /// Builds a polygon from a vertex ring (do not repeat the first vertex
    /// at the end). Vertices are re-oriented counter-clockwise. Rejects
    /// degenerate and self-intersecting rings.
    pub fn new(mut ring: Vec<Point>) -> Result<Self, PolygonError> {
        if ring.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        for i in 0..ring.len() {
            let j = (i + 1) % ring.len();
            if ring[i].approx(ring[j]) {
                return Err(PolygonError::DegenerateEdge);
            }
        }
        let area2 = signed_area2(&ring);
        if area2.abs() <= EPSILON {
            return Err(PolygonError::ZeroArea);
        }
        if area2 < 0.0 {
            ring.reverse();
        }
        let poly = Polygon {
            bbox: BBox::from_points(ring.iter().copied()).expect("ring is non-empty"),
            ring,
        };
        if poly.has_self_intersection() {
            return Err(PolygonError::SelfIntersection);
        }
        Ok(poly)
    }

    /// Convenience: axis-aligned rectangle from two opposite corners.
    pub fn rectangle(a: Point, b: Point) -> Result<Self, PolygonError> {
        let bb = BBox::from_corners(a, b);
        Polygon::new(vec![
            bb.min,
            Point::new(bb.max.x, bb.min.y),
            bb.max,
            Point::new(bb.min.x, bb.max.y),
        ])
    }

    /// Vertices in counter-clockwise order (first vertex not repeated).
    pub fn vertices(&self) -> &[Point] {
        &self.ring
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Always false: valid polygons have ≥ 3 vertices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cached bounding box.
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Edges of the ring in order.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.ring.len();
        (0..n).map(move |i| Segment::new(self.ring[i], self.ring[(i + 1) % n]))
    }

    /// Enclosed area (always positive).
    pub fn area(&self) -> f64 {
        signed_area2(&self.ring) / 2.0
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Area centroid.
    pub fn centroid(&self) -> Point {
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a2 = 0.0;
        let n = self.ring.len();
        for i in 0..n {
            let p = self.ring[i];
            let q = self.ring[(i + 1) % n];
            let cross = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * cross;
            cy += (p.y + q.y) * cross;
            a2 += cross;
        }
        Point::new(cx / (3.0 * a2), cy / (3.0 * a2))
    }

    /// Classifies `p` against the polygon (ray casting with an explicit
    /// boundary check first, so boundary points are never misclassified by
    /// ray degeneracies).
    pub fn locate(&self, p: Point) -> PointLocation {
        if !self.bbox.contains(p) {
            return PointLocation::Outside;
        }
        for e in self.edges() {
            if e.contains_point(p) {
                return PointLocation::Boundary;
            }
        }
        // Ray casting towards +x; count crossings with the half-open edge
        // rule to handle vertices hit by the ray.
        let mut inside = false;
        let n = self.ring.len();
        for i in 0..n {
            let a = self.ring[i];
            let b = self.ring[(i + 1) % n];
            let (lo, hi) = if a.y <= b.y { (a, b) } else { (b, a) };
            if p.y >= lo.y && p.y < hi.y {
                // x of the edge at height p.y
                let t = (p.y - lo.y) / (hi.y - lo.y);
                let x = lo.x + t * (hi.x - lo.x);
                if x > p.x {
                    inside = !inside;
                }
            }
        }
        if inside {
            PointLocation::Inside
        } else {
            PointLocation::Outside
        }
    }

    /// True if `p` is inside or on the boundary.
    pub fn contains_point(&self, p: Point) -> bool {
        self.locate(p) != PointLocation::Outside
    }

    /// True if `p` is strictly inside.
    pub fn contains_point_strict(&self, p: Point) -> bool {
        self.locate(p) == PointLocation::Inside
    }

    /// A point guaranteed to be strictly inside the polygon. For convex
    /// polygons this is the centroid; otherwise a scan over interior
    /// candidates is used.
    pub fn interior_point(&self) -> Point {
        let c = self.centroid();
        if self.locate(c) == PointLocation::Inside {
            return c;
        }
        // Fall back: probe midpoints between vertex pairs, then a grid scan.
        let n = self.ring.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let m = self.ring[i].midpoint(self.ring[j]);
                if self.locate(m) == PointLocation::Inside {
                    return m;
                }
            }
        }
        let bb = self.bbox;
        let steps = 64;
        for iy in 1..steps {
            for ix in 1..steps {
                let p = Point::new(
                    bb.min.x + bb.width() * ix as f64 / steps as f64,
                    bb.min.y + bb.height() * iy as f64 / steps as f64,
                );
                if self.locate(p) == PointLocation::Inside {
                    return p;
                }
            }
        }
        unreachable!("a positive-area polygon has interior points")
    }

    /// True if the polygon is convex.
    pub fn is_convex(&self) -> bool {
        let n = self.ring.len();
        let mut saw_turn = false;
        for i in 0..n {
            let o = orientation(self.ring[i], self.ring[(i + 1) % n], self.ring[(i + 2) % n]);
            match o {
                Orientation::Clockwise => return false, // ring is CCW
                Orientation::CounterClockwise => saw_turn = true,
                Orientation::Collinear => {}
            }
        }
        saw_turn
    }

    /// Translates the polygon by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Polygon {
        let ring = self
            .ring
            .iter()
            .map(|p| Point::new(p.x + dx, p.y + dy))
            .collect();
        Polygon::new(ring).expect("translation preserves validity")
    }

    fn has_self_intersection(&self) -> bool {
        let n = self.ring.len();
        let edges: Vec<Segment> = self.edges().collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let adjacent = j == i + 1 || (i == 0 && j == n - 1);
                if adjacent {
                    continue;
                }
                if edges[i].intersects(edges[j]) {
                    return true;
                }
            }
        }
        false
    }

    /// Minimum distance from `p` to the polygon boundary.
    pub fn distance_to_boundary(&self, p: Point) -> f64 {
        self.edges()
            .map(|e| e.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }
}

fn signed_area2(ring: &[Point]) -> f64 {
    let n = ring.len();
    let mut s = 0.0;
    for i in 0..n {
        let p = ring[i];
        let q = ring[(i + 1) % n];
        s += p.x * q.y - q.x * p.y;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap()
    }

    fn l_shape() -> Polygon {
        // An L: 2x2 square minus its top-right 1x1 quadrant.
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validations() {
        assert_eq!(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
            Err(PolygonError::TooFewVertices)
        );
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0)
            ]),
            Err(PolygonError::DegenerateEdge)
        );
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0)
            ]),
            Err(PolygonError::ZeroArea)
        );
        // Asymmetric bow-tie (nonzero net area, so the crossing check is
        // what rejects it; the symmetric bow-tie is caught as ZeroArea).
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 2.0),
                Point::new(2.0, 0.0),
                Point::new(0.0, 1.0),
            ]),
            Err(PolygonError::SelfIntersection)
        );
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 1.0),
            ]),
            Err(PolygonError::ZeroArea)
        );
    }

    #[test]
    fn clockwise_ring_is_reoriented() {
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ])
        .unwrap();
        assert!(cw.area() > 0.0);
        assert_eq!(cw.area(), 1.0);
    }

    #[test]
    fn area_perimeter_centroid_of_square() {
        let sq = unit_square();
        assert_eq!(sq.area(), 1.0);
        assert_eq!(sq.perimeter(), 4.0);
        assert!(sq.centroid().approx(Point::new(0.5, 0.5)));
        assert!(sq.is_convex());
    }

    #[test]
    fn area_and_centroid_of_l_shape() {
        let l = l_shape();
        assert_eq!(l.area(), 3.0);
        assert!(!l.is_convex());
        // Centroid of the L: weighted mean of the 2x1 bottom (centroid 1,0.5)
        // and the 1x1 top-left (centroid 0.5,1.5): ((2*1+1*0.5)/3,(2*0.5+1*1.5)/3).
        assert!(l.centroid().approx(Point::new(2.5 / 3.0, 2.5 / 3.0)));
    }

    #[test]
    fn point_location_in_square() {
        let sq = unit_square();
        assert_eq!(sq.locate(Point::new(0.5, 0.5)), PointLocation::Inside);
        assert_eq!(sq.locate(Point::new(0.0, 0.5)), PointLocation::Boundary);
        assert_eq!(sq.locate(Point::new(0.0, 0.0)), PointLocation::Boundary);
        assert_eq!(sq.locate(Point::new(1.5, 0.5)), PointLocation::Outside);
        assert_eq!(sq.locate(Point::new(0.5, -0.1)), PointLocation::Outside);
    }

    #[test]
    fn point_location_in_concave_notch() {
        let l = l_shape();
        // The notch (removed quadrant) is outside.
        assert_eq!(l.locate(Point::new(1.5, 1.5)), PointLocation::Outside);
        assert_eq!(l.locate(Point::new(0.5, 1.5)), PointLocation::Inside);
        assert_eq!(l.locate(Point::new(1.5, 0.5)), PointLocation::Inside);
        assert_eq!(l.locate(Point::new(1.0, 1.5)), PointLocation::Boundary);
    }

    #[test]
    fn ray_through_vertex_is_counted_once() {
        // Point level with the bottom vertices; ray passes through corners.
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 2.0),
        ])
        .unwrap();
        assert_eq!(tri.locate(Point::new(-1.0, 0.0)), PointLocation::Outside);
        assert_eq!(tri.locate(Point::new(1.0, 1.0)), PointLocation::Inside);
        assert_eq!(tri.locate(Point::new(1.0, 2.0)), PointLocation::Boundary);
    }

    #[test]
    fn interior_point_is_strictly_inside() {
        for poly in [unit_square(), l_shape()] {
            let p = poly.interior_point();
            assert_eq!(poly.locate(p), PointLocation::Inside);
        }
        // A "U" whose centroid falls in the cavity.
        let u = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 3.0),
            Point::new(2.0, 3.0),
            Point::new(2.0, 0.5),
            Point::new(1.0, 0.5),
            Point::new(1.0, 3.0),
            Point::new(0.0, 3.0),
        ])
        .unwrap();
        let p = u.interior_point();
        assert_eq!(u.locate(p), PointLocation::Inside);
    }

    #[test]
    fn translation_moves_everything() {
        let sq = unit_square().translated(10.0, -5.0);
        assert!(sq.contains_point(Point::new(10.5, -4.5)));
        assert!(!sq.contains_point(Point::new(0.5, 0.5)));
        assert_eq!(sq.area(), 1.0);
    }

    #[test]
    fn distance_to_boundary() {
        let sq = unit_square();
        assert!(crate::approx_eq(
            sq.distance_to_boundary(Point::new(0.5, 0.5)),
            0.5
        ));
        assert!(crate::approx_eq(
            sq.distance_to_boundary(Point::new(2.0, 0.5)),
            1.0
        ));
        assert_eq!(sq.distance_to_boundary(Point::new(1.0, 0.5)), 0.0);
    }

    #[test]
    fn bbox_is_cached_and_tight() {
        let l = l_shape();
        let bb = l.bbox();
        assert_eq!(bb.min, Point::new(0.0, 0.0));
        assert_eq!(bb.max, Point::new(2.0, 2.0));
    }

    #[test]
    fn edges_close_the_ring() {
        let sq = unit_square();
        let edges: Vec<Segment> = sq.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges[3].b.approx(edges[0].a), "last edge returns to start");
    }
}
