//! Axis-aligned bounding boxes.

use crate::point::Point;
use crate::EPSILON;

/// An axis-aligned bounding box. Invariant: `min.x <= max.x`,
/// `min.y <= max.y` (enforced by constructors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl BBox {
    /// Creates a bbox from two arbitrary corner points.
    pub fn from_corners(a: Point, b: Point) -> Self {
        BBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Smallest bbox containing all points; `None` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BBox {
            min: first,
            max: first,
        };
        for p in it {
            bb.expand(p);
        }
        Some(bb)
    }

    /// Grows the bbox to include `p`.
    pub fn expand(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Union of two bboxes.
    pub fn union(self, other: BBox) -> BBox {
        BBox {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Width along x.
    #[inline]
    pub fn width(self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the box.
    #[inline]
    pub fn area(self) -> f64 {
        self.width() * self.height()
    }

    /// Geometric centre.
    #[inline]
    pub fn center(self) -> Point {
        self.min.midpoint(self.max)
    }

    /// True if `p` is inside or on the boundary (with tolerance).
    pub fn contains(self, p: Point) -> bool {
        p.x >= self.min.x - EPSILON
            && p.x <= self.max.x + EPSILON
            && p.y >= self.min.y - EPSILON
            && p.y <= self.max.y + EPSILON
    }

    /// True if the boxes share any point (with tolerance).
    pub fn intersects(self, other: BBox) -> bool {
        self.min.x <= other.max.x + EPSILON
            && other.min.x <= self.max.x + EPSILON
            && self.min.y <= other.max.y + EPSILON
            && other.min.y <= self.max.y + EPSILON
    }

    /// Expands by `margin` on every side.
    pub fn inflate(self, margin: f64) -> BBox {
        BBox {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_corners_normalizes() {
        let bb = BBox::from_corners(Point::new(3.0, 1.0), Point::new(0.0, 4.0));
        assert_eq!(bb.min, Point::new(0.0, 1.0));
        assert_eq!(bb.max, Point::new(3.0, 4.0));
        assert_eq!(bb.width(), 3.0);
        assert_eq!(bb.height(), 3.0);
        assert_eq!(bb.area(), 9.0);
        assert_eq!(bb.center(), Point::new(1.5, 2.5));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = vec![
            Point::new(1.0, 1.0),
            Point::new(-2.0, 0.5),
            Point::new(0.0, 7.0),
        ];
        let bb = BBox::from_points(pts).unwrap();
        assert_eq!(bb.min, Point::new(-2.0, 0.5));
        assert_eq!(bb.max, Point::new(1.0, 7.0));
        assert!(BBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn contains_boundary_and_interior() {
        let bb = BBox::from_corners(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert!(bb.contains(Point::new(1.0, 1.0)));
        assert!(bb.contains(Point::new(0.0, 0.0)), "corner counts");
        assert!(bb.contains(Point::new(2.0, 1.0)), "edge counts");
        assert!(!bb.contains(Point::new(2.1, 1.0)));
    }

    #[test]
    fn intersection_tests() {
        let a = BBox::from_corners(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = BBox::from_corners(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        let c = BBox::from_corners(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        let d = BBox::from_corners(Point::new(2.0, 0.0), Point::new(3.0, 1.0));
        assert!(a.intersects(b));
        assert!(b.intersects(a));
        assert!(!a.intersects(c));
        assert!(a.intersects(d), "edge contact counts as intersection");
    }

    #[test]
    fn union_and_inflate() {
        let a = BBox::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = BBox::from_corners(Point::new(2.0, -1.0), Point::new(3.0, 0.5));
        let u = a.union(b);
        assert_eq!(u.min, Point::new(0.0, -1.0));
        assert_eq!(u.max, Point::new(3.0, 1.0));
        let inflated = a.inflate(0.5);
        assert_eq!(inflated.min, Point::new(-0.5, -0.5));
        assert_eq!(inflated.max, Point::new(1.5, 1.5));
    }

    #[test]
    fn expand_grows_in_place() {
        let mut bb = BBox::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        bb.expand(Point::new(-1.0, 5.0));
        assert_eq!(bb.min, Point::new(-1.0, 0.0));
        assert_eq!(bb.max, Point::new(1.0, 5.0));
    }
}
