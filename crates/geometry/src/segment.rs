//! Line segments and segment intersection.

use crate::point::{orientation, Orientation, Point};
use crate::EPSILON;

/// A closed line segment between two points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

/// Classification of how two segments intersect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegmentIntersection {
    /// No common point.
    None,
    /// Interiors cross at a single point (proper crossing).
    Proper(Point),
    /// They share exactly one point, which is an endpoint of at least one
    /// segment (a "touch").
    Touch(Point),
    /// They are collinear and share a (possibly degenerate) sub-segment.
    Collinear(Segment),
}

impl Segment {
    /// Creates a segment.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(self) -> Point {
        self.a.midpoint(self.b)
    }

    /// True if the segment is degenerate (both endpoints coincide).
    #[inline]
    pub fn is_degenerate(self) -> bool {
        self.a.approx(self.b)
    }

    /// True if `p` lies on the segment (within tolerance), endpoints
    /// included.
    pub fn contains_point(self, p: Point) -> bool {
        if orientation(self.a, self.b, p) != Orientation::Collinear {
            return false;
        }
        let d = self.b - self.a;
        let len_sq = d.length_sq();
        if len_sq <= EPSILON * EPSILON {
            return self.a.approx(p);
        }
        let t = (p - self.a).dot(d) / len_sq;
        let tol = EPSILON / len_sq.sqrt();
        (-tol..=1.0 + tol).contains(&t)
    }

    /// Distance from `p` to the closest point of the segment.
    pub fn distance_to_point(self, p: Point) -> f64 {
        p.distance(self.closest_point(p))
    }

    /// Closest point of the segment to `p`.
    pub fn closest_point(self, p: Point) -> Point {
        let d = self.b - self.a;
        let len_sq = d.length_sq();
        if len_sq <= EPSILON * EPSILON {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.a.lerp(self.b, t)
    }

    /// Full intersection classification against `other`.
    pub fn intersect(self, other: Segment) -> SegmentIntersection {
        let o1 = orientation(self.a, self.b, other.a);
        let o2 = orientation(self.a, self.b, other.b);
        let o3 = orientation(other.a, other.b, self.a);
        let o4 = orientation(other.a, other.b, self.b);

        // General case: endpoints strictly on opposite sides both ways.
        if o1 != Orientation::Collinear
            && o2 != Orientation::Collinear
            && o3 != Orientation::Collinear
            && o4 != Orientation::Collinear
            && o1 != o2
            && o3 != o4
        {
            let p = line_intersection_point(self, other)
                .expect("crossing segments intersect at one point");
            return SegmentIntersection::Proper(p);
        }

        // Collinear overlap case.
        if o1 == Orientation::Collinear
            && o2 == Orientation::Collinear
            && o3 == Orientation::Collinear
            && o4 == Orientation::Collinear
        {
            return collinear_overlap(self, other);
        }

        // Touching case: one endpoint lies on the other segment.
        for p in [other.a, other.b] {
            if self.contains_point(p) {
                return SegmentIntersection::Touch(p);
            }
        }
        for p in [self.a, self.b] {
            if other.contains_point(p) {
                return SegmentIntersection::Touch(p);
            }
        }
        SegmentIntersection::None
    }

    /// True if the two segments share at least one point.
    pub fn intersects(self, other: Segment) -> bool {
        !matches!(self.intersect(other), SegmentIntersection::None)
    }

    /// True if the segments cross properly (interior to interior).
    pub fn crosses(self, other: Segment) -> bool {
        matches!(self.intersect(other), SegmentIntersection::Proper(_))
    }
}

/// Intersection point of the supporting lines, if the segments are not
/// parallel.
fn line_intersection_point(s1: Segment, s2: Segment) -> Option<Point> {
    let d1 = s1.b - s1.a;
    let d2 = s2.b - s2.a;
    let denom = d1.cross(d2);
    if denom.abs() <= EPSILON {
        return None;
    }
    let t = (s2.a - s1.a).cross(d2) / denom;
    Some(s1.a.lerp(s1.b, t))
}

/// Overlap of two collinear segments.
fn collinear_overlap(s1: Segment, s2: Segment) -> SegmentIntersection {
    // Project onto the dominant axis of s1 to order the endpoints.
    let d = s1.b - s1.a;
    let use_x = d.x.abs() >= d.y.abs();
    let key = |p: Point| if use_x { p.x } else { p.y };

    let (mut a1, mut b1) = (key(s1.a), key(s1.b));
    let (mut pa, mut pb) = (s1.a, s1.b);
    if a1 > b1 {
        std::mem::swap(&mut a1, &mut b1);
        std::mem::swap(&mut pa, &mut pb);
    }
    let (mut a2, mut b2) = (key(s2.a), key(s2.b));
    let (mut qa, mut qb) = (s2.a, s2.b);
    if a2 > b2 {
        std::mem::swap(&mut a2, &mut b2);
        std::mem::swap(&mut qa, &mut qb);
    }

    let lo = a1.max(a2);
    let hi = b1.min(b2);
    if lo > hi + EPSILON {
        return SegmentIntersection::None;
    }
    let lo_pt = if a1 >= a2 { pa } else { qa };
    let hi_pt = if b1 <= b2 { pb } else { qb };
    if (hi - lo).abs() <= EPSILON {
        SegmentIntersection::Touch(lo_pt)
    } else {
        SegmentIntersection::Collinear(Segment::new(lo_pt, hi_pt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn proper_crossing() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(0.0, 2.0, 2.0, 0.0);
        match s1.intersect(s2) {
            SegmentIntersection::Proper(p) => assert!(p.approx(Point::new(1.0, 1.0))),
            other => panic!("expected proper crossing, got {other:?}"),
        }
        assert!(s1.crosses(s2));
    }

    #[test]
    fn no_intersection() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert_eq!(s1.intersect(s2), SegmentIntersection::None);
        assert!(!s1.intersects(s2));
    }

    #[test]
    fn endpoint_touch() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(1.0, 0.0, 2.0, 5.0);
        match s1.intersect(s2) {
            SegmentIntersection::Touch(p) => assert!(p.approx(Point::new(1.0, 0.0))),
            other => panic!("expected touch, got {other:?}"),
        }
        assert!(!s1.crosses(s2), "touch is not a proper crossing");
    }

    #[test]
    fn t_junction_touch() {
        // s2 endpoint lands in the interior of s1.
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 0.0, 1.0, 3.0);
        match s1.intersect(s2) {
            SegmentIntersection::Touch(p) => assert!(p.approx(Point::new(1.0, 0.0))),
            other => panic!("expected touch, got {other:?}"),
        }
    }

    #[test]
    fn collinear_overlap_yields_shared_subsegment() {
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 0.0, 3.0, 0.0);
        match s1.intersect(s2) {
            SegmentIntersection::Collinear(shared) => {
                assert!(shared.a.approx(Point::new(1.0, 0.0)));
                assert!(shared.b.approx(Point::new(2.0, 0.0)));
            }
            other => panic!("expected collinear, got {other:?}"),
        }
    }

    #[test]
    fn collinear_endpoint_touch() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(1.0, 0.0, 2.0, 0.0);
        match s1.intersect(s2) {
            SegmentIntersection::Touch(p) => assert!(p.approx(Point::new(1.0, 0.0))),
            other => panic!("expected touch, got {other:?}"),
        }
    }

    #[test]
    fn collinear_disjoint() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(2.0, 0.0, 3.0, 0.0);
        assert_eq!(s1.intersect(s2), SegmentIntersection::None);
    }

    #[test]
    fn vertical_collinear_overlap() {
        let s1 = seg(5.0, 0.0, 5.0, 4.0);
        let s2 = seg(5.0, 2.0, 5.0, 6.0);
        match s1.intersect(s2) {
            SegmentIntersection::Collinear(shared) => {
                assert!(shared.a.approx(Point::new(5.0, 2.0)));
                assert!(shared.b.approx(Point::new(5.0, 4.0)));
            }
            other => panic!("expected collinear, got {other:?}"),
        }
    }

    #[test]
    fn contains_point_on_and_off() {
        let s = seg(0.0, 0.0, 4.0, 0.0);
        assert!(s.contains_point(Point::new(2.0, 0.0)));
        assert!(s.contains_point(Point::new(0.0, 0.0)), "endpoint included");
        assert!(s.contains_point(Point::new(4.0, 0.0)));
        assert!(!s.contains_point(Point::new(5.0, 0.0)), "beyond endpoint");
        assert!(!s.contains_point(Point::new(2.0, 0.5)));
    }

    #[test]
    fn closest_point_and_distance() {
        let s = seg(0.0, 0.0, 4.0, 0.0);
        assert_eq!(s.closest_point(Point::new(2.0, 3.0)), Point::new(2.0, 0.0));
        assert_eq!(s.distance_to_point(Point::new(2.0, 3.0)), 3.0);
        // Beyond the endpoint, the endpoint is closest.
        assert_eq!(s.closest_point(Point::new(6.0, 0.0)), Point::new(4.0, 0.0));
        assert_eq!(s.distance_to_point(Point::new(6.0, 0.0)), 2.0);
    }

    #[test]
    fn degenerate_segment() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert!(s.is_degenerate());
        assert!(s.contains_point(Point::new(1.0, 1.0)));
        assert!(!s.contains_point(Point::new(1.0, 2.0)));
        assert_eq!(s.closest_point(Point::new(9.0, 9.0)), Point::new(1.0, 1.0));
    }

    #[test]
    fn shared_endpoint_of_parallel_segments() {
        // Parallel but not collinear segments sharing nothing.
        let s1 = seg(0.0, 0.0, 1.0, 1.0);
        let s2 = seg(0.0, 1.0, 1.0, 2.0);
        assert_eq!(s1.intersect(s2), SegmentIntersection::None);
    }
}
