//! Uniform spatial hash grid for candidate lookup.
//!
//! The positioning pipeline maps thousands of location fixes per second to
//! zones; scanning every zone polygon per fix would be O(zones). The grid
//! buckets item bounding boxes into fixed-size cells so a point query only
//! inspects the handful of items whose bbox overlaps that cell. Exact
//! point-in-polygon tests remain the caller's job — the grid returns
//! *candidates*.

use crate::bbox::BBox;
use crate::point::Point;

/// A uniform grid index over items identified by `usize` handles.
#[derive(Debug, Clone)]
pub struct Grid {
    cell_size: f64,
    /// Bucket map: (ix, iy) -> item handles. Kept sorted by key via BTreeMap
    /// for deterministic iteration.
    buckets: std::collections::BTreeMap<(i64, i64), Vec<usize>>,
    /// Item bboxes, for the final bbox pre-filter.
    items: Vec<(usize, BBox)>,
}

impl Grid {
    /// Creates a grid with the given cell size (metres). Choose roughly the
    /// median item diameter; the Louvre zone maps use 10 m.
    pub fn new(cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        Grid {
            cell_size,
            buckets: std::collections::BTreeMap::new(),
            items: Vec::new(),
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn cell_of(&self, p: Point) -> (i64, i64) {
        (
            (p.x / self.cell_size).floor() as i64,
            (p.y / self.cell_size).floor() as i64,
        )
    }

    /// Indexes an item by its bounding box.
    pub fn insert(&mut self, handle: usize, bbox: BBox) {
        let (x0, y0) = self.cell_of(bbox.min);
        let (x1, y1) = self.cell_of(bbox.max);
        for ix in x0..=x1 {
            for iy in y0..=y1 {
                self.buckets.entry((ix, iy)).or_default().push(handle);
            }
        }
        self.items.push((handle, bbox));
    }

    /// Handles whose bbox may contain `p` (bbox-filtered, deduplicated,
    /// sorted).
    pub fn candidates_at(&self, p: Point) -> Vec<usize> {
        let key = self.cell_of(p);
        let mut out: Vec<usize> = self
            .buckets
            .get(&key)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
            .filter(|&h| self.bbox_of(h).is_some_and(|bb| bb.contains(p)))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Handles whose bbox intersects `query` (deduplicated, sorted).
    pub fn candidates_in(&self, query: BBox) -> Vec<usize> {
        let (x0, y0) = self.cell_of(query.min);
        let (x1, y1) = self.cell_of(query.max);
        let mut out = Vec::new();
        for ix in x0..=x1 {
            for iy in y0..=y1 {
                if let Some(bucket) = self.buckets.get(&(ix, iy)) {
                    out.extend(
                        bucket
                            .iter()
                            .copied()
                            .filter(|&h| self.bbox_of(h).is_some_and(|bb| bb.intersects(query))),
                    );
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn bbox_of(&self, handle: usize) -> Option<BBox> {
        self.items
            .iter()
            .find(|(h, _)| *h == handle)
            .map(|(_, bb)| *bb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(x0: f64, y0: f64, x1: f64, y1: f64) -> BBox {
        BBox::from_corners(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn point_query_returns_covering_items() {
        let mut g = Grid::new(5.0);
        g.insert(0, bb(0.0, 0.0, 10.0, 10.0));
        g.insert(1, bb(8.0, 8.0, 20.0, 20.0));
        g.insert(2, bb(100.0, 100.0, 110.0, 110.0));
        assert_eq!(g.candidates_at(Point::new(1.0, 1.0)), vec![0]);
        assert_eq!(g.candidates_at(Point::new(9.0, 9.0)), vec![0, 1]);
        assert_eq!(g.candidates_at(Point::new(50.0, 50.0)), Vec::<usize>::new());
        assert_eq!(g.candidates_at(Point::new(105.0, 105.0)), vec![2]);
    }

    #[test]
    fn bbox_query_is_deduplicated() {
        let mut g = Grid::new(2.0);
        g.insert(7, bb(0.0, 0.0, 10.0, 10.0)); // spans many cells
        let found = g.candidates_in(bb(1.0, 1.0, 9.0, 9.0));
        assert_eq!(found, vec![7]);
    }

    #[test]
    fn negative_coordinates_are_handled() {
        let mut g = Grid::new(3.0);
        g.insert(0, bb(-10.0, -10.0, -1.0, -1.0));
        assert_eq!(g.candidates_at(Point::new(-5.0, -5.0)), vec![0]);
        assert!(g.candidates_at(Point::new(5.0, 5.0)).is_empty());
    }

    #[test]
    fn empty_grid_answers_empty() {
        let g = Grid::new(1.0);
        assert!(g.is_empty());
        assert!(g.candidates_at(Point::new(0.0, 0.0)).is_empty());
        assert!(g.candidates_in(bb(0.0, 0.0, 1.0, 1.0)).is_empty());
    }

    #[test]
    fn item_on_cell_boundary_found_from_both_sides() {
        let mut g = Grid::new(5.0);
        g.insert(0, bb(4.9, 0.0, 5.1, 1.0)); // straddles the x=5 cell line
        assert_eq!(g.candidates_at(Point::new(4.95, 0.5)), vec![0]);
        assert_eq!(g.candidates_at(Point::new(5.05, 0.5)), vec![0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_rejected() {
        Grid::new(0.0);
    }
}
