//! Points and vectors in the Euclidean plane.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::approx_eq;

/// A point in the plane (metric coordinates; for the Louvre model, metres
/// within a wing-local frame).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Easting coordinate.
    pub x: f64,
    /// Northing coordinate.
    pub y: f64,
}

/// A displacement between two points.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).length()
    }

    /// Squared Euclidean distance (avoids the square root for comparisons).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        (self - other).length_sq()
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Component-wise approximate equality within [`crate::EPSILON`].
    #[inline]
    pub fn approx(self, other: Point) -> bool {
        approx_eq(self.x, other.x) && approx_eq(self.y, other.y)
    }
}

impl Vec2 {
    /// Creates a vector.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f64 {
        self.length_sq().sqrt()
    }

    /// Squared length.
    #[inline]
    pub fn length_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2D cross product (z-component of the 3D cross product). Positive when
    /// `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction; `None` for the zero vector.
    pub fn normalized(self) -> Option<Vec2> {
        let len = self.length();
        if len <= crate::EPSILON {
            None
        } else {
            Some(Vec2::new(self.x / len, self.y / len))
        }
    }

    /// Perpendicular vector (rotated +90°).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }
}

/// Orientation of the ordered triple `(a, b, c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise turn.
    CounterClockwise,
    /// Clockwise turn.
    Clockwise,
    /// The three points are collinear (within tolerance).
    Collinear,
}

/// Computes the orientation of the triple `(a, b, c)` with a tolerance
/// scaled by the segment lengths, so large buildings behave like small ones.
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let cross = (b - a).cross(c - a);
    let scale = (b - a).length() * (c - a).length();
    let tol = crate::EPSILON * scale.max(1.0);
    if cross > tol {
        Orientation::CounterClockwise
    } else if cross < -tol {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

impl Sub for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.midpoint(b), Point::new(1.0, 2.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.25), Point::new(0.5, 1.0));
    }

    #[test]
    fn vector_algebra() {
        let u = Vec2::new(1.0, 2.0);
        let v = Vec2::new(3.0, -1.0);
        assert_eq!(u + v, Vec2::new(4.0, 1.0));
        assert_eq!(u - v, Vec2::new(-2.0, 3.0));
        assert_eq!(u * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(v / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-u, Vec2::new(-1.0, -2.0));
        assert_eq!(u.dot(v), 1.0);
        assert_eq!(u.cross(v), -7.0);
        assert_eq!(u.perp(), Vec2::new(-2.0, 1.0));
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(3.0, 4.0);
        let n = v.normalized().unwrap();
        assert!(approx_eq(n.length(), 1.0));
        assert!(Vec2::new(0.0, 0.0).normalized().is_none());
    }

    #[test]
    fn orientation_cases() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(
            orientation(a, b, Point::new(1.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(a, b, Point::new(1.0, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(a, b, Point::new(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orientation_is_scale_invariant() {
        // The same triangle at building scale (hundreds of metres).
        let a = Point::new(0.0, 0.0);
        let b = Point::new(500.0, 0.0);
        let c = Point::new(500.0, 1e-3);
        assert_eq!(orientation(a, b, c), Orientation::CounterClockwise);
    }

    #[test]
    fn point_arithmetic_with_vectors() {
        let p = Point::new(1.0, 1.0);
        let v = Vec2::new(0.5, -0.5);
        assert_eq!(p + v, Point::new(1.5, 0.5));
        assert_eq!(p - v, Point::new(0.5, 1.5));
        assert_eq!(Point::new(2.0, 2.0) - p, Vec2::new(1.0, 1.0));
    }
}
