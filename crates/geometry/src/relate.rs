//! Topological relation derivation between simple polygons.
//!
//! The eight binary relations are those of the paper's Table 1 background
//! (§2.1): RCC-8 / 4-intersection define "disjoint", "touch (meet)",
//! "overlap", "contains", "insideOf", "covers", "coveredBy", "equal". This
//! module derives the relation of polygon `A` **to** polygon `B` from
//! coordinates; `sitm-qsr` then reasons over the derived relations
//! symbolically.
//!
//! The classification is exact for polygon pairs whose boundaries either
//! cross transversally or share walls/corners — i.e. the layouts that occur
//! in floor plans. (Tangential single-point interior contact between curved
//! approximations may be classified as `Meet`; that conservative choice is
//! documented rather than hidden.)

use crate::point::Point;
use crate::polygon::{PointLocation, Polygon};
use crate::segment::SegmentIntersection;
use crate::EPSILON;

/// Binary topological relation of `A` to `B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpatialRelation {
    /// No shared point.
    Disjoint,
    /// Boundaries touch; interiors are disjoint ("touch"/"meet").
    Meet,
    /// Interiors intersect but neither region contains the other.
    Overlap,
    /// The regions are equal.
    Equal,
    /// `A` strictly contains `B` (no boundary contact) — NTPP⁻¹.
    Contains,
    /// `A` is strictly inside `B` (no boundary contact) — NTPP.
    Inside,
    /// `A` contains `B` with boundary contact — TPP⁻¹.
    Covers,
    /// `A` is inside `B` with boundary contact — TPP.
    CoveredBy,
}

impl SpatialRelation {
    /// The converse relation (relation of `B` to `A`).
    pub fn converse(self) -> SpatialRelation {
        match self {
            SpatialRelation::Contains => SpatialRelation::Inside,
            SpatialRelation::Inside => SpatialRelation::Contains,
            SpatialRelation::Covers => SpatialRelation::CoveredBy,
            SpatialRelation::CoveredBy => SpatialRelation::Covers,
            sym => sym,
        }
    }

    /// True for relations implying the interiors share at least one point.
    pub fn interiors_intersect(self) -> bool {
        !matches!(self, SpatialRelation::Disjoint | SpatialRelation::Meet)
    }

    /// True for "proper part" relations usable inside a layer hierarchy
    /// (the paper admits only `contains`/`covers` top→bottom).
    pub fn is_parthood(self) -> bool {
        matches!(
            self,
            SpatialRelation::Contains
                | SpatialRelation::Covers
                | SpatialRelation::Inside
                | SpatialRelation::CoveredBy
        )
    }

    /// Short name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            SpatialRelation::Disjoint => "disjoint",
            SpatialRelation::Meet => "meet",
            SpatialRelation::Overlap => "overlap",
            SpatialRelation::Equal => "equal",
            SpatialRelation::Contains => "contains",
            SpatialRelation::Inside => "insideOf",
            SpatialRelation::Covers => "covers",
            SpatialRelation::CoveredBy => "coveredBy",
        }
    }
}

impl std::fmt::Display for SpatialRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Derives the topological relation of `a` to `b`.
pub fn relate_polygons(a: &Polygon, b: &Polygon) -> SpatialRelation {
    if !a.bbox().intersects(b.bbox()) {
        return SpatialRelation::Disjoint;
    }

    let mut crossing = false;
    let mut contact = false;
    'outer: for ea in a.edges() {
        for eb in b.edges() {
            match ea.intersect(eb) {
                SegmentIntersection::Proper(_) => {
                    crossing = true;
                    break 'outer;
                }
                SegmentIntersection::Touch(_) | SegmentIntersection::Collinear(_) => {
                    contact = true;
                }
                SegmentIntersection::None => {}
            }
        }
    }
    if crossing {
        return SpatialRelation::Overlap;
    }

    let a_side = classify_samples(a, b);
    let b_side = classify_samples(b, a);
    contact |= a_side.any_boundary || b_side.any_boundary;

    let a_in_b = !a_side.any_outside;
    let b_in_a = !b_side.any_outside;

    if a_in_b && b_in_a && (a.area() - b.area()).abs() <= EPSILON * a.area().max(1.0) {
        return SpatialRelation::Equal;
    }
    if a_in_b {
        return if contact {
            SpatialRelation::CoveredBy
        } else {
            SpatialRelation::Inside
        };
    }
    if b_in_a {
        return if contact {
            SpatialRelation::Covers
        } else {
            SpatialRelation::Contains
        };
    }
    if contact {
        return SpatialRelation::Meet;
    }
    SpatialRelation::Disjoint
}

struct SampleSummary {
    any_outside: bool,
    any_boundary: bool,
}

/// Classifies the vertices and edge midpoints of `probe` against `region`.
fn classify_samples(probe: &Polygon, region: &Polygon) -> SampleSummary {
    let mut summary = SampleSummary {
        any_outside: false,
        any_boundary: false,
    };
    let samples = probe
        .vertices()
        .iter()
        .copied()
        .chain(probe.edges().map(|e| e.midpoint()));
    for p in samples {
        match region.locate(p) {
            PointLocation::Outside => summary.any_outside = true,
            PointLocation::Boundary => summary.any_boundary = true,
            PointLocation::Inside => {}
        }
    }
    summary
}

/// Clips `subject` to a **convex** `clipper` polygon (Sutherland–Hodgman).
/// Returns `None` when the intersection is empty or degenerate. Used for
/// coverage ratios (paper Fig. 4) where zones are convex.
pub fn clip_to_convex(subject: &Polygon, clipper: &Polygon) -> Option<Polygon> {
    debug_assert!(clipper.is_convex(), "clipper must be convex");
    let mut output: Vec<Point> = subject.vertices().to_vec();
    let cv = clipper.vertices();
    let n = cv.len();
    for i in 0..n {
        let a = cv[i];
        let b = cv[(i + 1) % n];
        // Keep the half-plane to the left of a->b (ring is CCW).
        let input = std::mem::take(&mut output);
        if input.is_empty() {
            return None;
        }
        let inside = |p: Point| (b - a).cross(p - a) >= -EPSILON;
        let m = input.len();
        for j in 0..m {
            let cur = input[j];
            let prev = input[(j + m - 1) % m];
            let cur_in = inside(cur);
            let prev_in = inside(prev);
            if cur_in {
                if !prev_in {
                    if let Some(x) = half_plane_crossing(prev, cur, a, b) {
                        output.push(x);
                    }
                }
                output.push(cur);
            } else if prev_in {
                if let Some(x) = half_plane_crossing(prev, cur, a, b) {
                    output.push(x);
                }
            }
        }
    }
    // Remove consecutive duplicates produced by on-boundary vertices.
    output.dedup_by(|p, q| p.approx(*q));
    if output.len() >= 2 && output[0].approx(*output.last().expect("non-empty")) {
        output.pop();
    }
    Polygon::new(output).ok()
}

/// Fractional area of `inner` that lies within convex `outer`.
pub fn overlap_fraction(inner: &Polygon, outer: &Polygon) -> f64 {
    match clip_to_convex(inner, outer) {
        Some(clipped) => clipped.area() / inner.area(),
        None => 0.0,
    }
}

fn half_plane_crossing(p: Point, q: Point, a: Point, b: Point) -> Option<Point> {
    let d = b - a;
    let dp = d.cross(p - a);
    let dq = d.cross(q - a);
    let denom = dp - dq;
    if denom.abs() <= EPSILON {
        return None;
    }
    let t = dp / denom;
    Some(p.lerp(q, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::rectangle(Point::new(x0, y0), Point::new(x1, y1)).unwrap()
    }

    #[test]
    fn disjoint_rectangles() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(3.0, 3.0, 4.0, 4.0);
        assert_eq!(relate_polygons(&a, &b), SpatialRelation::Disjoint);
        assert_eq!(relate_polygons(&b, &a), SpatialRelation::Disjoint);
    }

    #[test]
    fn shared_wall_is_meet() {
        // Two rooms sharing a wall segment: the paper's "meet" precondition
        // for an intra-layer accessibility edge.
        let a = rect(0.0, 0.0, 2.0, 2.0);
        let b = rect(2.0, 0.0, 4.0, 2.0);
        assert_eq!(relate_polygons(&a, &b), SpatialRelation::Meet);
        assert_eq!(relate_polygons(&b, &a), SpatialRelation::Meet);
    }

    #[test]
    fn corner_touch_is_meet() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(1.0, 1.0, 2.0, 2.0);
        assert_eq!(relate_polygons(&a, &b), SpatialRelation::Meet);
    }

    #[test]
    fn partial_overlap() {
        let a = rect(0.0, 0.0, 2.0, 2.0);
        let b = rect(1.0, 1.0, 3.0, 3.0);
        assert_eq!(relate_polygons(&a, &b), SpatialRelation::Overlap);
        assert_eq!(relate_polygons(&b, &a), SpatialRelation::Overlap);
    }

    #[test]
    fn plus_sign_overlap_without_contained_vertices() {
        // Two crossing bars: no vertex of either is inside the other.
        let horizontal = rect(0.0, 1.0, 3.0, 2.0);
        let vertical = rect(1.0, 0.0, 2.0, 3.0);
        assert_eq!(
            relate_polygons(&horizontal, &vertical),
            SpatialRelation::Overlap
        );
    }

    #[test]
    fn strict_containment() {
        let outer = rect(0.0, 0.0, 4.0, 4.0);
        let inner = rect(1.0, 1.0, 2.0, 2.0);
        assert_eq!(relate_polygons(&outer, &inner), SpatialRelation::Contains);
        assert_eq!(relate_polygons(&inner, &outer), SpatialRelation::Inside);
    }

    #[test]
    fn tangential_containment_is_covers() {
        // RoI flush against the room wall: covered, not contained.
        let room = rect(0.0, 0.0, 4.0, 4.0);
        let roi = rect(0.0, 1.0, 1.0, 2.0);
        assert_eq!(relate_polygons(&room, &roi), SpatialRelation::Covers);
        assert_eq!(relate_polygons(&roi, &room), SpatialRelation::CoveredBy);
    }

    #[test]
    fn equal_polygons() {
        let a = rect(0.0, 0.0, 2.0, 3.0);
        let b = rect(0.0, 0.0, 2.0, 3.0);
        assert_eq!(relate_polygons(&a, &b), SpatialRelation::Equal);
    }

    #[test]
    fn equal_with_different_vertex_lists() {
        let a = rect(0.0, 0.0, 2.0, 2.0);
        // Same square with an extra collinear vertex on one edge.
        let b = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap();
        assert_eq!(relate_polygons(&a, &b), SpatialRelation::Equal);
    }

    #[test]
    fn converse_round_trips() {
        use SpatialRelation::*;
        for r in [
            Disjoint, Meet, Overlap, Equal, Contains, Inside, Covers, CoveredBy,
        ] {
            assert_eq!(r.converse().converse(), r);
        }
        assert_eq!(Contains.converse(), Inside);
        assert_eq!(Covers.converse(), CoveredBy);
        assert_eq!(Meet.converse(), Meet);
    }

    #[test]
    fn relation_predicates() {
        use SpatialRelation::*;
        assert!(!Disjoint.interiors_intersect());
        assert!(!Meet.interiors_intersect());
        assert!(Overlap.interiors_intersect());
        assert!(Contains.is_parthood());
        assert!(Covers.is_parthood());
        assert!(!Equal.is_parthood());
        assert!(!Overlap.is_parthood());
    }

    #[test]
    fn relation_of_concave_and_convex() {
        // L-shaped room vs a rectangle occupying its notch: they meet along
        // the notch walls.
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap();
        let notch = rect(1.0, 1.0, 2.0, 2.0);
        assert_eq!(relate_polygons(&l, &notch), SpatialRelation::Meet);
    }

    #[test]
    fn clip_identical_returns_same_area() {
        let a = rect(0.0, 0.0, 2.0, 2.0);
        let clipped = clip_to_convex(&a, &a).unwrap();
        assert!((clipped.area() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn clip_partial_overlap_area() {
        let a = rect(0.0, 0.0, 2.0, 2.0);
        let b = rect(1.0, 1.0, 3.0, 3.0);
        let clipped = clip_to_convex(&a, &b).unwrap();
        assert!((clipped.area() - 1.0).abs() < 1e-9);
        assert!((overlap_fraction(&a, &b) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn clip_disjoint_is_none() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(5.0, 5.0, 6.0, 6.0);
        assert!(clip_to_convex(&a, &b).is_none());
        assert_eq!(overlap_fraction(&a, &b), 0.0);
    }

    #[test]
    fn clip_contained_returns_inner() {
        let outer = rect(0.0, 0.0, 4.0, 4.0);
        let inner = rect(1.0, 1.0, 2.0, 2.0);
        let clipped = clip_to_convex(&inner, &outer).unwrap();
        assert!((clipped.area() - 1.0).abs() < 1e-9);
        assert!((overlap_fraction(&inner, &outer) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clip_concave_subject_against_convex_clipper() {
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .unwrap();
        let window = rect(0.0, 0.0, 2.0, 2.0);
        let clipped = clip_to_convex(&l, &window).unwrap();
        assert!((clipped.area() - 3.0).abs() < 1e-9, "L fits inside window");
    }
}
