//! Property-based tests for the geometry substrate.

use proptest::prelude::*;

use sitm_geometry::relate::{clip_to_convex, overlap_fraction};
use sitm_geometry::{
    relate_polygons, Grid, Point, PointLocation, Polygon, Segment, SpatialRelation,
};

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Polygon> {
    (-50.0f64..50.0, -50.0f64..50.0, 0.5f64..30.0, 0.5f64..30.0).prop_map(|(x, y, w, h)| {
        Polygon::rectangle(Point::new(x, y), Point::new(x + w, y + h)).expect("valid rect")
    })
}

fn arb_segment() -> impl Strategy<Value = Segment> {
    (arb_point(), arb_point())
        .prop_filter("non-degenerate", |(a, b)| a.distance(*b) > 1e-3)
        .prop_map(|(a, b)| Segment::new(a, b))
}

proptest! {
    #[test]
    fn segment_intersection_is_symmetric(s1 in arb_segment(), s2 in arb_segment()) {
        prop_assert_eq!(s1.intersects(s2), s2.intersects(s1));
        prop_assert_eq!(s1.crosses(s2), s2.crosses(s1));
    }

    #[test]
    fn segment_contains_its_own_samples(s in arb_segment(), t in 0.0f64..=1.0) {
        let p = s.a.lerp(s.b, t);
        prop_assert!(s.contains_point(p));
        prop_assert!(s.distance_to_point(p) < 1e-6);
    }

    #[test]
    fn closest_point_is_on_segment_and_no_farther_than_endpoints(
        s in arb_segment(), p in arb_point(),
    ) {
        let c = s.closest_point(p);
        prop_assert!(s.contains_point(c));
        prop_assert!(p.distance(c) <= p.distance(s.a) + 1e-9);
        prop_assert!(p.distance(c) <= p.distance(s.b) + 1e-9);
    }

    #[test]
    fn bbox_contains_the_polygon_interior_point(poly in arb_rect()) {
        let bb = poly.bbox();
        prop_assert!(bb.contains(poly.interior_point()));
        prop_assert!(bb.contains(poly.centroid()));
    }

    #[test]
    fn point_location_is_exclusive(poly in arb_rect(), p in arb_point()) {
        // locate() gives exactly one answer, consistent with contains().
        let loc = poly.locate(p);
        match loc {
            PointLocation::Inside => prop_assert!(poly.contains_point_strict(p)),
            PointLocation::Boundary => {
                prop_assert!(poly.contains_point(p));
                prop_assert!(!poly.contains_point_strict(p));
            }
            PointLocation::Outside => prop_assert!(!poly.contains_point(p)),
        }
    }

    #[test]
    fn translation_preserves_area_and_relation(
        poly in arb_rect(), dx in -20.0f64..20.0, dy in -20.0f64..20.0,
    ) {
        let moved = poly.translated(dx, dy);
        prop_assert!((moved.area() - poly.area()).abs() < 1e-9);
        // Relating a polygon with a far-translated copy gives disjoint.
        let far = poly.translated(1_000.0, 1_000.0);
        prop_assert_eq!(relate_polygons(&poly, &far), SpatialRelation::Disjoint);
    }

    #[test]
    fn clip_area_is_bounded_by_both(inner in arb_rect(), outer in arb_rect()) {
        if let Some(clipped) = clip_to_convex(&inner, &outer) {
            prop_assert!(clipped.area() <= inner.area() + 1e-6);
            prop_assert!(clipped.area() <= outer.area() + 1e-6);
        }
        let f = overlap_fraction(&inner, &outer);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&f));
    }

    #[test]
    fn containment_relations_match_fractions(a in arb_rect(), b in arb_rect()) {
        // If the derived relation says a contains b, then b's overlap
        // fraction within a must be 1 (and vice versa for disjoint).
        match relate_polygons(&a, &b) {
            SpatialRelation::Contains | SpatialRelation::Covers => {
                prop_assert!((overlap_fraction(&b, &a) - 1.0).abs() < 1e-6);
            }
            SpatialRelation::Disjoint => {
                prop_assert!(overlap_fraction(&b, &a) < 1e-9);
            }
            _ => {}
        }
    }

    #[test]
    fn grid_candidates_are_complete(
        rects in proptest::collection::vec(arb_rect(), 1..20),
        p in arb_point(),
    ) {
        // Every polygon that truly contains p must appear in the grid's
        // candidate set (no false negatives).
        let mut grid = Grid::new(7.0);
        for (i, r) in rects.iter().enumerate() {
            grid.insert(i, r.bbox());
        }
        let candidates = grid.candidates_at(p);
        for (i, r) in rects.iter().enumerate() {
            if r.contains_point(p) {
                prop_assert!(candidates.contains(&i), "missing candidate {i}");
            }
        }
    }

    #[test]
    fn bbox_union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.bbox().union(b.bbox());
        for p in a.vertices().iter().chain(b.vertices()) {
            prop_assert!(u.contains(*p));
        }
        prop_assert!(u.area() + 1e-9 >= a.bbox().area().max(b.bbox().area()));
    }

    #[test]
    fn shared_boundary_is_symmetric_and_bounded(
        a in arb_rect(), b in arb_rect(),
    ) {
        // The production version lives in sitm-space::duality; the property
        // is checked here against the raw polygons.
        let ab = shared_len(&a, &b);
        let ba = shared_len(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!(ab <= a.perimeter().min(b.perimeter()) + 1e-6);
    }
}

/// Re-implementation of the shared-boundary sum for the property test (the
/// production version lives in `sitm-space::duality`).
fn shared_len(a: &Polygon, b: &Polygon) -> f64 {
    use sitm_geometry::SegmentIntersection;
    let mut total = 0.0;
    for ea in a.edges() {
        for eb in b.edges() {
            if let SegmentIntersection::Collinear(shared) = ea.intersect(eb) {
                total += shared.length();
            }
        }
    }
    total
}
