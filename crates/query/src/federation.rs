//! Cross-source query federation.
//!
//! The warehouse view of the SITM (Mireku Kwakye's trajectory-warehouse
//! line in the related work) has trajectories living in *several places
//! at once*: an indexed [`TrajectoryDb`] of
//! completed visits, and the live shard state of one or more streaming
//! engines. A query like "who is on the Fig. 5 exit path right now?"
//! must see the union.
//!
//! [`TrajectorySource`] abstracts one such place: anything that can walk
//! its trajectories. The `federated_*` entry points evaluate a
//! [`Predicate`] over the union of many sources without materializing
//! it — each source is visited in place and matches stream through a
//! callback, so a shard's live state is never copied wholesale into a
//! central collection.
//!
//! ## Index-served selection
//!
//! A source that owns secondary indexes overrides
//! [`TrajectorySource::candidates`] /
//! [`TrajectorySource::for_each_candidate`] to narrow a predicate to a
//! *sound candidate superset* before any trajectory is touched —
//! [`TrajectoryDb`] answers from its cell/annotation/moving-object
//! postings and interval trees, and `sitm-stream`'s `LiveSnapshot`
//! answers from its incrementally maintained live postings. The
//! federation layer always re-checks the full predicate on every
//! candidate, so an indexed source and a scanning source are
//! indistinguishable in their results (only in their cost —
//! [`federated_explain`] reports each source's access path). Sources
//! without indexes inherit the default full-scan behaviour.
//!
//! Consistency is per-source: each source contributes a snapshot of its
//! own state at scan time (streaming engines hand out snapshot-consistent
//! live state; see `sitm-stream`'s `live_query` module). The federation
//! layer adds no cross-source barrier, matching the usual federated-query
//! contract: per-participant snapshot isolation, union of results.

use sitm_core::SemanticTrajectory;

use crate::index::{CandidateSet, TrajectoryDb};
use crate::predicate::Predicate;
use crate::query::{AccessPath, QueryPlan};

/// One queryable collection of semantic trajectories (a warehouse, one
/// engine's live state, one remote site's result cache, ...).
pub trait TrajectorySource {
    /// Walks every trajectory in the source, in the source's own order.
    fn for_each_trajectory(&self, f: &mut dyn FnMut(&SemanticTrajectory));

    /// Optional size hint (0 when unknown), used to pre-size result
    /// buffers.
    fn len_hint(&self) -> usize {
        0
    }

    /// Index consultation: a sound candidate superset for `predicate`,
    /// as positions in this source's iteration order. The default —
    /// [`CandidateSet::All`] — declares the source unindexed; override
    /// it (together with [`TrajectorySource::for_each_candidate`]) when
    /// the source can narrow selections without scanning.
    fn candidates(&self, _predicate: &Predicate) -> CandidateSet {
        CandidateSet::All
    }

    /// Walks a sound superset of the trajectories matching `predicate`,
    /// in the source's own order. Callers must still re-check the
    /// predicate on every yielded trajectory. The default scans;
    /// indexed sources override it to visit only their candidates.
    fn for_each_candidate(&self, _predicate: &Predicate, f: &mut dyn FnMut(&SemanticTrajectory)) {
        self.for_each_trajectory(f);
    }
}

impl TrajectorySource for [SemanticTrajectory] {
    fn for_each_trajectory(&self, f: &mut dyn FnMut(&SemanticTrajectory)) {
        for t in self {
            f(t);
        }
    }

    fn len_hint(&self) -> usize {
        self.len()
    }
}

impl TrajectorySource for Vec<SemanticTrajectory> {
    fn for_each_trajectory(&self, f: &mut dyn FnMut(&SemanticTrajectory)) {
        self.as_slice().for_each_trajectory(f);
    }

    fn len_hint(&self) -> usize {
        self.len()
    }
}

impl TrajectorySource for TrajectoryDb {
    fn for_each_trajectory(&self, f: &mut dyn FnMut(&SemanticTrajectory)) {
        for t in self.iter() {
            f(t);
        }
    }

    fn len_hint(&self) -> usize {
        self.len()
    }

    fn candidates(&self, predicate: &Predicate) -> CandidateSet {
        TrajectoryDb::candidates(self, predicate)
    }

    fn for_each_candidate(&self, predicate: &Predicate, f: &mut dyn FnMut(&SemanticTrajectory)) {
        match TrajectoryDb::candidates(self, predicate) {
            CandidateSet::All => self.for_each_trajectory(f),
            CandidateSet::Ids(ids) => {
                for id in ids {
                    if let Some(t) = self.get(id) {
                        f(t);
                    }
                }
            }
        }
    }
}

/// Calls `f` for every trajectory across `sources` that satisfies
/// `predicate`, tagged with the index of the source it came from. Each
/// source is narrowed through its own indexes when it has any
/// ([`TrajectorySource::for_each_candidate`]); the predicate is
/// re-checked on every candidate, so results are identical to a full
/// scan of every source.
pub fn federated_for_each(
    predicate: &Predicate,
    sources: &[&dyn TrajectorySource],
    mut f: impl FnMut(usize, &SemanticTrajectory),
) {
    for (i, source) in sources.iter().enumerate() {
        source.for_each_candidate(predicate, &mut |t| {
            if predicate.matches(t) {
                f(i, t);
            }
        });
    }
}

/// Counts matches across every source.
pub fn federated_count(predicate: &Predicate, sources: &[&dyn TrajectorySource]) -> usize {
    let mut n = 0;
    federated_for_each(predicate, sources, |_, _| n += 1);
    n
}

/// Collects (cloned) matches across every source, in source order.
pub fn federated_matching(
    predicate: &Predicate,
    sources: &[&dyn TrajectorySource],
) -> Vec<SemanticTrajectory> {
    // No up-front reserve: a selective predicate over large sources
    // would otherwise allocate for every trajectory that exists.
    let mut out = Vec::new();
    federated_for_each(predicate, sources, |_, t| out.push(t.clone()));
    out
}

/// Plans (without executing) the predicate against every source: one
/// [`QueryPlan`] per source, in source order, reporting whether that
/// participant will be index-narrowed or scanned.
pub fn federated_explain(
    predicate: &Predicate,
    sources: &[&dyn TrajectorySource],
) -> Vec<QueryPlan> {
    sources
        .iter()
        .map(|source| {
            let access = match source.candidates(predicate) {
                CandidateSet::All => AccessPath::FullScan,
                CandidateSet::Ids(ids) => AccessPath::IndexCandidates {
                    candidates: ids.len(),
                },
            };
            QueryPlan {
                access,
                residual: predicate.clone(),
                total: source.len_hint(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{
        Annotation, AnnotationSet, PresenceInterval, Timestamp, Trace, TransitionTaken,
    };
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn traj(mo: &str, c: usize) -> SemanticTrajectory {
        let stay = PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(c),
            Timestamp(0),
            Timestamp(60),
        );
        SemanticTrajectory::new(
            mo,
            Trace::new(vec![stay]).unwrap(),
            AnnotationSet::from_iter([Annotation::goal("visit")]),
        )
        .unwrap()
    }

    #[test]
    fn union_over_vec_and_db_sources() {
        let live: Vec<SemanticTrajectory> = vec![traj("a", 1), traj("b", 2)];
        let db = TrajectoryDb::build(vec![traj("c", 1), traj("d", 3)]);
        let sources: Vec<&dyn TrajectorySource> = vec![&live, &db];
        let p = Predicate::VisitedCell(cell(1));

        assert_eq!(federated_count(&p, &sources), 2);
        let matches = federated_matching(&p, &sources);
        let names: Vec<&str> = matches.iter().map(|t| t.moving_object.as_str()).collect();
        assert_eq!(names, vec!["a", "c"], "source order preserved");

        let mut tagged = Vec::new();
        federated_for_each(&p, &sources, |src, t| {
            tagged.push((src, t.moving_object.clone()));
        });
        assert_eq!(tagged, vec![(0, "a".to_string()), (1, "c".to_string())]);
    }

    #[test]
    fn empty_sources_contribute_nothing() {
        let empty: Vec<SemanticTrajectory> = Vec::new();
        let sources: Vec<&dyn TrajectorySource> = vec![&empty];
        assert_eq!(federated_count(&Predicate::True, &sources), 0);
        assert!(federated_matching(&Predicate::True, &[]).is_empty());
        assert_eq!(empty.len_hint(), 0);
    }

    #[test]
    fn explain_reports_per_source_access_paths() {
        let live: Vec<SemanticTrajectory> = vec![traj("a", 1), traj("b", 2)];
        let db = TrajectoryDb::build(vec![traj("c", 1), traj("d", 3)]);
        let sources: Vec<&dyn TrajectorySource> = vec![&live, &db];
        let p = Predicate::VisitedCell(cell(1));
        let plans = federated_explain(&p, &sources);
        assert_eq!(plans.len(), 2);
        assert_eq!(
            plans[0].access,
            AccessPath::FullScan,
            "plain Vec has no indexes"
        );
        assert_eq!(
            plans[1].access,
            AccessPath::IndexCandidates { candidates: 1 },
            "the warehouse narrows through its postings"
        );
        assert_eq!(plans[1].total, 2);
    }

    #[test]
    fn indexed_and_scanned_sources_agree_under_federation() {
        let db = TrajectoryDb::build(vec![traj("a", 1), traj("b", 2), traj("c", 1)]);
        let plain: Vec<SemanticTrajectory> = db.trajectories().to_vec();
        for p in [
            Predicate::VisitedCell(cell(1)),
            Predicate::MovingObject("b".into()),
            Predicate::VisitedCell(cell(2)).or(Predicate::MovingObject("a".into())),
            Predicate::VisitedCell(cell(9)),
            Predicate::True,
        ] {
            let from_db: Vec<String> = federated_matching(&p, &[&db])
                .into_iter()
                .map(|t| t.moving_object)
                .collect();
            let from_scan: Vec<String> = federated_matching(&p, &[&plain])
                .into_iter()
                .map(|t| t.moving_object)
                .collect();
            assert_eq!(from_db, from_scan, "index path diverged for {p}");
        }
    }
}
