//! A static augmented interval tree over [`TimeInterval`]s.
//!
//! The query engine answers "which trajectories / stays were live at time
//! `t` (or during window `w`)?" against datasets with tens of thousands of
//! presence intervals. A linear scan is O(n) per query; this tree is
//! O(log n + k). It is *static*: built once from the indexed collection,
//! which matches the engine's build-then-query lifecycle and avoids
//! rebalancing machinery.
//!
//! Layout: the classic augmented balanced BST. Entries are sorted by
//! interval start, the tree is the implicit median-split tree over that
//! sorted array, and every node carries the maximum interval end in its
//! subtree, which lets descents prune whole subtrees.

use sitm_core::{TimeInterval, Timestamp};

/// One indexed entry: an interval plus an opaque payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry<P> {
    /// The indexed interval.
    pub interval: TimeInterval,
    /// Caller payload (typically a trajectory or stay id).
    pub payload: P,
}

/// A static augmented interval tree.
///
/// Build with [`IntervalTree::build`]; query with [`IntervalTree::stab`]
/// and [`IntervalTree::overlapping`].
#[derive(Debug, Clone, Default)]
pub struct IntervalTree<P> {
    /// Entries sorted by `(start, end)`.
    entries: Vec<Entry<P>>,
    /// `max_end[i]` = maximum interval end within the subtree rooted at
    /// index `i` of the implicit median-split tree.
    max_end: Vec<Timestamp>,
}

impl<P: Copy> IntervalTree<P> {
    /// Builds a tree from arbitrary-order entries.
    pub fn build(mut entries: Vec<Entry<P>>) -> IntervalTree<P> {
        entries.sort_by_key(|e| (e.interval.start, e.interval.end));
        let mut max_end = vec![Timestamp(i64::MIN); entries.len()];
        if !entries.is_empty() {
            Self::fill_max(&entries, &mut max_end, 0, entries.len());
        }
        IntervalTree { entries, max_end }
    }

    /// Computes subtree maxima over the implicit tree of `range`, whose
    /// root is the median index. Returns the subtree max.
    fn fill_max(
        entries: &[Entry<P>],
        max_end: &mut [Timestamp],
        lo: usize,
        hi: usize,
    ) -> Timestamp {
        let mid = lo + (hi - lo) / 2;
        let mut max = entries[mid].interval.end;
        if lo < mid {
            max = max.max(Self::fill_max(entries, max_end, lo, mid));
        }
        if mid + 1 < hi {
            max = max.max(Self::fill_max(entries, max_end, mid + 1, hi));
        }
        max_end[mid] = max;
        max
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All payloads whose interval contains instant `t` (inclusive ends),
    /// in `(start, end)` order.
    pub fn stab(&self, t: Timestamp) -> Vec<P> {
        self.overlapping(TimeInterval::new(t, t))
    }

    /// All payloads whose interval shares at least one instant with
    /// `window`, in `(start, end)` order.
    pub fn overlapping(&self, window: TimeInterval) -> Vec<P> {
        let mut out = Vec::new();
        if !self.entries.is_empty() {
            self.collect(0, self.entries.len(), window, &mut out);
        }
        out
    }

    /// True when at least one indexed interval overlaps `window` (early
    /// exit, cheaper than `overlapping().is_empty()`).
    pub fn any_overlapping(&self, window: TimeInterval) -> bool {
        !self.entries.is_empty() && self.probe(0, self.entries.len(), window)
    }

    fn collect(&self, lo: usize, hi: usize, window: TimeInterval, out: &mut Vec<P>) {
        let mid = lo + (hi - lo) / 2;
        // Prune: nothing in this subtree ends at/after the window start.
        if self.max_end[mid] < window.start {
            return;
        }
        if lo < mid {
            self.collect(lo, mid, window, out);
        }
        let e = &self.entries[mid];
        if e.interval.overlaps(window) {
            out.push(e.payload);
        }
        // Entries right of mid all start at/after this start; if that is
        // already past the window end the right subtree cannot overlap.
        if mid + 1 < hi && e.interval.start <= window.end {
            self.collect(mid + 1, hi, window, out);
        }
    }

    fn probe(&self, lo: usize, hi: usize, window: TimeInterval) -> bool {
        let mid = lo + (hi - lo) / 2;
        if self.max_end[mid] < window.start {
            return false;
        }
        if lo < mid && self.probe(lo, mid, window) {
            return true;
        }
        let e = &self.entries[mid];
        if e.interval.overlaps(window) {
            return true;
        }
        mid + 1 < hi && e.interval.start <= window.end && self.probe(mid + 1, hi, window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start: i64, end: i64) -> TimeInterval {
        TimeInterval::new(Timestamp(start), Timestamp(end))
    }

    fn tree(items: &[(i64, i64)]) -> IntervalTree<usize> {
        IntervalTree::build(
            items
                .iter()
                .enumerate()
                .map(|(i, &(s, e))| Entry {
                    interval: iv(s, e),
                    payload: i,
                })
                .collect(),
        )
    }

    #[test]
    fn empty_tree() {
        let t: IntervalTree<usize> = IntervalTree::build(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.stab(Timestamp(0)).is_empty());
        assert!(!t.any_overlapping(iv(0, 100)));
    }

    #[test]
    fn stab_hits_inclusive_bounds() {
        let t = tree(&[(10, 20)]);
        assert_eq!(t.stab(Timestamp(10)), vec![0]);
        assert_eq!(t.stab(Timestamp(20)), vec![0]);
        assert_eq!(t.stab(Timestamp(15)), vec![0]);
        assert!(t.stab(Timestamp(9)).is_empty());
        assert!(t.stab(Timestamp(21)).is_empty());
    }

    #[test]
    fn zero_length_intervals_are_stabbable() {
        // The paper's zero-duration detections remain queryable.
        let t = tree(&[(5, 5), (5, 9)]);
        assert_eq!(t.stab(Timestamp(5)), vec![0, 1]);
        assert_eq!(t.stab(Timestamp(6)), vec![1]);
    }

    #[test]
    fn overlapping_returns_sorted_by_start() {
        let t = tree(&[(30, 40), (0, 100), (10, 20), (50, 60)]);
        assert_eq!(t.overlapping(iv(15, 55)), vec![1, 2, 0, 3]);
        assert_eq!(t.overlapping(iv(41, 49)), vec![1]);
        assert!(t.overlapping(iv(101, 200)).is_empty());
    }

    #[test]
    fn any_overlapping_matches_overlapping() {
        let t = tree(&[(0, 2), (8, 9), (4, 6)]);
        for (s, e) in [(0, 0), (3, 3), (2, 4), (7, 7), (9, 12), (10, 20)] {
            assert_eq!(
                t.any_overlapping(iv(s, e)),
                !t.overlapping(iv(s, e)).is_empty(),
                "window [{s},{e}]"
            );
        }
    }

    #[test]
    fn nested_and_duplicate_intervals() {
        let t = tree(&[(0, 100), (0, 100), (40, 60), (50, 50)]);
        assert_eq!(t.stab(Timestamp(50)).len(), 4);
        assert_eq!(t.overlapping(iv(0, 10)).len(), 2);
    }

    #[test]
    fn agrees_with_naive_scan_on_fixed_cases() {
        let items: Vec<(i64, i64)> = (0..64).map(|i| (i * 3 % 50, i * 3 % 50 + i % 7)).collect();
        let t = tree(&items);
        for w in [(0, 0), (10, 10), (5, 25), (48, 60), (0, 100)] {
            let window = iv(w.0, w.1);
            let mut naive: Vec<usize> = items
                .iter()
                .enumerate()
                .filter(|(_, &(s, e))| iv(s, e).overlaps(window))
                .map(|(i, _)| i)
                .collect();
            let mut got = t.overlapping(window);
            naive.sort_by_key(|&i| (items[i].0, items[i].1, i));
            // Sort both by (start,end) then payload for a stable comparison:
            // payload order within equal intervals is unspecified.
            got.sort_by_key(|&i| (items[i].0, items[i].1, i));
            assert_eq!(got, naive, "window {w:?}");
        }
    }
}
