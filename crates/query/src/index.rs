//! Inverted and temporal indexes over a trajectory collection.
//!
//! [`TrajectoryDb`] owns a vector of [`SemanticTrajectory`]s plus the
//! secondary structures that make the predicate algebra cheap to evaluate:
//!
//! * **cell postings** — cell → sorted trajectory ids (the "where" axis);
//! * **annotation postings** — annotation → ids, separately for
//!   whole-trajectory `A_traj` and per-stay `A_i` (the "what" axis);
//! * **moving-object postings** — `IDmo` → ids;
//! * **span tree** — an [`IntervalTree`] over `[tstart, tend]` (the
//!   "when" axis);
//! * **per-cell stay trees** — cell → interval tree over that cell's
//!   stays, for `StayOverlaps` selections.
//!
//! Index lookups return *candidate supersets*; the engine always re-checks
//! the full predicate against each candidate, so a lookup only has to be
//! sound, never complete-in-itself.

use std::collections::BTreeMap;
use std::sync::Arc;

use sitm_core::{Annotation, SemanticTrajectory, TimeInterval};
use sitm_space::CellRef;

use crate::interval_tree::{Entry, IntervalTree};
use crate::predicate::Predicate;

/// Dense identifier of a trajectory inside a [`TrajectoryDb`].
pub type TrajId = u32;

/// A candidate set produced by index consultation: either "must scan
/// everything" or an explicit sorted id list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CandidateSet {
    /// The index cannot narrow this predicate; scan the collection.
    All,
    /// A sorted, duplicate-free superset of the matching ids.
    Ids(Vec<TrajId>),
}

impl CandidateSet {
    /// Number of candidates given the collection size.
    pub fn cardinality(&self, total: usize) -> usize {
        match self {
            CandidateSet::All => total,
            CandidateSet::Ids(ids) => ids.len(),
        }
    }

    /// Set intersection (`All` is the identity).
    pub fn intersect(self, other: CandidateSet) -> CandidateSet {
        match (self, other) {
            (CandidateSet::All, c) | (c, CandidateSet::All) => c,
            (CandidateSet::Ids(a), CandidateSet::Ids(b)) => {
                let mut out = Vec::with_capacity(a.len().min(b.len()));
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                CandidateSet::Ids(out)
            }
        }
    }

    /// Set union (`All` absorbs).
    pub fn union(self, other: CandidateSet) -> CandidateSet {
        match (self, other) {
            (CandidateSet::All, _) | (_, CandidateSet::All) => CandidateSet::All,
            (CandidateSet::Ids(a), CandidateSet::Ids(b)) => {
                let mut out = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() || j < b.len() {
                    let next = match (a.get(i), b.get(j)) {
                        (Some(&x), Some(&y)) if x == y => {
                            i += 1;
                            j += 1;
                            x
                        }
                        (Some(&x), Some(&y)) if x < y => {
                            i += 1;
                            x
                        }
                        (Some(_), Some(&y)) => {
                            j += 1;
                            y
                        }
                        (Some(&x), None) => {
                            i += 1;
                            x
                        }
                        (None, Some(&y)) => {
                            j += 1;
                            y
                        }
                        (None, None) => unreachable!("loop condition"),
                    };
                    out.push(next);
                }
                CandidateSet::Ids(out)
            }
        }
    }
}

/// An indexed, immutable collection of semantic trajectories.
///
/// Storage is `Arc`-shared: [`TrajectoryDb::build_shared`] indexes a
/// collection *without copying it*, so a warehouse segment's single
/// decoded run can back both the segment cache and its postings (the
/// pre-v2 design cloned the vector per consumer).
#[derive(Debug, Clone, Default)]
pub struct TrajectoryDb {
    items: Arc<Vec<SemanticTrajectory>>,
    cell_postings: BTreeMap<CellRef, Vec<TrajId>>,
    traj_ann_postings: BTreeMap<Annotation, Vec<TrajId>>,
    stay_ann_postings: BTreeMap<Annotation, Vec<TrajId>>,
    object_postings: BTreeMap<String, Vec<TrajId>>,
    span_tree: IntervalTree<TrajId>,
    stay_trees: BTreeMap<CellRef, IntervalTree<TrajId>>,
}

fn push_unique(postings: &mut BTreeMap<CellRef, Vec<TrajId>>, key: CellRef, id: TrajId) {
    let list = postings.entry(key).or_default();
    if list.last() != Some(&id) {
        list.push(id);
    }
}

impl TrajectoryDb {
    /// Builds the database, consuming the trajectories and constructing
    /// every secondary index in one pass (O(total stays · log)).
    pub fn build(items: Vec<SemanticTrajectory>) -> TrajectoryDb {
        TrajectoryDb::build_shared(Arc::new(items))
    }

    /// Builds the database over an already-shared collection: only the
    /// secondary indexes are constructed, the storage itself is the
    /// caller's `Arc` (zero trajectory copies).
    pub fn build_shared(items: Arc<Vec<SemanticTrajectory>>) -> TrajectoryDb {
        let mut cell_postings: BTreeMap<CellRef, Vec<TrajId>> = BTreeMap::new();
        let mut traj_ann_postings: BTreeMap<Annotation, Vec<TrajId>> = BTreeMap::new();
        let mut stay_ann_postings: BTreeMap<Annotation, Vec<TrajId>> = BTreeMap::new();
        let mut object_postings: BTreeMap<String, Vec<TrajId>> = BTreeMap::new();
        let mut span_entries = Vec::with_capacity(items.len());
        let mut stay_entries: BTreeMap<CellRef, Vec<Entry<TrajId>>> = BTreeMap::new();

        for (i, t) in items.iter().enumerate() {
            let id = i as TrajId;
            span_entries.push(Entry {
                interval: t.span(),
                payload: id,
            });
            object_postings
                .entry(t.moving_object.clone())
                .or_default()
                .push(id);
            for a in t.annotations().iter() {
                let list = traj_ann_postings.entry(a.clone()).or_default();
                if list.last() != Some(&id) {
                    list.push(id);
                }
            }
            for stay in t.trace().intervals() {
                push_unique(&mut cell_postings, stay.cell, id);
                stay_entries.entry(stay.cell).or_default().push(Entry {
                    interval: stay.time,
                    payload: id,
                });
                for a in stay.annotations.iter() {
                    let list = stay_ann_postings.entry(a.clone()).or_default();
                    if list.last() != Some(&id) {
                        list.push(id);
                    }
                }
            }
        }

        TrajectoryDb {
            items,
            cell_postings,
            traj_ann_postings,
            stay_ann_postings,
            object_postings,
            span_tree: IntervalTree::build(span_entries),
            stay_trees: stay_entries
                .into_iter()
                .map(|(cell, entries)| (cell, IntervalTree::build(entries)))
                .collect(),
        }
    }

    /// Number of trajectories.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Trajectory by id.
    pub fn get(&self, id: TrajId) -> Option<&SemanticTrajectory> {
        self.items.get(id as usize)
    }

    /// All trajectories in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &SemanticTrajectory> {
        self.items.iter()
    }

    /// Underlying storage.
    pub fn trajectories(&self) -> &[SemanticTrajectory] {
        &self.items
    }

    /// Distinct cells appearing in the collection.
    pub fn cells(&self) -> impl Iterator<Item = CellRef> + '_ {
        self.cell_postings.keys().copied()
    }

    /// Ids of trajectories with at least one stay in `cell`.
    pub fn with_cell(&self, cell: CellRef) -> &[TrajId] {
        self.cell_postings.get(&cell).map_or(&[], Vec::as_slice)
    }

    /// Ids of trajectories whose span overlaps `window` (sorted).
    pub fn spans_overlapping(&self, window: TimeInterval) -> Vec<TrajId> {
        let mut ids = self.span_tree.overlapping(window);
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Derives a candidate superset for `p` from the indexes.
    ///
    /// Soundness invariant (property-tested): every trajectory matching
    /// `p` is in the returned set. The set may contain non-matches; the
    /// engine re-filters.
    pub fn candidates(&self, p: &Predicate) -> CandidateSet {
        match p {
            Predicate::True | Predicate::MinTotalDwell(_) | Predicate::Not(_) => CandidateSet::All,
            Predicate::VisitedCell(cell) | Predicate::MinStayIn(cell, _) => {
                CandidateSet::Ids(self.with_cell(*cell).to_vec())
            }
            Predicate::SequenceContains(cells) => cells
                .iter()
                .map(|c| CandidateSet::Ids(self.with_cell(*c).to_vec()))
                .fold(CandidateSet::All, CandidateSet::intersect),
            Predicate::SpanOverlaps(window) => CandidateSet::Ids(self.spans_overlapping(*window)),
            Predicate::StayOverlaps(cell, window) => match self.stay_trees.get(cell) {
                None => CandidateSet::Ids(Vec::new()),
                Some(tree) => {
                    let mut ids = tree.overlapping(*window);
                    ids.sort_unstable();
                    ids.dedup();
                    CandidateSet::Ids(ids)
                }
            },
            Predicate::HasTrajAnnotation(a) => {
                CandidateSet::Ids(self.traj_ann_postings.get(a).cloned().unwrap_or_default())
            }
            Predicate::HasStayAnnotation(a) => {
                CandidateSet::Ids(self.stay_ann_postings.get(a).cloned().unwrap_or_default())
            }
            Predicate::MovingObject(id) => {
                CandidateSet::Ids(self.object_postings.get(id).cloned().unwrap_or_default())
            }
            Predicate::And(parts) => parts
                .iter()
                .map(|q| self.candidates(q))
                .fold(CandidateSet::All, CandidateSet::intersect),
            Predicate::Or(parts) => {
                if parts.is_empty() {
                    return CandidateSet::Ids(Vec::new());
                }
                let mut acc = CandidateSet::Ids(Vec::new());
                for q in parts {
                    acc = acc.union(self.candidates(q));
                    if acc == CandidateSet::All {
                        break;
                    }
                }
                acc
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{AnnotationSet, PresenceInterval, Timestamp, Trace, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn traj(mo: &str, stays: &[(usize, i64, i64)], goal: &str) -> SemanticTrajectory {
        let intervals = stays
            .iter()
            .map(|&(c, s, e)| {
                PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(c),
                    Timestamp(s),
                    Timestamp(e),
                )
            })
            .collect();
        SemanticTrajectory::new(
            mo,
            Trace::new(intervals).unwrap(),
            AnnotationSet::from_iter([Annotation::goal(goal)]),
        )
        .unwrap()
    }

    fn db() -> TrajectoryDb {
        TrajectoryDb::build(vec![
            traj("a", &[(0, 0, 10), (1, 10, 20)], "visit"),
            traj("b", &[(1, 5, 15), (2, 15, 30)], "visit"),
            traj("c", &[(2, 100, 200)], "buy"),
        ])
    }

    #[test]
    fn postings_are_sorted_and_deduped() {
        let db = TrajectoryDb::build(vec![
            traj("a", &[(0, 0, 5), (1, 5, 6), (0, 6, 9)], "visit"),
            traj("b", &[(0, 0, 3)], "visit"),
        ]);
        assert_eq!(db.with_cell(cell(0)), &[0, 1]);
        assert_eq!(db.with_cell(cell(1)), &[0]);
        assert!(db.with_cell(cell(7)).is_empty());
    }

    #[test]
    fn span_tree_narrows_by_time() {
        let db = db();
        assert_eq!(
            db.spans_overlapping(TimeInterval::new(Timestamp(0), Timestamp(4))),
            vec![0]
        );
        assert_eq!(
            db.spans_overlapping(TimeInterval::new(Timestamp(12), Timestamp(40))),
            vec![0, 1]
        );
        assert_eq!(
            db.spans_overlapping(TimeInterval::new(Timestamp(31), Timestamp(99))),
            Vec::<TrajId>::new()
        );
    }

    #[test]
    fn candidate_sets_are_sound_supersets() {
        let db = db();
        let preds = [
            Predicate::VisitedCell(cell(1)),
            Predicate::HasTrajAnnotation(Annotation::goal("buy")),
            Predicate::MovingObject("b".into()),
            Predicate::SpanOverlaps(TimeInterval::new(Timestamp(0), Timestamp(16))),
            Predicate::StayOverlaps(cell(2), TimeInterval::new(Timestamp(16), Timestamp(20))),
            Predicate::VisitedCell(cell(1)).and(Predicate::MovingObject("a".into())),
            Predicate::VisitedCell(cell(0)).or(Predicate::VisitedCell(cell(2))),
            Predicate::VisitedCell(cell(0)).not(),
        ];
        for p in preds {
            let cand = db.candidates(&p);
            for (i, t) in db.iter().enumerate() {
                if p.matches(t) {
                    match &cand {
                        CandidateSet::All => {}
                        CandidateSet::Ids(ids) => assert!(
                            ids.contains(&(i as TrajId)),
                            "candidate set for {p} lost matching trajectory {i}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn and_intersects_or_unions() {
        let db = db();
        let p = Predicate::VisitedCell(cell(1)).and(Predicate::VisitedCell(cell(2)));
        assert_eq!(db.candidates(&p), CandidateSet::Ids(vec![1]));
        let q = Predicate::VisitedCell(cell(0)).or(Predicate::VisitedCell(cell(2)));
        assert_eq!(db.candidates(&q), CandidateSet::Ids(vec![0, 1, 2]));
        // Or with an un-indexable arm degrades to All.
        let r = Predicate::VisitedCell(cell(0)).or(Predicate::True);
        assert_eq!(db.candidates(&r), CandidateSet::All);
        // Empty Or matches nothing.
        assert_eq!(
            db.candidates(&Predicate::Or(vec![])),
            CandidateSet::Ids(vec![])
        );
    }

    #[test]
    fn candidate_set_algebra() {
        let a = CandidateSet::Ids(vec![1, 2, 3]);
        let b = CandidateSet::Ids(vec![2, 3, 4]);
        assert_eq!(
            a.clone().intersect(b.clone()),
            CandidateSet::Ids(vec![2, 3])
        );
        assert_eq!(a.clone().union(b), CandidateSet::Ids(vec![1, 2, 3, 4]));
        assert_eq!(a.clone().intersect(CandidateSet::All), a);
        assert_eq!(a.clone().union(CandidateSet::All), CandidateSet::All);
        assert_eq!(a.cardinality(10), 3);
        assert_eq!(CandidateSet::All.cardinality(10), 10);
    }

    #[test]
    fn lookup_and_iteration() {
        let db = db();
        assert_eq!(db.len(), 3);
        assert!(!db.is_empty());
        assert_eq!(db.get(2).unwrap().moving_object, "c");
        assert!(db.get(3).is_none());
        assert_eq!(db.iter().count(), 3);
        assert_eq!(db.cells().count(), 3);
        assert_eq!(db.trajectories().len(), 3);
    }

    #[test]
    fn empty_db() {
        let db = TrajectoryDb::build(vec![]);
        assert!(db.is_empty());
        assert_eq!(
            db.candidates(&Predicate::VisitedCell(cell(0))),
            CandidateSet::Ids(vec![])
        );
        assert_eq!(
            db.spans_overlapping(TimeInterval::new(Timestamp(0), Timestamp(1))),
            Vec::<TrajId>::new()
        );
    }
}
