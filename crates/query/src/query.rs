//! The fluent query builder and its executor.
//!
//! ```
//! use sitm_query::{Query, SortKey, TrajectoryDb};
//! # use sitm_core::{Annotation, AnnotationSet, PresenceInterval, Timestamp,
//! #     Trace, TransitionTaken, SemanticTrajectory};
//! # use sitm_graph::{LayerIdx, NodeId};
//! # use sitm_space::CellRef;
//! # let cell = CellRef::new(LayerIdx::from_index(0), NodeId::from_index(0));
//! # let stay = PresenceInterval::new(
//! #     TransitionTaken::Unknown, cell, Timestamp(0), Timestamp(60));
//! # let t = SemanticTrajectory::new(
//! #     "v", Trace::new(vec![stay]).unwrap(),
//! #     AnnotationSet::from_iter([Annotation::goal("visit")])).unwrap();
//! let db = TrajectoryDb::build(vec![t]);
//! let hits = Query::new()
//!     .visited(cell)
//!     .goal("visit")
//!     .order_by(SortKey::Start, true)
//!     .limit(10)
//!     .execute(&db);
//! assert_eq!(hits.len(), 1);
//! ```
//!
//! Execution consults the database's indexes for a candidate superset
//! ([`TrajectoryDb::candidates`]), re-checks the predicate on each
//! candidate, then sorts and truncates. [`Query::explain`] reports the
//! chosen access path without running the query.

use std::cmp::Ordering;
use std::fmt;

use sitm_core::{Annotation, Duration, SemanticTrajectory, TimeInterval};
use sitm_space::CellRef;

use sitm_store::warehouse::SortColumns;

use crate::federation::{federated_for_each, TrajectorySource};
use crate::index::{CandidateSet, TrajId, TrajectoryDb};
use crate::predicate::Predicate;
use crate::segmented::SegmentedDb;

/// Sort dimension for query results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortKey {
    /// Trajectory start time (`tstart`).
    Start,
    /// Trajectory end time (`tend`).
    End,
    /// Span length (`tend - tstart`).
    SpanDuration,
    /// Total dwell time (sum of stay durations).
    TotalDwell,
    /// Moving-object identifier, lexicographically.
    MovingObject,
    /// Number of trace tuples.
    TraceLength,
}

impl SortKey {
    fn compare(self, a: &SemanticTrajectory, b: &SemanticTrajectory) -> Ordering {
        match self {
            SortKey::Start => a.start().cmp(&b.start()),
            SortKey::End => a.end().cmp(&b.end()),
            SortKey::SpanDuration => a.span().duration().cmp(&b.span().duration()),
            SortKey::TotalDwell => a.trace().dwell_total().cmp(&b.trace().dwell_total()),
            SortKey::MovingObject => a.moving_object.cmp(&b.moving_object),
            SortKey::TraceLength => a.trace().len().cmp(&b.trace().len()),
        }
    }
}

/// One query hit: the dense id plus a borrow of the trajectory.
#[derive(Debug, Clone, Copy)]
pub struct Match<'a> {
    /// Dense id within the queried [`TrajectoryDb`].
    pub id: TrajId,
    /// The matching trajectory.
    pub trajectory: &'a SemanticTrajectory,
}

/// How the executor will reach the rows (reported by [`Query::explain`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    /// Scan every trajectory.
    FullScan,
    /// Visit an explicit candidate id list derived from the indexes.
    IndexCandidates {
        /// Candidate count.
        candidates: usize,
    },
}

/// The executor's plan for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Access path.
    pub access: AccessPath,
    /// Predicate re-checked on each candidate.
    pub residual: Predicate,
    /// Collection size.
    pub total: usize,
}

impl QueryPlan {
    /// Candidate-to-collection ratio in `[0, 1]`; 1.0 for a full scan.
    pub fn selectivity_bound(&self) -> f64 {
        match (self.total, &self.access) {
            (0, _) => 0.0,
            (_, AccessPath::FullScan) => 1.0,
            (total, AccessPath::IndexCandidates { candidates }) => {
                *candidates as f64 / total as f64
            }
        }
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.access {
            AccessPath::FullScan => write!(f, "FullScan({} rows)", self.total)?,
            AccessPath::IndexCandidates { candidates } => {
                write!(f, "IndexCandidates({candidates} of {} rows)", self.total)?
            }
        }
        write!(f, " filter {}", self.residual)
    }
}

/// A declarative trajectory query: predicate + ordering + truncation.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    predicate: Predicate,
    order: Option<(SortKey, bool)>,
    offset: usize,
    limit: Option<usize>,
}

impl Default for Query {
    fn default() -> Self {
        Query::new()
    }
}

impl Query {
    /// Matches everything until filters are added.
    pub fn new() -> Query {
        Query {
            predicate: Predicate::True,
            order: None,
            offset: 0,
            limit: None,
        }
    }

    /// Adds an arbitrary predicate (AND-composed with existing filters).
    #[must_use]
    pub fn filter(mut self, p: Predicate) -> Query {
        self.predicate = self.predicate.and(p);
        self
    }

    /// Requires a stay in `cell`.
    #[must_use]
    pub fn visited(self, cell: CellRef) -> Query {
        self.filter(Predicate::VisitedCell(cell))
    }

    /// Requires the cell sequence to contain the contiguous run `cells`.
    #[must_use]
    pub fn follows_path(self, cells: Vec<CellRef>) -> Query {
        self.filter(Predicate::SequenceContains(cells))
    }

    /// Requires the trajectory span to overlap `window`.
    #[must_use]
    pub fn during(self, window: TimeInterval) -> Query {
        self.filter(Predicate::SpanOverlaps(window))
    }

    /// Requires a goal annotation on `A_traj`.
    #[must_use]
    pub fn goal(self, value: &str) -> Query {
        self.filter(Predicate::HasTrajAnnotation(Annotation::goal(value)))
    }

    /// Requires a whole-trajectory annotation.
    #[must_use]
    pub fn annotated(self, a: Annotation) -> Query {
        self.filter(Predicate::HasTrajAnnotation(a))
    }

    /// Requires a single stay in `cell` of at least `d`.
    #[must_use]
    pub fn stayed_at_least(self, cell: CellRef, d: Duration) -> Query {
        self.filter(Predicate::MinStayIn(cell, d))
    }

    /// Requires the moving-object id.
    #[must_use]
    pub fn moving_object(self, id: &str) -> Query {
        self.filter(Predicate::MovingObject(id.to_string()))
    }

    /// Sorts results (`ascending = false` reverses). Ties keep id order.
    #[must_use]
    pub fn order_by(mut self, key: SortKey, ascending: bool) -> Query {
        self.order = Some((key, ascending));
        self
    }

    /// Skips the first `n` results (applied after sorting).
    #[must_use]
    pub fn offset(mut self, n: usize) -> Query {
        self.offset = n;
        self
    }

    /// Keeps at most `n` results (applied after sorting and offset).
    #[must_use]
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// The composed predicate.
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }

    /// Plans the query against `db` without executing it.
    pub fn explain(&self, db: &TrajectoryDb) -> QueryPlan {
        let access = match db.candidates(&self.predicate) {
            CandidateSet::All => AccessPath::FullScan,
            CandidateSet::Ids(ids) => AccessPath::IndexCandidates {
                candidates: ids.len(),
            },
        };
        QueryPlan {
            access,
            residual: self.predicate.clone(),
            total: db.len(),
        }
    }

    /// Plans the query against any [`TrajectorySource`] — the warehouse
    /// *or* a streaming engine's live snapshot. Reports
    /// [`AccessPath::IndexCandidates`] when the source's own indexes can
    /// narrow the predicate (for `sitm-stream`'s `LiveSnapshot` that is
    /// the incrementally maintained live index; see its `live_query`
    /// module for exactly when the live path is indexable) and
    /// [`AccessPath::FullScan`] otherwise.
    pub fn explain_source(&self, source: &dyn TrajectorySource) -> QueryPlan {
        let access = match source.candidates(&self.predicate) {
            CandidateSet::All => AccessPath::FullScan,
            CandidateSet::Ids(ids) => AccessPath::IndexCandidates {
                candidates: ids.len(),
            },
        };
        QueryPlan {
            access,
            residual: self.predicate.clone(),
            total: source.len_hint(),
        }
    }

    /// Runs the full query — predicate, ordering, paging — over the
    /// union of many sources, narrowing each source through its own
    /// indexes. Results are cloned out (sources may be ephemeral
    /// snapshots). Without an `order_by`, results keep source order;
    /// with one, ties keep source order (the sort is stable), unlike
    /// [`Query::execute`]'s id tiebreak which has no cross-source
    /// meaning.
    pub fn execute_federated(&self, sources: &[&dyn TrajectorySource]) -> Vec<SemanticTrajectory> {
        let mut hits: Vec<SemanticTrajectory> = Vec::new();
        federated_for_each(&self.predicate, sources, |_, t| hits.push(t.clone()));
        if let Some((key, ascending)) = self.order {
            hits.sort_by(|a, b| {
                let ord = key.compare(a, b);
                if ascending {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
        let hits: Vec<SemanticTrajectory> = hits.into_iter().skip(self.offset).collect();
        match self.limit {
            Some(n) => hits.into_iter().take(n).collect(),
            None => hits,
        }
    }

    /// Runs the query: candidates → residual filter → sort → page.
    pub fn execute<'a>(&self, db: &'a TrajectoryDb) -> Vec<Match<'a>> {
        let mut hits: Vec<Match<'a>> = match db.candidates(&self.predicate) {
            CandidateSet::All => db
                .trajectories()
                .iter()
                .enumerate()
                .filter(|(_, t)| self.predicate.matches(t))
                .map(|(i, t)| Match {
                    id: i as TrajId,
                    trajectory: t,
                })
                .collect(),
            CandidateSet::Ids(ids) => ids
                .into_iter()
                .filter_map(|id| db.get(id).map(|t| (id, t)))
                .filter(|(_, t)| self.predicate.matches(t))
                .map(|(id, t)| Match { id, trajectory: t })
                .collect(),
        };
        if let Some((key, ascending)) = self.order {
            hits.sort_by(|a, b| {
                let ord = key
                    .compare(a.trajectory, b.trajectory)
                    .then(a.id.cmp(&b.id));
                if ascending {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
        let hits: Vec<Match<'a>> = hits.into_iter().skip(self.offset).collect();
        match self.limit {
            Some(n) => hits.into_iter().take(n).collect(),
            None => hits,
        }
    }

    /// Runs the full query — predicate, ordering, paging — directly
    /// against a [`SegmentedDb`] warehouse, pushing the sort and the
    /// page down onto the segments' **offset directories**.
    ///
    /// Result-identical (same trajectories, same order) to
    /// [`Query::execute`] over an eager [`TrajectoryDb`] built from the
    /// warehouse's iteration order — global positions are the id
    /// tiebreak — but cold segments are touched per *frame*, not per
    /// segment:
    ///
    /// * no `order_by`: candidates stream in warehouse order and the
    ///   scan stops as soon as the page is full;
    /// * `order_by` [`SortKey::Start`] / [`SortKey::End`] /
    ///   [`SortKey::SpanDuration`]: the sort key is read from the
    ///   directory entries (span start/end are recorded per frame), so
    ///   ordering + paging decide *which* frames to decode before any
    ///   trajectory is materialized;
    /// * content-derived keys ([`SortKey::TotalDwell`],
    ///   [`SortKey::MovingObject`], [`SortKey::TraceLength`]): the sort
    ///   key is read from the segments' persisted **sort columns**
    ///   (format v3; dwell seconds, trace length, and an index into the
    ///   zone map's sorted object set per row), so ordering + paging
    ///   again decide which frames to decode before any trajectory is
    ///   materialized. Only when a segment lacks columns (a v2 file not
    ///   yet fully decoded) does the query fall back to materializing
    ///   every candidate.
    ///
    /// Rows past the page are never materialized on the pushed-down
    /// paths. Results are cloned out (cold frames decode to owned
    /// values anyway).
    ///
    /// # Panics
    ///
    /// If a segment body turns out corrupt mid-query (same fail-stop
    /// policy as [`SegmentedDb`] hydration; headers were validated at
    /// open).
    pub fn execute_segmented(&self, db: &SegmentedDb) -> Vec<SemanticTrajectory> {
        let segments = db.store().segments();
        if segments.is_empty() {
            return Vec::new();
        }
        // Global position → (segment, local index) via cumulative bases.
        let mut bases: Vec<TrajId> = Vec::with_capacity(segments.len());
        let mut acc: TrajId = 0;
        for s in segments {
            bases.push(acc);
            acc += s.len() as TrajId;
        }
        let locate = |gid: TrajId| -> (usize, usize) {
            let si = match bases.binary_search(&gid) {
                Ok(i) => i,
                Err(i) => i - 1,
            };
            (si, (gid - bases[si]) as usize)
        };
        let fetch = |gid: TrajId| -> SemanticTrajectory {
            let (si, local) = locate(gid);
            segments[si]
                .read_trajectory(local)
                .unwrap_or_else(|e| panic!("segment {} corrupt mid-query: {e}", segments[si].id))
        };
        // Candidate positions, ascending == warehouse order (object
        // index + zone maps + per-segment postings already applied).
        let ids: Vec<TrajId> = match db.candidates(&self.predicate) {
            CandidateSet::All => (0..db.len() as TrajId).collect(),
            CandidateSet::Ids(ids) => ids,
        };
        let directory_key = |key: SortKey, gid: TrajId| -> i64 {
            let (si, local) = locate(gid);
            let e = segments[si].directory().entries[local];
            match key {
                SortKey::Start => e.start,
                SortKey::End => e.end,
                SortKey::SpanDuration => e.end - e.start,
                _ => unreachable!("content-derived key has no directory column"),
            }
        };
        // The frame-visit order: warehouse order when unsorted, or
        // (directory key, global position) — `execute`'s exact ordering
        // contract (ties keep id order; descending reverses wholesale).
        let order_span = sitm_obs::trace::child_detail("order_page");
        let ordered: Vec<TrajId> = match self.order {
            None => ids,
            Some((key, ascending)) => match key {
                SortKey::Start | SortKey::End | SortKey::SpanDuration => {
                    let mut entries: Vec<(i64, TrajId)> = ids
                        .iter()
                        .map(|&gid| (directory_key(key, gid), gid))
                        .collect();
                    entries.sort_unstable();
                    if !ascending {
                        entries.reverse();
                    }
                    entries.into_iter().map(|(_, gid)| gid).collect()
                }
                SortKey::TotalDwell | SortKey::MovingObject | SortKey::TraceLength => {
                    let columns: Vec<Option<&SortColumns>> =
                        segments.iter().map(|s| s.sort_columns()).collect();
                    if columns.iter().any(|c| c.is_none()) {
                        // A segment without columns (a v2 file not yet
                        // fully decoded) forces the fallback:
                        // materialize the candidates, sort, page.
                        let mut hits: Vec<(TrajId, SemanticTrajectory)> = ids
                            .into_iter()
                            .map(|gid| (gid, fetch(gid)))
                            .filter(|(_, t)| self.predicate.matches(t))
                            .collect();
                        hits.sort_by(|a, b| {
                            let ord = key.compare(&a.1, &b.1).then(a.0.cmp(&b.0));
                            if ascending {
                                ord
                            } else {
                                ord.reverse()
                            }
                        });
                        let page = hits.into_iter().skip(self.offset).map(|(_, t)| t);
                        return match self.limit {
                            Some(n) => page.take(n).collect(),
                            None => page.collect(),
                        };
                    }
                    // Column-served ordering, decoding nothing. Sorting
                    // every candidate by (column key, position) and then
                    // lazily filtering below is identical to
                    // filter-then-sort: dropping non-matches preserves
                    // the relative order of what remains.
                    match key {
                        SortKey::MovingObject => {
                            // The object column indexes into the zone
                            // map's sorted object set, so the globally
                            // comparable string is resident.
                            let objects: Vec<Vec<&str>> = segments
                                .iter()
                                .map(|s| s.zone_map.objects.iter().map(|o| o.as_str()).collect())
                                .collect();
                            let mut entries: Vec<(&str, TrajId)> = ids
                                .iter()
                                .map(|&gid| {
                                    let (si, local) = locate(gid);
                                    let c = columns[si].expect("checked above");
                                    (objects[si][c.object[local] as usize], gid)
                                })
                                .collect();
                            entries.sort_unstable();
                            if !ascending {
                                entries.reverse();
                            }
                            entries.into_iter().map(|(_, gid)| gid).collect()
                        }
                        _ => {
                            // Dwell is persisted in seconds — the exact
                            // value `Duration` ordering compares.
                            let mut entries: Vec<(i64, TrajId)> = ids
                                .iter()
                                .map(|&gid| {
                                    let (si, local) = locate(gid);
                                    let c = columns[si].expect("checked above");
                                    let v = match key {
                                        SortKey::TotalDwell => c.dwell[local],
                                        _ => c.trace_len[local] as i64,
                                    };
                                    (v, gid)
                                })
                                .collect();
                            entries.sort_unstable();
                            if !ascending {
                                entries.reverse();
                            }
                            entries.into_iter().map(|(_, gid)| gid).collect()
                        }
                    }
                }
            },
        };
        drop(order_span);
        // Lazily decode in visit order until the page is full.
        let _fetch = sitm_obs::trace::child_detail("fetch_rows");
        let mut out = Vec::new();
        let mut skipped = 0;
        for gid in ordered {
            if self.limit == Some(0) {
                break;
            }
            let t = fetch(gid);
            if !self.predicate.matches(&t) {
                continue;
            }
            if skipped < self.offset {
                skipped += 1;
                continue;
            }
            out.push(t);
            if Some(out.len()) == self.limit {
                break;
            }
        }
        out
    }

    /// Number of matches, skipping sort/paging work.
    pub fn count(&self, db: &TrajectoryDb) -> usize {
        match db.candidates(&self.predicate) {
            CandidateSet::All => db
                .trajectories()
                .iter()
                .filter(|t| self.predicate.matches(t))
                .count(),
            CandidateSet::Ids(ids) => ids
                .into_iter()
                .filter_map(|id| db.get(id))
                .filter(|t| self.predicate.matches(t))
                .count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{AnnotationSet, PresenceInterval, Timestamp, Trace, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn traj(mo: &str, stays: &[(usize, i64, i64)], goal: &str) -> SemanticTrajectory {
        let intervals = stays
            .iter()
            .map(|&(c, s, e)| {
                PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(c),
                    Timestamp(s),
                    Timestamp(e),
                )
            })
            .collect();
        SemanticTrajectory::new(
            mo,
            Trace::new(intervals).unwrap(),
            AnnotationSet::from_iter([Annotation::goal(goal)]),
        )
        .unwrap()
    }

    fn db() -> TrajectoryDb {
        TrajectoryDb::build(vec![
            traj("a", &[(0, 0, 10), (1, 10, 20)], "visit"),
            traj("b", &[(1, 5, 15), (2, 15, 30)], "visit"),
            traj("c", &[(2, 100, 200)], "buy"),
            traj("d", &[(0, 50, 80), (1, 80, 90), (2, 90, 95)], "visit"),
        ])
    }

    #[test]
    fn filterless_query_returns_everything() {
        let db = db();
        assert_eq!(Query::new().execute(&db).len(), 4);
        assert_eq!(Query::new().count(&db), 4);
    }

    #[test]
    fn fluent_filters_compose_as_and() {
        let db = db();
        let hits = Query::new().visited(cell(1)).goal("visit").execute(&db);
        let ids: Vec<TrajId> = hits.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![0, 1, 3]);
        let hits = Query::new().visited(cell(2)).goal("buy").execute(&db);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].trajectory.moving_object, "c");
    }

    #[test]
    fn path_query_matches_fig5_style_runs() {
        let db = db();
        let hits = Query::new()
            .follows_path(vec![cell(0), cell(1), cell(2)])
            .execute(&db);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].trajectory.moving_object, "d");
    }

    #[test]
    fn during_uses_span_overlap() {
        let db = db();
        let w = TimeInterval::new(Timestamp(16), Timestamp(60));
        let ids: Vec<TrajId> = Query::new()
            .during(w)
            .execute(&db)
            .iter()
            .map(|m| m.id)
            .collect();
        assert_eq!(ids, vec![0, 1, 3]);
    }

    #[test]
    fn ordering_and_paging() {
        let db = db();
        let hits = Query::new()
            .order_by(SortKey::SpanDuration, false)
            .execute(&db);
        let mos: Vec<&str> = hits
            .iter()
            .map(|m| m.trajectory.moving_object.as_str())
            .collect();
        assert_eq!(mos, vec!["c", "d", "b", "a"]);
        let page = Query::new()
            .order_by(SortKey::SpanDuration, false)
            .offset(1)
            .limit(2)
            .execute(&db);
        let mos: Vec<&str> = page
            .iter()
            .map(|m| m.trajectory.moving_object.as_str())
            .collect();
        assert_eq!(mos, vec!["d", "b"]);
    }

    #[test]
    fn all_sort_keys_are_total() {
        let db = db();
        for key in [
            SortKey::Start,
            SortKey::End,
            SortKey::SpanDuration,
            SortKey::TotalDwell,
            SortKey::MovingObject,
            SortKey::TraceLength,
        ] {
            let asc = Query::new().order_by(key, true).execute(&db);
            let desc = Query::new().order_by(key, false).execute(&db);
            assert_eq!(asc.len(), 4);
            let mut rev: Vec<TrajId> = desc.iter().map(|m| m.id).collect();
            rev.reverse();
            let fwd: Vec<TrajId> = asc.iter().map(|m| m.id).collect();
            assert_eq!(fwd, rev, "desc must be exact reverse of asc for {key:?}");
        }
    }

    #[test]
    fn explain_reports_index_usage() {
        let db = db();
        let plan = Query::new().visited(cell(2)).explain(&db);
        assert_eq!(plan.access, AccessPath::IndexCandidates { candidates: 3 });
        assert!((plan.selectivity_bound() - 0.75).abs() < 1e-9);
        assert!(plan.to_string().contains("IndexCandidates"));

        let scan = Query::new()
            .filter(Predicate::MinTotalDwell(Duration::seconds(1)))
            .explain(&db);
        assert_eq!(scan.access, AccessPath::FullScan);
        assert_eq!(scan.selectivity_bound(), 1.0);
        assert!(scan.to_string().contains("FullScan"));
    }

    #[test]
    fn index_path_equals_full_scan_results() {
        let db = db();
        let q = Query::new()
            .visited(cell(1))
            .during(TimeInterval::new(Timestamp(0), Timestamp(90)));
        let indexed: Vec<TrajId> = q.execute(&db).iter().map(|m| m.id).collect();
        let scanned: Vec<TrajId> = db
            .trajectories()
            .iter()
            .enumerate()
            .filter(|(_, t)| q.predicate().matches(t))
            .map(|(i, _)| i as TrajId)
            .collect();
        assert_eq!(indexed, scanned);
    }

    #[test]
    fn empty_db_queries() {
        let db = TrajectoryDb::build(vec![]);
        assert!(Query::new().execute(&db).is_empty());
        assert_eq!(Query::new().visited(cell(0)).count(&db), 0);
        assert_eq!(Query::new().explain(&db).selectivity_bound(), 0.0);
    }

    #[test]
    fn stayed_at_least_and_moving_object() {
        let db = db();
        let hits = Query::new()
            .stayed_at_least(cell(2), Duration::seconds(100))
            .execute(&db);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].trajectory.moving_object, "c");
        assert_eq!(Query::new().moving_object("d").count(&db), 1);
        assert_eq!(Query::new().moving_object("nobody").count(&db), 0);
    }
}
