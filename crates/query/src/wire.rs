//! The network codec for queries.
//!
//! `sitm-serve` ships predicates and query specs between clients and
//! servers over a CRC-framed binary protocol; this module supplies the
//! payload encoding for the query-language half — [`Predicate`] (every
//! variant of the boolean algebra), [`SortKey`], and [`WireQuery`] (the
//! wire twin of [`Query`]: predicate + ordering + paging) — using the
//! same `sitm-store` varint primitives as every durable artifact in the
//! repo.
//!
//! Decoding is **fully validated**, exactly like the storage codecs: a
//! hostile or corrupted payload fails with a [`CodecError`] rather than
//! materializing an invalid value, declared lengths are bounds-checked
//! before any allocation, and predicate recursion is capped at
//! [`MAX_PREDICATE_DEPTH`] so a crafted payload cannot blow the decoder
//! stack.

use sitm_core::{Annotation, AnnotationKind, Duration, TimeInterval, Timestamp};
use sitm_store::codec::{decode_cell, decode_count, decode_str, encode_cell, encode_str, take_tag};
use sitm_store::{varint, CodecError};

use crate::predicate::Predicate;
use crate::query::{Query, SortKey};

/// Deepest predicate nesting the decoder accepts (`Not`/`And`/`Or`
/// recursion). The encoder never produces deeper trees from sane
/// queries; the cap exists to bound a hostile payload.
pub const MAX_PREDICATE_DEPTH: usize = 64;

fn encode_annotation(buf: &mut Vec<u8>, a: &Annotation) {
    encode_str(buf, a.kind.name());
    encode_str(buf, &a.value);
}

fn decode_annotation(buf: &mut &[u8]) -> Result<Annotation, CodecError> {
    let kind = AnnotationKind::parse(&decode_str(buf)?);
    let value = decode_str(buf)?;
    Ok(Annotation::new(kind, value))
}

fn encode_interval(buf: &mut Vec<u8>, w: &TimeInterval) {
    varint::encode_i64(buf, w.start.0);
    varint::encode_u64(buf, w.duration().as_seconds() as u64);
}

fn decode_interval(buf: &mut &[u8]) -> Result<TimeInterval, CodecError> {
    let start = Timestamp(varint::decode_i64(buf)?);
    let duration = varint::decode_u64(buf)?;
    let end = Timestamp(start.0.wrapping_add(duration as i64));
    if end < start {
        return Err(CodecError::InvalidTrace("interval overflow".into()));
    }
    Ok(TimeInterval::new(start, end))
}

const P_TRUE: u8 = 0;
const P_VISITED_CELL: u8 = 1;
const P_SEQUENCE: u8 = 2;
const P_SPAN_OVERLAPS: u8 = 3;
const P_STAY_OVERLAPS: u8 = 4;
const P_TRAJ_ANNOTATION: u8 = 5;
const P_STAY_ANNOTATION: u8 = 6;
const P_MIN_DWELL: u8 = 7;
const P_MIN_STAY: u8 = 8;
const P_MOVING_OBJECT: u8 = 9;
const P_NOT: u8 = 10;
const P_AND: u8 = 11;
const P_OR: u8 = 12;

/// Encodes a predicate (tag byte + operands, recursively).
pub fn encode_predicate(buf: &mut Vec<u8>, p: &Predicate) {
    match p {
        Predicate::True => buf.push(P_TRUE),
        Predicate::VisitedCell(cell) => {
            buf.push(P_VISITED_CELL);
            encode_cell(buf, *cell);
        }
        Predicate::SequenceContains(cells) => {
            buf.push(P_SEQUENCE);
            varint::encode_u64(buf, cells.len() as u64);
            for c in cells {
                encode_cell(buf, *c);
            }
        }
        Predicate::SpanOverlaps(w) => {
            buf.push(P_SPAN_OVERLAPS);
            encode_interval(buf, w);
        }
        Predicate::StayOverlaps(cell, w) => {
            buf.push(P_STAY_OVERLAPS);
            encode_cell(buf, *cell);
            encode_interval(buf, w);
        }
        Predicate::HasTrajAnnotation(a) => {
            buf.push(P_TRAJ_ANNOTATION);
            encode_annotation(buf, a);
        }
        Predicate::HasStayAnnotation(a) => {
            buf.push(P_STAY_ANNOTATION);
            encode_annotation(buf, a);
        }
        Predicate::MinTotalDwell(d) => {
            buf.push(P_MIN_DWELL);
            varint::encode_i64(buf, d.as_seconds());
        }
        Predicate::MinStayIn(cell, d) => {
            buf.push(P_MIN_STAY);
            encode_cell(buf, *cell);
            varint::encode_i64(buf, d.as_seconds());
        }
        Predicate::MovingObject(id) => {
            buf.push(P_MOVING_OBJECT);
            encode_str(buf, id);
        }
        Predicate::Not(inner) => {
            buf.push(P_NOT);
            encode_predicate(buf, inner);
        }
        Predicate::And(parts) => {
            buf.push(P_AND);
            varint::encode_u64(buf, parts.len() as u64);
            for q in parts {
                encode_predicate(buf, q);
            }
        }
        Predicate::Or(parts) => {
            buf.push(P_OR);
            varint::encode_u64(buf, parts.len() as u64);
            for q in parts {
                encode_predicate(buf, q);
            }
        }
    }
}

/// Decodes a predicate encoded by [`encode_predicate`].
pub fn decode_predicate(buf: &mut &[u8]) -> Result<Predicate, CodecError> {
    decode_predicate_depth(buf, 0)
}

fn decode_predicate_depth(buf: &mut &[u8], depth: usize) -> Result<Predicate, CodecError> {
    if depth > MAX_PREDICATE_DEPTH {
        return Err(CodecError::InvalidTrace(
            "predicate nesting exceeds wire limit".into(),
        ));
    }
    match take_tag(buf)? {
        P_TRUE => Ok(Predicate::True),
        P_VISITED_CELL => Ok(Predicate::VisitedCell(decode_cell(buf)?)),
        P_SEQUENCE => {
            let count = decode_count(buf)?;
            let mut cells = Vec::with_capacity(count);
            for _ in 0..count {
                cells.push(decode_cell(buf)?);
            }
            Ok(Predicate::SequenceContains(cells))
        }
        P_SPAN_OVERLAPS => Ok(Predicate::SpanOverlaps(decode_interval(buf)?)),
        P_STAY_OVERLAPS => {
            let cell = decode_cell(buf)?;
            let w = decode_interval(buf)?;
            Ok(Predicate::StayOverlaps(cell, w))
        }
        P_TRAJ_ANNOTATION => Ok(Predicate::HasTrajAnnotation(decode_annotation(buf)?)),
        P_STAY_ANNOTATION => Ok(Predicate::HasStayAnnotation(decode_annotation(buf)?)),
        P_MIN_DWELL => Ok(Predicate::MinTotalDwell(Duration(varint::decode_i64(buf)?))),
        P_MIN_STAY => {
            let cell = decode_cell(buf)?;
            let d = Duration(varint::decode_i64(buf)?);
            Ok(Predicate::MinStayIn(cell, d))
        }
        P_MOVING_OBJECT => Ok(Predicate::MovingObject(decode_str(buf)?)),
        P_NOT => Ok(Predicate::Not(Box::new(decode_predicate_depth(
            buf,
            depth + 1,
        )?))),
        P_AND => {
            let count = decode_count(buf)?;
            let mut parts = Vec::with_capacity(count);
            for _ in 0..count {
                parts.push(decode_predicate_depth(buf, depth + 1)?);
            }
            Ok(Predicate::And(parts))
        }
        P_OR => {
            let count = decode_count(buf)?;
            let mut parts = Vec::with_capacity(count);
            for _ in 0..count {
                parts.push(decode_predicate_depth(buf, depth + 1)?);
            }
            Ok(Predicate::Or(parts))
        }
        other => Err(CodecError::BadTag(other)),
    }
}

fn sort_key_tag(key: SortKey) -> u8 {
    match key {
        SortKey::Start => 0,
        SortKey::End => 1,
        SortKey::SpanDuration => 2,
        SortKey::TotalDwell => 3,
        SortKey::MovingObject => 4,
        SortKey::TraceLength => 5,
    }
}

fn sort_key_from_tag(tag: u8) -> Result<SortKey, CodecError> {
    Ok(match tag {
        0 => SortKey::Start,
        1 => SortKey::End,
        2 => SortKey::SpanDuration,
        3 => SortKey::TotalDwell,
        4 => SortKey::MovingObject,
        5 => SortKey::TraceLength,
        other => return Err(CodecError::BadTag(other)),
    })
}

/// The wire twin of [`Query`]: one predicate plus ordering and paging,
/// with public fields so clients assemble it directly and servers
/// rebuild the executable [`Query`] via [`WireQuery::to_query`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireQuery {
    /// Selection predicate.
    pub predicate: Predicate,
    /// Optional sort: key plus ascending flag.
    pub order: Option<(SortKey, bool)>,
    /// Results skipped after sorting.
    pub offset: u64,
    /// Result cap applied after offset (`None` = unlimited).
    pub limit: Option<u64>,
}

impl WireQuery {
    /// A query matching everything, unsorted and unpaged.
    pub fn all() -> WireQuery {
        WireQuery {
            predicate: Predicate::True,
            order: None,
            offset: 0,
            limit: None,
        }
    }

    /// A query with the given predicate, unsorted and unpaged.
    pub fn filtered(predicate: Predicate) -> WireQuery {
        WireQuery {
            predicate,
            order: None,
            offset: 0,
            limit: None,
        }
    }

    /// Builds the executable [`Query`] this spec describes.
    pub fn to_query(&self) -> Query {
        let mut q = Query::new().filter(self.predicate.clone());
        if let Some((key, ascending)) = self.order {
            q = q.order_by(key, ascending);
        }
        if self.offset > 0 {
            q = q.offset(self.offset as usize);
        }
        if let Some(limit) = self.limit {
            q = q.limit(limit as usize);
        }
        q
    }
}

/// Encodes a [`WireQuery`].
pub fn encode_wire_query(buf: &mut Vec<u8>, q: &WireQuery) {
    encode_predicate(buf, &q.predicate);
    match q.order {
        None => buf.push(0),
        Some((key, ascending)) => {
            buf.push(1);
            buf.push(sort_key_tag(key));
            buf.push(u8::from(ascending));
        }
    }
    varint::encode_u64(buf, q.offset);
    match q.limit {
        None => buf.push(0),
        Some(n) => {
            buf.push(1);
            varint::encode_u64(buf, n);
        }
    }
}

/// Decodes a [`WireQuery`] encoded by [`encode_wire_query`].
pub fn decode_wire_query(buf: &mut &[u8]) -> Result<WireQuery, CodecError> {
    let predicate = decode_predicate(buf)?;
    let order = match take_tag(buf)? {
        0 => None,
        1 => {
            let key = sort_key_from_tag(take_tag(buf)?)?;
            let ascending = match take_tag(buf)? {
                0 => false,
                1 => true,
                other => return Err(CodecError::BadTag(other)),
            };
            Some((key, ascending))
        }
        other => return Err(CodecError::BadTag(other)),
    };
    let offset = varint::decode_u64(buf)?;
    let limit = match take_tag(buf)? {
        0 => None,
        1 => Some(varint::decode_u64(buf)?),
        other => return Err(CodecError::BadTag(other)),
    };
    Ok(WireQuery {
        predicate,
        order,
        offset,
        limit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn samples() -> Vec<Predicate> {
        let w = TimeInterval::new(Timestamp(-5), Timestamp(90));
        vec![
            Predicate::True,
            Predicate::VisitedCell(cell(3)),
            Predicate::SequenceContains(vec![cell(0), cell(1), cell(2)]),
            Predicate::SequenceContains(vec![]),
            Predicate::SpanOverlaps(w),
            Predicate::StayOverlaps(cell(7), w),
            Predicate::HasTrajAnnotation(Annotation::goal("visit")),
            Predicate::HasStayAnnotation(Annotation::new(
                AnnotationKind::Custom("inference".into()),
                "rushed",
            )),
            Predicate::MinTotalDwell(Duration::minutes(5)),
            Predicate::MinStayIn(cell(2), Duration::seconds(30)),
            Predicate::MovingObject("visitor-42".into()),
            Predicate::VisitedCell(cell(1)).not(),
            Predicate::VisitedCell(cell(1))
                .and(Predicate::MovingObject("a".into()))
                .or(Predicate::SpanOverlaps(w).not()),
            Predicate::And(vec![]),
            Predicate::Or(vec![]),
        ]
    }

    #[test]
    fn every_predicate_variant_round_trips() {
        for p in samples() {
            let mut buf = Vec::new();
            encode_predicate(&mut buf, &p);
            let mut cursor: &[u8] = &buf;
            let back = decode_predicate(&mut cursor).unwrap();
            assert!(cursor.is_empty(), "trailing bytes for {p}");
            assert_eq!(back, p);
        }
    }

    #[test]
    fn truncations_error_and_never_panic() {
        for p in samples() {
            let mut buf = Vec::new();
            encode_predicate(&mut buf, &p);
            for cut in 0..buf.len() {
                assert!(
                    decode_predicate(&mut &buf[..cut]).is_err(),
                    "cut {cut} of {p}"
                );
            }
        }
    }

    #[test]
    fn hostile_depth_is_capped() {
        // MAX_DEPTH+2 nested Nots around True.
        let mut buf = vec![P_NOT; MAX_PREDICATE_DEPTH + 2];
        buf.push(P_TRUE);
        assert!(matches!(
            decode_predicate(&mut buf.as_slice()),
            Err(CodecError::InvalidTrace(_))
        ));
        // One level under the cap decodes fine.
        let mut buf = vec![P_NOT; MAX_PREDICATE_DEPTH];
        buf.push(P_TRUE);
        assert!(decode_predicate(&mut buf.as_slice()).is_ok());
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        let mut buf = vec![P_AND];
        varint::encode_u64(&mut buf, u64::MAX);
        assert!(matches!(
            decode_predicate(&mut buf.as_slice()),
            Err(CodecError::LengthOverrun { .. })
        ));
        assert!(matches!(
            decode_predicate(&mut [0xFFu8].as_slice()),
            Err(CodecError::BadTag(0xFF))
        ));
    }

    #[test]
    fn wire_query_round_trips_and_builds_the_query() {
        let specs = vec![
            WireQuery::all(),
            WireQuery::filtered(Predicate::VisitedCell(cell(1))),
            WireQuery {
                predicate: Predicate::MovingObject("v".into()),
                order: Some((SortKey::TotalDwell, false)),
                offset: 3,
                limit: Some(10),
            },
            WireQuery {
                predicate: Predicate::True,
                order: Some((SortKey::MovingObject, true)),
                offset: 0,
                limit: None,
            },
        ];
        for spec in specs {
            let mut buf = Vec::new();
            encode_wire_query(&mut buf, &spec);
            let mut cursor: &[u8] = &buf;
            let back = decode_wire_query(&mut cursor).unwrap();
            assert!(cursor.is_empty());
            assert_eq!(back, spec);
            // The rebuilt Query carries the same predicate.
            assert_eq!(back.to_query().predicate(), &spec.predicate);
            for cut in 0..buf.len() {
                assert!(decode_wire_query(&mut &buf[..cut]).is_err(), "cut {cut}");
            }
        }
    }
}
