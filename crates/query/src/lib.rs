#![warn(missing_docs)]

//! # sitm-query
//!
//! A query engine over collections of SITM semantic trajectories.
//!
//! The paper presents the SITM as the substrate for "context-aware
//! mobility data mining and statistical analytics" (§1); this crate
//! supplies the retrieval layer those applications sit on:
//!
//! * [`interval_tree`] — a static augmented interval tree (the temporal
//!   access path);
//! * [`index`] — [`TrajectoryDb`]: an indexed trajectory collection with
//!   cell/annotation/moving-object postings, a span tree, and per-cell
//!   stay trees;
//! * [`predicate`] — [`Predicate`]: a boolean algebra over the "where"
//!   (cells, paths), "when" (windows), and "what" (annotations) of a
//!   trajectory;
//! * [`query`] — [`Query`]: a fluent builder with index-backed execution,
//!   `EXPLAIN`-style plans, ordering and paging;
//! * [`aggregate`] — GROUP BY operators: dwell/detection/flow matrices,
//!   occupancy series, annotation grouping;
//! * [`federation`] — [`TrajectorySource`] and the `federated_*` entry
//!   points: one predicate evaluated over the union of many trajectory
//!   collections (warehouse + live streaming-engine state);
//! * [`segmented`] — [`SegmentedDb`]: the warehouse rewritten around
//!   `sitm-store`'s immutable on-disk segment tier — Bloom-fronted
//!   zone-map pruning plus per-segment postings behind the same query
//!   surface and the same [`TrajectorySource`] federation face;
//! * [`wire`] — the network codec for queries: [`Predicate`],
//!   [`SortKey`] and [`WireQuery`] (predicate + ordering + paging)
//!   encoded with `sitm-store`'s varint primitives, fully validated on
//!   decode — what `sitm-serve` puts on the wire.
//!
//! Index lookups return candidate *supersets* and the executor re-checks
//! the predicate on every candidate, so results are always identical to a
//! full scan (property-tested in `tests/proptests.rs`).
//!
//! ## Index-served selection on both sides of the federation
//!
//! Selection is index-served on *every* participant that has indexes,
//! not just the warehouse: [`TrajectorySource::candidates`] lets a
//! source narrow a predicate to a sound candidate superset before any
//! trajectory is materialized. [`TrajectoryDb`] answers from its
//! postings and interval trees; `sitm-stream`'s `LiveSnapshot` answers
//! from the live postings its shards maintain incrementally per event.
//! `federated_*` and [`Query::execute_federated`] route through those
//! candidates and re-check the predicate, so indexed and scanned paths
//! are result-identical by construction; [`Query::explain_source`] and
//! [`federation::federated_explain`] report which path each source will
//! take. Consistency of a live source is the snapshot's: the index
//! rides the same consistent cut as the visible trajectory prefixes
//! (see `sitm_stream::live_query` for the model).

pub mod aggregate;
pub mod federation;
pub mod index;
pub mod interval_tree;
pub mod predicate;
pub mod query;
pub mod segmented;
pub mod wire;

pub use federation::{
    federated_count, federated_explain, federated_for_each, federated_matching, TrajectorySource,
};

pub use aggregate::{
    detection_counts_by_cell, dwell_by_cell, flow_matrix, group_by_annotation, occupancy, top_k,
    trajectory_counts_by_cell, OccupancyPoint,
};
pub use index::{CandidateSet, TrajId, TrajectoryDb};
pub use interval_tree::{Entry, IntervalTree};
pub use predicate::{DeltaVerdict, Predicate};
pub use query::{AccessPath, Match, Query, QueryPlan, SortKey};
pub use segmented::{zone_bloom_rejects, zone_may_match, SegmentedDb, SegmentedPlan};
pub use wire::{
    decode_predicate, decode_wire_query, encode_predicate, encode_wire_query, WireQuery,
};
