#![warn(missing_docs)]

//! # sitm-query
//!
//! A query engine over collections of SITM semantic trajectories.
//!
//! The paper presents the SITM as the substrate for "context-aware
//! mobility data mining and statistical analytics" (§1); this crate
//! supplies the retrieval layer those applications sit on:
//!
//! * [`interval_tree`] — a static augmented interval tree (the temporal
//!   access path);
//! * [`index`] — [`TrajectoryDb`]: an indexed trajectory collection with
//!   cell/annotation/moving-object postings, a span tree, and per-cell
//!   stay trees;
//! * [`predicate`] — [`Predicate`]: a boolean algebra over the "where"
//!   (cells, paths), "when" (windows), and "what" (annotations) of a
//!   trajectory;
//! * [`query`] — [`Query`]: a fluent builder with index-backed execution,
//!   `EXPLAIN`-style plans, ordering and paging;
//! * [`aggregate`] — GROUP BY operators: dwell/detection/flow matrices,
//!   occupancy series, annotation grouping;
//! * [`federation`] — [`TrajectorySource`] and the `federated_*` entry
//!   points: one predicate evaluated over the union of many trajectory
//!   collections (warehouse + live streaming-engine state).
//!
//! Index lookups return candidate *supersets* and the executor re-checks
//! the predicate on every candidate, so results are always identical to a
//! full scan (property-tested in `tests/proptests.rs`).

pub mod aggregate;
pub mod federation;
pub mod index;
pub mod interval_tree;
pub mod predicate;
pub mod query;

pub use federation::{federated_count, federated_for_each, federated_matching, TrajectorySource};

pub use aggregate::{
    detection_counts_by_cell, dwell_by_cell, flow_matrix, group_by_annotation, occupancy, top_k,
    trajectory_counts_by_cell, OccupancyPoint,
};
pub use index::{CandidateSet, TrajId, TrajectoryDb};
pub use interval_tree::{Entry, IntervalTree};
pub use predicate::Predicate;
pub use query::{AccessPath, Match, Query, QueryPlan, SortKey};
