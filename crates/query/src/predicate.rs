//! A composable predicate algebra over semantic trajectories.
//!
//! The paper positions the SITM as the substrate for "mining and analysis
//! applications using both statistical and reasoning approaches" (§3).
//! Those applications select trajectories by *where* they went, *when*
//! they were live, and *what* semantics they carry — the three fundamental
//! sets of \[22\]/\[4,5\] the paper builds on. [`Predicate`] closes those
//! selections under boolean combination, and doubles as the episode
//! predicate language of Def. 3.4 when applied to subtrajectories.

use std::fmt;

use sitm_core::{Annotation, AnnotationSet, Duration, SemanticTrajectory, TimeInterval};
use sitm_space::CellRef;

/// What a predicate can conclude from an episode *delta* — the
/// attributes an emitted episode carries (moving object, its own
/// annotation set, its time span) without the parent trajectory's
/// intervals. The third value makes negation sound: a clause the delta
/// cannot decide stays [`DeltaVerdict::Unknown`] under `Not` instead of
/// flipping a guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaVerdict {
    /// The delta alone proves the predicate holds.
    Match,
    /// The delta alone proves the predicate cannot hold.
    NoMatch,
    /// The delta cannot decide (the clause needs the full trajectory).
    Unknown,
}

impl DeltaVerdict {
    fn not(self) -> DeltaVerdict {
        match self {
            DeltaVerdict::Match => DeltaVerdict::NoMatch,
            DeltaVerdict::NoMatch => DeltaVerdict::Match,
            DeltaVerdict::Unknown => DeltaVerdict::Unknown,
        }
    }
}

/// A boolean predicate over a [`SemanticTrajectory`].
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true: the neutral element of [`Predicate::And`].
    True,
    /// The trajectory has at least one stay in the cell ("where").
    VisitedCell(CellRef),
    /// The trajectory visits the cells as a contiguous run of its
    /// (consecutive-duplicate-collapsed) cell sequence — e.g. the Fig. 5
    /// E→P→S→C exit path.
    SequenceContains(Vec<CellRef>),
    /// The trajectory span `[tstart, tend]` shares an instant with the
    /// window ("when").
    SpanOverlaps(TimeInterval),
    /// Some stay in the given cell overlaps the window (e.g. "was in the
    /// Salle des États between 14:00 and 15:00").
    StayOverlaps(CellRef, TimeInterval),
    /// `A_traj` contains the annotation ("what", Def. 3.1).
    HasTrajAnnotation(Annotation),
    /// Some per-stay set `A_i` contains the annotation (Def. 3.2).
    HasStayAnnotation(Annotation),
    /// Total dwell time (sum of stay durations) is at least the bound.
    MinTotalDwell(Duration),
    /// Some single stay in the cell lasts at least the bound — the
    /// stop-detection criterion of Alvares et al. \[3\] transposed to
    /// symbolic cells.
    MinStayIn(CellRef, Duration),
    /// The moving-object identifier equals the string.
    MovingObject(String),
    /// Logical negation.
    Not(Box<Predicate>),
    /// Conjunction (empty = true).
    And(Vec<Predicate>),
    /// Disjunction (empty = false).
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Evaluates the predicate against a trajectory.
    pub fn matches(&self, t: &SemanticTrajectory) -> bool {
        match self {
            Predicate::True => true,
            Predicate::VisitedCell(cell) => t.trace().intervals().iter().any(|p| p.cell == *cell),
            Predicate::SequenceContains(cells) => {
                if cells.is_empty() {
                    return true;
                }
                let seq = t.trace().cell_sequence();
                seq.windows(cells.len()).any(|w| w == cells.as_slice())
            }
            Predicate::SpanOverlaps(window) => t.span().overlaps(*window),
            Predicate::StayOverlaps(cell, window) => t
                .trace()
                .intervals()
                .iter()
                .any(|p| p.cell == *cell && p.time.overlaps(*window)),
            Predicate::HasTrajAnnotation(a) => t.annotations().contains(a),
            Predicate::HasStayAnnotation(a) => t
                .trace()
                .intervals()
                .iter()
                .any(|p| p.annotations.contains(a)),
            Predicate::MinTotalDwell(bound) => t.trace().dwell_total() >= *bound,
            Predicate::MinStayIn(cell, bound) => t
                .trace()
                .intervals()
                .iter()
                .any(|p| p.cell == *cell && p.duration() >= *bound),
            Predicate::MovingObject(id) => t.moving_object == *id,
            Predicate::Not(inner) => !inner.matches(t),
            Predicate::And(parts) => parts.iter().all(|p| p.matches(t)),
            Predicate::Or(parts) => parts.iter().any(|p| p.matches(t)),
        }
    }

    /// Evaluates the predicate against an episode **delta**: the
    /// moving object, the episode's own annotation set (`A'_traj`), and
    /// its time span — what a streaming engine's drained episode
    /// carries without the parent trajectory. Three-valued: clauses the
    /// delta cannot decide (cell membership, stay-level tests, dwell
    /// sums) come back [`DeltaVerdict::Unknown`], and the combinators
    /// propagate unknowns Kleene-style so `Not`/`And`/`Or` stay sound.
    ///
    /// This is the standing-query filter for push subscriptions: a
    /// subscriber is handed every episode whose verdict is *not*
    /// [`DeltaVerdict::NoMatch`] — a sound superset, exactly the
    /// candidates-then-recheck contract the pull-side indexes use.
    pub fn eval_delta(
        &self,
        moving_object: &str,
        annotations: &AnnotationSet,
        span: TimeInterval,
    ) -> DeltaVerdict {
        use DeltaVerdict::{Match, NoMatch, Unknown};
        match self {
            Predicate::True => Match,
            // The episode's span is exact: its stays all lie inside it,
            // so a disjoint window can never match — and an overlapping
            // window provably does (the span is covered by stays
            // end-to-end per the episode construction).
            Predicate::SpanOverlaps(window) => {
                if span.overlaps(*window) {
                    Match
                } else {
                    NoMatch
                }
            }
            Predicate::MovingObject(id) => {
                if moving_object == id {
                    Match
                } else {
                    NoMatch
                }
            }
            // The episode annotation set is `A'_traj`, not the parent's
            // `A_traj`: containment here proves nothing either way
            // beyond presence in the episode itself, except that the
            // subscription notion of "this episode is about ⟨a⟩" is the
            // episode's own set — treat presence as a match and absence
            // as undecidable (the parent may still carry it).
            Predicate::HasTrajAnnotation(a) | Predicate::HasStayAnnotation(a) => {
                if annotations.contains(a) {
                    Match
                } else {
                    Unknown
                }
            }
            // Everything interval-shaped needs the parent trace.
            Predicate::VisitedCell(_)
            | Predicate::SequenceContains(_)
            | Predicate::StayOverlaps(_, _)
            | Predicate::MinTotalDwell(_)
            | Predicate::MinStayIn(_, _) => Unknown,
            Predicate::Not(inner) => inner.eval_delta(moving_object, annotations, span).not(),
            Predicate::And(parts) => {
                let mut verdict = Match;
                for p in parts {
                    match p.eval_delta(moving_object, annotations, span) {
                        NoMatch => return NoMatch,
                        Unknown => verdict = Unknown,
                        Match => {}
                    }
                }
                verdict
            }
            Predicate::Or(parts) => {
                let mut verdict = NoMatch;
                for p in parts {
                    match p.eval_delta(moving_object, annotations, span) {
                        Match => return Match,
                        Unknown => verdict = Unknown,
                        NoMatch => {}
                    }
                }
                verdict
            }
        }
    }

    /// True unless the episode delta *disproves* the predicate — the
    /// sound-superset filter push subscriptions deliver through (see
    /// [`Predicate::eval_delta`]).
    pub fn delta_may_match(
        &self,
        moving_object: &str,
        annotations: &AnnotationSet,
        span: TimeInterval,
    ) -> bool {
        self.eval_delta(moving_object, annotations, span) != DeltaVerdict::NoMatch
    }

    /// `self AND other`, flattening nested conjunctions.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// `self OR other`, flattening nested disjunctions.
    pub fn or(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::Or(mut a), Predicate::Or(b)) => {
                a.extend(b);
                Predicate::Or(a)
            }
            (Predicate::Or(mut a), p) => {
                a.push(p);
                Predicate::Or(a)
            }
            (p, Predicate::Or(mut b)) => {
                b.insert(0, p);
                Predicate::Or(b)
            }
            (a, b) => Predicate::Or(vec![a, b]),
        }
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        match self {
            Predicate::Not(inner) => *inner,
            p => Predicate::Not(Box::new(p)),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::VisitedCell(c) => write!(f, "visited({c})"),
            Predicate::SequenceContains(cells) => {
                write!(f, "seq(")?;
                for (i, c) in cells.iter().enumerate() {
                    if i > 0 {
                        write!(f, "→")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Predicate::SpanOverlaps(w) => write!(f, "span∩{w}"),
            Predicate::StayOverlaps(c, w) => write!(f, "stay({c})∩{w}"),
            Predicate::HasTrajAnnotation(a) => write!(f, "A_traj∋{a}"),
            Predicate::HasStayAnnotation(a) => write!(f, "A_i∋{a}"),
            Predicate::MinTotalDwell(d) => write!(f, "dwell≥{d}"),
            Predicate::MinStayIn(c, d) => write!(f, "stay({c})≥{d}"),
            Predicate::MovingObject(id) => write!(f, "mo={id}"),
            Predicate::Not(p) => write!(f, "¬({p})"),
            Predicate::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{AnnotationSet, PresenceInterval, Timestamp, Trace, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn stay(c: usize, start: i64, end: i64) -> PresenceInterval {
        PresenceInterval::new(
            TransitionTaken::Unknown,
            cell(c),
            Timestamp(start),
            Timestamp(end),
        )
    }

    fn sample() -> SemanticTrajectory {
        let mut s1 = stay(0, 0, 100);
        s1.annotations.insert(Annotation::goal("visit"));
        let trace = Trace::new(vec![s1, stay(1, 100, 400), stay(2, 400, 500)]).unwrap();
        SemanticTrajectory::new(
            "visitor-1",
            trace,
            AnnotationSet::from_iter([Annotation::goal("visit")]),
        )
        .unwrap()
    }

    fn iv(s: i64, e: i64) -> TimeInterval {
        TimeInterval::new(Timestamp(s), Timestamp(e))
    }

    #[test]
    fn where_when_what_primitives() {
        let t = sample();
        assert!(Predicate::VisitedCell(cell(1)).matches(&t));
        assert!(!Predicate::VisitedCell(cell(9)).matches(&t));
        assert!(Predicate::SpanOverlaps(iv(450, 600)).matches(&t));
        assert!(!Predicate::SpanOverlaps(iv(501, 600)).matches(&t));
        assert!(Predicate::HasTrajAnnotation(Annotation::goal("visit")).matches(&t));
        assert!(!Predicate::HasTrajAnnotation(Annotation::goal("buy")).matches(&t));
        assert!(Predicate::HasStayAnnotation(Annotation::goal("visit")).matches(&t));
        assert!(Predicate::MovingObject("visitor-1".into()).matches(&t));
        assert!(!Predicate::MovingObject("visitor-2".into()).matches(&t));
    }

    #[test]
    fn stay_level_predicates() {
        let t = sample();
        assert!(Predicate::StayOverlaps(cell(1), iv(350, 360)).matches(&t));
        assert!(!Predicate::StayOverlaps(cell(0), iv(350, 360)).matches(&t));
        assert!(Predicate::MinStayIn(cell(1), Duration::seconds(300)).matches(&t));
        assert!(!Predicate::MinStayIn(cell(1), Duration::seconds(301)).matches(&t));
        assert!(Predicate::MinTotalDwell(Duration::seconds(500)).matches(&t));
        assert!(!Predicate::MinTotalDwell(Duration::seconds(501)).matches(&t));
    }

    #[test]
    fn sequence_containment_is_contiguous() {
        let t = sample();
        assert!(Predicate::SequenceContains(vec![cell(0), cell(1)]).matches(&t));
        assert!(Predicate::SequenceContains(vec![cell(0), cell(1), cell(2)]).matches(&t));
        // 0 → 2 is a subsequence but not contiguous.
        assert!(!Predicate::SequenceContains(vec![cell(0), cell(2)]).matches(&t));
        assert!(Predicate::SequenceContains(vec![]).matches(&t));
    }

    #[test]
    fn boolean_combinators() {
        let t = sample();
        let yes = Predicate::VisitedCell(cell(0));
        let no = Predicate::VisitedCell(cell(9));
        assert!(yes.clone().and(Predicate::True).matches(&t));
        assert!(!yes.clone().and(no.clone()).matches(&t));
        assert!(yes.clone().or(no.clone()).matches(&t));
        assert!(no.clone().not().matches(&t));
        assert!(!yes.clone().not().matches(&t));
        // Double negation collapses structurally.
        assert_eq!(yes.clone().not().not(), yes);
        assert!(Predicate::And(vec![]).matches(&t));
        assert!(!Predicate::Or(vec![]).matches(&t));
    }

    #[test]
    fn and_or_flatten() {
        let a = Predicate::VisitedCell(cell(0));
        let b = Predicate::VisitedCell(cell(1));
        let c = Predicate::VisitedCell(cell(2));
        match a.clone().and(b.clone()).and(c.clone()) {
            Predicate::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
        match a.or(b).or(c) {
            Predicate::Or(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flat Or, got {other:?}"),
        }
    }

    #[test]
    fn delta_eval_decides_what_the_episode_carries() {
        use DeltaVerdict::{Match, NoMatch, Unknown};
        let anns = AnnotationSet::from_iter([Annotation::goal("gallery-1")]);
        let span = iv(100, 200);
        let eval = |p: &Predicate| p.eval_delta("visitor-1", &anns, span);

        assert_eq!(eval(&Predicate::True), Match);
        assert_eq!(eval(&Predicate::MovingObject("visitor-1".into())), Match);
        assert_eq!(eval(&Predicate::MovingObject("visitor-2".into())), NoMatch);
        assert_eq!(eval(&Predicate::SpanOverlaps(iv(150, 300))), Match);
        assert_eq!(eval(&Predicate::SpanOverlaps(iv(201, 300))), NoMatch);
        assert_eq!(
            eval(&Predicate::HasTrajAnnotation(Annotation::goal("gallery-1"))),
            Match
        );
        assert_eq!(
            eval(&Predicate::HasTrajAnnotation(Annotation::goal("other"))),
            Unknown
        );
        assert_eq!(eval(&Predicate::VisitedCell(cell(1))), Unknown);
        assert_eq!(
            eval(&Predicate::MinTotalDwell(Duration::seconds(10))),
            Unknown
        );
    }

    #[test]
    fn delta_eval_combinators_are_kleene() {
        use DeltaVerdict::{Match, NoMatch, Unknown};
        let anns = AnnotationSet::from_iter([Annotation::goal("g")]);
        let span = iv(0, 10);
        let eval = |p: &Predicate| p.eval_delta("mo", &anns, span);
        let yes = Predicate::MovingObject("mo".into());
        let no = Predicate::MovingObject("other".into());
        let unknown = Predicate::VisitedCell(cell(3));

        // Negation flips decided verdicts, never guesses on unknowns.
        assert_eq!(eval(&yes.clone().not()), NoMatch);
        assert_eq!(eval(&no.clone().not()), Match);
        assert_eq!(eval(&unknown.clone().not()), Unknown);
        // NoMatch dominates And; Match dominates Or; Unknown otherwise.
        assert_eq!(eval(&yes.clone().and(no.clone())), NoMatch);
        assert_eq!(eval(&yes.clone().and(unknown.clone())), Unknown);
        assert_eq!(eval(&no.clone().or(yes.clone())), Match);
        assert_eq!(eval(&no.clone().or(unknown.clone())), Unknown);
        assert_eq!(eval(&Predicate::And(vec![])), Match);
        assert_eq!(eval(&Predicate::Or(vec![])), NoMatch);

        // The push filter delivers everything except a proven NoMatch.
        assert!(yes.delta_may_match("mo", &anns, span));
        assert!(unknown.delta_may_match("mo", &anns, span));
        assert!(!no.delta_may_match("mo", &anns, span));
    }

    #[test]
    fn delta_verdicts_never_contradict_full_evaluation() {
        // Soundness: for a real trajectory, a decided delta verdict on
        // (moving object, A_traj-as-episode-set, span) must agree with
        // full evaluation whenever the delta attributes mirror the
        // trajectory's own.
        let t = sample();
        let span = t.span();
        let predicates = vec![
            Predicate::True,
            Predicate::MovingObject("visitor-1".into()),
            Predicate::MovingObject("nobody".into()),
            Predicate::SpanOverlaps(iv(450, 600)),
            Predicate::SpanOverlaps(iv(501, 600)),
            Predicate::VisitedCell(cell(1)),
            Predicate::MovingObject("visitor-1".into()).not(),
            Predicate::MovingObject("nobody".into()).or(Predicate::SpanOverlaps(iv(0, 1))),
        ];
        for p in predicates {
            match p.eval_delta(&t.moving_object, t.annotations(), span) {
                DeltaVerdict::Match => assert!(p.matches(&t), "{p}"),
                DeltaVerdict::NoMatch => assert!(!p.matches(&t), "{p}"),
                DeltaVerdict::Unknown => {}
            }
        }
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::VisitedCell(cell(0))
            .and(Predicate::MinTotalDwell(Duration::minutes(5)))
            .or(Predicate::MovingObject("v".into()).not());
        let text = p.to_string();
        assert!(text.contains("visited"), "{text}");
        assert!(text.contains("∧"), "{text}");
        assert!(text.contains("∨"), "{text}");
        assert!(text.contains("¬"), "{text}");
    }
}
