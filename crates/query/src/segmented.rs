//! The warehouse rewritten around immutable on-disk segments.
//!
//! [`SegmentedDb`] is the durable twin of [`TrajectoryDb`]: the same
//! query surface (candidate supersets re-checked by the caller, the
//! [`TrajectorySource`] federation face), but backed by
//! `sitm_store`'s segment tier ([`SegmentStore`]) instead of one
//! in-memory vector — so the collection survives restarts, grows by
//! *appending immutable segments*, and stays bounded by size-tiered
//! compaction instead of rebuilding the world per run.
//!
//! ## Two-level index consultation
//!
//! A predicate is narrowed in two stages, both sound:
//!
//! 1. **zone-map pruning** — each segment's [`ZoneMap`] (span min/max,
//!    cell set, object set, annotation sets) is tested with
//!    [`zone_may_match`]; a segment the predicate provably cannot match
//!    contributes nothing and its trajectories are never touched.
//!    Point-equality leaves (cell / moving-object membership) consult
//!    the zone map's **Bloom filters first**: a bloom *no* rejects the
//!    segment from one probe sequence without touching the exact
//!    ordered sets (no false negatives, so the prune stays sound), and
//!    [`SegmentedPlan::bloom_pruned`] reports how many segments the
//!    blooms alone eliminated;
//! 2. **per-segment postings** — surviving segments answer through
//!    their own [`TrajectoryDb`] indexes (cell/annotation/object
//!    postings, span and stay interval trees), translated into global
//!    positions by each segment's base offset.
//!
//! Like every index in this stack, the result is a *sound candidate
//! superset*: the executor re-checks the full predicate on every
//! candidate, so the segmented path is result-identical to a full scan
//! (and to an in-memory [`TrajectoryDb`] over the same trajectories —
//! the differential tests in `tests/tiered_warehouse.rs` pin this at
//! every flush and compaction point).
//!
//! ## Iteration order
//!
//! Trajectories iterate in **warehouse order**: segments in manifest
//! order, each segment its canonical sorted run
//! ([`sitm_store::sort_run`]). The order is deterministic for a given
//! sequence of flushes and compactions, which is what lets the
//! differential tests demand *exact* equality (ids included) against a
//! [`TrajectoryDb`] built from the same iteration.

use std::path::Path;
use std::sync::Arc;

use sitm_core::SemanticTrajectory;
use sitm_obs::{Counter, Histogram, MetricsRegistry};
use sitm_store::warehouse::{Segment, SegmentStore, WarehouseConfig, WarehouseError, ZoneMap};
use sitm_store::RecoveryReport;

use crate::federation::TrajectorySource;
use crate::index::{CandidateSet, TrajId, TrajectoryDb};
use crate::predicate::Predicate;

/// Can any trajectory summarized by `zone` possibly match `p`?
///
/// Sound pruning: `false` is returned only when **no** trajectory in
/// the segment can match — the caller may then skip the whole segment.
/// `true` is always safe (the per-segment postings and the residual
/// re-check still run). Negation is never pruned (a zone map aggregates
/// *presence*, not absence), and conjunction prunes when any conjunct
/// does.
pub fn zone_may_match(zone: &ZoneMap, p: &Predicate) -> bool {
    if zone.len == 0 {
        return false;
    }
    let span_allows = |window: &sitm_core::TimeInterval| match zone.span {
        None => false,
        Some(span) => span.overlaps(*window),
    };
    // The longest any *single stay* can be: every stay lies inside its
    // trajectory's span (`Trace::span` is [min start, max end]), which
    // lies inside the zone span. Total dwell has no such bound —
    // overlapping stays are legal (sensor handoff jitter, see
    // `TraceError::OutOfOrder`) and can sum past the span.
    let max_span = zone
        .span
        .map(|s| s.duration())
        .unwrap_or_else(|| sitm_core::Duration::seconds(0));
    match p {
        Predicate::True => true,
        Predicate::VisitedCell(cell) => zone.may_contain_cell(cell),
        Predicate::SequenceContains(cells) => cells.iter().all(|c| zone.may_contain_cell(c)),
        Predicate::SpanOverlaps(window) => span_allows(window),
        Predicate::StayOverlaps(cell, window) => zone.may_contain_cell(cell) && span_allows(window),
        Predicate::HasTrajAnnotation(a) => zone.traj_annotations.contains(a),
        Predicate::HasStayAnnotation(a) => zone.stay_annotations.contains(a),
        Predicate::MinTotalDwell(_) => true,
        Predicate::MinStayIn(cell, d) => zone.may_contain_cell(cell) && *d <= max_span,
        Predicate::MovingObject(id) => zone.may_contain_object(id),
        Predicate::Not(_) => true,
        Predicate::And(parts) => parts.iter().all(|q| zone_may_match(zone, q)),
        Predicate::Or(parts) => parts.iter().any(|q| zone_may_match(zone, q)),
    }
}

/// Would the zone's *Bloom filters alone* prove `p` unmatchable? A
/// strict subset of the segments [`zone_may_match`] prunes (a bloom
/// *no* has no false negatives), reported separately in
/// [`SegmentedPlan::bloom_pruned`] so the fast-rejection tier's
/// contribution is visible in plans. Point-equality leaves (cell /
/// moving-object membership) are the only ones blooms can answer.
pub fn zone_bloom_rejects(zone: &ZoneMap, p: &Predicate) -> bool {
    match p {
        Predicate::VisitedCell(cell)
        | Predicate::StayOverlaps(cell, _)
        | Predicate::MinStayIn(cell, _) => zone.bloom_rejects_cell(cell),
        // Every listed cell must be present for a contiguous run.
        Predicate::SequenceContains(cells) => cells.iter().any(|c| zone.bloom_rejects_cell(c)),
        Predicate::MovingObject(id) => zone.bloom_rejects_object(id),
        Predicate::And(parts) => parts.iter().any(|q| zone_bloom_rejects(zone, q)),
        Predicate::Or(parts) => {
            !parts.is_empty() && parts.iter().all(|q| zone_bloom_rejects(zone, q))
        }
        _ => false,
    }
}

/// One live segment plus its query-side structures.
struct SegmentPart {
    /// The segment id (segments are immutable, so the id keys reuse
    /// across rebuilds).
    id: u64,
    /// Pruning metadata (cloned from the store's segment).
    zone_map: ZoneMap,
    /// Per-segment postings over the segment's sorted run.
    db: TrajectoryDb,
    /// Global position of the segment's first trajectory.
    base: TrajId,
}

/// How a segmented query would be served (the warehouse analogue of
/// [`crate::QueryPlan`], with the segment dimension made visible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentedPlan {
    /// Live segments consulted.
    pub segments: usize,
    /// Segments skipped entirely by zone-map pruning.
    pub pruned: usize,
    /// Of the pruned segments, how many the Bloom filters alone
    /// rejected (point predicates answered before the exact sets were
    /// touched) — always `≤ pruned`.
    pub bloom_pruned: usize,
    /// Candidate positions surviving both stages (`None` when the
    /// surviving segments cannot narrow and the query degrades to a
    /// scan of the unpruned segments).
    pub candidates: Option<usize>,
    /// Total trajectories in the warehouse.
    pub total: usize,
}

/// Per-query pruning instruments (`query.*` metric names), resolved
/// once so [`SegmentedDb::candidates`] — a `&self` hot path — pays
/// relaxed atomic adds only.
struct QueryMetrics {
    segments_scanned: Arc<Counter>,
    zone_pruned: Arc<Counter>,
    bloom_pruned: Arc<Counter>,
    candidates: Arc<Histogram>,
}

impl QueryMetrics {
    fn bind(registry: &MetricsRegistry) -> QueryMetrics {
        QueryMetrics {
            segments_scanned: registry.counter("query.segments_scanned"),
            zone_pruned: registry.counter("query.zone_pruned"),
            bloom_pruned: registry.counter("query.bloom_pruned"),
            candidates: registry.histogram("query.candidates"),
        }
    }
}

/// A durable, segment-backed trajectory warehouse with the
/// [`TrajectoryDb`] query surface and the [`TrajectorySource`]
/// federation face.
pub struct SegmentedDb {
    store: SegmentStore,
    parts: Vec<SegmentPart>,
    total: usize,
    metrics: QueryMetrics,
}

impl SegmentedDb {
    /// Opens (or creates) the warehouse at `dir`, recovering the newest
    /// complete manifest and building per-segment postings.
    pub fn open(
        dir: impl AsRef<Path>,
        config: WarehouseConfig,
    ) -> Result<(SegmentedDb, RecoveryReport), WarehouseError> {
        let (store, report) = SegmentStore::open(dir, config)?;
        let mut db = SegmentedDb {
            store,
            parts: Vec::new(),
            total: 0,
            metrics: QueryMetrics::bind(MetricsRegistry::global()),
        };
        db.rebuild_parts();
        Ok((db, report))
    }

    /// Points this warehouse's `query.*` instruments (and the
    /// underlying store's `store.*` instruments) at `registry` instead
    /// of the process-global default.
    #[must_use]
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> SegmentedDb {
        self.metrics = QueryMetrics::bind(registry);
        self.store.set_metrics(registry);
        self
    }

    /// Rebuilds the query-side structures from the store's live
    /// segments (after open, flush, or compaction). Segments are
    /// immutable, so a part whose id survived the mutation is *reused*
    /// (only its base offset moves) — a flush indexes just the new
    /// segment and whatever a compaction merged, not the whole
    /// warehouse.
    fn rebuild_parts(&mut self) {
        let mut reusable: std::collections::HashMap<u64, SegmentPart> =
            std::mem::take(&mut self.parts)
                .into_iter()
                .map(|p| (p.id, p))
                .collect();
        self.total = 0;
        for segment in self.store.segments() {
            let base = self.total as TrajId;
            self.total += segment.trajectories.len();
            let part = match reusable.remove(&segment.id) {
                Some(mut part) => {
                    part.base = base;
                    part
                }
                None => SegmentPart {
                    id: segment.id,
                    zone_map: segment.zone_map.clone(),
                    db: TrajectoryDb::build(segment.trajectories.clone()),
                    base,
                },
            };
            self.parts.push(part);
        }
    }

    /// Flushes one batch of finished trajectories as a new immutable
    /// segment (sorted into the canonical run order), then runs
    /// size-tiered compaction to its fixed point. An empty batch is a
    /// no-op. Durable on return.
    pub fn flush(&mut self, trajectories: Vec<SemanticTrajectory>) -> Result<(), WarehouseError> {
        if trajectories.is_empty() {
            return Ok(());
        }
        self.store.append_segment(trajectories)?;
        self.store.compact_size_tiered()?;
        self.rebuild_parts();
        Ok(())
    }

    /// Forces size-tiered compaction now (normally [`SegmentedDb::flush`]
    /// already runs it). Returns the number of merges performed.
    pub fn compact(&mut self) -> Result<usize, WarehouseError> {
        let merges = self.store.compact_size_tiered()?;
        if merges > 0 {
            self.rebuild_parts();
        }
        Ok(merges)
    }

    /// The live segments (id, zone map, sorted run), in iteration order.
    pub fn segments(&self) -> &[Segment] {
        self.store.segments()
    }

    /// The underlying store.
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }

    /// Total trajectories across every segment.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when the warehouse holds nothing.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Trajectory by global position (warehouse iteration order).
    pub fn get(&self, id: TrajId) -> Option<&SemanticTrajectory> {
        let part_idx = match self.parts.binary_search_by(|p| p.base.cmp(&id)) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let part = &self.parts[part_idx];
        part.db.get(id - part.base)
    }

    /// Every trajectory, in warehouse order (segments in manifest
    /// order, each its sorted run).
    pub fn iter(&self) -> impl Iterator<Item = &SemanticTrajectory> {
        self.parts.iter().flat_map(|p| p.db.iter())
    }

    /// Derives a global candidate superset for `p`: zone-map pruning
    /// per segment, then the surviving segments' postings shifted by
    /// their base offsets. Soundness invariant (property-tested in
    /// `tests/segmented_proptests.rs`): every trajectory matching `p`
    /// is in the returned set.
    pub fn candidates(&self, p: &Predicate) -> CandidateSet {
        let mut ids: Vec<TrajId> = Vec::new();
        let mut narrowed = false;
        let mut scanned = 0u64;
        let mut zone_pruned = 0u64;
        let mut bloom_pruned = 0u64;
        for part in &self.parts {
            if !zone_may_match(&part.zone_map, p) {
                narrowed = true;
                zone_pruned += 1;
                // Only already-pruned segments are re-probed, so the
                // bloom attribution costs nothing on survivors.
                if zone_bloom_rejects(&part.zone_map, p) {
                    bloom_pruned += 1;
                }
                continue;
            }
            scanned += 1;
            match part.db.candidates(p) {
                CandidateSet::All => {
                    ids.extend(part.base..part.base + part.db.len() as TrajId);
                }
                CandidateSet::Ids(local) => {
                    narrowed = true;
                    ids.extend(local.into_iter().map(|i| i + part.base));
                }
            }
        }
        self.metrics.segments_scanned.add(scanned);
        self.metrics.zone_pruned.add(zone_pruned);
        self.metrics.bloom_pruned.add(bloom_pruned);
        self.metrics.candidates.record(ids.len() as u64);
        if narrowed {
            CandidateSet::Ids(ids)
        } else {
            CandidateSet::All
        }
    }

    /// Plans `p` against the warehouse without executing it, reporting
    /// how many segments zone maps pruned and how many candidates
    /// survive.
    pub fn explain(&self, p: &Predicate) -> SegmentedPlan {
        let pruned = self
            .parts
            .iter()
            .filter(|part| !zone_may_match(&part.zone_map, p))
            .count();
        let bloom_pruned = self
            .parts
            .iter()
            .filter(|part| zone_bloom_rejects(&part.zone_map, p))
            .count();
        let candidates = match self.candidates(p) {
            CandidateSet::All => None,
            CandidateSet::Ids(ids) => Some(ids.len()),
        };
        SegmentedPlan {
            segments: self.parts.len(),
            pruned,
            bloom_pruned,
            candidates,
            total: self.total,
        }
    }

    /// Matches via the two-stage index path (candidates re-checked).
    /// Identical results, in warehouse order, to
    /// [`SegmentedDb::matching_scan`].
    pub fn matching(&self, p: &Predicate) -> Vec<&SemanticTrajectory> {
        match self.candidates(p) {
            CandidateSet::All => self.matching_scan(p),
            CandidateSet::Ids(ids) => ids
                .into_iter()
                .filter_map(|id| self.get(id))
                .filter(|t| p.matches(t))
                .collect(),
        }
    }

    /// Match count via the index path (equals
    /// [`SegmentedDb::count_matching_scan`]).
    pub fn count_matching(&self, p: &Predicate) -> usize {
        match self.candidates(p) {
            CandidateSet::All => self.count_matching_scan(p),
            CandidateSet::Ids(ids) => ids
                .into_iter()
                .filter_map(|id| self.get(id))
                .filter(|t| p.matches(t))
                .count(),
        }
    }

    /// The index-free reference: evaluates `p` against every
    /// trajectory in every segment. Kept public as the differential
    /// baseline the pruned path is tested (and benchmarked) against.
    pub fn matching_scan(&self, p: &Predicate) -> Vec<&SemanticTrajectory> {
        self.iter().filter(|t| p.matches(t)).collect()
    }

    /// Scan-path twin of [`SegmentedDb::count_matching`].
    pub fn count_matching_scan(&self, p: &Predicate) -> usize {
        self.iter().filter(|t| p.matches(t)).count()
    }
}

impl std::fmt::Debug for SegmentedDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedDb")
            .field("segments", &self.parts.len())
            .field("trajectories", &self.total)
            .finish()
    }
}

impl TrajectorySource for SegmentedDb {
    fn for_each_trajectory(&self, f: &mut dyn FnMut(&SemanticTrajectory)) {
        for t in self.iter() {
            f(t);
        }
    }

    fn len_hint(&self) -> usize {
        self.total
    }

    fn candidates(&self, predicate: &Predicate) -> CandidateSet {
        SegmentedDb::candidates(self, predicate)
    }

    fn for_each_candidate(&self, predicate: &Predicate, f: &mut dyn FnMut(&SemanticTrajectory)) {
        match SegmentedDb::candidates(self, predicate) {
            CandidateSet::All => self.for_each_trajectory(f),
            CandidateSet::Ids(ids) => {
                for id in ids {
                    if let Some(t) = self.get(id) {
                        f(t);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{
        Annotation, AnnotationSet, Duration, PresenceInterval, TimeInterval, Timestamp, Trace,
        TransitionTaken,
    };
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("sitm-segmented-{tag}-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn traj(mo: &str, stays: &[(usize, i64, i64)], goal: &str) -> SemanticTrajectory {
        let intervals = stays
            .iter()
            .map(|&(c, s, e)| {
                PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(c),
                    Timestamp(s),
                    Timestamp(e),
                )
            })
            .collect();
        SemanticTrajectory::new(
            mo,
            Trace::new(intervals).unwrap(),
            AnnotationSet::from_iter([Annotation::goal(goal)]),
        )
        .unwrap()
    }

    fn open(tmp: &TempDir) -> SegmentedDb {
        SegmentedDb::open(&tmp.0, WarehouseConfig::default())
            .expect("open")
            .0
    }

    #[test]
    fn zone_pruning_is_sound_for_every_leaf() {
        let trajs = vec![
            traj("a", &[(1, 0, 100)], "visit"),
            traj("b", &[(2, 50, 300)], "buy"),
        ];
        let zone = ZoneMap::build(&trajs);
        let window = TimeInterval::new(Timestamp(0), Timestamp(400));
        let cases = [
            (Predicate::True, true),
            (Predicate::VisitedCell(cell(1)), true),
            (Predicate::VisitedCell(cell(9)), false),
            (Predicate::SequenceContains(vec![cell(1), cell(9)]), false),
            (Predicate::SpanOverlaps(window), true),
            (
                Predicate::SpanOverlaps(TimeInterval::new(Timestamp(500), Timestamp(600))),
                false,
            ),
            (Predicate::StayOverlaps(cell(9), window), false),
            (
                Predicate::HasTrajAnnotation(Annotation::goal("visit")),
                true,
            ),
            (
                Predicate::HasTrajAnnotation(Annotation::goal("nope")),
                false,
            ),
            (
                Predicate::HasStayAnnotation(Annotation::goal("visit")),
                false,
            ),
            // Never pruned: overlapping stays can push total dwell past
            // the zone's span, so no span-derived bound is sound.
            (Predicate::MinTotalDwell(Duration::seconds(301)), true),
            (Predicate::MinStayIn(cell(9), Duration::seconds(1)), false),
            (Predicate::MovingObject("a".into()), true),
            (Predicate::MovingObject("z".into()), false),
            (Predicate::VisitedCell(cell(9)).not(), true),
            (
                Predicate::VisitedCell(cell(1)).and(Predicate::MovingObject("z".into())),
                false,
            ),
            (
                Predicate::VisitedCell(cell(9)).or(Predicate::MovingObject("a".into())),
                true,
            ),
            (Predicate::Or(vec![]), false),
        ];
        for (p, expected) in cases {
            assert_eq!(zone_may_match(&zone, &p), expected, "for {p}");
            if !expected {
                // Pruning must be sound: nothing in the segment matches.
                assert!(
                    trajs.iter().all(|t| !p.matches(t)),
                    "pruned a matching trajectory for {p}"
                );
            }
        }
        // Empty segments prune everything.
        assert!(!zone_may_match(&ZoneMap::default(), &Predicate::True));
    }

    #[test]
    fn bloom_rejection_is_sound_and_visible_in_plans() {
        let tmp = TempDir::new("bloom");
        let mut db = open(&tmp);
        // Two object/cell-disjoint segments.
        db.flush(vec![traj("a", &[(1, 0, 100)], "visit")]).unwrap();
        db.flush(vec![traj("b", &[(2, 1000, 1100)], "visit")])
            .unwrap();
        assert_eq!(db.segments().len(), 2);
        // A point predicate matching nothing anywhere: blooms (no
        // false negatives) must reject every segment, and the indexed
        // path must agree with the scan.
        for p in [
            Predicate::MovingObject("nobody".into()),
            Predicate::VisitedCell(cell(9)),
            Predicate::MovingObject("a".into()).and(Predicate::VisitedCell(cell(2))),
        ] {
            let plan = db.explain(&p);
            assert!(plan.bloom_pruned <= plan.pruned, "for {p}");
            assert_eq!(db.matching(&p).len(), db.matching_scan(&p).len(), "{p}");
        }
        // Fully absent point values are bloom-rejected in every segment.
        let absent = Predicate::MovingObject("nobody".into());
        let plan = db.explain(&absent);
        assert_eq!(plan.pruned, 2);
        assert_eq!(
            plan.bloom_pruned, 2,
            "blooms alone reject a wholly absent object"
        );
        // A present value is never bloom-rejected in its home segment.
        for s in db.segments() {
            for t in &s.trajectories {
                assert!(!zone_bloom_rejects(
                    &s.zone_map,
                    &Predicate::MovingObject(t.moving_object.clone())
                ));
                for stay in t.trace().intervals() {
                    assert!(!zone_bloom_rejects(
                        &s.zone_map,
                        &Predicate::VisitedCell(stay.cell)
                    ));
                }
            }
        }
        // Structural cases blooms cannot answer.
        assert!(!zone_bloom_rejects(
            &db.segments()[0].zone_map,
            &Predicate::Or(vec![])
        ));
        assert!(!zone_bloom_rejects(
            &db.segments()[0].zone_map,
            &Predicate::VisitedCell(cell(9)).not()
        ));
    }

    #[test]
    fn flush_builds_segments_and_ids_follow_warehouse_order() {
        let tmp = TempDir::new("order");
        let mut db = open(&tmp);
        db.flush(vec![
            traj("b", &[(1, 100, 200)], "visit"),
            traj("a", &[(0, 0, 50)], "visit"),
        ])
        .unwrap();
        db.flush(vec![traj("c", &[(2, 300, 400)], "buy")]).unwrap();
        assert_eq!(db.len(), 3);
        // Within the first segment the run is sorted by span start.
        let order: Vec<&str> = db.iter().map(|t| t.moving_object.as_str()).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(db.get(0).unwrap().moving_object, "a");
        assert_eq!(db.get(2).unwrap().moving_object, "c");
        assert!(db.get(3).is_none());
    }

    #[test]
    fn candidates_prune_and_agree_with_scan() {
        let tmp = TempDir::new("prune");
        let mut db = open(&tmp);
        // Disable size-tiering side effects by flushing distinct sizes?
        // Two segments of 2 stay under the default fanout of 4.
        db.flush(vec![
            traj("a", &[(1, 0, 100)], "visit"),
            traj("b", &[(2, 0, 100)], "visit"),
        ])
        .unwrap();
        db.flush(vec![
            traj("c", &[(3, 1000, 1100)], "buy"),
            traj("d", &[(4, 1000, 1100)], "buy"),
        ])
        .unwrap();
        assert_eq!(db.segments().len(), 2);
        let p = Predicate::VisitedCell(cell(1));
        let plan = db.explain(&p);
        assert_eq!(plan.segments, 2);
        assert_eq!(plan.pruned, 1, "the buy segment has no cell 1");
        assert!(
            plan.bloom_pruned <= plan.pruned,
            "bloom rejections are a subset of zone-map prunes"
        );
        assert_eq!(plan.candidates, Some(1));
        for p in [
            Predicate::VisitedCell(cell(1)),
            Predicate::MovingObject("d".into()),
            Predicate::SpanOverlaps(TimeInterval::new(Timestamp(0), Timestamp(50))),
            Predicate::HasTrajAnnotation(Annotation::goal("buy")),
            Predicate::True,
            Predicate::VisitedCell(cell(1)).not(),
        ] {
            let indexed: Vec<&str> = db
                .matching(&p)
                .iter()
                .map(|t| t.moving_object.as_str())
                .collect();
            let scanned: Vec<&str> = db
                .matching_scan(&p)
                .iter()
                .map(|t| t.moving_object.as_str())
                .collect();
            assert_eq!(indexed, scanned, "diverged for {p}");
            assert_eq!(db.count_matching(&p), db.count_matching_scan(&p));
        }
    }

    #[test]
    fn reopen_preserves_everything_and_compaction_keeps_results() {
        let tmp = TempDir::new("reopen");
        let config = WarehouseConfig {
            fanout: 2,
            ..WarehouseConfig::default()
        };
        let all: Vec<SemanticTrajectory> = (0..6)
            .map(|i| {
                traj(
                    &format!("mo-{i}"),
                    &[(i % 3, i as i64 * 10, i as i64 * 10 + 5)],
                    "visit",
                )
            })
            .collect();
        {
            let (mut db, _) = SegmentedDb::open(&tmp.0, config).unwrap();
            for chunk in all.chunks(2) {
                db.flush(chunk.to_vec()).unwrap();
            }
            // fanout 2: everything coalesces into few segments.
            assert!(db.segments().len() <= 2);
            assert_eq!(db.len(), 6);
        }
        let (db, report) = SegmentedDb::open(&tmp.0, config).unwrap();
        assert!(report.is_clean());
        assert_eq!(db.len(), 6);
        // Content is preserved as a multiset.
        let mut got: Vec<String> = db.iter().map(|t| t.moving_object.clone()).collect();
        got.sort();
        let mut want: Vec<String> = all.iter().map(|t| t.moving_object.clone()).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn federation_face_matches_trajectory_db() {
        let tmp = TempDir::new("federate");
        let mut db = open(&tmp);
        db.flush(vec![
            traj("a", &[(1, 0, 100)], "visit"),
            traj("b", &[(2, 50, 150)], "visit"),
        ])
        .unwrap();
        let reference = TrajectoryDb::build(db.iter().cloned().collect());
        let p = Predicate::VisitedCell(cell(1));
        let from_seg: Vec<String> = crate::federation::federated_matching(&p, &[&db])
            .into_iter()
            .map(|t| t.moving_object)
            .collect();
        let from_db: Vec<String> = crate::federation::federated_matching(&p, &[&reference])
            .into_iter()
            .map(|t| t.moving_object)
            .collect();
        assert_eq!(from_seg, from_db);
        assert_eq!(TrajectorySource::len_hint(&db), 2);
        // An empty warehouse federates as nothing.
        let empty_tmp = TempDir::new("federate-empty");
        let empty = open(&empty_tmp);
        assert_eq!(
            crate::federation::federated_count(&Predicate::True, &[&empty]),
            0
        );
        assert!(empty.is_empty());
    }
}
