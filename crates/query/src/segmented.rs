//! The warehouse rewritten around immutable on-disk segments.
//!
//! [`SegmentedDb`] is the durable twin of [`TrajectoryDb`]: the same
//! query surface (candidate supersets re-checked by the caller, the
//! [`TrajectorySource`] federation face), but backed by
//! `sitm_store`'s segment tier ([`SegmentStore`]) instead of one
//! in-memory vector — so the collection survives restarts, grows by
//! *appending immutable segments*, and stays bounded by size-tiered
//! compaction instead of rebuilding the world per run.
//!
//! ## Two-level index consultation
//!
//! A predicate is narrowed in two stages, both sound:
//!
//! 1. **zone-map pruning** — each segment's [`ZoneMap`] (span min/max,
//!    cell set, object set, annotation sets) is tested with
//!    [`zone_may_match`]; a segment the predicate provably cannot match
//!    contributes nothing and its trajectories are never touched.
//!    Point-equality leaves (cell / moving-object membership) consult
//!    the zone map's **Bloom filters first**: a bloom *no* rejects the
//!    segment from one probe sequence without touching the exact
//!    ordered sets (no false negatives, so the prune stays sound), and
//!    [`SegmentedPlan::bloom_pruned`] reports how many segments the
//!    blooms alone eliminated;
//! 2. **per-segment postings** — surviving segments answer through
//!    their own [`TrajectoryDb`] indexes (cell/annotation/object
//!    postings, span and stay interval trees), translated into global
//!    positions by each segment's base offset.
//!
//! Like every index in this stack, the result is a *sound candidate
//! superset*: the executor re-checks the full predicate on every
//! candidate, so the segmented path is result-identical to a full scan
//! (and to an in-memory [`TrajectoryDb`] over the same trajectories —
//! the differential tests in `tests/tiered_warehouse.rs` pin this at
//! every flush and compaction point).
//!
//! ## Iteration order
//!
//! Trajectories iterate in **warehouse order**: segments in manifest
//! order, each segment its canonical sorted run
//! ([`sitm_store::sort_run`]). The order is deterministic for a given
//! sequence of flushes and compactions, which is what lets the
//! differential tests demand *exact* equality (ids included) against a
//! [`TrajectoryDb`] built from the same iteration.
//!
//! ## Lazy residency (segment format v3)
//!
//! Segments open **cold**: `SegmentStore::open` reads only header
//! frames (zone map, offset directory, sort columns, rollup), so
//! everything above is available without decoding a single trajectory —
//! and the sort columns let content-key ordering (`TotalDwell`,
//! `MovingObject`, `TraceLength`) decide which frames a page needs
//! before any row is materialized. A segment's postings
//! ([`TrajectoryDb`]) hydrate on first contact — when pruning leaves
//! the segment in a query's surviving set — from one decode pass whose
//! storage is `Arc`-shared between the store's segment cache and the
//! postings ([`TrajectoryDb::build_shared`]); there is exactly one
//! resident copy of a segment's run, ever. A fully-pruned query
//! therefore reads ~zero segment bytes (`query.segment_bytes_read`).
//! Single-row seeks land in the store's bounded **row-decode cache**
//! (see `sitm_store::warehouse`), so repeated paged scans over hot
//! segments re-decode nothing (`query.row_cache_hits`). Hydration
//! **panics** if the segment body turns out corrupt
//! (`Segment::trajectories` errors): header corruption is refused at
//! open, and the query surface is infallible by signature, so body
//! corruption discovered mid-query is deliberately fail-stop.
//!
//! ## Global object index
//!
//! Before any per-segment probe, point lookups (`MovingObject` leaves,
//! and `And`/`Or` combinations over them) consult the store's
//! cross-segment **object index** — object → segment-id postings
//! maintained incrementally on flush and compaction. Segments outside
//! the posting set are skipped without even touching their zone map
//! ([`SegmentedPlan::object_pruned`]).
//!
//! ## Rollups
//!
//! Per-cell and per-period aggregates ([`SegmentedDb::rollup_cells`],
//! [`SegmentedDb::rollup_occupancy`]) merge the segments' header-frame
//! rollups — the served `Stats` op answers per-cell and per-period
//! breakdowns from these (merged with a live-tier fold) without
//! hydrating anything.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::{Arc, OnceLock};

use sitm_core::SemanticTrajectory;
use sitm_obs::{Counter, Histogram, MetricsRegistry};
use sitm_space::CellRef;
use sitm_store::warehouse::{
    CellRollup, Segment, SegmentStore, WarehouseConfig, WarehouseError, ZoneMap,
};
use sitm_store::RecoveryReport;

use crate::federation::TrajectorySource;
use crate::index::{CandidateSet, TrajId, TrajectoryDb};
use crate::predicate::Predicate;

/// Can any trajectory summarized by `zone` possibly match `p`?
///
/// Sound pruning: `false` is returned only when **no** trajectory in
/// the segment can match — the caller may then skip the whole segment.
/// `true` is always safe (the per-segment postings and the residual
/// re-check still run). Negation is never pruned (a zone map aggregates
/// *presence*, not absence), and conjunction prunes when any conjunct
/// does.
pub fn zone_may_match(zone: &ZoneMap, p: &Predicate) -> bool {
    if zone.len == 0 {
        return false;
    }
    let span_allows = |window: &sitm_core::TimeInterval| match zone.span {
        None => false,
        Some(span) => span.overlaps(*window),
    };
    // The longest any *single stay* can be: every stay lies inside its
    // trajectory's span (`Trace::span` is [min start, max end]), which
    // lies inside the zone span. Total dwell has no such bound —
    // overlapping stays are legal (sensor handoff jitter, see
    // `TraceError::OutOfOrder`) and can sum past the span.
    let max_span = zone
        .span
        .map(|s| s.duration())
        .unwrap_or_else(|| sitm_core::Duration::seconds(0));
    match p {
        Predicate::True => true,
        Predicate::VisitedCell(cell) => zone.may_contain_cell(cell),
        Predicate::SequenceContains(cells) => cells.iter().all(|c| zone.may_contain_cell(c)),
        Predicate::SpanOverlaps(window) => span_allows(window),
        Predicate::StayOverlaps(cell, window) => zone.may_contain_cell(cell) && span_allows(window),
        Predicate::HasTrajAnnotation(a) => zone.traj_annotations.contains(a),
        Predicate::HasStayAnnotation(a) => zone.stay_annotations.contains(a),
        Predicate::MinTotalDwell(_) => true,
        Predicate::MinStayIn(cell, d) => zone.may_contain_cell(cell) && *d <= max_span,
        Predicate::MovingObject(id) => zone.may_contain_object(id),
        Predicate::Not(_) => true,
        Predicate::And(parts) => parts.iter().all(|q| zone_may_match(zone, q)),
        Predicate::Or(parts) => parts.iter().any(|q| zone_may_match(zone, q)),
    }
}

/// Would the zone's *Bloom filters alone* prove `p` unmatchable? A
/// strict subset of the segments [`zone_may_match`] prunes (a bloom
/// *no* has no false negatives), reported separately in
/// [`SegmentedPlan::bloom_pruned`] so the fast-rejection tier's
/// contribution is visible in plans. Point-equality leaves (cell /
/// moving-object membership) are the only ones blooms can answer.
pub fn zone_bloom_rejects(zone: &ZoneMap, p: &Predicate) -> bool {
    match p {
        Predicate::VisitedCell(cell)
        | Predicate::StayOverlaps(cell, _)
        | Predicate::MinStayIn(cell, _) => zone.bloom_rejects_cell(cell),
        // Every listed cell must be present for a contiguous run.
        Predicate::SequenceContains(cells) => cells.iter().any(|c| zone.bloom_rejects_cell(c)),
        Predicate::MovingObject(id) => zone.bloom_rejects_object(id),
        Predicate::And(parts) => parts.iter().any(|q| zone_bloom_rejects(zone, q)),
        Predicate::Or(parts) => {
            !parts.is_empty() && parts.iter().all(|q| zone_bloom_rejects(zone, q))
        }
        _ => false,
    }
}

/// One live segment's query-side structures. Parts align **by index**
/// with [`SegmentStore::segments`] (both follow manifest order), so the
/// pruning metadata (zone map, directory, rollup) is read straight off
/// the store's segment — no clones.
struct SegmentPart {
    /// The segment id (segments are immutable, so the id keys reuse
    /// across rebuilds).
    id: u64,
    /// Trajectory count (from the offset directory — no decode).
    len: usize,
    /// Global position of the segment's first trajectory.
    base: TrajId,
    /// Per-segment postings over the segment's sorted run, hydrated on
    /// first contact from the segment's `Arc`-shared decode.
    db: OnceLock<TrajectoryDb>,
}

/// How a segmented query would be served (the warehouse analogue of
/// [`crate::QueryPlan`], with the segment dimension made visible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentedPlan {
    /// Live segments consulted.
    pub segments: usize,
    /// Segments skipped entirely by zone-map pruning.
    pub pruned: usize,
    /// Of the pruned segments, how many the Bloom filters alone
    /// rejected (point predicates answered before the exact sets were
    /// touched) — always `≤ pruned`.
    pub bloom_pruned: usize,
    /// Segments skipped by the global object index before their zone
    /// maps were even consulted (disjoint from `pruned`).
    pub object_pruned: usize,
    /// Candidate positions surviving both stages (`None` when the
    /// surviving segments cannot narrow and the query degrades to a
    /// scan of the unpruned segments).
    pub candidates: Option<usize>,
    /// Total trajectories in the warehouse.
    pub total: usize,
}

/// Per-query pruning instruments (`query.*` metric names), resolved
/// once so [`SegmentedDb::candidates`] — a `&self` hot path — pays
/// relaxed atomic adds only.
struct QueryMetrics {
    segments_scanned: Arc<Counter>,
    zone_pruned: Arc<Counter>,
    bloom_pruned: Arc<Counter>,
    object_pruned: Arc<Counter>,
    candidates: Arc<Histogram>,
}

impl QueryMetrics {
    fn bind(registry: &MetricsRegistry) -> QueryMetrics {
        QueryMetrics {
            segments_scanned: registry.counter("query.segments_scanned"),
            zone_pruned: registry.counter("query.zone_pruned"),
            bloom_pruned: registry.counter("query.bloom_pruned"),
            object_pruned: registry.counter("query.object_pruned"),
            candidates: registry.histogram("query.candidates"),
        }
    }
}

/// Can the per-segment postings narrow `p` at all? `false` means every
/// segment would answer [`CandidateSet::All`], so consulting them (and
/// hydrating cold segments to do it) is pure waste. Mirrors
/// [`TrajectoryDb::candidates`]'s `All` cases, conservatively.
fn index_can_narrow(p: &Predicate) -> bool {
    match p {
        Predicate::True | Predicate::MinTotalDwell(_) | Predicate::Not(_) => false,
        Predicate::And(parts) => parts.iter().any(index_can_narrow),
        Predicate::Or(parts) => parts.is_empty() || parts.iter().all(index_can_narrow),
        _ => true,
    }
}

/// A durable, segment-backed trajectory warehouse with the
/// [`TrajectoryDb`] query surface and the [`TrajectorySource`]
/// federation face.
pub struct SegmentedDb {
    store: SegmentStore,
    parts: Vec<SegmentPart>,
    total: usize,
    metrics: QueryMetrics,
}

impl SegmentedDb {
    /// Opens (or creates) the warehouse at `dir`, recovering the newest
    /// complete manifest and building per-segment postings.
    pub fn open(
        dir: impl AsRef<Path>,
        config: WarehouseConfig,
    ) -> Result<(SegmentedDb, RecoveryReport), WarehouseError> {
        let (store, report) = SegmentStore::open(dir, config)?;
        let mut db = SegmentedDb {
            store,
            parts: Vec::new(),
            total: 0,
            metrics: QueryMetrics::bind(MetricsRegistry::global()),
        };
        db.rebuild_parts();
        Ok((db, report))
    }

    /// Points this warehouse's `query.*` instruments (and the
    /// underlying store's `store.*` instruments) at `registry` instead
    /// of the process-global default.
    #[must_use]
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> SegmentedDb {
        self.metrics = QueryMetrics::bind(registry);
        self.store.set_metrics(registry);
        self
    }

    /// Rebuilds the query-side structures from the store's live
    /// segments (after open, flush, or compaction). Segments are
    /// immutable, so a part whose id survived the mutation is *reused*
    /// (only its base offset moves) — a flush indexes just the new
    /// segment and whatever a compaction merged, not the whole
    /// warehouse.
    fn rebuild_parts(&mut self) {
        let mut reusable: std::collections::HashMap<u64, SegmentPart> =
            std::mem::take(&mut self.parts)
                .into_iter()
                .map(|p| (p.id, p))
                .collect();
        self.total = 0;
        for segment in self.store.segments() {
            let base = self.total as TrajId;
            self.total += segment.len();
            let part = match reusable.remove(&segment.id) {
                Some(mut part) => {
                    part.base = base;
                    part
                }
                None => SegmentPart {
                    id: segment.id,
                    len: segment.len(),
                    base,
                    db: OnceLock::new(),
                },
            };
            self.parts.push(part);
        }
    }

    /// The postings of part `idx`, hydrating them on first contact from
    /// the store segment's cached (`Arc`-shared) decode.
    ///
    /// # Panics
    ///
    /// If the segment body is corrupt (see the module docs: headers
    /// were validated at open; body corruption mid-query is fail-stop).
    fn part_db(&self, idx: usize) -> &TrajectoryDb {
        let part = &self.parts[idx];
        part.db.get_or_init(|| {
            let segment = &self.store.segments()[idx];
            let run = segment.trajectories().unwrap_or_else(|e| {
                panic!("segment {} body corrupt at hydration: {e}", segment.id)
            });
            TrajectoryDb::build_shared(Arc::clone(run))
        })
    }

    /// Consults the global object index: the segment ids that may hold
    /// a match for `p`, or `None` when `p` has no object structure the
    /// index can answer. Sound: a segment outside the returned set
    /// provably contains no match (the index is exact, not
    /// probabilistic — every flush/compaction rewrites its postings).
    fn object_segment_filter(&self, p: &Predicate) -> Option<BTreeSet<u64>> {
        match p {
            Predicate::MovingObject(id) => {
                Some(self.store.object_segments(id).cloned().unwrap_or_default())
            }
            Predicate::And(parts) => {
                // Intersect whatever arms the index can answer; arms it
                // cannot answer constrain nothing.
                let mut acc: Option<BTreeSet<u64>> = None;
                for q in parts {
                    if let Some(s) = self.object_segment_filter(q) {
                        acc = Some(match acc {
                            None => s,
                            Some(prev) => prev.intersection(&s).copied().collect(),
                        });
                    }
                }
                acc
            }
            Predicate::Or(parts) => {
                // A union is only sound if *every* arm is answerable.
                let mut acc = BTreeSet::new();
                for q in parts {
                    acc.extend(self.object_segment_filter(q)?);
                }
                Some(acc)
            }
            _ => None,
        }
    }

    /// Flushes one batch of finished trajectories as a new immutable
    /// segment (sorted into the canonical run order), then runs
    /// size-tiered compaction to its fixed point. An empty batch is a
    /// no-op. Durable on return.
    pub fn flush(&mut self, trajectories: Vec<SemanticTrajectory>) -> Result<(), WarehouseError> {
        if trajectories.is_empty() {
            return Ok(());
        }
        self.store.append_segment(trajectories)?;
        self.store.compact_size_tiered()?;
        self.rebuild_parts();
        Ok(())
    }

    /// Forces size-tiered compaction now (normally [`SegmentedDb::flush`]
    /// already runs it). Returns the number of merges performed.
    pub fn compact(&mut self) -> Result<usize, WarehouseError> {
        let merges = self.store.compact_size_tiered()?;
        if merges > 0 {
            self.rebuild_parts();
        }
        Ok(merges)
    }

    /// The live segments (id, zone map, sorted run), in iteration order.
    pub fn segments(&self) -> &[Segment] {
        self.store.segments()
    }

    /// The underlying store.
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }

    /// Total trajectories across every segment.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when the warehouse holds nothing.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Trajectory by global position (warehouse iteration order).
    /// Hydrates the owning segment.
    pub fn get(&self, id: TrajId) -> Option<&SemanticTrajectory> {
        let part_idx = match self.parts.binary_search_by(|p| p.base.cmp(&id)) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        self.part_db(part_idx).get(id - self.parts[part_idx].base)
    }

    /// Every trajectory, in warehouse order (segments in manifest
    /// order, each its sorted run). A full scan — hydrates everything.
    pub fn iter(&self) -> impl Iterator<Item = &SemanticTrajectory> {
        (0..self.parts.len()).flat_map(|i| self.part_db(i).iter())
    }

    /// Warehouse-wide per-cell aggregates merged from the segments'
    /// header-frame rollups: distinct-trajectory count, stay count, and
    /// total dwell seconds per cell. **Decodes nothing** — this is the
    /// Stats fast path.
    pub fn rollup_cells(&self) -> BTreeMap<CellRef, CellRollup> {
        let mut out: BTreeMap<CellRef, CellRollup> = BTreeMap::new();
        for segment in self.store.segments() {
            for (cell, cr) in &segment.rollup().cells {
                out.entry(*cell).or_default().merge(cr);
            }
        }
        out
    }

    /// Warehouse-wide occupancy merged from the segments' header-frame
    /// rollups: period start (seconds, aligned to the rollup period) →
    /// number of trajectories whose span touches the period. Decodes
    /// nothing.
    pub fn rollup_occupancy(&self) -> BTreeMap<i64, u64> {
        let mut out: BTreeMap<i64, u64> = BTreeMap::new();
        for segment in self.store.segments() {
            for (period, n) in &segment.rollup().periods {
                *out.entry(*period).or_default() += n;
            }
        }
        out
    }

    /// Derives a global candidate superset for `p`: zone-map pruning
    /// per segment, then the surviving segments' postings shifted by
    /// their base offsets. Soundness invariant (property-tested in
    /// `tests/segmented_proptests.rs`): every trajectory matching `p`
    /// is in the returned set.
    pub fn candidates(&self, p: &Predicate) -> CandidateSet {
        let _prune = sitm_obs::trace::child_detail("prune");
        let mut ids: Vec<TrajId> = Vec::new();
        let mut narrowed = false;
        let mut scanned = 0u64;
        let mut zone_pruned = 0u64;
        let mut bloom_pruned = 0u64;
        let mut object_pruned = 0u64;
        let object_filter = self.object_segment_filter(p);
        let can_narrow = index_can_narrow(p);
        let segments = self.store.segments();
        for (idx, part) in self.parts.iter().enumerate() {
            // Stage 0: the global object index — exact, cross-segment,
            // cheaper than any zone probe.
            if let Some(filter) = &object_filter {
                if !filter.contains(&part.id) {
                    narrowed = true;
                    object_pruned += 1;
                    continue;
                }
            }
            let zone = &segments[idx].zone_map;
            if !zone_may_match(zone, p) {
                narrowed = true;
                zone_pruned += 1;
                // Only already-pruned segments are re-probed, so the
                // bloom attribution costs nothing on survivors.
                if zone_bloom_rejects(zone, p) {
                    bloom_pruned += 1;
                }
                continue;
            }
            scanned += 1;
            if !can_narrow {
                // Every segment would answer All; say so without
                // hydrating cold postings.
                ids.extend(part.base..part.base + part.len as TrajId);
                continue;
            }
            match self.part_db(idx).candidates(p) {
                CandidateSet::All => {
                    ids.extend(part.base..part.base + part.len as TrajId);
                }
                CandidateSet::Ids(local) => {
                    narrowed = true;
                    ids.extend(local.into_iter().map(|i| i + part.base));
                }
            }
        }
        self.metrics.segments_scanned.add(scanned);
        self.metrics.zone_pruned.add(zone_pruned);
        self.metrics.bloom_pruned.add(bloom_pruned);
        self.metrics.object_pruned.add(object_pruned);
        self.metrics.candidates.record(ids.len() as u64);
        if narrowed {
            CandidateSet::Ids(ids)
        } else {
            CandidateSet::All
        }
    }

    /// Plans `p` against the warehouse without executing it, reporting
    /// how many segments zone maps pruned and how many candidates
    /// survive.
    pub fn explain(&self, p: &Predicate) -> SegmentedPlan {
        let object_filter = self.object_segment_filter(p);
        let survives_object = |part: &SegmentPart| match &object_filter {
            Some(filter) => filter.contains(&part.id),
            None => true,
        };
        let object_pruned = self.parts.iter().filter(|p| !survives_object(p)).count();
        let segments = self.store.segments();
        let pruned = self
            .parts
            .iter()
            .enumerate()
            .filter(|(i, part)| survives_object(part) && !zone_may_match(&segments[*i].zone_map, p))
            .count();
        let bloom_pruned = self
            .parts
            .iter()
            .enumerate()
            .filter(|(i, part)| {
                survives_object(part) && zone_bloom_rejects(&segments[*i].zone_map, p)
            })
            .count();
        let candidates = match self.candidates(p) {
            CandidateSet::All => None,
            CandidateSet::Ids(ids) => Some(ids.len()),
        };
        SegmentedPlan {
            segments: self.parts.len(),
            pruned,
            bloom_pruned,
            object_pruned,
            candidates,
            total: self.total,
        }
    }

    /// Matches via the two-stage index path (candidates re-checked).
    /// Identical results, in warehouse order, to
    /// [`SegmentedDb::matching_scan`].
    pub fn matching(&self, p: &Predicate) -> Vec<&SemanticTrajectory> {
        match self.candidates(p) {
            CandidateSet::All => self.matching_scan(p),
            CandidateSet::Ids(ids) => ids
                .into_iter()
                .filter_map(|id| self.get(id))
                .filter(|t| p.matches(t))
                .collect(),
        }
    }

    /// Match count via the index path (equals
    /// [`SegmentedDb::count_matching_scan`]).
    pub fn count_matching(&self, p: &Predicate) -> usize {
        match self.candidates(p) {
            CandidateSet::All => self.count_matching_scan(p),
            CandidateSet::Ids(ids) => ids
                .into_iter()
                .filter_map(|id| self.get(id))
                .filter(|t| p.matches(t))
                .count(),
        }
    }

    /// The index-free reference: evaluates `p` against every
    /// trajectory in every segment. Kept public as the differential
    /// baseline the pruned path is tested (and benchmarked) against.
    pub fn matching_scan(&self, p: &Predicate) -> Vec<&SemanticTrajectory> {
        self.iter().filter(|t| p.matches(t)).collect()
    }

    /// Scan-path twin of [`SegmentedDb::count_matching`].
    pub fn count_matching_scan(&self, p: &Predicate) -> usize {
        self.iter().filter(|t| p.matches(t)).count()
    }
}

impl std::fmt::Debug for SegmentedDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentedDb")
            .field("segments", &self.parts.len())
            .field("trajectories", &self.total)
            .finish()
    }
}

impl TrajectorySource for SegmentedDb {
    fn for_each_trajectory(&self, f: &mut dyn FnMut(&SemanticTrajectory)) {
        for t in self.iter() {
            f(t);
        }
    }

    fn len_hint(&self) -> usize {
        self.total
    }

    fn candidates(&self, predicate: &Predicate) -> CandidateSet {
        SegmentedDb::candidates(self, predicate)
    }

    fn for_each_candidate(&self, predicate: &Predicate, f: &mut dyn FnMut(&SemanticTrajectory)) {
        match SegmentedDb::candidates(self, predicate) {
            CandidateSet::All => self.for_each_trajectory(f),
            CandidateSet::Ids(ids) => {
                for id in ids {
                    if let Some(t) = self.get(id) {
                        f(t);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{
        Annotation, AnnotationSet, Duration, PresenceInterval, TimeInterval, Timestamp, Trace,
        TransitionTaken,
    };
    use sitm_graph::{LayerIdx, NodeId};
    use sitm_space::CellRef;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("sitm-segmented-{tag}-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn traj(mo: &str, stays: &[(usize, i64, i64)], goal: &str) -> SemanticTrajectory {
        let intervals = stays
            .iter()
            .map(|&(c, s, e)| {
                PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(c),
                    Timestamp(s),
                    Timestamp(e),
                )
            })
            .collect();
        SemanticTrajectory::new(
            mo,
            Trace::new(intervals).unwrap(),
            AnnotationSet::from_iter([Annotation::goal(goal)]),
        )
        .unwrap()
    }

    fn open(tmp: &TempDir) -> SegmentedDb {
        SegmentedDb::open(&tmp.0, WarehouseConfig::default())
            .expect("open")
            .0
    }

    #[test]
    fn zone_pruning_is_sound_for_every_leaf() {
        let trajs = vec![
            traj("a", &[(1, 0, 100)], "visit"),
            traj("b", &[(2, 50, 300)], "buy"),
        ];
        let zone = ZoneMap::build(&trajs);
        let window = TimeInterval::new(Timestamp(0), Timestamp(400));
        let cases = [
            (Predicate::True, true),
            (Predicate::VisitedCell(cell(1)), true),
            (Predicate::VisitedCell(cell(9)), false),
            (Predicate::SequenceContains(vec![cell(1), cell(9)]), false),
            (Predicate::SpanOverlaps(window), true),
            (
                Predicate::SpanOverlaps(TimeInterval::new(Timestamp(500), Timestamp(600))),
                false,
            ),
            (Predicate::StayOverlaps(cell(9), window), false),
            (
                Predicate::HasTrajAnnotation(Annotation::goal("visit")),
                true,
            ),
            (
                Predicate::HasTrajAnnotation(Annotation::goal("nope")),
                false,
            ),
            (
                Predicate::HasStayAnnotation(Annotation::goal("visit")),
                false,
            ),
            // Never pruned: overlapping stays can push total dwell past
            // the zone's span, so no span-derived bound is sound.
            (Predicate::MinTotalDwell(Duration::seconds(301)), true),
            (Predicate::MinStayIn(cell(9), Duration::seconds(1)), false),
            (Predicate::MovingObject("a".into()), true),
            (Predicate::MovingObject("z".into()), false),
            (Predicate::VisitedCell(cell(9)).not(), true),
            (
                Predicate::VisitedCell(cell(1)).and(Predicate::MovingObject("z".into())),
                false,
            ),
            (
                Predicate::VisitedCell(cell(9)).or(Predicate::MovingObject("a".into())),
                true,
            ),
            (Predicate::Or(vec![]), false),
        ];
        for (p, expected) in cases {
            assert_eq!(zone_may_match(&zone, &p), expected, "for {p}");
            if !expected {
                // Pruning must be sound: nothing in the segment matches.
                assert!(
                    trajs.iter().all(|t| !p.matches(t)),
                    "pruned a matching trajectory for {p}"
                );
            }
        }
        // Empty segments prune everything.
        assert!(!zone_may_match(&ZoneMap::default(), &Predicate::True));
    }

    #[test]
    fn bloom_rejection_is_sound_and_visible_in_plans() {
        let tmp = TempDir::new("bloom");
        let mut db = open(&tmp);
        // Two object/cell-disjoint segments.
        db.flush(vec![traj("a", &[(1, 0, 100)], "visit")]).unwrap();
        db.flush(vec![traj("b", &[(2, 1000, 1100)], "visit")])
            .unwrap();
        assert_eq!(db.segments().len(), 2);
        // A point predicate matching nothing anywhere: blooms (no
        // false negatives) must reject every segment, and the indexed
        // path must agree with the scan.
        for p in [
            Predicate::MovingObject("nobody".into()),
            Predicate::VisitedCell(cell(9)),
            Predicate::MovingObject("a".into()).and(Predicate::VisitedCell(cell(2))),
        ] {
            let plan = db.explain(&p);
            assert!(plan.bloom_pruned <= plan.pruned, "for {p}");
            assert_eq!(db.matching(&p).len(), db.matching_scan(&p).len(), "{p}");
        }
        // A wholly absent object is pruned by the *global object index*
        // before any zone map or bloom filter is consulted.
        let absent = Predicate::MovingObject("nobody".into());
        let plan = db.explain(&absent);
        assert_eq!(plan.object_pruned, 2, "object index rejects both segments");
        assert_eq!(plan.pruned, 0, "zone maps never consulted");
        assert_eq!(plan.candidates, Some(0));
        // An absent *cell* has no object structure: the zone/bloom tier
        // still does that work.
        let absent_cell = Predicate::VisitedCell(cell(9));
        let plan = db.explain(&absent_cell);
        assert_eq!(plan.object_pruned, 0);
        assert_eq!(plan.pruned, 2);
        assert_eq!(
            plan.bloom_pruned, 2,
            "blooms alone reject a wholly absent cell"
        );
        // A present value is never bloom-rejected in its home segment.
        for s in db.segments() {
            for t in s.trajectories().unwrap().iter() {
                assert!(!zone_bloom_rejects(
                    &s.zone_map,
                    &Predicate::MovingObject(t.moving_object.clone())
                ));
                for stay in t.trace().intervals() {
                    assert!(!zone_bloom_rejects(
                        &s.zone_map,
                        &Predicate::VisitedCell(stay.cell)
                    ));
                }
            }
        }
        // Structural cases blooms cannot answer.
        assert!(!zone_bloom_rejects(
            &db.segments()[0].zone_map,
            &Predicate::Or(vec![])
        ));
        assert!(!zone_bloom_rejects(
            &db.segments()[0].zone_map,
            &Predicate::VisitedCell(cell(9)).not()
        ));
    }

    #[test]
    fn flush_builds_segments_and_ids_follow_warehouse_order() {
        let tmp = TempDir::new("order");
        let mut db = open(&tmp);
        db.flush(vec![
            traj("b", &[(1, 100, 200)], "visit"),
            traj("a", &[(0, 0, 50)], "visit"),
        ])
        .unwrap();
        db.flush(vec![traj("c", &[(2, 300, 400)], "buy")]).unwrap();
        assert_eq!(db.len(), 3);
        // Within the first segment the run is sorted by span start.
        let order: Vec<&str> = db.iter().map(|t| t.moving_object.as_str()).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(db.get(0).unwrap().moving_object, "a");
        assert_eq!(db.get(2).unwrap().moving_object, "c");
        assert!(db.get(3).is_none());
    }

    #[test]
    fn candidates_prune_and_agree_with_scan() {
        let tmp = TempDir::new("prune");
        let mut db = open(&tmp);
        // Disable size-tiering side effects by flushing distinct sizes?
        // Two segments of 2 stay under the default fanout of 4.
        db.flush(vec![
            traj("a", &[(1, 0, 100)], "visit"),
            traj("b", &[(2, 0, 100)], "visit"),
        ])
        .unwrap();
        db.flush(vec![
            traj("c", &[(3, 1000, 1100)], "buy"),
            traj("d", &[(4, 1000, 1100)], "buy"),
        ])
        .unwrap();
        assert_eq!(db.segments().len(), 2);
        let p = Predicate::VisitedCell(cell(1));
        let plan = db.explain(&p);
        assert_eq!(plan.segments, 2);
        assert_eq!(plan.pruned, 1, "the buy segment has no cell 1");
        assert!(
            plan.bloom_pruned <= plan.pruned,
            "bloom rejections are a subset of zone-map prunes"
        );
        assert_eq!(plan.candidates, Some(1));
        for p in [
            Predicate::VisitedCell(cell(1)),
            Predicate::MovingObject("d".into()),
            Predicate::SpanOverlaps(TimeInterval::new(Timestamp(0), Timestamp(50))),
            Predicate::HasTrajAnnotation(Annotation::goal("buy")),
            Predicate::True,
            Predicate::VisitedCell(cell(1)).not(),
        ] {
            let indexed: Vec<&str> = db
                .matching(&p)
                .iter()
                .map(|t| t.moving_object.as_str())
                .collect();
            let scanned: Vec<&str> = db
                .matching_scan(&p)
                .iter()
                .map(|t| t.moving_object.as_str())
                .collect();
            assert_eq!(indexed, scanned, "diverged for {p}");
            assert_eq!(db.count_matching(&p), db.count_matching_scan(&p));
        }
    }

    #[test]
    fn cold_queries_hydrate_only_surviving_segments() {
        let tmp = TempDir::new("cold");
        {
            let mut db = open(&tmp);
            db.flush(vec![traj("a", &[(1, 0, 100)], "visit")]).unwrap();
            db.flush(vec![traj("b", &[(2, 1000, 1100)], "visit")])
                .unwrap();
            assert_eq!(db.segments().len(), 2);
        }
        let db = open(&tmp);
        assert!(
            db.segments().iter().all(|s| !s.is_loaded()),
            "open is cold: headers only"
        );
        assert_eq!(db.len(), 2, "count comes from directories");
        // Rollup aggregates answer from headers alone.
        let cells = db.rollup_cells();
        assert_eq!(cells[&cell(1)].dwell_seconds, 100);
        assert_eq!(cells[&cell(2)].trajectories, 1);
        assert_eq!(db.rollup_occupancy()[&0], 2, "both spans touch period 0");
        // Fully-pruned queries touch nothing.
        assert!(db
            .matching(&Predicate::MovingObject("nobody".into()))
            .is_empty());
        assert!(db.matching(&Predicate::VisitedCell(cell(9))).is_empty());
        assert!(
            db.segments().iter().all(|s| !s.is_loaded()),
            "pruned queries decode nothing"
        );
        // A one-segment point query hydrates only its segment.
        assert_eq!(db.matching(&Predicate::MovingObject("a".into())).len(), 1);
        let loaded: Vec<bool> = db.segments().iter().map(|s| s.is_loaded()).collect();
        assert_eq!(loaded, vec![true, false]);
    }

    #[test]
    fn reopen_preserves_everything_and_compaction_keeps_results() {
        let tmp = TempDir::new("reopen");
        let config = WarehouseConfig {
            fanout: 2,
            ..WarehouseConfig::default()
        };
        let all: Vec<SemanticTrajectory> = (0..6)
            .map(|i| {
                traj(
                    &format!("mo-{i}"),
                    &[(i % 3, i as i64 * 10, i as i64 * 10 + 5)],
                    "visit",
                )
            })
            .collect();
        {
            let (mut db, _) = SegmentedDb::open(&tmp.0, config).unwrap();
            for chunk in all.chunks(2) {
                db.flush(chunk.to_vec()).unwrap();
            }
            // fanout 2: everything coalesces into few segments.
            assert!(db.segments().len() <= 2);
            assert_eq!(db.len(), 6);
        }
        let (db, report) = SegmentedDb::open(&tmp.0, config).unwrap();
        assert!(report.is_clean());
        assert_eq!(db.len(), 6);
        // Content is preserved as a multiset.
        let mut got: Vec<String> = db.iter().map(|t| t.moving_object.clone()).collect();
        got.sort();
        let mut want: Vec<String> = all.iter().map(|t| t.moving_object.clone()).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn federation_face_matches_trajectory_db() {
        let tmp = TempDir::new("federate");
        let mut db = open(&tmp);
        db.flush(vec![
            traj("a", &[(1, 0, 100)], "visit"),
            traj("b", &[(2, 50, 150)], "visit"),
        ])
        .unwrap();
        let reference = TrajectoryDb::build(db.iter().cloned().collect());
        let p = Predicate::VisitedCell(cell(1));
        let from_seg: Vec<String> = crate::federation::federated_matching(&p, &[&db])
            .into_iter()
            .map(|t| t.moving_object)
            .collect();
        let from_db: Vec<String> = crate::federation::federated_matching(&p, &[&reference])
            .into_iter()
            .map(|t| t.moving_object)
            .collect();
        assert_eq!(from_seg, from_db);
        assert_eq!(TrajectorySource::len_hint(&db), 2);
        // An empty warehouse federates as nothing.
        let empty_tmp = TempDir::new("federate-empty");
        let empty = open(&empty_tmp);
        assert_eq!(
            crate::federation::federated_count(&Predicate::True, &[&empty]),
            0
        );
        assert!(empty.is_empty());
    }
}
