//! Aggregations over trajectory sets: the GROUP BY layer of the engine.
//!
//! These operators turn selected trajectories into the summaries the
//! paper's analytics motivate — per-zone detection counts (the Fig. 3
//! choropleth is exactly [`detection_counts_by_cell`] over the ground
//! floor), dwell-time totals, flow matrices between cells, concurrent
//! occupancy over time, and annotation-keyed grouping (e.g. per-device
//! splits of the Louvre dataset).

use std::collections::BTreeMap;

use sitm_core::{AnnotationKind, Duration, SemanticTrajectory, TimeInterval, Timestamp};
use sitm_space::CellRef;

use crate::index::{TrajId, TrajectoryDb};

/// Total dwell time per cell (sum of stay durations).
pub fn dwell_by_cell<'a, I>(trajectories: I) -> BTreeMap<CellRef, Duration>
where
    I: IntoIterator<Item = &'a SemanticTrajectory>,
{
    let mut out: BTreeMap<CellRef, Duration> = BTreeMap::new();
    for t in trajectories {
        for stay in t.trace().intervals() {
            let slot = out.entry(stay.cell).or_insert(Duration::ZERO);
            *slot = *slot + stay.duration();
        }
    }
    out
}

/// Number of stays (detections) per cell — the Fig. 3 choropleth series.
pub fn detection_counts_by_cell<'a, I>(trajectories: I) -> BTreeMap<CellRef, usize>
where
    I: IntoIterator<Item = &'a SemanticTrajectory>,
{
    let mut out: BTreeMap<CellRef, usize> = BTreeMap::new();
    for t in trajectories {
        for stay in t.trace().intervals() {
            *out.entry(stay.cell).or_insert(0) += 1;
        }
    }
    out
}

/// Number of distinct trajectories touching each cell.
pub fn trajectory_counts_by_cell<'a, I>(trajectories: I) -> BTreeMap<CellRef, usize>
where
    I: IntoIterator<Item = &'a SemanticTrajectory>,
{
    let mut out: BTreeMap<CellRef, usize> = BTreeMap::new();
    for t in trajectories {
        for cell in t.trace().cells_visited() {
            *out.entry(cell).or_insert(0) += 1;
        }
    }
    out
}

/// Directed cell-to-cell transition counts over the collapsed cell
/// sequences — the paper's "intra-visit zone transitions" as a matrix.
pub fn flow_matrix<'a, I>(trajectories: I) -> BTreeMap<(CellRef, CellRef), usize>
where
    I: IntoIterator<Item = &'a SemanticTrajectory>,
{
    let mut out: BTreeMap<(CellRef, CellRef), usize> = BTreeMap::new();
    for t in trajectories {
        let seq = t.trace().cell_sequence();
        for w in seq.windows(2) {
            *out.entry((w[0], w[1])).or_insert(0) += 1;
        }
    }
    out
}

/// A point of an occupancy time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyPoint {
    /// Bucket start.
    pub bucket_start: Timestamp,
    /// Trajectories with at least one stay overlapping the bucket.
    pub concurrent: usize,
}

/// Concurrent-presence time series: for each `bucket`-sized window across
/// the collection's global span, how many trajectories were present.
///
/// Returns an empty series for an empty collection or a non-positive
/// bucket.
pub fn occupancy(db: &TrajectoryDb, bucket: Duration) -> Vec<OccupancyPoint> {
    if db.is_empty() || bucket.as_seconds() <= 0 {
        return Vec::new();
    }
    let global_start = db
        .iter()
        .map(|t| t.start())
        .min()
        .expect("non-empty collection");
    let global_end = db
        .iter()
        .map(|t| t.end())
        .max()
        .expect("non-empty collection");
    let mut out = Vec::new();
    let mut cursor = global_start;
    while cursor <= global_end {
        // Windows are half-open by construction (the next bucket starts at
        // end+1s) so each instant is counted once.
        let window_end = Timestamp(
            (cursor + bucket)
                .as_seconds()
                .saturating_sub(1)
                .max(cursor.as_seconds()),
        );
        let window = TimeInterval::new(cursor, window_end.min(global_end));
        out.push(OccupancyPoint {
            bucket_start: cursor,
            concurrent: db.spans_overlapping(window).len(),
        });
        cursor = cursor + bucket;
    }
    out
}

/// Groups trajectory ids by the value of a whole-trajectory annotation
/// kind (e.g. `Custom("device")` → `{"ios": [...], "android": [...]}`).
/// Trajectories without that kind are omitted; a trajectory with several
/// values of the kind appears in each group.
pub fn group_by_annotation(
    db: &TrajectoryDb,
    kind: &AnnotationKind,
) -> BTreeMap<String, Vec<TrajId>> {
    let mut out: BTreeMap<String, Vec<TrajId>> = BTreeMap::new();
    for (i, t) in db.iter().enumerate() {
        for value in t.annotations().values_of(kind) {
            out.entry(value.to_string()).or_default().push(i as TrajId);
        }
    }
    out
}

/// The `k` cells with the largest values, ties broken by cell order.
pub fn top_k<V: Copy + Ord>(map: &BTreeMap<CellRef, V>, k: usize) -> Vec<(CellRef, V)> {
    let mut items: Vec<(CellRef, V)> = map.iter().map(|(&c, &v)| (c, v)).collect();
    items.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    items.truncate(k);
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitm_core::{Annotation, AnnotationSet, PresenceInterval, Trace, TransitionTaken};
    use sitm_graph::{LayerIdx, NodeId};

    fn cell(n: usize) -> CellRef {
        CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
    }

    fn traj(mo: &str, stays: &[(usize, i64, i64)], device: &str) -> SemanticTrajectory {
        let intervals = stays
            .iter()
            .map(|&(c, s, e)| {
                PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(c),
                    Timestamp(s),
                    Timestamp(e),
                )
            })
            .collect();
        SemanticTrajectory::new(
            mo,
            Trace::new(intervals).unwrap(),
            AnnotationSet::from_iter([
                Annotation::goal("visit"),
                Annotation::new(AnnotationKind::Custom("device".into()), device),
            ]),
        )
        .unwrap()
    }

    fn sample() -> Vec<SemanticTrajectory> {
        vec![
            traj("a", &[(0, 0, 10), (1, 10, 30)], "ios"),
            traj("b", &[(1, 0, 40), (0, 40, 45), (1, 45, 50)], "android"),
            traj("c", &[(2, 100, 160)], "ios"),
        ]
    }

    #[test]
    fn dwell_sums_stays() {
        let ts = sample();
        let dwell = dwell_by_cell(&ts);
        assert_eq!(dwell[&cell(0)], Duration::seconds(15));
        assert_eq!(dwell[&cell(1)], Duration::seconds(65));
        assert_eq!(dwell[&cell(2)], Duration::seconds(60));
    }

    #[test]
    fn detection_vs_trajectory_counts() {
        let ts = sample();
        let det = detection_counts_by_cell(&ts);
        assert_eq!(det[&cell(1)], 3, "three stays in cell 1");
        let trj = trajectory_counts_by_cell(&ts);
        assert_eq!(trj[&cell(1)], 2, "two distinct trajectories in cell 1");
        assert_eq!(trj[&cell(2)], 1);
    }

    #[test]
    fn flow_matrix_counts_directed_transitions() {
        let ts = sample();
        let flows = flow_matrix(&ts);
        assert_eq!(flows[&(cell(0), cell(1))], 2, "a: 0→1 and b: 0→1");
        assert_eq!(flows[&(cell(1), cell(0))], 1, "b: 1→0");
        assert!(!flows.contains_key(&(cell(1), cell(2))));
    }

    #[test]
    fn occupancy_series_covers_span() {
        let db = TrajectoryDb::build(sample());
        let series = occupancy(&db, Duration::seconds(50));
        // Global span [0, 160] → buckets at 0, 50, 100, 150.
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].concurrent, 2, "a and b live in [0,49]");
        assert_eq!(series[1].concurrent, 1, "only b reaches 50");
        assert_eq!(series[2].concurrent, 1, "c spans [100,160]");
        assert_eq!(series[3].concurrent, 1);
    }

    #[test]
    fn occupancy_degenerate_inputs() {
        let empty = TrajectoryDb::build(vec![]);
        assert!(occupancy(&empty, Duration::seconds(10)).is_empty());
        let db = TrajectoryDb::build(sample());
        assert!(occupancy(&db, Duration::ZERO).is_empty());
    }

    #[test]
    fn grouping_by_device() {
        let db = TrajectoryDb::build(sample());
        let groups = group_by_annotation(&db, &AnnotationKind::Custom("device".into()));
        assert_eq!(groups["ios"], vec![0, 2]);
        assert_eq!(groups["android"], vec![1]);
        // Absent kinds produce no groups.
        assert!(group_by_annotation(&db, &AnnotationKind::Activity).is_empty());
    }

    #[test]
    fn top_k_orders_by_value_then_cell() {
        let ts = sample();
        let det = detection_counts_by_cell(&ts);
        let top = top_k(&det, 2);
        assert_eq!(top[0].0, cell(1));
        assert_eq!(top[0].1, 3);
        assert_eq!(top.len(), 2);
        assert!(top_k(&det, 0).is_empty());
        assert_eq!(top_k(&det, 99).len(), 3);
    }
}
