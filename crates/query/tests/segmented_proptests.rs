//! Property tests pinning the segmented warehouse's soundness
//! invariant: for random trajectory corpora, random flush splits, and
//! every `Predicate` variant, the candidate superset derived from zone
//! maps + per-segment postings never loses a match, and the
//! index-served results equal both the scan path and an in-memory
//! [`TrajectoryDb`] over the same trajectories.

use proptest::prelude::*;

use sitm_core::{
    Annotation, AnnotationSet, Duration, PresenceInterval, SemanticTrajectory, TimeInterval,
    Timestamp, Trace, TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_query::{CandidateSet, Predicate, SegmentedDb, TrajectoryDb};
use sitm_space::CellRef;
use sitm_store::warehouse::WarehouseConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("sitm-segprop-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

const GOALS: [&str; 3] = ["visit", "buy", "exit"];

/// One synthetic trajectory: stays walk forward in time over cells 0..6
/// (the same universe the `TrajectoryDb` proptests use) — including
/// *overlapping* stays (`Trace` tolerates overlap; it is exactly the
/// shape that makes total dwell exceed the span, so zone-map dwell
/// pruning must survive it).
fn trajectory_strategy() -> impl Strategy<Value = SemanticTrajectory> {
    (
        0u8..5,              // moving-object pool
        0usize..GOALS.len(), // goal
        0i64..500,           // start time
        prop::collection::vec((0usize..6, 0i64..30, 0u8..3, 0i64..40), 1..8),
    )
        .prop_map(|(mo, goal, start, stays)| {
            let mut t = start;
            let mut intervals = Vec::with_capacity(stays.len());
            for (c, dur, ann, overlap) in stays {
                let end = t + dur;
                let mut stay = PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(c),
                    Timestamp(t),
                    Timestamp(end),
                );
                if ann > 0 {
                    stay.annotations
                        .insert(Annotation::goal(GOALS[(ann as usize - 1) % GOALS.len()]));
                }
                intervals.push(stay);
                // Next stay may start before this one ends (but starts
                // stay non-decreasing, as Trace requires).
                t = (end - overlap).max(t);
            }
            SemanticTrajectory::new(
                format!("mo-{mo}"),
                Trace::new(intervals).expect("strategy emits ordered stays"),
                AnnotationSet::from_iter([Annotation::goal(GOALS[goal])]),
            )
            .expect("non-empty trace and annotations")
        })
}

/// Random predicates over the same universe, covering every variant.
fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        Just(Predicate::True),
        (0usize..6).prop_map(|c| Predicate::VisitedCell(cell(c))),
        prop::collection::vec(0usize..6, 1..3)
            .prop_map(|cs| Predicate::SequenceContains(cs.into_iter().map(cell).collect())),
        (0i64..700, 0i64..60).prop_map(|(s, d)| Predicate::SpanOverlaps(TimeInterval::new(
            Timestamp(s),
            Timestamp(s + d)
        ))),
        (0usize..6, 0i64..700, 0i64..60).prop_map(|(c, s, d)| Predicate::StayOverlaps(
            cell(c),
            TimeInterval::new(Timestamp(s), Timestamp(s + d))
        )),
        (0usize..GOALS.len())
            .prop_map(|g| Predicate::HasTrajAnnotation(Annotation::goal(GOALS[g]))),
        (0usize..GOALS.len())
            .prop_map(|g| Predicate::HasStayAnnotation(Annotation::goal(GOALS[g]))),
        (0i64..120).prop_map(|s| Predicate::MinTotalDwell(Duration::seconds(s))),
        (0usize..6, 0i64..40)
            .prop_map(|(c, s)| Predicate::MinStayIn(cell(c), Duration::seconds(s))),
        (0u8..5).prop_map(|m| Predicate::MovingObject(format!("mo-{m}"))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|p| p.not()),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Predicate::And),
            prop::collection::vec(inner, 0..4).prop_map(Predicate::Or),
        ]
    })
}

/// Builds a warehouse from `trajs` split into `splits + 1` flush
/// batches (each flush may trigger size-tiered compaction).
fn build_segmented(tmp: &TempDir, trajs: &[SemanticTrajectory], splits: &[usize]) -> SegmentedDb {
    let (mut db, _) = SegmentedDb::open(&tmp.0, WarehouseConfig::default()).expect("open");
    let mut start = 0;
    let mut cuts: Vec<usize> = splits.iter().map(|s| s % (trajs.len() + 1)).collect();
    cuts.sort_unstable();
    cuts.push(trajs.len());
    for cut in cuts {
        if cut > start {
            db.flush(trajs[start..cut].to_vec()).expect("flush");
            start = cut;
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pinned invariant: every match is in the candidate superset,
    /// for random corpora, random flush splits, and all predicate
    /// variants — and the index-served count/result equals the scan.
    #[test]
    fn segmented_candidates_are_sound_supersets(
        trajs in prop::collection::vec(trajectory_strategy(), 0..14),
        splits in prop::collection::vec(0usize..16, 0..3),
        pred in predicate_strategy(),
    ) {
        let tmp = TempDir::new();
        let db = build_segmented(&tmp, &trajs, &splits);
        prop_assert_eq!(db.len(), trajs.len());

        // Soundness: candidates never lose a matching position.
        let cand = db.candidates(&pred);
        let stored: Vec<&SemanticTrajectory> = db.iter().collect();
        for (i, t) in stored.iter().enumerate() {
            if pred.matches(t) {
                match &cand {
                    CandidateSet::All => {}
                    CandidateSet::Ids(ids) => prop_assert!(
                        ids.contains(&(i as u32)),
                        "candidate set for {} lost matching trajectory {}",
                        pred.clone(),
                        i
                    ),
                }
            }
        }

        // Index-served results equal the scan path exactly.
        let indexed: Vec<String> = db
            .matching(&pred)
            .iter()
            .map(|t| t.moving_object.clone())
            .collect();
        let scanned: Vec<String> = db
            .matching_scan(&pred)
            .iter()
            .map(|t| t.moving_object.clone())
            .collect();
        prop_assert_eq!(&indexed, &scanned, "index vs scan diverged for {}", pred.clone());
        prop_assert_eq!(db.count_matching(&pred), db.count_matching_scan(&pred));

        // And the whole warehouse answers exactly like an in-memory
        // TrajectoryDb over the same trajectories in the same order.
        let reference = TrajectoryDb::build(stored.into_iter().cloned().collect());
        let from_ref: Vec<String> = reference
            .trajectories()
            .iter()
            .filter(|t| pred.matches(t))
            .map(|t| t.moving_object.clone())
            .collect();
        prop_assert_eq!(&indexed, &from_ref, "segmented vs in-memory diverged for {}", pred.clone());
    }

    /// The warehouse preserves content as a multiset across arbitrary
    /// flush splits and the compactions they trigger.
    #[test]
    fn segmented_preserves_the_corpus(
        trajs in prop::collection::vec(trajectory_strategy(), 0..14),
        splits in prop::collection::vec(0usize..16, 0..3),
    ) {
        let tmp = TempDir::new();
        let db = build_segmented(&tmp, &trajs, &splits);
        let mut got: Vec<String> = db
            .iter()
            .map(|t| format!("{:?}", (t.moving_object.clone(), t.start(), t.end(), t.trace().len())))
            .collect();
        got.sort();
        let mut want: Vec<String> = trajs
            .iter()
            .map(|t| format!("{:?}", (t.moving_object.clone(), t.start(), t.end(), t.trace().len())))
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }
}
