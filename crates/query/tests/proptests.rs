//! Property tests: the query engine must be indistinguishable from a
//! naive full scan, for arbitrary collections and arbitrary predicates.

use proptest::prelude::*;

use sitm_core::{
    Annotation, AnnotationSet, Duration, PresenceInterval, SemanticTrajectory, TimeInterval,
    Timestamp, Trace, TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_query::{Entry, IntervalTree, Predicate, Query, SortKey, TrajectoryDb};
use sitm_space::CellRef;

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

const GOALS: [&str; 3] = ["visit", "buy", "exit"];

/// One synthetic trajectory: stays walk forward in time over cells 0..6.
fn trajectory_strategy() -> impl Strategy<Value = SemanticTrajectory> {
    (
        0u8..5,              // moving-object pool
        0usize..GOALS.len(), // goal
        0i64..500,           // start time
        prop::collection::vec((0usize..6, 0i64..30, 0u8..3), 1..8),
    )
        .prop_map(|(mo, goal, start, stays)| {
            let mut t = start;
            let mut intervals = Vec::with_capacity(stays.len());
            for (c, dur, ann) in stays {
                let end = t + dur;
                let mut stay = PresenceInterval::new(
                    TransitionTaken::Unknown,
                    cell(c),
                    Timestamp(t),
                    Timestamp(end),
                );
                if ann > 0 {
                    stay.annotations
                        .insert(Annotation::goal(GOALS[(ann as usize - 1) % GOALS.len()]));
                }
                intervals.push(stay);
                t = end;
            }
            SemanticTrajectory::new(
                format!("mo-{mo}"),
                Trace::new(intervals).expect("strategy emits ordered stays"),
                AnnotationSet::from_iter([Annotation::goal(GOALS[goal])]),
            )
            .expect("non-empty trace and annotations")
        })
}

/// Random predicates over the same universe the trajectories draw from.
fn predicate_strategy() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        Just(Predicate::True),
        (0usize..6).prop_map(|c| Predicate::VisitedCell(cell(c))),
        prop::collection::vec(0usize..6, 1..3)
            .prop_map(|cs| Predicate::SequenceContains(cs.into_iter().map(cell).collect())),
        (0i64..700, 0i64..60).prop_map(|(s, d)| Predicate::SpanOverlaps(TimeInterval::new(
            Timestamp(s),
            Timestamp(s + d)
        ))),
        (0usize..6, 0i64..700, 0i64..60).prop_map(|(c, s, d)| Predicate::StayOverlaps(
            cell(c),
            TimeInterval::new(Timestamp(s), Timestamp(s + d))
        )),
        (0usize..GOALS.len())
            .prop_map(|g| Predicate::HasTrajAnnotation(Annotation::goal(GOALS[g]))),
        (0usize..GOALS.len())
            .prop_map(|g| Predicate::HasStayAnnotation(Annotation::goal(GOALS[g]))),
        (0i64..120).prop_map(|s| Predicate::MinTotalDwell(Duration::seconds(s))),
        (0usize..6, 0i64..40)
            .prop_map(|(c, s)| Predicate::MinStayIn(cell(c), Duration::seconds(s))),
        (0u8..5).prop_map(|m| Predicate::MovingObject(format!("mo-{m}"))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|p| p.not()),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Predicate::And),
            prop::collection::vec(inner, 0..4).prop_map(Predicate::Or),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The engine's results equal a naive full scan, id for id.
    #[test]
    fn execute_equals_full_scan(
        trajs in prop::collection::vec(trajectory_strategy(), 0..16),
        pred in predicate_strategy(),
    ) {
        let naive: Vec<u32> = trajs
            .iter()
            .enumerate()
            .filter(|(_, t)| pred.matches(t))
            .map(|(i, _)| i as u32)
            .collect();
        let db = TrajectoryDb::build(trajs);
        let got: Vec<u32> = Query::new()
            .filter(pred.clone())
            .execute(&db)
            .iter()
            .map(|m| m.id)
            .collect();
        prop_assert_eq!(&got, &naive, "predicate {}", pred);
        prop_assert_eq!(Query::new().filter(pred).count(&db), naive.len());
    }

    /// Candidate sets never lose a matching trajectory (index soundness).
    #[test]
    fn candidates_are_supersets(
        trajs in prop::collection::vec(trajectory_strategy(), 0..16),
        pred in predicate_strategy(),
    ) {
        let db = TrajectoryDb::build(trajs);
        let cand = db.candidates(&pred);
        for (i, t) in db.iter().enumerate() {
            if pred.matches(t) {
                match &cand {
                    sitm_query::CandidateSet::All => {}
                    sitm_query::CandidateSet::Ids(ids) => prop_assert!(
                        ids.contains(&(i as u32)),
                        "lost match {} for {}", i, pred
                    ),
                }
            }
        }
        // Id lists must be sorted and duplicate-free.
        if let sitm_query::CandidateSet::Ids(ids) = &cand {
            prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// The interval tree agrees with a naive scan for arbitrary windows.
    #[test]
    fn interval_tree_equals_naive(
        items in prop::collection::vec((0i64..200, 0i64..50), 0..64),
        window in (0i64..250, 0i64..60),
    ) {
        let entries: Vec<Entry<usize>> = items
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| Entry {
                interval: TimeInterval::new(Timestamp(s), Timestamp(s + d)),
                payload: i,
            })
            .collect();
        let tree = IntervalTree::build(entries);
        let w = TimeInterval::new(Timestamp(window.0), Timestamp(window.0 + window.1));
        let mut got = tree.overlapping(w);
        got.sort_unstable();
        let naive: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, &(s, d))| {
                TimeInterval::new(Timestamp(s), Timestamp(s + d)).overlaps(w)
            })
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(&got, &naive);
        prop_assert_eq!(tree.any_overlapping(w), !naive.is_empty());
        // Stabbing is the degenerate window.
        let mut stabbed = tree.stab(w.start);
        stabbed.sort_unstable();
        let naive_stab: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, &(s, d))| s <= w.start.0 && w.start.0 <= s + d)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(stabbed, naive_stab);
    }

    /// Sorting is a permutation of the unsorted result, and paging is a
    /// window of the sorted result.
    #[test]
    fn sort_and_page_are_consistent(
        trajs in prop::collection::vec(trajectory_strategy(), 0..16),
        offset in 0usize..8,
        limit in 0usize..8,
    ) {
        let db = TrajectoryDb::build(trajs);
        let all: Vec<u32> = Query::new().execute(&db).iter().map(|m| m.id).collect();
        let sorted: Vec<u32> = Query::new()
            .order_by(SortKey::TotalDwell, true)
            .execute(&db)
            .iter()
            .map(|m| m.id)
            .collect();
        let mut a = all.clone();
        let mut b = sorted.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "sorting must not add or drop rows");
        let paged: Vec<u32> = Query::new()
            .order_by(SortKey::TotalDwell, true)
            .offset(offset)
            .limit(limit)
            .execute(&db)
            .iter()
            .map(|m| m.id)
            .collect();
        let expect: Vec<u32> = sorted.into_iter().skip(offset).take(limit).collect();
        prop_assert_eq!(paged, expect);
    }
}
