//! Federated execution with full query semantics: sorted and limited
//! queries over unions of indexed and unindexed sources must equal the
//! hand-computed union — and the index path must never change results.

use sitm_core::{
    Annotation, AnnotationSet, Duration, PresenceInterval, SemanticTrajectory, TimeInterval,
    Timestamp, Trace, TransitionTaken,
};
use sitm_graph::{LayerIdx, NodeId};
use sitm_query::{
    federated_count, federated_explain, federated_matching, AccessPath, Predicate, Query, SortKey,
    TrajectoryDb, TrajectorySource,
};
use sitm_space::CellRef;

fn cell(n: usize) -> CellRef {
    CellRef::new(LayerIdx::from_index(0), NodeId::from_index(n))
}

fn traj(mo: &str, stays: &[(usize, i64, i64)], goal: &str) -> SemanticTrajectory {
    let intervals = stays
        .iter()
        .map(|&(c, s, e)| {
            PresenceInterval::new(
                TransitionTaken::Unknown,
                cell(c),
                Timestamp(s),
                Timestamp(e),
            )
        })
        .collect();
    SemanticTrajectory::new(
        mo,
        Trace::new(intervals).unwrap(),
        AnnotationSet::from_iter([Annotation::goal(goal)]),
    )
    .unwrap()
}

fn warehouse() -> TrajectoryDb {
    TrajectoryDb::build(vec![
        traj("w-a", &[(0, 0, 10), (1, 10, 20)], "visit"),
        traj("w-b", &[(1, 5, 15), (2, 15, 30)], "visit"),
        traj("w-c", &[(2, 100, 200)], "buy"),
        traj("w-d", &[(0, 50, 80), (1, 80, 90), (2, 90, 95)], "visit"),
    ])
}

fn live() -> Vec<SemanticTrajectory> {
    vec![
        traj("l-a", &[(1, 40, 70)], "visit"),
        traj("l-b", &[(3, 0, 5)], "visit"),
        traj("l-c", &[(1, 8, 95), (2, 95, 99)], "buy"),
    ]
}

/// Reference implementation: scan the union, filter, stable-sort, page.
fn naive(
    q: &Query,
    sources: &[&dyn TrajectorySource],
    key: Option<(SortKey, bool)>,
    offset: usize,
    limit: Option<usize>,
) -> Vec<String> {
    let mut hits: Vec<SemanticTrajectory> = Vec::new();
    for source in sources {
        source.for_each_trajectory(&mut |t| {
            if q.predicate().matches(t) {
                hits.push(t.clone());
            }
        });
    }
    if let Some((key, ascending)) = key {
        // Mirror the executor's tie rule: stable sort, reversed
        // comparison for descending.
        hits.sort_by(|a, b| {
            let ord = match key {
                SortKey::Start => a.start().cmp(&b.start()),
                SortKey::End => a.end().cmp(&b.end()),
                SortKey::SpanDuration => a.span().duration().cmp(&b.span().duration()),
                SortKey::TotalDwell => a.trace().dwell_total().cmp(&b.trace().dwell_total()),
                SortKey::MovingObject => a.moving_object.cmp(&b.moving_object),
                SortKey::TraceLength => a.trace().len().cmp(&b.trace().len()),
            };
            if ascending {
                ord
            } else {
                ord.reverse()
            }
        });
    }
    let page: Vec<SemanticTrajectory> = match limit {
        Some(n) => hits.into_iter().skip(offset).take(n).collect(),
        None => hits.into_iter().skip(offset).collect(),
    };
    page.into_iter().map(|t| t.moving_object).collect()
}

/// One case: the query, plus the ordering/paging to mirror by hand.
type Case = (Query, Option<(SortKey, bool)>, usize, Option<usize>);

#[test]
fn sorted_and_limited_federated_queries_match_the_naive_union() {
    let db = warehouse();
    let live = live();
    let sources: Vec<&dyn TrajectorySource> = vec![&live, &db];

    let cases: Vec<Case> = vec![
        (
            Query::new().visited(cell(1)).order_by(SortKey::Start, true),
            Some((SortKey::Start, true)),
            0,
            None,
        ),
        (
            Query::new()
                .visited(cell(1))
                .order_by(SortKey::SpanDuration, false)
                .limit(2),
            Some((SortKey::SpanDuration, false)),
            0,
            Some(2),
        ),
        (
            Query::new()
                .goal("visit")
                .order_by(SortKey::MovingObject, true)
                .offset(2)
                .limit(3),
            Some((SortKey::MovingObject, true)),
            2,
            Some(3),
        ),
        (
            Query::new()
                .during(TimeInterval::new(Timestamp(0), Timestamp(45)))
                .order_by(SortKey::End, false),
            Some((SortKey::End, false)),
            0,
            None,
        ),
        // Unsorted with a limit: first-k in source order.
        (Query::new().visited(cell(2)).limit(2), None, 0, Some(2)),
    ];
    for (q, key, offset, limit) in cases {
        let got: Vec<String> = q
            .execute_federated(&sources)
            .into_iter()
            .map(|t| t.moving_object)
            .collect();
        let want = naive(&q, &sources, key, offset, limit);
        assert_eq!(got, want, "query {:?} diverged", q);
    }
}

#[test]
fn federated_primitives_agree_with_execute_federated() {
    let db = warehouse();
    let live = live();
    let sources: Vec<&dyn TrajectorySource> = vec![&live, &db];
    for p in [
        Predicate::VisitedCell(cell(1)),
        Predicate::HasTrajAnnotation(Annotation::goal("buy")),
        Predicate::MinStayIn(cell(1), Duration::seconds(30)),
        Predicate::MovingObject("l-b".into()),
        Predicate::VisitedCell(cell(3)).or(Predicate::VisitedCell(cell(0))),
    ] {
        let q = Query::new().filter(p.clone());
        let executed = q.execute_federated(&sources).len();
        assert_eq!(executed, federated_count(&p, &sources), "{p}");
        assert_eq!(executed, federated_matching(&p, &sources).len(), "{p}");
    }
}

#[test]
fn explain_source_and_federated_explain_report_both_paths() {
    let db = warehouse();
    let live = live();
    let sources: Vec<&dyn TrajectorySource> = vec![&live, &db];
    let q = Query::new().visited(cell(2));
    let live_plan = q.explain_source(sources[0]);
    assert_eq!(live_plan.access, AccessPath::FullScan);
    assert_eq!(live_plan.total, 3);
    let db_plan = q.explain_source(sources[1]);
    assert_eq!(
        db_plan.access,
        AccessPath::IndexCandidates { candidates: 3 }
    );
    let plans = federated_explain(q.predicate(), &sources);
    assert_eq!(plans.len(), 2);
    assert_eq!(plans[0].access, live_plan.access);
    assert_eq!(plans[1].access, db_plan.access);
    assert!(plans[1].selectivity_bound() < 1.0);
}
